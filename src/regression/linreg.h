#ifndef GPUPERF_REGRESSION_LINREG_H_
#define GPUPERF_REGRESSION_LINREG_H_

/**
 * @file
 * Ordinary least squares — the paper's entire model machinery. Simple
 * y = a + b*x fits power the E2E/LW/KW models; the small multivariate
 * solver supports the inter-GPU parameter regressions and the feature
 * ablations.
 */

#include <cstddef>
#include <vector>

namespace gpuperf::regression {

/** A fitted y = intercept + slope * x line. */
struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double r2 = 0;       // coefficient of determination on the fit data
  std::size_t n = 0;   // points used

  /** Evaluates the line. */
  double Predict(double x) const { return intercept + slope * x; }
};

/**
 * Fits y = a + b*x by OLS.
 *
 * Degenerate inputs are handled the way the performance models need:
 * a constant x yields slope 0 / intercept mean(y); fewer than two points
 * yield intercept y[0] (or 0 if empty) and r2 = 1.
 */
LinearFit FitLinear(const std::vector<double>& x,
                    const std::vector<double>& y);

/**
 * FitLinear with the intercept clamped to [0, min(min(y), max_intercept)]:
 * a kernel's fixed cost cannot be negative, cannot exceed its fastest
 * observed execution, and physically cannot exceed a few microseconds of
 * launch/ramp-up overhead. When the clamp binds, the slope is refit with
 * the intercept held fixed and r2 recomputed. Shared by KW training and
 * the online refit path so both produce identically-shaped lines.
 */
LinearFit FitLinearClampedIntercept(const std::vector<double>& x,
                                    const std::vector<double>& y,
                                    double max_intercept);

/** A fitted multivariate linear model y = beta0 + sum_i beta[i] * x[i]. */
struct MultiFit {
  std::vector<double> beta;  // beta[0] is the intercept
  double r2 = 0;
  std::size_t n = 0;

  /** Evaluates the model on a feature vector (without leading 1). */
  double Predict(const std::vector<double>& features) const;
};

/**
 * Fits y = beta0 + beta . x by OLS via normal equations with Gaussian
 * elimination and partial pivoting. `rows[i]` is the i-th feature vector
 * (without the leading 1). Near-singular systems fall back to dropping
 * the offending columns (their betas become 0).
 */
MultiFit FitMulti(const std::vector<std::vector<double>>& rows,
                  const std::vector<double>& y);

}  // namespace gpuperf::regression

#endif  // GPUPERF_REGRESSION_LINREG_H_
