#include "regression/linreg.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace gpuperf::regression {

LinearFit FitLinear(const std::vector<double>& x,
                    const std::vector<double>& y) {
  GP_CHECK_EQ(x.size(), y.size());
  LinearFit fit;
  fit.n = x.size();
  if (x.empty()) {
    fit.r2 = 1.0;
    return fit;
  }
  if (x.size() == 1) {
    fit.intercept = y[0];
    fit.r2 = 1.0;
    return fit;
  }
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double n = static_cast<double>(x.size());
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0.0) {
    // Constant x: the best linear predictor is the mean.
    fit.intercept = my;
    fit.r2 = syy <= 0.0 ? 1.0 : 0.0;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy <= 0.0) {
    fit.r2 = 1.0;  // constant y, perfectly explained
  } else {
    double ss_res = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double r = y[i] - fit.Predict(x[i]);
      ss_res += r * r;
    }
    fit.r2 = 1.0 - ss_res / syy;
  }
  return fit;
}

LinearFit FitLinearClampedIntercept(const std::vector<double>& x,
                                    const std::vector<double>& y,
                                    double max_intercept) {
  LinearFit fit = FitLinear(x, y);
  if (y.empty()) return fit;
  double min_y = y[0];
  for (double v : y) min_y = std::min(min_y, v);
  const double clamped =
      std::clamp(fit.intercept, 0.0, std::min(min_y, max_intercept));
  if (clamped == fit.intercept) return fit;
  // Refit the slope with the intercept fixed.
  double sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += x[i] * x[i];
    sxy += x[i] * (y[i] - clamped);
  }
  fit.intercept = clamped;
  fit.slope = sxx > 0 ? sxy / sxx : 0.0;
  // Recompute R² for reporting.
  double my = 0;
  for (double v : y) my += v;
  my /= static_cast<double>(y.size());
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - fit.Predict(x[i]);
    ss_res += r * r;
    ss_tot += (y[i] - my) * (y[i] - my);
  }
  fit.r2 = ss_tot <= 0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

double MultiFit::Predict(const std::vector<double>& features) const {
  GP_CHECK_EQ(features.size() + 1, beta.size());
  double value = beta[0];
  for (std::size_t i = 0; i < features.size(); ++i) {
    value += beta[i + 1] * features[i];
  }
  return value;
}

MultiFit FitMulti(const std::vector<std::vector<double>>& rows,
                  const std::vector<double>& y) {
  GP_CHECK_EQ(rows.size(), y.size());
  GP_CHECK(!rows.empty());
  const std::size_t k = rows[0].size() + 1;  // features + intercept
  for (const auto& row : rows) GP_CHECK_EQ(row.size() + 1, k);

  // Normal equations: (X^T X) beta = X^T y.
  std::vector<std::vector<double>> a(k, std::vector<double>(k, 0.0));
  std::vector<double> b(k, 0.0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::vector<double> xi(k, 1.0);
    for (std::size_t j = 1; j < k; ++j) xi[j] = rows[r][j - 1];
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) a[i][j] += xi[i] * xi[j];
      b[i] += xi[i] * y[r];
    }
  }

  // Gaussian elimination with partial pivoting; near-singular pivots zero
  // out their column (feature dropped).
  std::vector<double> beta(k, 0.0);
  std::vector<int> order(k);
  for (std::size_t i = 0; i < k; ++i) order[i] = static_cast<int>(i);
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < k; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    if (std::fabs(a[col][col]) < 1e-12) {
      a[col][col] = 1.0;  // drop this direction
      b[col] = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        if (j != col) a[col][j] = 0.0;
      }
      continue;
    }
    for (std::size_t r = 0; r < k; ++r) {
      if (r == col) continue;
      const double factor = a[r][col] / a[col][col];
      for (std::size_t j = 0; j < k; ++j) a[r][j] -= factor * a[col][j];
      b[r] -= factor * b[col];
    }
  }
  for (std::size_t i = 0; i < k; ++i) beta[i] = b[i] / a[i][i];

  MultiFit fit;
  fit.beta = beta;
  fit.n = rows.size();
  double my = 0;
  for (double v : y) my += v;
  my /= static_cast<double>(y.size());
  double ss_res = 0, ss_tot = 0;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const double pred = fit.Predict(rows[r]);
    ss_res += (y[r] - pred) * (y[r] - pred);
    ss_tot += (y[r] - my) * (y[r] - my);
  }
  fit.r2 = ss_tot <= 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

}  // namespace gpuperf::regression
