#ifndef GPUPERF_SCHED_SCHEDULER_H_
#define GPUPERF_SCHED_SCHEDULER_H_

/**
 * @file
 * Case study 3: multi-GPU task placement.
 *
 * Jobs (networks) must be assigned to GPUs so the overall makespan is
 * minimal. Times come from a performance model; the paper shows brute
 * force is affordable because predictions cost microseconds. A greedy
 * longest-processing-time heuristic is included for larger queues.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace gpuperf::sched {

/** An assignment of each job to a GPU index, with its makespan. */
struct Schedule {
  std::vector<int> assignment;   // job -> gpu index
  double makespan_us = 0;
  std::vector<double> gpu_loads; // per-gpu total time
};

/** Makespan of `assignment` under `times[job][gpu]`. */
double Makespan(const std::vector<std::vector<double>>& times,
                const std::vector<int>& assignment);

/**
 * Exhaustive search over all gpu^jobs assignments (the paper's brute
 * force); practical for the case study's 9 jobs x 2 GPUs.
 */
Schedule BruteForceSchedule(const std::vector<std::vector<double>>& times);

/** Greedy LPT: longest job first onto the GPU minimizing its finish time. */
Schedule GreedySchedule(const std::vector<std::vector<double>>& times);

/** Index of the fastest GPU for each job (Figure 18's yellow crosses). */
std::vector<int> FastestGpuPerJob(
    const std::vector<std::vector<double>>& times);

}  // namespace gpuperf::sched

#endif  // GPUPERF_SCHED_SCHEDULER_H_
