#include "sched/scheduler.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace gpuperf::sched {
namespace {

std::vector<double> GpuLoads(const std::vector<std::vector<double>>& times,
                             const std::vector<int>& assignment) {
  std::size_t gpus = times.empty() ? 0 : times[0].size();
  std::vector<double> loads(gpus, 0.0);
  for (std::size_t job = 0; job < assignment.size(); ++job) {
    loads[assignment[job]] += times[job][assignment[job]];
  }
  return loads;
}

}  // namespace

double Makespan(const std::vector<std::vector<double>>& times,
                const std::vector<int>& assignment) {
  GP_CHECK_EQ(times.size(), assignment.size());
  std::vector<double> loads = GpuLoads(times, assignment);
  return loads.empty() ? 0.0 : *std::max_element(loads.begin(), loads.end());
}

Schedule BruteForceSchedule(const std::vector<std::vector<double>>& times) {
  GP_CHECK(!times.empty());
  const std::size_t jobs = times.size();
  const std::size_t gpus = times[0].size();
  GP_CHECK_GT(gpus, 0u);
  double combos = std::pow(static_cast<double>(gpus),
                           static_cast<double>(jobs));
  GP_CHECK_LE(combos, 1e8) << "brute force space too large";

  std::vector<int> current(jobs, 0);
  Schedule best;
  best.makespan_us = 1e300;
  while (true) {
    const double makespan = Makespan(times, current);
    if (makespan < best.makespan_us) {
      best.makespan_us = makespan;
      best.assignment = current;
    }
    // Odometer increment over base `gpus`.
    std::size_t digit = 0;
    while (digit < jobs) {
      if (++current[digit] < static_cast<int>(gpus)) break;
      current[digit] = 0;
      ++digit;
    }
    if (digit == jobs) break;
  }
  best.gpu_loads = GpuLoads(times, best.assignment);
  return best;
}

Schedule GreedySchedule(const std::vector<std::vector<double>>& times) {
  GP_CHECK(!times.empty());
  const std::size_t jobs = times.size();
  const std::size_t gpus = times[0].size();
  // Longest (by minimum runtime) first.
  std::vector<std::size_t> order(jobs);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return *std::min_element(times[a].begin(), times[a].end()) >
           *std::min_element(times[b].begin(), times[b].end());
  });
  Schedule schedule;
  schedule.assignment.assign(jobs, 0);
  schedule.gpu_loads.assign(gpus, 0.0);
  for (std::size_t job : order) {
    std::size_t best_gpu = 0;
    double best_finish = 1e300;
    for (std::size_t gpu = 0; gpu < gpus; ++gpu) {
      const double finish = schedule.gpu_loads[gpu] + times[job][gpu];
      if (finish < best_finish) {
        best_finish = finish;
        best_gpu = gpu;
      }
    }
    schedule.assignment[job] = static_cast<int>(best_gpu);
    schedule.gpu_loads[best_gpu] += times[job][best_gpu];
  }
  schedule.makespan_us = *std::max_element(schedule.gpu_loads.begin(),
                                           schedule.gpu_loads.end());
  return schedule;
}

std::vector<int> FastestGpuPerJob(
    const std::vector<std::vector<double>>& times) {
  std::vector<int> fastest;
  fastest.reserve(times.size());
  for (const auto& row : times) {
    fastest.push_back(static_cast<int>(
        std::min_element(row.begin(), row.end()) - row.begin()));
  }
  return fastest;
}

}  // namespace gpuperf::sched
