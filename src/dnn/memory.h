#ifndef GPUPERF_DNN_MEMORY_H_
#define GPUPERF_DNN_MEMORY_H_

/**
 * @file
 * Device-memory footprint estimation.
 *
 * The paper cleans "fail-to-execute experiments (e.g., out-of-memory
 * error)" out of its dataset; this estimator lets the dataset builder do
 * the same check before profiling a (network, GPU, batch) combination.
 *
 * Inference frameworks ping-pong activation buffers, so the inference
 * footprint is weights + workspace + the largest (input + output) pair of
 * any single layer. Training must keep every layer's output for the
 * backward pass and three copies of the parameters (weights, gradients,
 * optimizer state).
 */

#include <cstdint>

#include "dnn/network.h"

namespace gpuperf::dnn {

/** Estimated device bytes for one inference pass at `batch`. */
std::int64_t InferenceFootprintBytes(const Network& network,
                                     std::int64_t batch);

/** Estimated device bytes for one SGD training step at `batch`. */
std::int64_t TrainingFootprintBytes(const Network& network,
                                    std::int64_t batch);

/** True if the footprint fits a device with `memory_gb` of memory. */
bool FitsInMemory(std::int64_t footprint_bytes, double memory_gb);

/** Largest batch (power of two up to `limit`) that fits for inference. */
std::int64_t LargestFittingBatch(const Network& network, double memory_gb,
                                 std::int64_t limit = 1024);

}  // namespace gpuperf::dnn

#endif  // GPUPERF_DNN_MEMORY_H_
