#include "dnn/memory.h"

#include <algorithm>

#include "common/logging.h"
#include "dnn/flops.h"

namespace gpuperf::dnn {
namespace {

/** Framework/cuDNN workspace reserve (im2col buffers, cuDNN scratch). */
constexpr double kWorkspaceFraction = 0.10;   // of the activation peak
constexpr std::int64_t kRuntimeReserveBytes = 512LL << 20;  // CUDA context

}  // namespace

std::int64_t InferenceFootprintBytes(const Network& network,
                                     std::int64_t batch) {
  GP_CHECK_GT(batch, 0);
  std::int64_t weights = NetworkWeightBytes(network);
  std::int64_t peak_pair = 0;
  for (const Layer& layer : network.layers()) {
    peak_pair = std::max(peak_pair, LayerInputBytes(layer, batch) +
                                        LayerOutputBytes(layer, batch));
  }
  const std::int64_t workspace =
      static_cast<std::int64_t>(kWorkspaceFraction *
                                static_cast<double>(peak_pair));
  return kRuntimeReserveBytes + weights + peak_pair + workspace;
}

std::int64_t TrainingFootprintBytes(const Network& network,
                                    std::int64_t batch) {
  GP_CHECK_GT(batch, 0);
  // Weights + gradients + optimizer state.
  const std::int64_t parameters = 3 * NetworkWeightBytes(network);
  // Every activation is kept for the backward pass, plus one gradient
  // buffer the size of the largest activation.
  std::int64_t activations = 0;
  std::int64_t largest = 0;
  for (const Layer& layer : network.layers()) {
    const std::int64_t out = LayerOutputBytes(layer, batch);
    activations += out;
    largest = std::max(largest, out);
  }
  return kRuntimeReserveBytes + parameters + activations + largest;
}

bool FitsInMemory(std::int64_t footprint_bytes, double memory_gb) {
  return static_cast<double>(footprint_bytes) <= memory_gb * 1e9;
}

std::int64_t LargestFittingBatch(const Network& network, double memory_gb,
                                 std::int64_t limit) {
  std::int64_t best = 0;
  for (std::int64_t batch = 1; batch <= limit; batch *= 2) {
    if (FitsInMemory(InferenceFootprintBytes(network, batch), memory_gb)) {
      best = batch;
    }
  }
  return best;
}

}  // namespace gpuperf::dnn
