#include "dnn/tensor_shape.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace gpuperf::dnn {

std::string TensorShape::ToString() const {
  return Format("%ldx%ldx%ld", static_cast<long>(c), static_cast<long>(h),
                static_cast<long>(w));
}

std::int64_t ConvOutDim(std::int64_t in, std::int64_t kernel,
                        std::int64_t stride, std::int64_t pad) {
  GP_CHECK_GT(stride, 0);
  std::int64_t out = (in + 2 * pad - kernel) / stride + 1;
  GP_CHECK_GT(out, 0) << "window larger than padded input";
  return out;
}

}  // namespace gpuperf::dnn
