#ifndef GPUPERF_DNN_TENSOR_SHAPE_H_
#define GPUPERF_DNN_TENSOR_SHAPE_H_

/**
 * @file
 * Per-image tensor shapes.
 *
 * Shapes are stored batch-agnostic (the batch dimension N is always a
 * separate parameter), because the paper's models treat batch size as a pure
 * multiplier on the amount of work (Observation O3). A CNN feature map is
 * C x H x W; transformer activations reuse the same struct as
 * hidden x seq_len x 1.
 */

#include <cstdint>
#include <string>

namespace gpuperf::dnn {

/** A per-image (batch-agnostic) tensor shape in CHW layout. */
struct TensorShape {
  std::int64_t c = 0;  // channels (or hidden size for transformers)
  std::int64_t h = 0;  // height (or sequence length)
  std::int64_t w = 0;  // width (1 for transformer activations)

  /** Elements per image. */
  std::int64_t Elements() const { return c * h * w; }

  /** Elements for a batch of `n` images (the NCHW product of O5). */
  std::int64_t ElementsForBatch(std::int64_t n) const {
    return n * Elements();
  }

  /** Renders as "CxHxW". */
  std::string ToString() const;

  bool operator==(const TensorShape&) const = default;
};

/** Convenience constructor. */
inline TensorShape Chw(std::int64_t c, std::int64_t h, std::int64_t w) {
  return TensorShape{c, h, w};
}

/** Output spatial size of a convolution/pooling window along one axis. */
std::int64_t ConvOutDim(std::int64_t in, std::int64_t kernel,
                        std::int64_t stride, std::int64_t pad);

}  // namespace gpuperf::dnn

#endif  // GPUPERF_DNN_TENSOR_SHAPE_H_
