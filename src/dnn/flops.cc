#include "dnn/flops.h"

#include "common/logging.h"

namespace gpuperf::dnn {

std::int64_t LayerWeightCount(const Layer& layer) {
  switch (layer.kind) {
    case LayerKind::kConv2d: {
      const ConvParams& p = layer.conv();
      std::int64_t weights =
          p.out_channels * (p.in_channels / p.groups) * p.kernel_h * p.kernel_w;
      return weights + (p.has_bias ? p.out_channels : 0);
    }
    case LayerKind::kLinear: {
      const LinearParams& p = layer.linear();
      return p.in_features * p.out_features +
             (p.has_bias ? p.out_features : 0);
    }
    case LayerKind::kBatchNorm:
    case LayerKind::kLayerNorm:
      // Scale and shift per channel.
      return 2 * layer.output.c;
    case LayerKind::kEmbedding: {
      const EmbeddingParams& p = layer.embedding();
      return p.vocab_size * p.hidden_size;
    }
    default:
      return 0;
  }
}

std::int64_t LayerFlops(const Layer& layer, std::int64_t batch) {
  GP_CHECK_GT(batch, 0);
  switch (layer.kind) {
    case LayerKind::kConv2d: {
      const ConvParams& p = layer.conv();
      // thop convention: multiplications only.
      return batch * p.out_channels * layer.output.h * layer.output.w *
             (p.in_channels / p.groups) * p.kernel_h * p.kernel_w;
    }
    case LayerKind::kLinear: {
      const LinearParams& p = layer.linear();
      // FC can be applied per token (h positions) or on a flat vector.
      std::int64_t positions = layer.inputs[0].h * layer.inputs[0].w;
      return batch * positions * p.in_features * p.out_features;
    }
    case LayerKind::kMatMul: {
      const MatMulParams& p = layer.matmul();
      return batch * p.batch * p.m * p.n * p.k;
    }
    case LayerKind::kMaxPool:
    case LayerKind::kAvgPool: {
      const PoolParams& p = layer.pool();
      return batch * layer.output.Elements() * p.kernel * p.kernel;
    }
    case LayerKind::kGlobalAvgPool:
      return batch * layer.inputs[0].Elements();
    case LayerKind::kBatchNorm:
    case LayerKind::kLayerNorm:
      // Normalize + scale + shift: ~2 ops per element; thop counts 2.
      return batch * 2 * layer.output.Elements();
    case LayerKind::kSoftmax:
      // exp + sum + divide.
      return batch * 3 * layer.output.Elements();
    case LayerKind::kRelu:
    case LayerKind::kRelu6:
    case LayerKind::kSigmoid:
    case LayerKind::kGelu:
    case LayerKind::kAdd:
      return batch * layer.output.Elements();
    case LayerKind::kConcat:
    case LayerKind::kFlatten:
    case LayerKind::kChannelShuffle:
    case LayerKind::kDropout:
    case LayerKind::kEmbedding:
      // Data movement only; thop assigns zero FLOPs.
      return 0;
  }
  GP_CHECK(false) << "unhandled LayerKind";
  return 0;
}

std::int64_t LayerInputBytes(const Layer& layer, std::int64_t batch) {
  return batch * layer.InputElements() * kBytesPerElement;
}

std::int64_t LayerOutputBytes(const Layer& layer, std::int64_t batch) {
  return batch * layer.output.Elements() * kBytesPerElement;
}

std::int64_t LayerWeightBytes(const Layer& layer) {
  return LayerWeightCount(layer) * kBytesPerElement;
}

std::int64_t NetworkFlops(const Network& network, std::int64_t batch) {
  std::int64_t total = 0;
  for (const Layer& layer : network.layers()) {
    total += LayerFlops(layer, batch);
  }
  return total;
}

std::int64_t NetworkWeightBytes(const Network& network) {
  std::int64_t total = 0;
  for (const Layer& layer : network.layers()) {
    total += LayerWeightBytes(layer);
  }
  return total;
}

}  // namespace gpuperf::dnn
