#ifndef GPUPERF_DNN_FUSION_H_
#define GPUPERF_DNN_FUSION_H_

/**
 * @file
 * Inference-time operator fusion.
 *
 * Deployment stacks (TensorRT, torch.compile, the fused cuDNN paths)
 * fold BatchNorm into the preceding convolution's weights and fuse the
 * following activation into the convolution's epilogue, eliminating two
 * memory-bound passes over the activation tensor per block. The paper's
 * related work (nn-Meter) shows such fusion is exactly what breaks naive
 * per-operator latency models — the KW model handles it naturally because
 * the mapping table is learned from traces of the fused executable.
 *
 * The pass rewrites consecutive CONV -> BN [-> ReLU/ReLU6] chains into a
 * single convolution with a fused epilogue. It assumes the flat layer
 * list is a linear chain between consecutive layers, which holds for all
 * builder-generated networks (branch marks are only taken at block
 * boundaries, never between a convolution and its normalization).
 */

#include "dnn/network.h"

namespace gpuperf::dnn {

/** Statistics of one fusion pass. */
struct FusionReport {
  int folded_batchnorms = 0;   // BN layers folded into conv weights
  int fused_activations = 0;   // ReLU/ReLU6 fused into conv epilogues
};

/**
 * Returns `network` with CONV+BN(+activation) chains fused. The fused
 * network keeps the original name; pass `report` to receive statistics.
 */
Network FuseConvBnAct(const Network& network, FusionReport* report = nullptr);

}  // namespace gpuperf::dnn

#endif  // GPUPERF_DNN_FUSION_H_
