#include "dnn/network.h"

#include "common/string_util.h"
#include "dnn/flops.h"

namespace gpuperf::dnn {

std::int64_t Network::ParameterCount() const {
  std::int64_t total = 0;
  for (const Layer& layer : layers_) total += LayerWeightCount(layer);
  return total;
}

std::string Network::Summary() const {
  std::string out = Format("%s (%s), input %s, %ld layers, %s params\n",
                           name_.c_str(), family_.c_str(),
                           input_.ToString().c_str(),
                           static_cast<long>(layers_.size()),
                           Engineering(static_cast<double>(ParameterCount()))
                               .c_str());
  for (const Layer& layer : layers_) {
    out += Format("  %-24s %-14s -> %-14s %10s FLOPs\n", layer.name.c_str(),
                  layer.inputs.empty() ? "-"
                                       : layer.inputs[0].ToString().c_str(),
                  layer.output.ToString().c_str(),
                  Engineering(static_cast<double>(LayerFlops(layer, 1)))
                      .c_str());
  }
  return out;
}

}  // namespace gpuperf::dnn
