#ifndef GPUPERF_DNN_FLOPS_H_
#define GPUPERF_DNN_FLOPS_H_

/**
 * @file
 * Theoretical FLOPs and byte counting — the PyTorch-OpCounter (thop)
 * equivalent the paper uses as the models' independent variable.
 *
 * Convention (paper Section 2.2): only multiplications are counted, so a
 * convolution contributes Cout * H' * W' * Cin/groups * Kh * Kw FLOPs per
 * image. Elementwise/normalization/pooling layers count one operation per
 * output element. All tensors are FP32 (4 bytes) as in the paper's setup.
 */

#include <cstdint>

#include "dnn/layer.h"
#include "dnn/network.h"

namespace gpuperf::dnn {

/** Bytes per element (FP32 everywhere, matching the paper's setup). */
inline constexpr std::int64_t kBytesPerElement = 4;

/** Trainable parameters of one layer (weights + biases). */
std::int64_t LayerWeightCount(const Layer& layer);

/** Theoretical FLOPs of one layer at batch size `batch`. */
std::int64_t LayerFlops(const Layer& layer, std::int64_t batch);

/** Bytes read for activations (all inputs) at batch size `batch`. */
std::int64_t LayerInputBytes(const Layer& layer, std::int64_t batch);

/** Bytes written for the output activation at batch size `batch`. */
std::int64_t LayerOutputBytes(const Layer& layer, std::int64_t batch);

/** Bytes of weights the layer must stream from memory (batch-independent). */
std::int64_t LayerWeightBytes(const Layer& layer);

/** Sum of LayerFlops over the whole network. */
std::int64_t NetworkFlops(const Network& network, std::int64_t batch);

/** Total parameter bytes of the network (case study 2's transfer volume). */
std::int64_t NetworkWeightBytes(const Network& network);

}  // namespace gpuperf::dnn

#endif  // GPUPERF_DNN_FLOPS_H_
