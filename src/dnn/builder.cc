#include "dnn/builder.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace gpuperf::dnn {

NetworkBuilder::NetworkBuilder(std::string name, std::string family,
                               TensorShape input)
    : network_(std::move(name), std::move(family), input), current_(input) {
  GP_CHECK_GT(input.c, 0);
  GP_CHECK_GT(input.h, 0);
  GP_CHECK_GT(input.w, 0);
}

void NetworkBuilder::Append(LayerKind kind, LayerParams params,
                            std::vector<TensorShape> inputs,
                            TensorShape output) {
  GP_CHECK(!built_) << "builder reused after Build()";
  Layer layer;
  layer.kind = kind;
  layer.name = Format("%s_%d", LayerKindName(kind).c_str(), counter_++);
  layer.params = std::move(params);
  layer.inputs = std::move(inputs);
  layer.output = output;
  network_.AppendLayer(std::move(layer));
  current_ = output;
}

NetworkBuilder& NetworkBuilder::Conv(std::int64_t out_channels,
                                     std::int64_t kernel, std::int64_t stride,
                                     std::int64_t pad, std::int64_t groups,
                                     bool bias) {
  GP_CHECK_EQ(current_.c % groups, 0)
      << "channels " << current_.c << " not divisible by groups " << groups;
  GP_CHECK_EQ(out_channels % groups, 0);
  ConvParams p;
  p.in_channels = current_.c;
  p.out_channels = out_channels;
  p.kernel_h = p.kernel_w = kernel;
  p.stride_h = p.stride_w = stride;
  p.pad_h = p.pad_w = pad;
  p.groups = groups;
  p.has_bias = bias;
  TensorShape out = Chw(out_channels, ConvOutDim(current_.h, kernel, stride, pad),
                        ConvOutDim(current_.w, kernel, stride, pad));
  Append(LayerKind::kConv2d, p, {current_}, out);
  return *this;
}

NetworkBuilder& NetworkBuilder::ConvBnRelu(std::int64_t out_channels,
                                           std::int64_t kernel,
                                           std::int64_t stride,
                                           std::int64_t pad,
                                           std::int64_t groups) {
  Conv(out_channels, kernel, stride, pad, groups);
  BatchNorm();
  Relu();
  return *this;
}

NetworkBuilder& NetworkBuilder::BatchNorm() {
  Append(LayerKind::kBatchNorm, NoParams{}, {current_}, current_);
  return *this;
}

NetworkBuilder& NetworkBuilder::LayerNorm() {
  Append(LayerKind::kLayerNorm, NoParams{}, {current_}, current_);
  return *this;
}

NetworkBuilder& NetworkBuilder::Relu() {
  Append(LayerKind::kRelu, NoParams{}, {current_}, current_);
  return *this;
}

NetworkBuilder& NetworkBuilder::Relu6() {
  Append(LayerKind::kRelu6, NoParams{}, {current_}, current_);
  return *this;
}

NetworkBuilder& NetworkBuilder::Gelu() {
  Append(LayerKind::kGelu, NoParams{}, {current_}, current_);
  return *this;
}

NetworkBuilder& NetworkBuilder::Sigmoid() {
  Append(LayerKind::kSigmoid, NoParams{}, {current_}, current_);
  return *this;
}

NetworkBuilder& NetworkBuilder::Softmax() {
  Append(LayerKind::kSoftmax, NoParams{}, {current_}, current_);
  return *this;
}

NetworkBuilder& NetworkBuilder::Dropout() {
  Append(LayerKind::kDropout, NoParams{}, {current_}, current_);
  return *this;
}

NetworkBuilder& NetworkBuilder::MaxPool(std::int64_t kernel,
                                        std::int64_t stride,
                                        std::int64_t pad) {
  PoolParams p{kernel, stride, pad};
  TensorShape out = Chw(current_.c, ConvOutDim(current_.h, kernel, stride, pad),
                        ConvOutDim(current_.w, kernel, stride, pad));
  Append(LayerKind::kMaxPool, p, {current_}, out);
  return *this;
}

NetworkBuilder& NetworkBuilder::AvgPool(std::int64_t kernel,
                                        std::int64_t stride,
                                        std::int64_t pad) {
  PoolParams p{kernel, stride, pad};
  TensorShape out = Chw(current_.c, ConvOutDim(current_.h, kernel, stride, pad),
                        ConvOutDim(current_.w, kernel, stride, pad));
  Append(LayerKind::kAvgPool, p, {current_}, out);
  return *this;
}

NetworkBuilder& NetworkBuilder::GlobalAvgPool() {
  TensorShape out = Chw(current_.c, 1, 1);
  Append(LayerKind::kGlobalAvgPool, NoParams{}, {current_}, out);
  return *this;
}

NetworkBuilder& NetworkBuilder::Flatten() {
  TensorShape out = Chw(current_.Elements(), 1, 1);
  Append(LayerKind::kFlatten, NoParams{}, {current_}, out);
  return *this;
}

NetworkBuilder& NetworkBuilder::Linear(std::int64_t out_features, bool bias) {
  LinearParams p{current_.c, out_features, bias};
  TensorShape out = Chw(out_features, current_.h, current_.w);
  Append(LayerKind::kLinear, p, {current_}, out);
  return *this;
}

NetworkBuilder& NetworkBuilder::Embedding(std::int64_t vocab,
                                          std::int64_t hidden,
                                          std::int64_t seq_len) {
  EmbeddingParams p{vocab, hidden};
  TensorShape out = Chw(hidden, seq_len, 1);
  Append(LayerKind::kEmbedding, p, {current_}, out);
  return *this;
}

NetworkBuilder& NetworkBuilder::MatMul(std::int64_t head_batch, std::int64_t m,
                                       std::int64_t n, std::int64_t k,
                                       TensorShape out) {
  MatMulParams p{head_batch, m, n, k};
  Append(LayerKind::kMatMul, p, {current_}, out);
  return *this;
}

NetworkBuilder& NetworkBuilder::ChannelShuffle(std::int64_t groups) {
  GP_CHECK_EQ(current_.c % groups, 0);
  Append(LayerKind::kChannelShuffle, ChannelShuffleParams{groups}, {current_},
         current_);
  return *this;
}

int NetworkBuilder::Mark() {
  marks_.push_back(current_);
  return static_cast<int>(marks_.size()) - 1;
}

NetworkBuilder& NetworkBuilder::Restore(int mark) {
  current_ = ShapeAt(mark);
  return *this;
}

const TensorShape& NetworkBuilder::ShapeAt(int mark) const {
  GP_CHECK_GE(mark, 0);
  GP_CHECK_LT(static_cast<std::size_t>(mark), marks_.size());
  return marks_[mark];
}

NetworkBuilder& NetworkBuilder::AddFrom(int mark) {
  const TensorShape& other = ShapeAt(mark);
  GP_CHECK(other == current_)
      << "residual add shape mismatch: " << other.ToString() << " vs "
      << current_.ToString();
  Append(LayerKind::kAdd, NoParams{}, {current_, other}, current_);
  return *this;
}

NetworkBuilder& NetworkBuilder::Concat(const std::vector<int>& marks) {
  GP_CHECK_GE(marks.size(), 2u);
  std::vector<TensorShape> inputs;
  std::int64_t channels = 0;
  for (int mark : marks) {
    const TensorShape& shape = ShapeAt(mark);
    GP_CHECK_EQ(shape.h, ShapeAt(marks[0]).h);
    GP_CHECK_EQ(shape.w, ShapeAt(marks[0]).w);
    channels += shape.c;
    inputs.push_back(shape);
  }
  TensorShape out = Chw(channels, inputs[0].h, inputs[0].w);
  Append(LayerKind::kConcat, NoParams{}, std::move(inputs), out);
  return *this;
}

Network NetworkBuilder::Build() {
  GP_CHECK(!built_);
  built_ = true;
  return std::move(network_);
}

}  // namespace gpuperf::dnn
