#ifndef GPUPERF_DNN_BUILDER_H_
#define GPUPERF_DNN_BUILDER_H_

/**
 * @file
 * Fluent construction of shaped networks.
 *
 * The builder tracks the "current" tensor shape and performs shape
 * inference as ops are appended. Branching (residual adds, inception
 * concats) uses marks: `Mark()` snapshots the current shape, `Restore()`
 * rewinds the current shape to a snapshot so a parallel branch can be
 * emitted, and `AddFrom()` / `Concat()` join branches. Layers are appended
 * in call order, which is a valid topological order of the dataflow graph.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/layer.h"
#include "dnn/network.h"
#include "dnn/tensor_shape.h"

namespace gpuperf::dnn {

/** Builds a Network layer by layer with automatic shape inference. */
class NetworkBuilder {
 public:
  NetworkBuilder(std::string name, std::string family, TensorShape input);

  /** Square-kernel 2-D convolution. groups==channels gives depthwise. */
  NetworkBuilder& Conv(std::int64_t out_channels, std::int64_t kernel,
                       std::int64_t stride, std::int64_t pad,
                       std::int64_t groups = 1, bool bias = false);

  /** Convolution followed by BatchNorm and ReLU — the CNN workhorse. */
  NetworkBuilder& ConvBnRelu(std::int64_t out_channels, std::int64_t kernel,
                             std::int64_t stride, std::int64_t pad,
                             std::int64_t groups = 1);

  NetworkBuilder& BatchNorm();
  NetworkBuilder& LayerNorm();
  NetworkBuilder& Relu();
  NetworkBuilder& Relu6();
  NetworkBuilder& Gelu();
  NetworkBuilder& Sigmoid();
  NetworkBuilder& Softmax();
  NetworkBuilder& Dropout();

  NetworkBuilder& MaxPool(std::int64_t kernel, std::int64_t stride,
                          std::int64_t pad);
  NetworkBuilder& AvgPool(std::int64_t kernel, std::int64_t stride,
                          std::int64_t pad);
  NetworkBuilder& GlobalAvgPool();

  /** Collapses CxHxW to a flat (C*H*W)x1x1 vector. */
  NetworkBuilder& Flatten();

  /** Fully connected layer applied per spatial position (1x1 after Flatten,
      per token for transformers). */
  NetworkBuilder& Linear(std::int64_t out_features, bool bias = true);

  /** Token embedding: replaces the current shape with hidden x seq x 1. */
  NetworkBuilder& Embedding(std::int64_t vocab, std::int64_t hidden,
                            std::int64_t seq_len);

  /** Generic batched matmul with an explicit output shape. */
  NetworkBuilder& MatMul(std::int64_t head_batch, std::int64_t m,
                         std::int64_t n, std::int64_t k, TensorShape out);

  NetworkBuilder& ChannelShuffle(std::int64_t groups);

  /** Snapshots the current shape; returns a mark id. */
  int Mark();

  /** Rewinds the current shape to `mark` to emit a parallel branch. */
  NetworkBuilder& Restore(int mark);

  /** Elementwise residual add of the current tensor and `mark`'s tensor. */
  NetworkBuilder& AddFrom(int mark);

  /** Channel concatenation of all `marks` (current shape is replaced). */
  NetworkBuilder& Concat(const std::vector<int>& marks);

  /** Current (per-image) shape. */
  const TensorShape& CurrentShape() const { return current_; }

  /** Shape snapshotted at `mark`. */
  const TensorShape& ShapeAt(int mark) const;

  /** Finalizes and returns the network. The builder must not be reused. */
  Network Build();

 private:
  /** Appends a layer with auto-generated name and advances the shape. */
  void Append(LayerKind kind, LayerParams params,
              std::vector<TensorShape> inputs, TensorShape output);

  Network network_;
  TensorShape current_;
  std::vector<TensorShape> marks_;
  int counter_ = 0;
  bool built_ = false;
};

}  // namespace gpuperf::dnn

#endif  // GPUPERF_DNN_BUILDER_H_
