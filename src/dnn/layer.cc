#include "dnn/layer.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace gpuperf::dnn {

std::string LayerKindName(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv2d: return "CONV";
    case LayerKind::kLinear: return "FC";
    case LayerKind::kBatchNorm: return "BN";
    case LayerKind::kLayerNorm: return "LN";
    case LayerKind::kRelu: return "ReLU";
    case LayerKind::kRelu6: return "ReLU6";
    case LayerKind::kGelu: return "GELU";
    case LayerKind::kSigmoid: return "Sigmoid";
    case LayerKind::kAdd: return "Add";
    case LayerKind::kConcat: return "Concat";
    case LayerKind::kMaxPool: return "MaxPool";
    case LayerKind::kAvgPool: return "AvgPool";
    case LayerKind::kGlobalAvgPool: return "GlobalAvgPool";
    case LayerKind::kSoftmax: return "Softmax";
    case LayerKind::kFlatten: return "Flatten";
    case LayerKind::kEmbedding: return "Embedding";
    case LayerKind::kMatMul: return "MatMul";
    case LayerKind::kChannelShuffle: return "ChannelShuffle";
    case LayerKind::kDropout: return "Dropout";
  }
  GP_CHECK(false) << "unhandled LayerKind";
  return "";
}

bool TryLayerKindFromName(const std::string& name, LayerKind* kind) {
  static const std::pair<const char*, LayerKind> kTable[] = {
      {"CONV", LayerKind::kConv2d},
      {"FC", LayerKind::kLinear},
      {"BN", LayerKind::kBatchNorm},
      {"LN", LayerKind::kLayerNorm},
      {"ReLU", LayerKind::kRelu},
      {"ReLU6", LayerKind::kRelu6},
      {"GELU", LayerKind::kGelu},
      {"Sigmoid", LayerKind::kSigmoid},
      {"Add", LayerKind::kAdd},
      {"Concat", LayerKind::kConcat},
      {"MaxPool", LayerKind::kMaxPool},
      {"AvgPool", LayerKind::kAvgPool},
      {"GlobalAvgPool", LayerKind::kGlobalAvgPool},
      {"Softmax", LayerKind::kSoftmax},
      {"Flatten", LayerKind::kFlatten},
      {"Embedding", LayerKind::kEmbedding},
      {"MatMul", LayerKind::kMatMul},
      {"ChannelShuffle", LayerKind::kChannelShuffle},
      {"Dropout", LayerKind::kDropout},
  };
  for (const auto& [text, table_kind] : kTable) {
    if (name == text) {
      *kind = table_kind;
      return true;
    }
  }
  return false;
}

std::int64_t Layer::InputElements() const {
  std::int64_t total = 0;
  for (const TensorShape& shape : inputs) total += shape.Elements();
  return total;
}

const ConvParams& Layer::conv() const {
  GP_CHECK(std::holds_alternative<ConvParams>(params)) << name;
  return std::get<ConvParams>(params);
}

const LinearParams& Layer::linear() const {
  GP_CHECK(std::holds_alternative<LinearParams>(params)) << name;
  return std::get<LinearParams>(params);
}

const PoolParams& Layer::pool() const {
  GP_CHECK(std::holds_alternative<PoolParams>(params)) << name;
  return std::get<PoolParams>(params);
}

const EmbeddingParams& Layer::embedding() const {
  GP_CHECK(std::holds_alternative<EmbeddingParams>(params)) << name;
  return std::get<EmbeddingParams>(params);
}

const MatMulParams& Layer::matmul() const {
  GP_CHECK(std::holds_alternative<MatMulParams>(params)) << name;
  return std::get<MatMulParams>(params);
}

const ChannelShuffleParams& Layer::shuffle() const {
  GP_CHECK(std::holds_alternative<ChannelShuffleParams>(params)) << name;
  return std::get<ChannelShuffleParams>(params);
}

std::string LayerSignature(const Layer& layer) {
  std::string sig = LayerKindName(layer.kind);
  for (const TensorShape& in : layer.inputs) sig += "/i" + in.ToString();
  sig += "/o" + layer.output.ToString();
  switch (layer.kind) {
    case LayerKind::kConv2d: {
      const ConvParams& p = layer.conv();
      sig += Format("/k%ldx%ld/s%ldx%ld/p%ldx%ld/g%ld",
                    static_cast<long>(p.kernel_h),
                    static_cast<long>(p.kernel_w),
                    static_cast<long>(p.stride_h),
                    static_cast<long>(p.stride_w),
                    static_cast<long>(p.pad_h), static_cast<long>(p.pad_w),
                    static_cast<long>(p.groups));
      if (p.epilogue == ConvEpilogue::kBias) sig += "/ebias";
      if (p.epilogue == ConvEpilogue::kRelu) sig += "/erelu";
      if (p.epilogue == ConvEpilogue::kRelu6) sig += "/erelu6";
      break;
    }
    case LayerKind::kMaxPool:
    case LayerKind::kAvgPool: {
      const PoolParams& p = layer.pool();
      sig += Format("/k%ld/s%ld/p%ld", static_cast<long>(p.kernel),
                    static_cast<long>(p.stride), static_cast<long>(p.pad));
      break;
    }
    case LayerKind::kMatMul: {
      const MatMulParams& p = layer.matmul();
      sig += Format("/b%ld/m%ld/n%ld/k%ld", static_cast<long>(p.batch),
                    static_cast<long>(p.m), static_cast<long>(p.n),
                    static_cast<long>(p.k));
      break;
    }
    default:
      break;
  }
  return sig;
}

}  // namespace gpuperf::dnn
