#include "dnn/fusion.h"

#include "common/logging.h"

namespace gpuperf::dnn {

Network FuseConvBnAct(const Network& network, FusionReport* report) {
  FusionReport local;
  Network fused(network.name(), network.family(), network.input());
  const std::vector<Layer>& layers = network.layers();

  for (std::size_t i = 0; i < layers.size(); ++i) {
    Layer layer = layers[i];
    if (layer.kind == LayerKind::kConv2d) {
      ConvParams params = layer.conv();
      std::size_t next = i + 1;
      // Fold a BatchNorm that directly consumes the convolution output.
      if (next < layers.size() &&
          layers[next].kind == LayerKind::kBatchNorm &&
          layers[next].inputs.size() == 1 &&
          layers[next].inputs[0] == layer.output) {
        params.has_bias = true;  // the folded shift becomes a bias
        ++local.folded_batchnorms;
        ++next;
      }
      // Fuse a following activation into the epilogue (only when a BN was
      // folded or the conv already carries a bias epilogue path).
      if (next > i + 1 && next < layers.size() &&
          layers[next].inputs.size() == 1 &&
          layers[next].inputs[0] == layer.output) {
        if (layers[next].kind == LayerKind::kRelu) {
          params.epilogue = ConvEpilogue::kRelu;
          ++local.fused_activations;
          ++next;
        } else if (layers[next].kind == LayerKind::kRelu6) {
          params.epilogue = ConvEpilogue::kRelu6;
          ++local.fused_activations;
          ++next;
        }
      }
      if (next > i + 1 && params.epilogue == ConvEpilogue::kNone) {
        // BN folded without an activation: the folded scale/shift still
        // rides the main kernel's epilogue (no separate bias pass).
        params.epilogue = ConvEpilogue::kBias;
      }
      layer.params = params;
      fused.AppendLayer(std::move(layer));
      i = next - 1;
      continue;
    }
    fused.AppendLayer(std::move(layer));
  }

  if (report != nullptr) *report = local;
  return fused;
}

}  // namespace gpuperf::dnn
