#ifndef GPUPERF_DNN_NETWORK_H_
#define GPUPERF_DNN_NETWORK_H_

/**
 * @file
 * A network is the unit the predictor consumes: an ordered list of layers
 * with resolved shapes.
 *
 * Execution order is a topological serialization of the dataflow graph,
 * which matches how PyTorch launches work on a single CUDA stream; the
 * branch structure only matters for shape inference, which NetworkBuilder
 * resolves while constructing the list.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/layer.h"
#include "dnn/tensor_shape.h"

namespace gpuperf::dnn {

/** A fully shaped DNN ready for lowering, profiling, and prediction. */
class Network {
 public:
  Network(std::string name, std::string family, TensorShape input)
      : name_(std::move(name)), family_(std::move(family)), input_(input) {}

  /** Unique model name, e.g. "resnet50". */
  const std::string& name() const { return name_; }

  /** Model family, e.g. "ResNet" — used to color Figure 4's series. */
  const std::string& family() const { return family_; }

  /** Per-image input shape (e.g. 3x224x224). */
  const TensorShape& input() const { return input_; }

  /** Execution-ordered layers. */
  const std::vector<Layer>& layers() const { return layers_; }

  /** Appends a layer (used by NetworkBuilder). */
  void AppendLayer(Layer layer) { layers_.push_back(std::move(layer)); }

  /** Number of trainable parameters (weights + biases). */
  std::int64_t ParameterCount() const;

  /** Renders a layer-by-layer summary for debugging and examples. */
  std::string Summary() const;

 private:
  std::string name_;
  std::string family_;
  TensorShape input_;
  std::vector<Layer> layers_;
};

}  // namespace gpuperf::dnn

#endif  // GPUPERF_DNN_NETWORK_H_
