#ifndef GPUPERF_DNN_LAYER_H_
#define GPUPERF_DNN_LAYER_H_

/**
 * @file
 * The layer taxonomy.
 *
 * These are the building blocks the paper's Section 2 enumerates (CONV,
 * Pooling, activation, NORM, FC) plus the pieces needed for the model-zoo
 * families it samples (residual adds, DenseNet concats, depthwise
 * convolutions, channel shuffle) and the transformer extension of
 * Section 5.4 (embedding, layer norm, batched matmul, softmax, GELU).
 */

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dnn/tensor_shape.h"

namespace gpuperf::dnn {

/** Kinds of layers the framework can represent. */
enum class LayerKind {
  kConv2d,
  kLinear,
  kBatchNorm,
  kLayerNorm,
  kRelu,
  kRelu6,
  kGelu,
  kSigmoid,
  kAdd,
  kConcat,
  kMaxPool,
  kAvgPool,
  kGlobalAvgPool,
  kSoftmax,
  kFlatten,
  kEmbedding,
  kMatMul,
  kChannelShuffle,
  kDropout,
};

/** Human-readable layer-kind name, e.g. "CONV", "FC", "BN". */
std::string LayerKindName(LayerKind kind);

/**
 * Parses LayerKindName output back to the enum: stores the kind and
 * returns true, or returns false on unknown text. Safe for untrusted
 * files — callers own the error path.
 */
bool TryLayerKindFromName(const std::string& name, LayerKind* kind);

/** Activation fused into a convolution's epilogue (inference fusion). */
enum class ConvEpilogue { kNone, kBias, kRelu, kRelu6 };

/** Parameters of a 2-D convolution; groups==in_channels is depthwise. */
struct ConvParams {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;
  std::int64_t stride_h = 1;
  std::int64_t stride_w = 1;
  std::int64_t pad_h = 0;
  std::int64_t pad_w = 0;
  std::int64_t groups = 1;
  bool has_bias = false;
  ConvEpilogue epilogue = ConvEpilogue::kNone;  // set by the fusion pass

  bool IsDepthwise() const {
    return groups == in_channels && groups == out_channels;
  }
};

/** Parameters of a fully connected layer. */
struct LinearParams {
  std::int64_t in_features = 0;
  std::int64_t out_features = 0;
  bool has_bias = true;
};

/** Parameters of a (non-global) pooling window. */
struct PoolParams {
  std::int64_t kernel = 0;
  std::int64_t stride = 0;
  std::int64_t pad = 0;
};

/** Parameters of an embedding lookup. */
struct EmbeddingParams {
  std::int64_t vocab_size = 0;
  std::int64_t hidden_size = 0;
};

/**
 * Parameters of a generic batched matrix multiply (per image):
 * `batch` independent [m x k] * [k x n] products.
 */
struct MatMulParams {
  std::int64_t batch = 1;
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t k = 0;
};

/** Parameters of a ShuffleNet channel shuffle. */
struct ChannelShuffleParams {
  std::int64_t groups = 1;
};

/** Empty parameter block for layers fully described by their shapes. */
struct NoParams {};

using LayerParams =
    std::variant<NoParams, ConvParams, LinearParams, PoolParams,
                 EmbeddingParams, MatMulParams, ChannelShuffleParams>;

/**
 * One layer instance inside a network.
 *
 * Shapes are per-image (batch-agnostic); `inputs` has one entry per
 * incoming tensor (two for Add, several for Concat).
 */
struct Layer {
  LayerKind kind = LayerKind::kRelu;
  std::string name;
  LayerParams params;
  std::vector<TensorShape> inputs;
  TensorShape output;

  /** Total per-image input elements across all incoming tensors. */
  std::int64_t InputElements() const;

  /** Typed parameter access; CHECKs the variant holds the right type. */
  const ConvParams& conv() const;
  const LinearParams& linear() const;
  const PoolParams& pool() const;
  const EmbeddingParams& embedding() const;
  const MatMulParams& matmul() const;
  const ChannelShuffleParams& shuffle() const;
};

/**
 * Compact textual signature of a layer's configuration, used as the key of
 * the learned layer-to-kernel mapping table (Section 5.4): two layers with
 * the same signature launch the same kernel list.
 */
std::string LayerSignature(const Layer& layer);

}  // namespace gpuperf::dnn

#endif  // GPUPERF_DNN_LAYER_H_
