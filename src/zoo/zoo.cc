#include "zoo/zoo.h"

#include <map>
#include <set>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "dnn/builder.h"
#include "zoo/classic.h"
#include "zoo/densenet.h"
#include "zoo/mobilenet.h"
#include "zoo/resnet.h"
#include "zoo/shufflenet.h"
#include "zoo/transformer.h"
#include "zoo/vgg.h"

namespace gpuperf::zoo {

using dnn::Chw;
using dnn::Network;
using dnn::NetworkBuilder;

namespace {

/** Parses a positive integer suffix, e.g. ("resnet50", "resnet") -> 50. */
bool ParseIntSuffix(const std::string& name, const std::string& prefix,
                    int* value) {
  if (!StartsWith(name, prefix)) return false;
  const std::string digits = name.substr(prefix.size());
  if (digits.empty()) return false;
  int parsed = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    parsed = parsed * 10 + (c - '0');
  }
  *value = parsed;
  return true;
}

/**
 * Deterministically samples a structurally diverse plain/residual CNN,
 * standing in for the long tail of community models in the paper's zoo.
 */
Network BuildMixNet(int index) {
  Rng rng(HashCombine(0x6d69786eULL /* "mixn" */, index));
  const std::int64_t resolutions[] = {160, 192, 224, 256};
  std::int64_t resolution = resolutions[rng.NextBelow(4)];
  std::int64_t width = 32 + 8 * static_cast<std::int64_t>(rng.NextBelow(9));
  int num_stages = 3 + static_cast<int>(rng.NextBelow(3));
  int style = static_cast<int>(rng.NextBelow(4));

  NetworkBuilder b(Format("mixnet-%03d", index), "MixNet",
                   Chw(3, resolution, resolution));
  b.Conv(width, 3, 2, 1).BatchNorm().Relu();
  for (int stage = 0; stage < num_stages; ++stage) {
    int blocks = 1 + static_cast<int>(rng.NextBelow(5));
    for (int block = 0; block < blocks; ++block) {
      std::int64_t stride = (block == 0 && stage > 0) ? 2 : 1;
      switch (style) {
        case 0:  // plain VGG-ish stack
          b.Conv(width, 3, stride, 1).BatchNorm().Relu();
          break;
        case 1: {  // residual basic block
          int in = b.Mark();
          b.Conv(width, 3, stride, 1).BatchNorm().Relu();
          b.Conv(width, 3, 1, 1).BatchNorm();
          int out = b.Mark();
          if (stride != 1 || b.ShapeAt(in).c != width) {
            b.Restore(in).Conv(width, 1, stride, 0).BatchNorm();
          } else {
            b.Restore(in);
          }
          b.AddFrom(out).Relu();
          break;
        }
        case 2: {  // depthwise separable
          std::int64_t c = b.CurrentShape().c;
          b.Conv(c, 3, stride, 1, /*groups=*/c).BatchNorm().Relu6();
          b.Conv(width, 1, 1, 0).BatchNorm().Relu6();
          break;
        }
        default: {  // bottleneck
          int in = b.Mark();
          b.Conv(width / 2, 1, 1, 0).BatchNorm().Relu();
          b.Conv(width / 2, 3, stride, 1).BatchNorm().Relu();
          b.Conv(width, 1, 1, 0).BatchNorm();
          int out = b.Mark();
          if (stride != 1 || b.ShapeAt(in).c != width) {
            b.Restore(in).Conv(width, 1, stride, 0).BatchNorm();
          } else {
            b.Restore(in);
          }
          b.AddFrom(out).Relu();
          break;
        }
      }
    }
    width = std::min<std::int64_t>(width * 2, 1024);
  }
  b.GlobalAvgPool().Flatten().Linear(1000);
  return b.Build();
}

/** Basic-block ResNet with a custom block count (depth = 2*blocks + 2). */
Network BuildBasicResNetWithBlocks(int total_blocks) {
  std::vector<int> stage_blocks(4, 1);
  int assigned = 4;
  int stage = 0;
  while (assigned < total_blocks) {
    ++stage_blocks[stage];
    ++assigned;
    stage = (stage + 1) % 4;
  }
  ResNetConfig config;
  config.name = Format("resnet%d-basic", 2 * total_blocks + 2);
  config.bottleneck = false;
  config.stage_blocks = stage_blocks;
  return BuildResNet(config);
}

}  // namespace

StatusOr<Network> TryBuildByName(const std::string& name) {
  int depth = 0;
  if (name == "alexnet") return BuildAlexNet();
  if (name == "googlenet") return BuildGoogLeNet();
  if (name == "squeezenet1_0") return BuildSqueezeNet(0);
  if (name == "squeezenet1_1") return BuildSqueezeNet(1);
  if (name == "mobilenet_v2") return BuildMobileNetV2({});
  if (name == "shufflenet_v1") return BuildShuffleNetV1({});
  if (StartsWith(name, "bert_") || name == "distilbert") {
    // Preset list mirrors BuildStandardTransformer, which Fatals on an
    // unknown preset (its callers pass literals).
    static const std::set<std::string>* const kBertPresets =
        new std::set<std::string>{"bert_tiny", "bert_mini",  "bert_small",
                                  "bert_medium", "bert_base", "bert_large",
                                  "distilbert"};
    if (kBertPresets->count(name) == 0) {
      return NotFoundError("unknown transformer preset '" + name +
                           "' (try bert_tiny/mini/small/medium/base/large "
                           "or distilbert)");
    }
    return BuildStandardTransformer(name);
  }
  if (StartsWith(name, "gpt2")) {
    if (name != "gpt2" && name != "gpt2_medium" && name != "gpt2_large") {
      return NotFoundError("unknown GPT-2 preset '" + name +
                           "' (try gpt2, gpt2_medium, gpt2_large)");
    }
    return BuildGpt2(name);
  }
  if (name == "resnext50_32x4d") return BuildResNeXt(50);
  if (name == "resnext101_32x8d") return BuildResNeXt(101, 32, 8);
  if (name == "wide_resnet50_2") return BuildWideResNet(50);
  if (name == "wide_resnet101_2") return BuildWideResNet(101);
  if (ParseIntSuffix(name, "resnet", &depth)) {
    if (depth == 18 || depth == 34 || depth == 50 || depth == 101 ||
        depth == 152) {
      return BuildStandardResNet(depth);
    }
    if ((depth - 2) % 3 == 0 && depth >= 14) {
      return BuildResNetWithBlocks((depth - 2) / 3);
    }
    return NotFoundError("cannot construct " + name +
                         ": depth must be 3*blocks+2 (>= 14) or a standard "
                         "depth (18/34/50/101/152)");
  }
  if (ParseIntSuffix(name, "densenet", &depth)) {
    if (depth != 121 && depth != 161 && depth != 169 && depth != 201) {
      return NotFoundError(Format(
          "no standard DenseNet of depth %d (try 121/161/169/201)", depth));
    }
    return BuildStandardDenseNet(depth);
  }
  const auto vgg_depth_ok = [](int d) {
    return d == 11 || d == 13 || d == 16 || d == 19;
  };
  if (ParseIntSuffix(name, "vgg", &depth)) {
    if (!vgg_depth_ok(depth)) {
      return NotFoundError(
          Format("no standard VGG of depth %d (try 11/13/16/19)", depth));
    }
    return BuildStandardVgg(depth, /*batch_norm=*/false);
  }
  if (name.size() > 3 && name.substr(name.size() - 3) == "_bn") {
    if (ParseIntSuffix(name.substr(0, name.size() - 3), "vgg", &depth)) {
      if (!vgg_depth_ok(depth)) {
        return NotFoundError(
            Format("no standard VGG of depth %d (try 11/13/16/19)", depth));
      }
      return BuildStandardVgg(depth, /*batch_norm=*/true);
    }
  }
  // Fall back to the zoo registry for sweep-variant names such as
  // "vgg-c18-w96" or "mixnet-042".
  static const std::map<std::string, Network>* const kRegistry = [] {
    auto* registry = new std::map<std::string, Network>;
    for (Network& net : ImageClassificationZoo()) {
      registry->emplace(net.name(), std::move(net));
    }
    for (Network& net : TransformerZoo()) {
      registry->emplace(net.name(), std::move(net));
    }
    return registry;
  }();
  auto it = kRegistry->find(name);
  if (it != kRegistry->end()) return it->second;
  return NotFoundError("unknown network name '" + name +
                       "' (run `gpuperf zoo` for the full list)");
}

Network BuildByName(const std::string& name) {
  StatusOr<Network> net = TryBuildByName(name);
  if (!net.ok()) Fatal(net.status().message());
  return std::move(net).value();
}

std::vector<Network> ImageClassificationZoo() {
  std::vector<Network> networks;
  std::set<std::string> seen;
  auto add = [&](Network net) {
    if (seen.insert(net.name()).second) {
      networks.push_back(std::move(net));
    }
  };

  // Standard torchvision models.
  for (int depth : {18, 34, 50, 101, 152}) add(BuildStandardResNet(depth));
  for (int depth : {11, 13, 16, 19}) {
    add(BuildStandardVgg(depth, true));
    add(BuildStandardVgg(depth, false));
  }
  for (int depth : {121, 161, 169, 201}) add(BuildStandardDenseNet(depth));
  add(BuildResNeXt(50));
  add(BuildResNeXt(101, 32, 8));
  add(BuildWideResNet(50));
  add(BuildWideResNet(101));
  add(BuildAlexNet());
  add(BuildGoogLeNet());
  add(BuildSqueezeNet(0));
  add(BuildSqueezeNet(1));
  add(BuildMobileNetV2({}));
  add(BuildShuffleNetV1({}));

  // Bottleneck ResNet depth x width sweep (Figure 4's "non-standard
  // ResNet" family).
  for (int blocks = 4; blocks <= 43; ++blocks) {
    for (std::int64_t width : {32, 48, 64, 96}) {
      add(BuildResNetWithBlocks(blocks, width));
    }
  }
  // ResNet resolution variants.
  for (int blocks : {8, 16, 24, 32, 40}) {
    for (std::int64_t resolution : {160, 192, 256}) {
      add(BuildResNetWithBlocks(blocks, 64, resolution));
    }
  }
  // Basic-block ResNets.
  for (int blocks = 4; blocks <= 25; ++blocks) {
    add(BuildBasicResNetWithBlocks(blocks));
  }
  // VGG conv-count x width sweep (Figure 4's "non-standard VGG" family).
  for (int convs = 6; convs <= 30; ++convs) {
    for (std::int64_t width : {48, 64, 96}) {
      add(BuildVggWithConvs(convs, width));
    }
  }
  for (int convs : {8, 11, 13, 16, 19, 24}) {
    for (std::int64_t resolution : {160, 192, 256}) {
      add(BuildVggWithConvs(convs, 64, resolution));
    }
  }
  // DenseNet growth x depth sweep.
  {
    const std::vector<std::vector<int>> block_configs = {
        {2, 4, 8, 6},   {3, 6, 12, 8},  {4, 8, 16, 12},
        {6, 12, 24, 16}, {6, 12, 32, 32}, {6, 12, 48, 32},
    };
    for (std::int64_t growth : {12, 16, 24, 32, 40, 48}) {
      for (std::size_t cfg = 0; cfg < block_configs.size(); ++cfg) {
        DenseNetConfig config;
        config.name = Format("densenet-g%ld-c%zu",
                             static_cast<long>(growth), cfg);
        config.block_layers = block_configs[cfg];
        config.growth_rate = growth;
        add(BuildDenseNet(config));
      }
    }
  }
  // MobileNetV2 width x resolution sweep.
  for (double width : {0.5, 0.75, 1.0, 1.25, 1.4}) {
    for (std::int64_t resolution : {160, 192, 224, 256}) {
      MobileNetV2Config config;
      config.name = Format("mobilenet_v2-%03d-r%ld",
                           static_cast<int>(width * 100),
                           static_cast<long>(resolution));
      config.width_mult = width;
      config.input_resolution = resolution;
      add(BuildMobileNetV2(config));
    }
  }
  // ShuffleNet v1 groups x scale sweep.
  for (std::int64_t groups : {1, 2, 3, 4, 8}) {
    for (double scale : {0.75, 1.0, 1.5, 2.0}) {
      ShuffleNetV1Config config;
      config.name = Format("shufflenet_v1-g%ld-s%03d",
                           static_cast<long>(groups),
                           static_cast<int>(scale * 100));
      config.groups = groups;
      config.scale = scale;
      add(BuildShuffleNetV1(config));
    }
  }
  // Top up with deterministic mixnets to the paper's 646.
  int mix_index = 0;
  while (networks.size() < static_cast<std::size_t>(kImageZooSize)) {
    add(BuildMixNet(mix_index++));
  }
  GP_CHECK_EQ(networks.size(), static_cast<std::size_t>(kImageZooSize));
  return networks;
}

std::vector<Network> SmallZoo(int stride) {
  GP_CHECK_GT(stride, 0);
  std::vector<Network> all = ImageClassificationZoo();
  std::vector<Network> subset;
  for (std::size_t i = 0; i < all.size(); i += stride) {
    subset.push_back(std::move(all[i]));
  }
  return subset;
}

std::vector<Network> TransformerZoo() {
  std::vector<Network> networks;
  for (const char* preset :
       {"bert_tiny", "bert_mini", "bert_small", "bert_medium", "bert_base",
        "bert_large", "distilbert"}) {
    for (std::int64_t seq_len : {64, 96, 128, 192, 256}) {
      networks.push_back(BuildStandardTransformer(preset, seq_len));
    }
  }
  return networks;
}

}  // namespace gpuperf::zoo
