#include "zoo/densenet.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "dnn/builder.h"

namespace gpuperf::zoo {

using dnn::Chw;
using dnn::Network;
using dnn::NetworkBuilder;

namespace {

/** Dense layer: BN-ReLU-1x1(4g)-BN-ReLU-3x3(g), concatenated with input. */
void DenseLayer(NetworkBuilder& b, std::int64_t growth_rate) {
  int layer_in = b.Mark();
  b.BatchNorm().Relu();
  b.Conv(4 * growth_rate, 1, 1, 0);
  b.BatchNorm().Relu();
  b.Conv(growth_rate, 3, 1, 1);
  int layer_out = b.Mark();
  b.Concat({layer_in, layer_out});
}

/** Transition: BN-ReLU-1x1(C/2)-AvgPool2. */
void Transition(NetworkBuilder& b) {
  b.BatchNorm().Relu();
  b.Conv(b.CurrentShape().c / 2, 1, 1, 0);
  b.AvgPool(2, 2, 0);
}

}  // namespace

Network BuildDenseNet(const DenseNetConfig& config) {
  GP_CHECK_EQ(config.block_layers.size(), 4u);
  NetworkBuilder b(config.name, "DenseNet",
                   Chw(3, config.input_resolution, config.input_resolution));
  b.Conv(config.init_features, 7, 2, 3).BatchNorm().Relu();
  b.MaxPool(3, 2, 1);
  for (std::size_t block = 0; block < config.block_layers.size(); ++block) {
    for (int layer = 0; layer < config.block_layers[block]; ++layer) {
      DenseLayer(b, config.growth_rate);
    }
    if (block + 1 < config.block_layers.size()) Transition(b);
  }
  b.BatchNorm().Relu();
  b.GlobalAvgPool().Flatten().Linear(config.num_classes);
  return b.Build();
}

Network BuildStandardDenseNet(int depth) {
  DenseNetConfig config;
  config.name = Format("densenet%d", depth);
  switch (depth) {
    case 121: config.block_layers = {6, 12, 24, 16}; break;
    case 161:
      config.block_layers = {6, 12, 36, 24};
      config.growth_rate = 48;
      config.init_features = 96;
      break;
    case 169: config.block_layers = {6, 12, 32, 32}; break;
    case 201: config.block_layers = {6, 12, 48, 32}; break;
    default: Fatal(Format("no standard DenseNet of depth %d", depth));
  }
  return BuildDenseNet(config);
}

}  // namespace gpuperf::zoo
