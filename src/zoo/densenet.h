#ifndef GPUPERF_ZOO_DENSENET_H_
#define GPUPERF_ZOO_DENSENET_H_

/**
 * @file
 * DenseNet builders (Huang et al., CVPR'17). DenseNet-121/161/169/201 are
 * used by the paper's case studies 1-3.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/network.h"

namespace gpuperf::zoo {

/** Configuration of a DenseNet. */
struct DenseNetConfig {
  std::string name;
  std::vector<int> block_layers;     // dense layers per block (4 blocks)
  std::int64_t growth_rate = 32;
  std::int64_t init_features = 64;   // stem output channels
  std::int64_t input_resolution = 224;
  std::int64_t num_classes = 1000;
};

/** Builds a DenseNet from an explicit configuration. */
dnn::Network BuildDenseNet(const DenseNetConfig& config);

/** Standard torchvision variants: depth in {121, 161, 169, 201}. */
dnn::Network BuildStandardDenseNet(int depth);

}  // namespace gpuperf::zoo

#endif  // GPUPERF_ZOO_DENSENET_H_
