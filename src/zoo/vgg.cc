#include "zoo/vgg.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "dnn/builder.h"

namespace gpuperf::zoo {

using dnn::Chw;
using dnn::Network;
using dnn::NetworkBuilder;

Network BuildVgg(const VggConfig& config) {
  GP_CHECK_EQ(config.stage_convs.size(), 5u);
  NetworkBuilder b(config.name, "VGG",
                   Chw(3, config.input_resolution, config.input_resolution));
  for (int stage = 0; stage < 5; ++stage) {
    std::int64_t width = std::min<std::int64_t>(config.base_width << stage,
                                                config.base_width * 8);
    for (int conv = 0; conv < config.stage_convs[stage]; ++conv) {
      b.Conv(width, 3, 1, 1, /*groups=*/1, /*bias=*/!config.batch_norm);
      if (config.batch_norm) b.BatchNorm();
      b.Relu();
    }
    b.MaxPool(2, 2, 0);
  }
  // Classifier head (4096-4096-classes as in torchvision).
  b.Flatten();
  b.Linear(4096).Relu().Dropout();
  b.Linear(4096).Relu().Dropout();
  b.Linear(config.num_classes);
  return b.Build();
}

Network BuildStandardVgg(int depth, bool batch_norm) {
  VggConfig config;
  config.name = Format("vgg%d%s", depth, batch_norm ? "_bn" : "");
  config.batch_norm = batch_norm;
  switch (depth) {
    case 11: config.stage_convs = {1, 1, 2, 2, 2}; break;
    case 13: config.stage_convs = {2, 2, 2, 2, 2}; break;
    case 16: config.stage_convs = {2, 2, 3, 3, 3}; break;
    case 19: config.stage_convs = {2, 2, 4, 4, 4}; break;
    default: Fatal(Format("no standard VGG of depth %d", depth));
  }
  return BuildVgg(config);
}

Network BuildVggWithConvs(int total_convs, std::int64_t base_width,
                          std::int64_t input_resolution) {
  GP_CHECK_GE(total_convs, 5);
  // Fill stages round-robin from the deepest (cheap) stages first, the same
  // direction VGG-16 -> VGG-19 grows.
  std::vector<int> stage_convs(5, 1);
  int assigned = 5;
  int stage = 4;
  while (assigned < total_convs) {
    ++stage_convs[stage];
    ++assigned;
    stage = (stage + 4) % 5;  // 4, 3, 2, 1, 0, 4, ...
  }
  VggConfig config;
  config.name = Format("vgg-c%d", total_convs);
  if (base_width != 64) {
    config.name += Format("-w%ld", static_cast<long>(base_width));
  }
  if (input_resolution != 224) {
    config.name += Format("-r%ld", static_cast<long>(input_resolution));
  }
  config.stage_convs = stage_convs;
  config.base_width = base_width;
  config.input_resolution = input_resolution;
  return BuildVgg(config);
}

}  // namespace gpuperf::zoo
