#include "zoo/classic.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "dnn/builder.h"

namespace gpuperf::zoo {

using dnn::Chw;
using dnn::Network;
using dnn::NetworkBuilder;

Network BuildAlexNet(std::int64_t num_classes) {
  NetworkBuilder b("alexnet", "AlexNet", Chw(3, 224, 224));
  b.Conv(64, 11, 4, 2, 1, /*bias=*/true).Relu().MaxPool(3, 2, 0);
  b.Conv(192, 5, 1, 2, 1, true).Relu().MaxPool(3, 2, 0);
  b.Conv(384, 3, 1, 1, 1, true).Relu();
  b.Conv(256, 3, 1, 1, 1, true).Relu();
  b.Conv(256, 3, 1, 1, 1, true).Relu().MaxPool(3, 2, 0);
  b.Flatten();
  b.Dropout().Linear(4096).Relu();
  b.Dropout().Linear(4096).Relu();
  b.Linear(num_classes);
  return b.Build();
}

namespace {

/** SqueezeNet fire module: squeeze 1x1, then parallel expand 1x1 and 3x3. */
void FireModule(dnn::NetworkBuilder& b, std::int64_t squeeze,
                std::int64_t expand) {
  b.Conv(squeeze, 1, 1, 0, 1, true).Relu();
  int squeezed = b.Mark();
  b.Conv(expand, 1, 1, 0, 1, true).Relu();
  int e1 = b.Mark();
  b.Restore(squeezed);
  b.Conv(expand, 3, 1, 1, 1, true).Relu();
  int e3 = b.Mark();
  b.Concat({e1, e3});
}

}  // namespace

Network BuildSqueezeNet(int version, std::int64_t num_classes) {
  GP_CHECK(version == 0 || version == 1);
  NetworkBuilder b(Format("squeezenet1_%d", version), "SqueezeNet",
                   Chw(3, 224, 224));
  if (version == 0) {
    b.Conv(96, 7, 2, 0, 1, true).Relu().MaxPool(3, 2, 0);
    FireModule(b, 16, 64);
    FireModule(b, 16, 64);
    FireModule(b, 32, 128);
    b.MaxPool(3, 2, 0);
    FireModule(b, 32, 128);
    FireModule(b, 48, 192);
    FireModule(b, 48, 192);
    FireModule(b, 64, 256);
    b.MaxPool(3, 2, 0);
    FireModule(b, 64, 256);
  } else {
    b.Conv(64, 3, 2, 0, 1, true).Relu().MaxPool(3, 2, 0);
    FireModule(b, 16, 64);
    FireModule(b, 16, 64);
    b.MaxPool(3, 2, 0);
    FireModule(b, 32, 128);
    FireModule(b, 32, 128);
    b.MaxPool(3, 2, 0);
    FireModule(b, 48, 192);
    FireModule(b, 48, 192);
    FireModule(b, 64, 256);
    FireModule(b, 64, 256);
  }
  b.Dropout();
  b.Conv(num_classes, 1, 1, 0, 1, true).Relu();
  b.GlobalAvgPool().Flatten();
  return b.Build();
}

namespace {

/** Inception module with the four classic branches. */
void InceptionModule(dnn::NetworkBuilder& b, std::int64_t c1,
                     std::int64_t c3_reduce, std::int64_t c3,
                     std::int64_t c5_reduce, std::int64_t c5,
                     std::int64_t pool_proj) {
  int module_in = b.Mark();
  b.Conv(c1, 1, 1, 0).BatchNorm().Relu();
  int branch1 = b.Mark();
  b.Restore(module_in);
  b.Conv(c3_reduce, 1, 1, 0).BatchNorm().Relu();
  b.Conv(c3, 3, 1, 1).BatchNorm().Relu();
  int branch2 = b.Mark();
  b.Restore(module_in);
  b.Conv(c5_reduce, 1, 1, 0).BatchNorm().Relu();
  b.Conv(c5, 3, 1, 1).BatchNorm().Relu();  // torchvision uses 3x3 here
  int branch3 = b.Mark();
  b.Restore(module_in);
  b.MaxPool(3, 1, 1);
  b.Conv(pool_proj, 1, 1, 0).BatchNorm().Relu();
  int branch4 = b.Mark();
  b.Concat({branch1, branch2, branch3, branch4});
}

}  // namespace

Network BuildGoogLeNet(std::int64_t num_classes) {
  NetworkBuilder b("googlenet", "GoogLeNet", Chw(3, 224, 224));
  b.Conv(64, 7, 2, 3).BatchNorm().Relu().MaxPool(3, 2, 1);
  b.Conv(64, 1, 1, 0).BatchNorm().Relu();
  b.Conv(192, 3, 1, 1).BatchNorm().Relu().MaxPool(3, 2, 1);
  InceptionModule(b, 64, 96, 128, 16, 32, 32);
  InceptionModule(b, 128, 128, 192, 32, 96, 64);
  b.MaxPool(3, 2, 1);
  InceptionModule(b, 192, 96, 208, 16, 48, 64);
  InceptionModule(b, 160, 112, 224, 24, 64, 64);
  InceptionModule(b, 128, 128, 256, 24, 64, 64);
  InceptionModule(b, 112, 144, 288, 32, 64, 64);
  InceptionModule(b, 256, 160, 320, 32, 128, 128);
  b.MaxPool(3, 2, 1);
  InceptionModule(b, 256, 160, 320, 32, 128, 128);
  InceptionModule(b, 384, 192, 384, 48, 128, 128);
  b.GlobalAvgPool().Flatten().Dropout().Linear(num_classes);
  return b.Build();
}

}  // namespace gpuperf::zoo
