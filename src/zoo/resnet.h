#ifndef GPUPERF_ZOO_RESNET_H_
#define GPUPERF_ZOO_RESNET_H_

/**
 * @file
 * ResNet builders (He et al., CVPR'16), including the paper's non-standard
 * variants built by adding/removing blocks (Figure 4 and the ResNet-44/62/77
 * of case study 3: with bottleneck blocks, depth = 3 * total_blocks + 2).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/network.h"

namespace gpuperf::zoo {

/** Configuration of an ImageNet-style ResNet. */
struct ResNetConfig {
  std::string name;
  bool bottleneck = true;            // bottleneck (50+) vs basic (18/34) block
  std::vector<int> stage_blocks;     // blocks per stage (4 stages)
  std::int64_t base_width = 64;      // channels of the first stage
  std::int64_t groups = 1;           // cardinality (ResNeXt)
  double bottleneck_width_mult = 1.0;  // 3x3 width multiplier (ResNeXt/Wide)
  std::int64_t input_resolution = 224;
  std::int64_t num_classes = 1000;
};

/** Builds a ResNet from an explicit configuration. */
dnn::Network BuildResNet(const ResNetConfig& config);

/** Standard torchvision variants: depth in {18, 34, 50, 101, 152}. */
dnn::Network BuildStandardResNet(int depth);

/** ResNeXt-50 32x4d / ResNeXt-101 32x8d (Xie et al., CVPR'17). */
dnn::Network BuildResNeXt(int depth, std::int64_t groups = 32,
                          std::int64_t width_per_group = 4);

/** Wide ResNet-50-2 / -101-2 (Zagoruyko & Komodakis, BMVC'16). */
dnn::Network BuildWideResNet(int depth, int width_factor = 2);

/**
 * Non-standard bottleneck ResNet with `total_blocks` blocks distributed
 * across the four stages in the 3:4:6:3 standard proportion; its
 * conventional name is resnet{3*total_blocks+2} (e.g. 14 -> resnet44).
 */
dnn::Network BuildResNetWithBlocks(int total_blocks,
                                   std::int64_t base_width = 64,
                                   std::int64_t input_resolution = 224);

}  // namespace gpuperf::zoo

#endif  // GPUPERF_ZOO_RESNET_H_
