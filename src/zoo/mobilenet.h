#ifndef GPUPERF_ZOO_MOBILENET_H_
#define GPUPERF_ZOO_MOBILENET_H_

/**
 * @file
 * MobileNetV2 builder (Sandler et al., CVPR'18) with the width-multiplier
 * and input-resolution knobs the original paper exposes, used here to
 * populate the zoo with many efficiency-diverse variants (Figure 5 uses
 * MobileNetV2 as one of its three example networks).
 */

#include <cstdint>
#include <string>

#include "dnn/network.h"

namespace gpuperf::zoo {

/** Configuration of a MobileNetV2. */
struct MobileNetV2Config {
  std::string name = "mobilenet_v2";
  double width_mult = 1.0;
  std::int64_t input_resolution = 224;
  std::int64_t num_classes = 1000;
};

/** Builds a MobileNetV2. */
dnn::Network BuildMobileNetV2(const MobileNetV2Config& config);

}  // namespace gpuperf::zoo

#endif  // GPUPERF_ZOO_MOBILENET_H_
