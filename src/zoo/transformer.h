#ifndef GPUPERF_ZOO_TRANSFORMER_H_
#define GPUPERF_ZOO_TRANSFORMER_H_

/**
 * @file
 * BERT-style text-classification transformers — the "KW model extension for
 * Transformers" of Section 5.4 (HuggingFace text-classification group).
 *
 * Activations use the CHW struct as hidden x seq_len x 1; attention score
 * and context products are explicit batched MatMul layers.
 */

#include <cstdint>
#include <string>

#include "dnn/network.h"

namespace gpuperf::zoo {

/** Configuration of an encoder-only text classifier. */
struct TransformerConfig {
  std::string name = "bert_base";
  std::int64_t vocab_size = 30522;
  std::int64_t hidden_size = 768;
  std::int64_t num_layers = 12;
  std::int64_t num_heads = 12;
  std::int64_t intermediate_size = 3072;  // FFN width
  std::int64_t seq_len = 128;
  std::int64_t num_classes = 2;
};

/** Builds an encoder-only transformer text classifier. */
dnn::Network BuildTransformer(const TransformerConfig& config);

/** Named presets: "bert_tiny|mini|small|medium|base|large", "distilbert". */
dnn::Network BuildStandardTransformer(const std::string& preset,
                                      std::int64_t seq_len = 128);

/**
 * GPT-2-style decoder presets: "gpt2" (124M), "gpt2_medium" (355M),
 * "gpt2_large" (774M). Structurally an encoder stack with a
 * vocabulary-sized output projection; attention cost is identical for a
 * full-context forward pass.
 */
dnn::Network BuildGpt2(const std::string& preset,
                       std::int64_t seq_len = 1024);

}  // namespace gpuperf::zoo

#endif  // GPUPERF_ZOO_TRANSFORMER_H_
