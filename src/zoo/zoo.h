#ifndef GPUPERF_ZOO_ZOO_H_
#define GPUPERF_ZOO_ZOO_H_

/**
 * @file
 * The model-zoo registry.
 *
 * The paper collects 646 networks from TorchVision and HuggingFace; this
 * registry reproduces that scale with deterministic parametric sweeps over
 * the implemented families plus a structurally diverse "mixnet" sampler
 * standing in for the long tail of community models.
 */

#include <string>
#include <vector>

#include "common/status.h"
#include "dnn/network.h"

namespace gpuperf::zoo {

/** Number of image-classification networks in the full zoo (paper: 646). */
inline constexpr int kImageZooSize = 646;

/**
 * Builds a network by its canonical name.
 *
 * Supports the names used throughout the paper's figures: resnet{depth}
 * (standard depths and the non-standard 44/62/77 pattern), vgg{depth}_bn,
 * densenet{121,161,169,201}, mobilenet_v2, shufflenet_v1, alexnet,
 * googlenet, squeezenet1_{0,1}, and the transformer presets. Fatal() on an
 * unknown name.
 */
dnn::Network BuildByName(const std::string& name);

/**
 * As BuildByName, but an unknown or malformed name is a NotFound error
 * (naming the nearest valid spelling rule) instead of a Fatal — the form
 * user-facing tools must use, since the name typically comes from argv.
 */
[[nodiscard]] StatusOr<dnn::Network> TryBuildByName(const std::string& name);

/**
 * The full 646-network image-classification zoo, deduplicated by name.
 * Deterministic: the same list on every call.
 */
std::vector<dnn::Network> ImageClassificationZoo();

/** A smaller zoo (every `stride`-th network) for fast tests. */
std::vector<dnn::Network> SmallZoo(int stride = 16);

/** Text-classification transformer group (Section 5.4 extension). */
std::vector<dnn::Network> TransformerZoo();

}  // namespace gpuperf::zoo

#endif  // GPUPERF_ZOO_ZOO_H_
