#include "zoo/mobilenet.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "dnn/builder.h"

namespace gpuperf::zoo {

using dnn::Chw;
using dnn::Network;
using dnn::NetworkBuilder;

namespace {

/** Rounds channel counts to multiples of 8 as MobileNetV2 does. */
std::int64_t MakeDivisible(double channels, std::int64_t divisor = 8) {
  auto rounded = static_cast<std::int64_t>(
      std::max<double>(divisor, std::round(channels / divisor) * divisor));
  if (rounded < static_cast<std::int64_t>(0.9 * channels)) rounded += divisor;
  return rounded;
}

/** Inverted residual: 1x1 expand, 3x3 depthwise, 1x1 project (+ skip). */
void InvertedResidual(NetworkBuilder& b, std::int64_t out_channels,
                      std::int64_t stride, std::int64_t expand_ratio) {
  const std::int64_t in_channels = b.CurrentShape().c;
  const std::int64_t hidden = in_channels * expand_ratio;
  const bool use_skip = stride == 1 && in_channels == out_channels;
  int block_in = b.Mark();
  if (expand_ratio != 1) {
    b.Conv(hidden, 1, 1, 0).BatchNorm().Relu6();
  }
  b.Conv(hidden, 3, stride, 1, /*groups=*/hidden).BatchNorm().Relu6();
  b.Conv(out_channels, 1, 1, 0).BatchNorm();
  if (use_skip) b.AddFrom(block_in);
}

}  // namespace

Network BuildMobileNetV2(const MobileNetV2Config& config) {
  // (expand ratio, channels, repeats, stride) per the MobileNetV2 paper.
  struct StageSpec {
    std::int64_t t, c, n, s;
  };
  static const StageSpec kStages[] = {
      {1, 16, 1, 1},  {6, 24, 2, 2},  {6, 32, 3, 2},  {6, 64, 4, 2},
      {6, 96, 3, 1},  {6, 160, 3, 2}, {6, 320, 1, 1},
  };
  NetworkBuilder b(config.name, "MobileNetV2",
                   Chw(3, config.input_resolution, config.input_resolution));
  std::int64_t stem = MakeDivisible(32 * config.width_mult);
  b.Conv(stem, 3, 2, 1).BatchNorm().Relu6();
  for (const StageSpec& stage : kStages) {
    std::int64_t out = MakeDivisible(stage.c * config.width_mult);
    for (std::int64_t i = 0; i < stage.n; ++i) {
      InvertedResidual(b, out, i == 0 ? stage.s : 1, stage.t);
    }
  }
  std::int64_t head = MakeDivisible(
      std::max(1280.0, 1280 * config.width_mult));
  b.Conv(head, 1, 1, 0).BatchNorm().Relu6();
  b.GlobalAvgPool().Flatten().Dropout().Linear(config.num_classes);
  return b.Build();
}

}  // namespace gpuperf::zoo
