#include "zoo/resnet.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "dnn/builder.h"

namespace gpuperf::zoo {

using dnn::Chw;
using dnn::Network;
using dnn::NetworkBuilder;

namespace {

/** Emits one basic block (two 3x3 convs) with optional downsample. */
void BasicBlock(NetworkBuilder& b, std::int64_t channels, std::int64_t stride) {
  int block_in = b.Mark();
  b.Conv(channels, 3, stride, 1).BatchNorm().Relu();
  b.Conv(channels, 3, 1, 1).BatchNorm();
  int main_out = b.Mark();
  if (stride != 1 || b.ShapeAt(block_in).c != channels) {
    b.Restore(block_in);
    b.Conv(channels, 1, stride, 0).BatchNorm();
  } else {
    b.Restore(block_in);
  }
  b.AddFrom(main_out).Relu();
}

/** Emits one bottleneck block (1x1 -> grouped 3x3 -> 1x1, 4x expansion). */
void BottleneckBlock(NetworkBuilder& b, std::int64_t width,
                     std::int64_t stride, std::int64_t groups = 1,
                     double width_mult = 1.0) {
  const std::int64_t out_channels = width * 4;
  std::int64_t mid = static_cast<std::int64_t>(width * width_mult);
  if (mid % groups != 0) mid += groups - mid % groups;
  int block_in = b.Mark();
  b.Conv(mid, 1, 1, 0).BatchNorm().Relu();
  b.Conv(mid, 3, stride, 1, groups).BatchNorm().Relu();
  b.Conv(out_channels, 1, 1, 0).BatchNorm();
  int main_out = b.Mark();
  if (stride != 1 || b.ShapeAt(block_in).c != out_channels) {
    b.Restore(block_in);
    b.Conv(out_channels, 1, stride, 0).BatchNorm();
  } else {
    b.Restore(block_in);
  }
  b.AddFrom(main_out).Relu();
}

}  // namespace

Network BuildResNet(const ResNetConfig& config) {
  GP_CHECK_EQ(config.stage_blocks.size(), 4u);
  NetworkBuilder b(config.name, "ResNet",
                   Chw(3, config.input_resolution, config.input_resolution));
  b.Conv(config.base_width, 7, 2, 3).BatchNorm().Relu();
  b.MaxPool(3, 2, 1);
  for (int stage = 0; stage < 4; ++stage) {
    std::int64_t width = config.base_width << stage;
    for (int block = 0; block < config.stage_blocks[stage]; ++block) {
      std::int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
      if (config.bottleneck) {
        BottleneckBlock(b, width, stride, config.groups,
                        config.bottleneck_width_mult);
      } else {
        BasicBlock(b, width, stride);
      }
    }
  }
  b.GlobalAvgPool().Flatten().Linear(config.num_classes);
  return b.Build();
}

Network BuildStandardResNet(int depth) {
  ResNetConfig config;
  config.name = Format("resnet%d", depth);
  switch (depth) {
    case 18: config.bottleneck = false; config.stage_blocks = {2, 2, 2, 2}; break;
    case 34: config.bottleneck = false; config.stage_blocks = {3, 4, 6, 3}; break;
    case 50: config.bottleneck = true;  config.stage_blocks = {3, 4, 6, 3}; break;
    case 101: config.bottleneck = true; config.stage_blocks = {3, 4, 23, 3}; break;
    case 152: config.bottleneck = true; config.stage_blocks = {3, 8, 36, 3}; break;
    default: Fatal(Format("no standard ResNet of depth %d", depth));
  }
  return BuildResNet(config);
}

Network BuildResNeXt(int depth, std::int64_t groups,
                     std::int64_t width_per_group) {
  GP_CHECK(depth == 50 || depth == 101);
  ResNetConfig config;
  config.name = Format("resnext%d_%ldx%ldd", depth,
                       static_cast<long>(groups),
                       static_cast<long>(width_per_group));
  config.bottleneck = true;
  config.stage_blocks = depth == 50 ? std::vector<int>{3, 4, 6, 3}
                                    : std::vector<int>{3, 4, 23, 3};
  config.groups = groups;
  // torchvision: mid width = width_per_group * groups / 64 * stage width.
  config.bottleneck_width_mult =
      static_cast<double>(width_per_group * groups) / 64.0;
  return BuildResNet(config);
}

Network BuildWideResNet(int depth, int width_factor) {
  GP_CHECK(depth == 50 || depth == 101);
  ResNetConfig config;
  config.name = Format("wide_resnet%d_%d", depth, width_factor);
  config.bottleneck = true;
  config.stage_blocks = depth == 50 ? std::vector<int>{3, 4, 6, 3}
                                    : std::vector<int>{3, 4, 23, 3};
  config.bottleneck_width_mult = width_factor;
  return BuildResNet(config);
}

Network BuildResNetWithBlocks(int total_blocks, std::int64_t base_width,
                              std::int64_t input_resolution) {
  GP_CHECK_GE(total_blocks, 4);
  // Distribute blocks in the standard 3:4:6:3 proportion, at least 1 each.
  const double weights[4] = {3.0, 4.0, 6.0, 3.0};
  std::vector<int> stage_blocks(4, 1);
  int assigned = 4;
  while (assigned < total_blocks) {
    // Give the next block to the stage furthest below its target share.
    int best = 0;
    double best_deficit = -1e18;
    for (int s = 0; s < 4; ++s) {
      double target = weights[s] / 16.0 * total_blocks;
      double deficit = target - stage_blocks[s];
      if (deficit > best_deficit) {
        best_deficit = deficit;
        best = s;
      }
    }
    ++stage_blocks[best];
    ++assigned;
  }
  ResNetConfig config;
  config.name = Format("resnet%d", 3 * total_blocks + 2);
  if (base_width != 64) {
    config.name += Format("-w%ld", static_cast<long>(base_width));
  }
  if (input_resolution != 224) {
    config.name += Format("-r%ld", static_cast<long>(input_resolution));
  }
  config.bottleneck = true;
  config.stage_blocks = stage_blocks;
  config.base_width = base_width;
  config.input_resolution = input_resolution;
  return BuildResNet(config);
}

}  // namespace gpuperf::zoo
