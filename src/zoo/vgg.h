#ifndef GPUPERF_ZOO_VGG_H_
#define GPUPERF_ZOO_VGG_H_

/**
 * @file
 * VGG builders (Simonyan & Zisserman, ICLR'15), including the paper's
 * non-standard variants with blocks added/removed (Figure 4).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/network.h"

namespace gpuperf::zoo {

/** Configuration of a VGG network. */
struct VggConfig {
  std::string name;
  std::vector<int> stage_convs;      // 3x3 convs per stage (5 stages)
  bool batch_norm = true;
  std::int64_t base_width = 64;
  std::int64_t input_resolution = 224;
  std::int64_t num_classes = 1000;
};

/** Builds a VGG from an explicit configuration. */
dnn::Network BuildVgg(const VggConfig& config);

/** Standard torchvision variants: depth in {11, 13, 16, 19}. */
dnn::Network BuildStandardVgg(int depth, bool batch_norm = true);

/**
 * Non-standard VGG with `total_convs` 3x3 convolutions distributed evenly
 * across the five stages (deepest stages first, like VGG-19 vs VGG-16).
 */
dnn::Network BuildVggWithConvs(int total_convs, std::int64_t base_width = 64,
                               std::int64_t input_resolution = 224);

}  // namespace gpuperf::zoo

#endif  // GPUPERF_ZOO_VGG_H_
