#include "zoo/transformer.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "dnn/builder.h"

namespace gpuperf::zoo {

using dnn::Chw;
using dnn::Network;
using dnn::NetworkBuilder;

namespace {

/** One encoder layer: MHA + residual/LN, FFN + residual/LN. */
void EncoderLayer(NetworkBuilder& b, const TransformerConfig& config) {
  const std::int64_t h = config.hidden_size;
  const std::int64_t s = config.seq_len;
  const std::int64_t heads = config.num_heads;
  const std::int64_t head_dim = h / heads;

  int layer_in = b.Mark();
  // Fused QKV projection.
  b.Linear(3 * h);
  // Attention scores: per head [s x d] * [d x s].
  b.MatMul(heads, s, s, head_dim, Chw(heads, s, s));
  b.Softmax();
  // Context: per head [s x s] * [s x d].
  b.MatMul(heads, s, head_dim, s, Chw(h, s, 1));
  b.Linear(h);  // output projection
  b.AddFrom(layer_in);
  b.LayerNorm();
  int post_attention = b.Mark();
  b.Linear(config.intermediate_size);
  b.Gelu();
  b.Linear(h);
  b.AddFrom(post_attention);
  b.LayerNorm();
}

}  // namespace

Network BuildTransformer(const TransformerConfig& config) {
  GP_CHECK_EQ(config.hidden_size % config.num_heads, 0);
  NetworkBuilder b(config.name, "Transformer", Chw(1, config.seq_len, 1));
  b.Embedding(config.vocab_size, config.hidden_size, config.seq_len);
  b.LayerNorm();
  for (std::int64_t layer = 0; layer < config.num_layers; ++layer) {
    EncoderLayer(b, config);
  }
  // Pooler over [CLS] plus classification head.
  b.Linear(config.hidden_size);
  b.Sigmoid();
  b.Linear(config.num_classes);
  b.Softmax();
  return b.Build();
}

Network BuildStandardTransformer(const std::string& preset,
                                 std::int64_t seq_len) {
  TransformerConfig config;
  config.seq_len = seq_len;
  config.name = seq_len == 128
                    ? preset
                    : preset + Format("-s%ld", static_cast<long>(seq_len));
  if (preset == "bert_tiny") {
    config.hidden_size = 128;
    config.num_layers = 2;
    config.num_heads = 2;
    config.intermediate_size = 512;
  } else if (preset == "bert_mini") {
    config.hidden_size = 256;
    config.num_layers = 4;
    config.num_heads = 4;
    config.intermediate_size = 1024;
  } else if (preset == "bert_small") {
    config.hidden_size = 512;
    config.num_layers = 4;
    config.num_heads = 8;
    config.intermediate_size = 2048;
  } else if (preset == "bert_medium") {
    config.hidden_size = 512;
    config.num_layers = 8;
    config.num_heads = 8;
    config.intermediate_size = 2048;
  } else if (preset == "bert_base") {
    // Defaults already describe bert_base.
  } else if (preset == "bert_large") {
    config.hidden_size = 1024;
    config.num_layers = 24;
    config.num_heads = 16;
    config.intermediate_size = 4096;
  } else if (preset == "distilbert") {
    config.num_layers = 6;
  } else {
    Fatal("unknown transformer preset: " + preset);
  }
  return BuildTransformer(config);
}

Network BuildGpt2(const std::string& preset, std::int64_t seq_len) {
  TransformerConfig config;
  config.vocab_size = 50257;
  config.seq_len = seq_len;
  config.num_classes = 50257;  // next-token head over the vocabulary
  if (preset == "gpt2") {
    config.hidden_size = 768;
    config.num_layers = 12;
    config.num_heads = 12;
    config.intermediate_size = 3072;
  } else if (preset == "gpt2_medium") {
    config.hidden_size = 1024;
    config.num_layers = 24;
    config.num_heads = 16;
    config.intermediate_size = 4096;
  } else if (preset == "gpt2_large") {
    config.hidden_size = 1280;
    config.num_layers = 36;
    config.num_heads = 20;
    config.intermediate_size = 5120;
  } else {
    Fatal("unknown GPT-2 preset: " + preset);
  }
  config.name = seq_len == 1024
                    ? preset
                    : preset + Format("-s%ld", static_cast<long>(seq_len));
  return BuildTransformer(config);
}

}  // namespace gpuperf::zoo
