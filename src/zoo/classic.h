#ifndef GPUPERF_ZOO_CLASSIC_H_
#define GPUPERF_ZOO_CLASSIC_H_

/**
 * @file
 * Classic torchvision networks that round out the zoo's structural
 * diversity: AlexNet, SqueezeNet (fire modules), and GoogLeNet (inception
 * modules with four parallel branches).
 */

#include <cstdint>

#include "dnn/network.h"

namespace gpuperf::zoo {

/** AlexNet (Krizhevsky et al., 2012), torchvision layout. */
dnn::Network BuildAlexNet(std::int64_t num_classes = 1000);

/** SqueezeNet; version is 0 for 1.0 or 1 for 1.1. */
dnn::Network BuildSqueezeNet(int version, std::int64_t num_classes = 1000);

/** GoogLeNet / Inception v1 (Szegedy et al., CVPR'15), without aux heads. */
dnn::Network BuildGoogLeNet(std::int64_t num_classes = 1000);

}  // namespace gpuperf::zoo

#endif  // GPUPERF_ZOO_CLASSIC_H_
