#include "zoo/shufflenet.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "dnn/builder.h"

namespace gpuperf::zoo {

using dnn::Chw;
using dnn::Network;
using dnn::NetworkBuilder;

namespace {

/** Rounds `value` up to a positive multiple of `divisor`. */
std::int64_t RoundToMultiple(double value, std::int64_t divisor) {
  auto units = static_cast<std::int64_t>(std::round(value / divisor));
  return std::max<std::int64_t>(1, units) * divisor;
}

/** Stage-2 output channels per group count (ShuffleNet v1 Table 1). */
std::int64_t Stage2Channels(std::int64_t groups) {
  switch (groups) {
    case 1: return 144;
    case 2: return 200;
    case 3: return 240;
    case 4: return 272;
    case 8: return 384;
    default:
      Fatal("ShuffleNet v1 supports groups in {1,2,3,4,8}");
  }
}

/** One ShuffleNet unit; stride-2 units concat an avg-pooled shortcut. */
void ShuffleUnit(NetworkBuilder& b, std::int64_t out_channels,
                 std::int64_t stride, std::int64_t groups) {
  const std::int64_t in_channels = b.CurrentShape().c;
  // Stride-2 units concatenate, so the residual branch produces the
  // difference; stride-1 units add, so it produces the full width.
  const std::int64_t branch_out =
      stride == 2 ? out_channels - in_channels : out_channels;
  std::int64_t mid = RoundToMultiple(out_channels / 4.0, groups);
  // The first grouped conv of the network sees too few channels to group.
  const std::int64_t g1 = in_channels % groups == 0 && in_channels >= 24 * groups
                              ? groups
                              : 1;
  int block_in = b.Mark();
  b.Conv(mid, 1, 1, 0, g1).BatchNorm().Relu();
  if (groups > 1) b.ChannelShuffle(groups);
  b.Conv(mid, 3, stride, 1, /*groups=*/mid).BatchNorm();
  b.Conv(branch_out, 1, 1, 0, groups).BatchNorm();
  int main_out = b.Mark();
  if (stride == 2) {
    b.Restore(block_in);
    b.AvgPool(3, 2, 1);
    int shortcut = b.Mark();
    b.Concat({shortcut, main_out});
  } else {
    b.Restore(block_in);
    b.AddFrom(main_out);
  }
  b.Relu();
}

}  // namespace

Network BuildShuffleNetV1(const ShuffleNetV1Config& config) {
  NetworkBuilder b(config.name, "ShuffleNetV1",
                   Chw(3, config.input_resolution, config.input_resolution));
  b.Conv(24, 3, 2, 1).BatchNorm().Relu();
  b.MaxPool(3, 2, 1);
  const std::int64_t base = Stage2Channels(config.groups);
  static const int kRepeats[3] = {4, 8, 4};
  for (int stage = 0; stage < 3; ++stage) {
    std::int64_t out = RoundToMultiple(
        static_cast<double>(base << stage) * config.scale, config.groups);
    for (int unit = 0; unit < kRepeats[stage]; ++unit) {
      ShuffleUnit(b, out, unit == 0 ? 2 : 1, config.groups);
    }
  }
  b.GlobalAvgPool().Flatten().Linear(config.num_classes);
  return b.Build();
}

}  // namespace gpuperf::zoo
