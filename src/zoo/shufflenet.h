#ifndef GPUPERF_ZOO_SHUFFLENET_H_
#define GPUPERF_ZOO_SHUFFLENET_H_

/**
 * @file
 * ShuffleNet v1 builder (Zhang et al., CVPR'18), used by the paper's case
 * studies 2 and 3 ("ShuffleNet v1").
 */

#include <cstdint>
#include <string>

#include "dnn/network.h"

namespace gpuperf::zoo {

/** Configuration of a ShuffleNet v1. */
struct ShuffleNetV1Config {
  std::string name = "shufflenet_v1";
  std::int64_t groups = 3;        // group count of the grouped 1x1 convs
  double scale = 1.0;             // channel scale factor
  std::int64_t input_resolution = 224;
  std::int64_t num_classes = 1000;
};

/** Builds a ShuffleNet v1. */
dnn::Network BuildShuffleNetV1(const ShuffleNetV1Config& config);

}  // namespace gpuperf::zoo

#endif  // GPUPERF_ZOO_SHUFFLENET_H_
