#include "obs/chrome_trace.h"

#include <cstdio>

#include "common/string_util.h"

namespace gpuperf::obs {

std::string ChromeTraceWriter::JsonEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        // Remaining control characters are invalid raw inside a JSON
        // string (chrome://tracing rejects the file); \u-escape them.
        if (static_cast<unsigned char>(c) < 0x20) {
          out += Format("\\u%04x", static_cast<unsigned char>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

void ChromeTraceWriter::SetProcessName(int pid, const std::string& name) {
  events_.push_back(Format(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
      "\"args\":{\"name\":\"%s\"}}",
      pid, JsonEscape(name).c_str()));
}

void ChromeTraceWriter::SetThreadName(int pid, int tid,
                                      const std::string& name) {
  events_.push_back(Format(
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
      "\"args\":{\"name\":\"%s\"}}",
      pid, tid, JsonEscape(name).c_str()));
}

void ChromeTraceWriter::AddComplete(const std::string& name,
                                    const std::string& category, int pid,
                                    int tid, double ts_us, double dur_us,
                                    const std::string& args_json) {
  events_.push_back(Format(
      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":%d,"
      "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{%s}}",
      JsonEscape(name).c_str(), JsonEscape(category).c_str(), pid, tid,
      ts_us, dur_us, args_json.c_str()));
}

void ChromeTraceWriter::AddInstant(const std::string& name,
                                   const std::string& category, int pid,
                                   int tid, double ts_us,
                                   const std::string& args_json) {
  events_.push_back(Format(
      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
      "\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"args\":{%s}}",
      JsonEscape(name).c_str(), JsonEscape(category).c_str(), pid, tid,
      ts_us, args_json.c_str()));
}

void ChromeTraceWriter::AddCounter(const std::string& name,
                                   const std::string& category, int pid,
                                   double ts_us,
                                   const std::string& args_json) {
  events_.push_back(Format(
      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"C\",\"pid\":%d,"
      "\"tid\":0,\"ts\":%.3f,\"args\":{%s}}",
      JsonEscape(name).c_str(), JsonEscape(category).c_str(), pid, ts_us,
      args_json.c_str()));
}

void ChromeTraceWriter::AddMetadata(const std::string& key,
                                    const std::string& json_value) {
  metadata_.emplace_back(key, json_value);
}

std::string ChromeTraceWriter::Json() const {
  std::string json = "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    json += events_[i];
    if (i + 1 < events_.size()) json += ",";
    json += "\n";
  }
  json += "],\"displayTimeUnit\":\"ms\"";
  if (!metadata_.empty()) {
    json += ",\"metadata\":{";
    for (std::size_t i = 0; i < metadata_.size(); ++i) {
      if (i > 0) json += ",";
      json += '"';
      json += JsonEscape(metadata_[i].first);
      json += "\":";
      json += metadata_[i].second;
    }
    json += "}";
  }
  json += "}\n";
  return json;
}

Status ChromeTraceWriter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return UnavailableError("cannot open trace file: " + path);
  }
  const std::string json = Json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != json.size() || !closed) {
    return UnavailableError("cannot write trace file: " + path);
  }
  return Status::Ok();
}

}  // namespace gpuperf::obs
