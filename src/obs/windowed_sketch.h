#ifndef GPUPERF_OBS_WINDOWED_SKETCH_H_
#define GPUPERF_OBS_WINDOWED_SKETCH_H_

/**
 * @file
 * Windowed quantile sketches: fixed-bucket histograms whose contents
 * are harvested per time window instead of accumulating forever.
 *
 * A `WindowedSketch` shares the bucket semantics of obs::Histogram
 * (bucket i counts observations with upper_bounds[i-1] < v <=
 * upper_bounds[i]; a final +Inf overflow bucket) but is deliberately
 * NOT thread-safe: the intended owner is one simulation grid cell,
 * whose windows are merged serially in cell order afterwards — the
 * same pattern SpanTracer uses to keep traces byte-identical across
 * `--jobs`.
 *
 * A closed window (`SketchWindow`) is plain integer state: per-bucket
 * counts, a total count, and a sum held in the registry's 2^-20
 * fixed-point units. Merging two windows is element-wise integer
 * addition — associative and commutative — so merge(A, B) and
 * merge(B, A) are byte-identical, and any merge tree over the same
 * windows yields the same bytes (DESIGN.md §15).
 */

#include <cstdint>
#include <vector>

namespace gpuperf::obs {

/** One closed observation window. Plain data; integer-only state. */
struct SketchWindow {
  std::uint64_t count = 0;
  // Sum of observed values in 2^-20 fixed-point units (the same scale
  // obs::Histogram uses), so window merges stay integer adds.
  std::int64_t sum_fp = 0;
  // Per-bucket counts; entry upper_bounds.size() is the +Inf overflow.
  std::vector<std::uint64_t> buckets;

  bool operator==(const SketchWindow& other) const {
    return count == other.count && sum_fp == other.sum_fp &&
           buckets == other.buckets;
  }
};

/** Accumulates observations into the current window. Single-threaded. */
class WindowedSketch {
 public:
  /** `upper_bounds` must be finite, strictly ascending, non-empty. */
  explicit WindowedSketch(std::vector<double> upper_bounds);

  /** Records one finite observation into the open window. */
  void Observe(double value);

  /** Closes the open window: returns its contents and starts a fresh one. */
  SketchWindow TakeWindow();

  /** The open (not yet taken) window. */
  const SketchWindow& current() const { return window_; }

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }

  /**
   * Element-wise integer merge. Both windows must have the same bucket
   * count (i.e. come from sketches with identical bounds); associative
   * and commutative, so the merged bytes do not depend on order.
   */
  static SketchWindow Merge(const SketchWindow& a, const SketchWindow& b);

  /** The window's sum in natural units (fixed-point decoded). */
  static double WindowSum(const SketchWindow& window);

  /**
   * Interpolated quantile of one window against this sketch's bounds;
   * `p` in [0, 100]. An empty window yields 0.
   */
  double WindowQuantile(const SketchWindow& window, double p) const;

 private:
  std::vector<double> upper_bounds_;
  SketchWindow window_;
};

}  // namespace gpuperf::obs

#endif  // GPUPERF_OBS_WINDOWED_SKETCH_H_
