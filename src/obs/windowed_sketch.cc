#include "obs/windowed_sketch.h"

#include <cmath>

#include "common/logging.h"
#include "common/stats.h"

namespace gpuperf::obs {
namespace {

// Fixed-point scale of SketchWindow::sum_fp (2^20) — matches
// obs::Histogram so windowed and cumulative sums agree bit-for-bit.
constexpr double kSumScale = 1048576.0;

}  // namespace

WindowedSketch::WindowedSketch(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  GP_CHECK(!upper_bounds_.empty()) << "sketch needs at least one bucket";
  for (std::size_t i = 0; i < upper_bounds_.size(); ++i) {
    GP_CHECK(std::isfinite(upper_bounds_[i]))
        << "sketch bound " << i << " is not finite";
    if (i > 0) {
      GP_CHECK_LT(upper_bounds_[i - 1], upper_bounds_[i])
          << "sketch bounds must be strictly ascending";
    }
  }
  window_.buckets.assign(upper_bounds_.size() + 1, 0);
}

void WindowedSketch::Observe(double value) {
  GP_CHECK(std::isfinite(value))
      << "sketch observation must be finite, got " << value;
  std::size_t bucket = upper_bounds_.size();  // overflow by default
  for (std::size_t i = 0; i < upper_bounds_.size(); ++i) {
    if (value <= upper_bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++window_.buckets[bucket];
  ++window_.count;
  window_.sum_fp += std::llround(value * kSumScale);
}

SketchWindow WindowedSketch::TakeWindow() {
  SketchWindow taken = window_;
  window_.count = 0;
  window_.sum_fp = 0;
  window_.buckets.assign(upper_bounds_.size() + 1, 0);
  return taken;
}

SketchWindow WindowedSketch::Merge(const SketchWindow& a,
                                   const SketchWindow& b) {
  GP_CHECK_EQ(a.buckets.size(), b.buckets.size())
      << "cannot merge windows from sketches with different bounds";
  SketchWindow merged = a;
  merged.count += b.count;
  merged.sum_fp += b.sum_fp;
  for (std::size_t i = 0; i < merged.buckets.size(); ++i) {
    merged.buckets[i] += b.buckets[i];
  }
  return merged;
}

double WindowedSketch::WindowSum(const SketchWindow& window) {
  return static_cast<double>(window.sum_fp) / kSumScale;
}

double WindowedSketch::WindowQuantile(const SketchWindow& window,
                                      double p) const {
  GP_CHECK_EQ(window.buckets.size(), upper_bounds_.size() + 1)
      << "window does not match this sketch's bounds";
  if (window.count == 0) return 0.0;
  return HistogramQuantile(upper_bounds_, window.buckets, p);
}

}  // namespace gpuperf::obs
