#ifndef GPUPERF_OBS_CHROME_TRACE_H_
#define GPUPERF_OBS_CHROME_TRACE_H_

/**
 * @file
 * Shared Chrome trace-event JSON writer.
 *
 * Generalizes gpuexec/trace_export's single-profile exporter: any
 * module can emit complete spans ("X"), instants ("i"), and
 * process/thread-name metadata, then serialize one JSON document that
 * loads in chrome://tracing or https://ui.perfetto.dev.
 *
 * Events serialize eagerly, in the order they are added, so a document
 * built from deterministic inputs is bit-identical run to run — the
 * serving simulator records per-cell obs::SpanTracer buffers in
 * parallel and appends them here serially, which keeps `--trace-out`
 * byte-identical across `--jobs` values.
 */

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace gpuperf::obs {

/** Accumulates trace events and serializes the JSON document. */
class ChromeTraceWriter {
 public:
  /** Emits a process_name metadata event for `pid`. */
  void SetProcessName(int pid, const std::string& name);

  /** Emits a thread_name metadata event for (pid, tid). */
  void SetThreadName(int pid, int tid, const std::string& name);

  /**
   * A complete span (phase "X"). `args_json` is the raw body of the
   * args object, e.g. `"\"layer\":\"conv1\""` (may be empty).
   */
  void AddComplete(const std::string& name, const std::string& category,
                   int pid, int tid, double ts_us, double dur_us,
                   const std::string& args_json = "");

  /** A thread-scoped instant event (phase "i"). */
  void AddInstant(const std::string& name, const std::string& category,
                  int pid, int tid, double ts_us,
                  const std::string& args_json = "");

  /**
   * A counter event (phase "C"): the values in `args_json` (e.g.
   * `"\"delta\":3"`) render as a stacked counter track under `pid`.
   * The flight recorder emits its timeline this way so counter tracks
   * overlay the span tracks of the same grid cell.
   */
  void AddCounter(const std::string& name, const std::string& category,
                  int pid, double ts_us, const std::string& args_json);

  /**
   * A key in the document's trailing metadata object; `json_value` is
   * raw JSON (already quoted if a string). Keys render in insertion
   * order.
   */
  void AddMetadata(const std::string& key, const std::string& json_value);

  std::size_t event_count() const { return events_.size(); }

  /** The full JSON document. */
  std::string Json() const;

  /** Writes Json() to `path`; unwritable path is an Unavailable error. */
  [[nodiscard]] Status WriteFile(const std::string& path) const;

  /** Backslash-escapes `"` and `\` for embedding in a JSON string. */
  static std::string JsonEscape(const std::string& text);

 private:
  std::vector<std::string> events_;  // serialized, insertion order
  std::vector<std::pair<std::string, std::string>> metadata_;
};

}  // namespace gpuperf::obs

#endif  // GPUPERF_OBS_CHROME_TRACE_H_
