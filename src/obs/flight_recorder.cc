#include "obs/flight_recorder.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "obs/chrome_trace.h"
#include "obs/metrics_registry.h"

namespace gpuperf::obs {

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(config) {
  GP_CHECK_GT(config_.sample_period_us, 0)
      << "flight recorder needs a positive sample period";
  GP_CHECK_GT(config_.capacity, 0u)
      << "flight recorder needs a nonzero frame capacity";
}

void FlightRecorder::Start(long long origin_us) {
  if (started_) {
    // Epoch continuation: re-anchor the window grid without clearing
    // channels or frames, so one recorder spans many serving epochs.
    // The previous epoch's final window may close past this origin
    // (retries and hedges fire events beyond the horizon), so anchor at
    // whichever is later — the timeline stays monotone either way.
    last_tick_us_ = std::max(origin_us, last_tick_us_);
    next_tick_us_ = last_tick_us_ + config_.sample_period_us;
    return;
  }
  origin_us_ = origin_us;
  last_tick_us_ = origin_us;
  next_tick_us_ = origin_us + config_.sample_period_us;
  started_ = true;
}

FlightRecorder::Channel& FlightRecorder::ChannelFor(const std::string& name,
                                                    int kind) {
  auto [it, inserted] = channels_.emplace(name, Channel{});
  if (inserted) {
    it->second.kind = kind;
  } else {
    GP_CHECK_EQ(it->second.kind, kind)
        << "channel '" << name << "' already has a different kind";
  }
  return it->second;
}

void FlightRecorder::Count(const std::string& name, std::uint64_t n) {
  Channel& channel = ChannelFor(name, FlightSample::kCounter);
  channel.total += n;
  channel.window_delta += n;
}

void FlightRecorder::SetGauge(const std::string& name, std::int64_t value) {
  ChannelFor(name, FlightSample::kGauge).gauge = value;
}

void FlightRecorder::DefineSketch(const std::string& name,
                                  const std::vector<double>& upper_bounds) {
  GP_CHECK(!upper_bounds.empty())
      << "sketch channel '" << name << "' needs at least one bucket";
  Channel& channel = ChannelFor(name, FlightSample::kSketch);
  if (channel.bounds.empty()) {
    channel.bounds = upper_bounds;
    channel.window.buckets.assign(upper_bounds.size() + 1, 0);
  } else {
    GP_CHECK(channel.bounds == upper_bounds)
        << "sketch channel '" << name
        << "' re-defined with different bounds";
  }
}

void FlightRecorder::Observe(const std::string& name, double value) {
  auto it = channels_.find(name);
  GP_CHECK(it != channels_.end() && it->second.kind == FlightSample::kSketch &&
           !it->second.bounds.empty())
      << "sketch channel '" << name << "' must be defined before Observe";
  Observe(SketchHandle(&it->second), value);
}

FlightRecorder::CounterHandle FlightRecorder::CounterChannel(
    const std::string& name) {
  return CounterHandle(&ChannelFor(name, FlightSample::kCounter));
}

FlightRecorder::GaugeHandle FlightRecorder::GaugeChannel(
    const std::string& name) {
  return GaugeHandle(&ChannelFor(name, FlightSample::kGauge));
}

FlightRecorder::SketchHandle FlightRecorder::SketchChannel(
    const std::string& name, const std::vector<double>& upper_bounds) {
  DefineSketch(name, upper_bounds);
  return SketchHandle(&channels_.find(name)->second);
}


void FlightRecorder::Tick(long long t_us) {
  GP_CHECK(started_) << "flight recorder must be started before ticking";
  GP_CHECK_GT(t_us, last_tick_us_) << "windows must close in ascending order";
  FlightFrame frame;
  frame.t_us = t_us;
  frame.window_us = t_us - last_tick_us_;
  frame.samples.reserve(channels_.size());
  for (auto& [name, channel] : channels_) {
    FlightSample sample;
    sample.channel = &name;
    sample.kind = channel.kind;
    if (channel.kind == FlightSample::kCounter) {
      sample.counter_total = channel.total;
      sample.counter_delta = channel.window_delta;
      channel.window_delta = 0;
    } else if (channel.kind == FlightSample::kGauge) {
      sample.gauge_value = channel.gauge;
    } else {
      sample.window = channel.window;
      channel.window.count = 0;
      channel.window.sum_fp = 0;
      channel.window.buckets.assign(channel.bounds.size() + 1, 0);
    }
    frame.samples.push_back(std::move(sample));
  }
  if (frames_.size() == config_.capacity) {
    frames_.pop_front();
    ++dropped_frames_;
  }
  frames_.push_back(std::move(frame));
  last_tick_us_ = t_us;
}

void FlightRecorder::AdvanceSlow(long long t_us) {
  GP_CHECK(started_) << "flight recorder must be started before advancing";
  while (next_tick_us_ <= t_us) {
    Tick(next_tick_us_);
    next_tick_us_ += config_.sample_period_us;
  }
}

void FlightRecorder::FinishAt(long long t_us) {
  AdvanceTo(t_us);
  if (last_tick_us_ < t_us) Tick(t_us);
}

void FlightRecorder::SampleRegistry(const MetricsRegistry& registry,
                                    long long t_us) {
  GP_CHECK(started_) << "flight recorder must be started before sampling";
  for (const InstrumentSnapshot& inst : registry.Snapshot()) {
    if (inst.kind == FlightSample::kCounter) {
      Channel& channel = ChannelFor(inst.name, FlightSample::kCounter);
      const std::uint64_t delta = inst.counter_value - channel.prev_total;
      channel.total = inst.counter_value;
      channel.window_delta += delta;
      channel.prev_total = inst.counter_value;
    } else if (inst.kind == FlightSample::kGauge) {
      SetGauge(inst.name, inst.gauge_value);
    } else {
      DefineSketch(inst.name, inst.upper_bounds);
      Channel& channel = channels_.find(inst.name)->second;
      if (channel.prev_buckets.empty()) {
        channel.prev_buckets.assign(inst.bucket_counts.size(), 0);
      }
      for (std::size_t i = 0; i < inst.bucket_counts.size(); ++i) {
        const std::uint64_t delta =
            inst.bucket_counts[i] - channel.prev_buckets[i];
        channel.window.buckets[i] += delta;
        channel.window.count += delta;
        channel.prev_buckets[i] = inst.bucket_counts[i];
      }
      channel.window.sum_fp += inst.histogram_sum_fp - channel.prev_sum_fp;
      channel.prev_sum_fp = inst.histogram_sum_fp;
    }
  }
  Tick(t_us);
}

void FlightRecorder::AppendCsvRows(const std::string& source,
                                   std::string* out) const {
  for (const FlightFrame& frame : frames_) {
    for (const FlightSample& sample : frame.samples) {
      const char* t = source.c_str();
      const char* m = sample.channel->c_str();
      if (sample.kind == FlightSample::kCounter) {
        *out += Format("%lld,%s,%s,counter,total,%llu\n", frame.t_us, t, m,
                       (unsigned long long)sample.counter_total);
        *out += Format("%lld,%s,%s,counter,delta,%llu\n", frame.t_us, t, m,
                       (unsigned long long)sample.counter_delta);
        const double rate = frame.window_us > 0
                                ? static_cast<double>(sample.counter_delta) /
                                      (static_cast<double>(frame.window_us) /
                                       1e6)
                                : 0.0;
        *out += Format("%lld,%s,%s,counter,rate_per_s,%g\n", frame.t_us, t, m,
                       rate);
      } else if (sample.kind == FlightSample::kGauge) {
        *out += Format("%lld,%s,%s,gauge,value,%lld\n", frame.t_us, t, m,
                       (long long)sample.gauge_value);
      } else {
        const std::vector<double>& bounds =
            channels_.at(*sample.channel).bounds;
        *out += Format("%lld,%s,%s,sketch,count,%llu\n", frame.t_us, t, m,
                       (unsigned long long)sample.window.count);
        *out += Format("%lld,%s,%s,sketch,sum,%g\n", frame.t_us, t, m,
                       WindowedSketch::WindowSum(sample.window));
        for (double p : {50.0, 99.0}) {
          const double q =
              sample.window.count == 0
                  ? 0.0
                  : HistogramQuantile(bounds, sample.window.buckets, p);
          *out += Format("%lld,%s,%s,sketch,p%.0f,%g\n", frame.t_us, t, m, p,
                         q);
        }
      }
    }
  }
}

void FlightRecorder::AppendCounterEvents(ChromeTraceWriter* writer,
                                         int pid) const {
  for (const FlightFrame& frame : frames_) {
    const double ts = static_cast<double>(frame.t_us);
    for (const FlightSample& sample : frame.samples) {
      std::string args;
      if (sample.kind == FlightSample::kCounter) {
        args = Format("\"delta\":%llu",
                      (unsigned long long)sample.counter_delta);
      } else if (sample.kind == FlightSample::kGauge) {
        args = Format("\"value\":%lld", (long long)sample.gauge_value);
      } else {
        const std::vector<double>& bounds =
            channels_.at(*sample.channel).bounds;
        const double p99 =
            sample.window.count == 0
                ? 0.0
                : HistogramQuantile(bounds, sample.window.buckets, 99.0);
        args = Format("\"p99\":%g", p99);
      }
      writer->AddCounter(*sample.channel, "timeline", pid, ts, args);
    }
  }
}

void FlightTimeline::Append(const FlightRecorder& recorder,
                            const std::string& source) {
  recorder.AppendCsvRows(source, &rows_);
}

std::string FlightTimeline::Csv() const {
  return "t_us,source,metric,kind,field,value\n" + rows_;
}

Status FlightTimeline::WriteCsv(const std::string& path) const {
  const std::string csv = Csv();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return UnavailableError("cannot open timeline file: " + path);
  }
  const std::size_t written = std::fwrite(csv.data(), 1, csv.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != csv.size() || !closed) {
    return UnavailableError("cannot write timeline file: " + path);
  }
  return Status::Ok();
}

}  // namespace gpuperf::obs
