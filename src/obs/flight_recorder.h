#ifndef GPUPERF_OBS_FLIGHT_RECORDER_H_
#define GPUPERF_OBS_FLIGHT_RECORDER_H_

/**
 * @file
 * Sim-time flight recorder: a bounded ring of per-window frames.
 *
 * A FlightRecorder owns a set of named channels — counters, gauges,
 * and windowed quantile sketches — and closes them into frames at a
 * configurable sim-time cadence. It never schedules events on the
 * simulation's EventQueue: the owner advances it lazily (AdvanceTo
 * before processing each event, FinishAt at the horizon), so an
 * attached recorder cannot perturb same-timestamp event ordering and a
 * detached one costs nothing on the hot path.
 *
 * Like SpanTracer, a recorder is NOT thread-safe by design: each grid
 * cell owns one, and cells merge serially in cell order — timeline CSV
 * and Chrome-trace counter events are byte-identical for every
 * `--jobs` value (DESIGN.md §15).
 *
 * SampleRegistry() snapshots every instrument registered in a
 * MetricsRegistry into channels (counter totals become per-window
 * deltas, histogram buckets become sketch windows), for serial
 * contexts — e.g. drift-report epochs — that want the process-wide
 * registry on the timeline.
 */

#include <cmath>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/windowed_sketch.h"

namespace gpuperf::obs {

class ChromeTraceWriter;
class MetricsRegistry;

struct FlightRecorderConfig {
  // Window width in sim microseconds.
  long long sample_period_us = 100000;
  // Frames retained; older frames drop off the ring (counted).
  std::size_t capacity = 4096;
};

/**
 * One channel's value at a window close. `channel` points at the
 * owning recorder's channel name (map keys are stable), so closing a
 * window copies integers, not strings; frames must not outlive their
 * recorder.
 */
struct FlightSample {
  enum Kind { kCounter = 0, kGauge = 1, kSketch = 2 };
  const std::string* channel = nullptr;
  int kind = kCounter;
  std::uint64_t counter_total = 0;  // cumulative at window close
  std::uint64_t counter_delta = 0;  // events within the window
  std::int64_t gauge_value = 0;     // level at window close
  SketchWindow window;              // sketch contents of the window
};

/** One closed window: every channel sampled, sorted by channel name. */
struct FlightFrame {
  long long t_us = 0;       // window-close sim time (absolute)
  long long window_us = 0;  // window width (final window may be partial)
  std::vector<FlightSample> samples;
};

class FlightRecorder {
 private:
  struct Channel;

 public:
  /**
   * Cached channel handles: the name lookup (a sorted-map find plus a
   * std::string construction) is paid once at registration, and the
   * per-event update is a pointer dereference — what lets a recorder
   * ride every simulated event within the <5% overhead budget
   * (bench_speed_obs BM_ServingRecorded). Handles stay valid for the
   * recorder's lifetime (map nodes are stable) but must not outlive it.
   */
  class CounterHandle {
   public:
    CounterHandle() = default;

   private:
    friend class FlightRecorder;
    explicit CounterHandle(Channel* channel) : channel_(channel) {}
    Channel* channel_ = nullptr;
  };
  class GaugeHandle {
   public:
    GaugeHandle() = default;

   private:
    friend class FlightRecorder;
    explicit GaugeHandle(Channel* channel) : channel_(channel) {}
    Channel* channel_ = nullptr;
  };
  class SketchHandle {
   public:
    SketchHandle() = default;

   private:
    friend class FlightRecorder;
    explicit SketchHandle(Channel* channel) : channel_(channel) {}
    Channel* channel_ = nullptr;
  };

  explicit FlightRecorder(FlightRecorderConfig config = {});

  /**
   * Anchors the window grid at `origin_us`: the first window closes at
   * origin + period. Must be called before the first Advance/Tick.
   * Calling Start again re-anchors at max(origin, last window close) —
   * back-to-back serving epochs sharing one recorder continue a single
   * monotone timeline even when the previous epoch's events ran past
   * its horizon, and counters stay cumulative across the restart.
   */
  void Start(long long origin_us);

  /** Bumps counter channel `name` (created on first use). */
  void Count(const std::string& name, std::uint64_t n = 1);

  /** Sets gauge channel `name` (created on first use). */
  void SetGauge(const std::string& name, std::int64_t value);

  /** Declares sketch channel `name`; idempotent for equal bounds. */
  void DefineSketch(const std::string& name,
                    const std::vector<double>& upper_bounds);

  /** Observes into sketch channel `name` (must be defined). */
  void Observe(const std::string& name, double value);

  /** Registers (or finds) the channel and returns its cached handle. */
  CounterHandle CounterChannel(const std::string& name);
  GaugeHandle GaugeChannel(const std::string& name);
  /** Defines the sketch (idempotent for equal bounds) and returns it. */
  SketchHandle SketchChannel(const std::string& name,
                             const std::vector<double>& upper_bounds);

  // Handle-based hot-path updates; semantics match the named forms.
  // Defined in-class so the serving loop's per-event cost is a couple
  // of inlined integer adds, not a cross-TU call.
  void Count(CounterHandle handle, std::uint64_t n = 1) {
    handle.channel_->total += n;
    handle.channel_->window_delta += n;
  }
  void SetGauge(GaugeHandle handle, std::int64_t value) {
    handle.channel_->gauge = value;
  }
  void Observe(SketchHandle handle, double value) {
    Channel& channel = *handle.channel_;
    std::size_t bucket = channel.bounds.size();  // overflow by default
    for (std::size_t i = 0; i < channel.bounds.size(); ++i) {
      if (value <= channel.bounds[i]) {
        bucket = i;
        break;
      }
    }
    ++channel.window.buckets[bucket];
    ++channel.window.count;
    // 2^-20 fixed point, as obs::Histogram.
    channel.window.sum_fp += FixedPoint(value);
  }

  /**
   * Closes every whole window with close time <= `t_us`. Call before
   * applying an event at sim time `t_us`. The common case — the open
   * window extends past `t_us` — is one inlined comparison.
   */
  void AdvanceTo(long long t_us) {
    if (t_us < next_tick_us_) return;
    AdvanceSlow(t_us);
  }

  /**
   * Close time of the currently open window — the next `t_us` at which
   * AdvanceTo would tick. Owners that drive an EventQueue can run
   * events with earlier timestamps in bulk (EventQueue::RunUntil) and
   * only consult the recorder at window boundaries.
   */
  long long next_close_us() const { return next_tick_us_; }

  /**
   * Closes remaining windows through `t_us`, including a final partial
   * window when `t_us` is not on the window grid.
   */
  void FinishAt(long long t_us);

  /**
   * Folds one MetricsRegistry snapshot into the channels and closes a
   * frame at `t_us`: counters and histogram buckets are differenced
   * against the previous snapshot, gauges are sampled as-is. For
   * serial, coarse-cadence callers (sampling takes the registry lock).
   */
  void SampleRegistry(const MetricsRegistry& registry, long long t_us);

  const FlightRecorderConfig& config() const { return config_; }
  const std::deque<FlightFrame>& frames() const { return frames_; }
  /** Frames evicted from the full ring. */
  std::uint64_t dropped_frames() const { return dropped_frames_; }

  /**
   * Appends timeline CSV rows (`t_us,source,metric,kind,field,value`)
   * for every retained frame. Counter channels emit `total`, `delta`,
   * and `rate_per_s`; gauges emit `value`; sketches emit `count`,
   * `sum`, `p50`, and `p99`.
   */
  void AppendCsvRows(const std::string& source, std::string* out) const;

  /**
   * Appends one Chrome "C" (counter) event per channel per frame under
   * `pid`, so counter tracks overlay the span tracks of the same cell.
   */
  void AppendCounterEvents(ChromeTraceWriter* writer, int pid) const;

 private:
  struct Channel {
    int kind = FlightSample::kCounter;
    std::uint64_t total = 0;         // counter: cumulative
    std::uint64_t window_delta = 0;  // counter: open-window events
    std::int64_t gauge = 0;
    std::vector<double> bounds;  // sketch bounds
    SketchWindow window;         // sketch: open window
    // Previous registry snapshot (SampleRegistry differencing).
    std::uint64_t prev_total = 0;
    std::vector<std::uint64_t> prev_buckets;
    std::int64_t prev_sum_fp = 0;
  };

  Channel& ChannelFor(const std::string& name, int kind);
  /** Closes the open window into a frame stamped `t_us`. */
  void Tick(long long t_us);
  /** AdvanceTo's window-closing tail (out of the inlined fast path). */
  void AdvanceSlow(long long t_us);
  /** 2^-20 fixed point — obs::Histogram's sum representation. */
  static std::int64_t FixedPoint(double value) {
    return std::llround(value * 1048576.0);
  }

  FlightRecorderConfig config_;
  std::map<std::string, Channel> channels_;  // sorted => deterministic
  std::deque<FlightFrame> frames_;
  std::uint64_t dropped_frames_ = 0;
  long long origin_us_ = 0;
  long long next_tick_us_ = 0;
  long long last_tick_us_ = 0;
  bool started_ = false;
};

/**
 * Accumulates the merged timeline CSV across cells and scenarios. The
 * caller appends recorders serially in a deterministic order; the
 * resulting document is byte-identical across `--jobs`.
 */
class FlightTimeline {
 public:
  /** Appends `recorder`'s frames under the `source` label. */
  void Append(const FlightRecorder& recorder, const std::string& source);

  bool empty() const { return rows_.empty(); }

  /** Header + accumulated rows. */
  std::string Csv() const;

  /** Writes Csv() to `path`; unwritable path is an Unavailable error. */
  [[nodiscard]] Status WriteCsv(const std::string& path) const;

 private:
  std::string rows_;
};

}  // namespace gpuperf::obs

#endif  // GPUPERF_OBS_FLIGHT_RECORDER_H_
