#ifndef GPUPERF_OBS_SPAN_TRACER_H_
#define GPUPERF_OBS_SPAN_TRACER_H_

/**
 * @file
 * Sim-time span recording for the serving simulator.
 *
 * A SpanTracer buffers lifecycle events — dispatch/service spans,
 * shed/drop/retry/breaker-open instants — stamped with *simulated*
 * microseconds (EventQueue time), not wall-clock time, so a trace of a
 * deterministic simulation is itself deterministic.
 *
 * NOT thread-safe by design: the intended use is one tracer per grid
 * cell (each cell simulates single-threaded), merged serially in cell
 * order via AppendTo() after the parallel loop — the same pre-sized
 * per-slot + serial-merge pattern every deterministic parallel path in
 * this repo uses, which keeps the exported Chrome-trace JSON
 * bit-identical across `--jobs` values.
 */

#include <map>
#include <string>
#include <vector>

#include "obs/chrome_trace.h"

namespace gpuperf::obs {

/** Buffers sim-time spans/instants for one single-threaded producer. */
class SpanTracer {
 public:
  /** Names a track (rendered as a Chrome-trace thread). */
  void SetTrackName(int track, const std::string& name);

  /** A span [start_us, end_us] on `track`, in sim microseconds. */
  void Span(int track, const std::string& name, const std::string& category,
            double start_us, double end_us, std::string args_json = "");

  /** A point event on `track` at sim time `ts_us`. */
  void Instant(int track, const std::string& name,
               const std::string& category, double ts_us,
               std::string args_json = "");

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /**
   * Appends this tracer to `writer` as Chrome-trace process `pid`
   * named `process_name`: track-name metadata first (sorted by track),
   * then the events in recording order.
   */
  void AppendTo(ChromeTraceWriter* writer, int pid,
                const std::string& process_name) const;

 private:
  struct Event {
    bool instant = false;
    int track = 0;
    std::string name;
    std::string category;
    double start_us = 0;
    double end_us = 0;
    std::string args_json;
  };

  std::vector<Event> events_;
  std::map<int, std::string> track_names_;
};

}  // namespace gpuperf::obs

#endif  // GPUPERF_OBS_SPAN_TRACER_H_
