#include "obs/metrics_registry.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace gpuperf::obs {
namespace {

// Fixed-point scale of Histogram::sum_fp_ (2^20): integer adds are
// associative, so the accumulated sum is identical for every
// interleaving of concurrent observers.
constexpr double kSumScale = 1048576.0;

bool IsValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

/** Renders a bucket bound the way Prometheus labels do ("10", "0.5"). */
std::string BoundLabel(double bound) { return Format("%g", bound); }

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(upper_bounds_.size() + 1) {
  GP_CHECK(!upper_bounds_.empty()) << "histogram needs at least one bucket";
  for (std::size_t i = 0; i < upper_bounds_.size(); ++i) {
    GP_CHECK(std::isfinite(upper_bounds_[i]))
        << "histogram bound " << i << " is not finite";
    if (i > 0) {
      GP_CHECK_LT(upper_bounds_[i - 1], upper_bounds_[i])
          << "histogram bounds must be strictly ascending";
    }
  }
}

void Histogram::Observe(double value) {
  GP_CHECK(std::isfinite(value))
      << "histogram observation must be finite, got " << value;
  std::size_t bucket = upper_bounds_.size();  // overflow by default
  for (std::size_t i = 0; i < upper_bounds_.size(); ++i) {
    if (value <= upper_bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_fp_.fetch_add(std::llround(value * kSumScale),
                    std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    counts.push_back(bucket.load(std::memory_order_relaxed));
  }
  return counts;
}

double Histogram::Sum() const {
  return static_cast<double>(sum_fp_.load(std::memory_order_relaxed)) /
         kSumScale;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_fp_.store(0, std::memory_order_relaxed);
}

/** One registered instrument; exactly one pointer is set, per `kind`. */
struct MetricsRegistry::Entry {
  enum Kind { kCounter = 0, kGauge = 1, kHistogram = 2 };
  int kind = kCounter;
  std::string help;  // `# HELP` text; first non-empty registration wins
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;

  const char* KindName() const {
    if (kind == kGauge) return "gauge";
    if (kind == kHistogram) return "histogram";
    return "counter";
  }
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Entry& MetricsRegistry::FindOrCreate(
    const std::string& name, int kind,
    const std::vector<double>* upper_bounds, const std::string& help) {
  GP_CHECK(IsValidMetricName(name))
      << "metric name '" << name
      << "' must be lowercase [a-z0-9_] (convention: gpuperf_<area>_<name>)";
  MutexLock lock(mu_);
  auto [it, inserted] = entries_.emplace(name, nullptr);
  if (inserted) {
    // The instrument is constructed before the lock is dropped: two
    // threads first-registering the same name serialize here, and a
    // concurrent snapshot can never observe an entry whose instrument
    // pointer is still null.
    auto entry = std::make_unique<Entry>();
    entry->kind = kind;
    if (kind == Entry::kCounter) {
      entry->counter = std::make_unique<Counter>();
    } else if (kind == Entry::kGauge) {
      entry->gauge = std::make_unique<Gauge>();
    } else {
      entry->histogram = std::make_unique<Histogram>(*upper_bounds);
    }
    it->second = std::move(entry);
  } else {
    GP_CHECK_EQ(it->second->kind, kind)
        << "metric '" << name << "' is already registered as a "
        << it->second->KindName();
  }
  if (it->second->help.empty() && !help.empty()) it->second->help = help;
  return *it->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  return *FindOrCreate(name, Entry::kCounter, nullptr, help).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  return *FindOrCreate(name, Entry::kGauge, nullptr, help).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds,
                                      const std::string& help) {
  Entry& entry = FindOrCreate(name, Entry::kHistogram, &upper_bounds, help);
  GP_CHECK(entry.histogram->upper_bounds() == upper_bounds)
      << "histogram '" << name
      << "' re-registered with different bucket bounds";
  return *entry.histogram;
}

std::string MetricsRegistry::CsvSnapshot() const {
  std::string out = "metric,type,field,value\n";
  MutexLock lock(mu_);
  for (const auto& [name, entry] : entries_) {
    if (entry->kind == Entry::kCounter) {
      out += Format("%s,counter,value,%llu\n", name.c_str(),
                    (unsigned long long)entry->counter->Value());
    } else if (entry->kind == Entry::kGauge) {
      out += Format("%s,gauge,value,%lld\n", name.c_str(),
                    (long long)entry->gauge->Value());
    } else {
      const Histogram& h = *entry->histogram;
      const std::vector<std::uint64_t> counts = h.BucketCounts();
      const std::vector<double>& bounds = h.upper_bounds();
      for (std::size_t i = 0; i < bounds.size(); ++i) {
        out += Format("%s,histogram,bucket_le_%s,%llu\n", name.c_str(),
                      BoundLabel(bounds[i]).c_str(),
                      (unsigned long long)counts[i]);
      }
      out += Format("%s,histogram,bucket_le_+Inf,%llu\n", name.c_str(),
                    (unsigned long long)counts.back());
      out += Format("%s,histogram,count,%llu\n", name.c_str(),
                    (unsigned long long)h.Count());
      out += Format("%s,histogram,sum,%g\n", name.c_str(), h.Sum());
      for (double p : {50.0, 95.0, 99.0}) {
        out += Format("%s,histogram,p%.0f,%g\n", name.c_str(), p,
                      HistogramQuantile(bounds, counts, p));
      }
    }
  }
  return out;
}

std::string MetricsRegistry::PrometheusSnapshot() const {
  std::string out;
  MutexLock lock(mu_);
  for (const auto& [name, entry] : entries_) {
    // A family with no registered help text falls back to its own name
    // so the exposition is always complete (and byte-deterministic).
    const std::string& help = entry->help.empty() ? name : entry->help;
    out += Format("# HELP %s %s\n", name.c_str(), help.c_str());
    out += Format("# TYPE %s %s\n", name.c_str(), entry->KindName());
    if (entry->kind == Entry::kCounter) {
      out += Format("%s %llu\n", name.c_str(),
                    (unsigned long long)entry->counter->Value());
    } else if (entry->kind == Entry::kGauge) {
      out += Format("%s %lld\n", name.c_str(),
                    (long long)entry->gauge->Value());
    } else {
      const Histogram& h = *entry->histogram;
      const std::vector<std::uint64_t> counts = h.BucketCounts();
      const std::vector<double>& bounds = h.upper_bounds();
      // Prometheus buckets are cumulative ("le" semantics).
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < bounds.size(); ++i) {
        cumulative += counts[i];
        out += Format("%s_bucket{le=\"%s\"} %llu\n", name.c_str(),
                      BoundLabel(bounds[i]).c_str(),
                      (unsigned long long)cumulative);
      }
      cumulative += counts.back();
      out += Format("%s_bucket{le=\"+Inf\"} %llu\n", name.c_str(),
                    (unsigned long long)cumulative);
      out += Format("%s_sum %g\n", name.c_str(), h.Sum());
      out += Format("%s_count %llu\n", name.c_str(),
                    (unsigned long long)h.Count());
    }
  }
  return out;
}

std::vector<InstrumentSnapshot> MetricsRegistry::Snapshot() const {
  std::vector<InstrumentSnapshot> out;
  MutexLock lock(mu_);
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    InstrumentSnapshot inst;
    inst.name = name;
    inst.kind = entry->kind;
    if (entry->kind == Entry::kCounter) {
      inst.counter_value = entry->counter->Value();
    } else if (entry->kind == Entry::kGauge) {
      inst.gauge_value = entry->gauge->Value();
    } else {
      const Histogram& h = *entry->histogram;
      inst.upper_bounds = h.upper_bounds();
      inst.bucket_counts = h.BucketCounts();
      inst.histogram_count = h.Count();
      inst.histogram_sum_fp = h.SumFp();
    }
    out.push_back(std::move(inst));
  }
  return out;
}

Status MetricsRegistry::WriteSnapshot(const std::string& path) const {
  const bool prometheus =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  const std::string snapshot =
      prometheus ? PrometheusSnapshot() : CsvSnapshot();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return UnavailableError("cannot open metrics file: " + path);
  }
  const std::size_t written =
      std::fwrite(snapshot.data(), 1, snapshot.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != snapshot.size() || !closed) {
    return UnavailableError("cannot write metrics file: " + path);
  }
  return Status::Ok();
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, entry] : entries_) {
    if (entry->counter != nullptr) entry->counter->Reset();
    if (entry->gauge != nullptr) entry->gauge->Reset();
    if (entry->histogram != nullptr) entry->histogram->Reset();
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const kRegistry = new MetricsRegistry();
  return *kRegistry;
}

namespace {
Gauge* queue_depth_gauge = nullptr;
}  // namespace

void InstallProcessMetrics() {
  queue_depth_gauge =
      &MetricsRegistry::Global().gauge("gpuperf_threadpool_queue_depth");
  ThreadPool::SetQueueDepthObserver(
      [](long long delta) { queue_depth_gauge->Add(delta); });
}

}  // namespace gpuperf::obs
