#ifndef GPUPERF_OBS_METRICS_REGISTRY_H_
#define GPUPERF_OBS_METRICS_REGISTRY_H_

/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * fixed-bucket histograms.
 *
 * Design rules (DESIGN.md §10):
 *  - The hot path is lock-free: Increment/Add/Observe touch only
 *    relaxed atomics. Registration (name -> instrument) takes a Mutex,
 *    so call sites cache the returned reference (a static-local struct
 *    of references per module is the idiom — see simsys/serving.cc).
 *  - Instruments are never destroyed: the reference returned by
 *    counter()/gauge()/histogram() stays valid for the process
 *    lifetime, which is what makes caching it safe.
 *  - Snapshots are deterministic: instruments are stored in a sorted
 *    std::map, so CSV and Prometheus exports list families in name
 *    order regardless of registration order, and a histogram's sum is
 *    accumulated in fixed-point so concurrent observation order cannot
 *    perturb the exported bytes (snapshots of the same totals are
 *    bit-identical for every --jobs value).
 *  - Names follow `gpuperf_<area>_<name>`, lowercase [a-z0-9_].
 *
 * The standalone cell types (Counter, Gauge, Histogram) are also the
 * blessed representation for per-instance counters (e.g.
 * models::PredictorStack) — the `raw-counter` lint rule flags ad-hoc
 * std::atomic integer counters outside src/obs/ so instrumentation
 * converges here instead of re-fragmenting.
 */

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/synchronization.h"

namespace gpuperf::obs {

/** A monotonically increasing event count. Lock-free. */
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  /** Zeroes the counter (tests and sweep boundaries). */
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/** A value that can go up and down (queue depths, levels). Lock-free. */
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { Set(0); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/**
 * A fixed-bucket histogram. Bucket i counts observations with
 * upper_bounds[i-1] < v <= upper_bounds[i]; a final overflow bucket
 * (+Inf) catches everything above the last bound, so BucketCounts()
 * has upper_bounds().size() + 1 entries.
 *
 * Observe() is lock-free. The running sum is accumulated in 2^-20
 * fixed-point units so integer adds — associative, unlike floating
 * adds — keep Sum() bit-identical regardless of the order concurrent
 * observers land (resolution ~1e-6, range ~±8.8e12).
 */
class Histogram {
 public:
  /** `upper_bounds` must be finite, strictly ascending, non-empty. */
  explicit Histogram(std::vector<double> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /** Records one finite observation (non-finite is a CHECK failure). */
  void Observe(double value);

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /** Per-bucket counts; entry upper_bounds().size() is the overflow. */
  std::vector<std::uint64_t> BucketCounts() const;
  std::uint64_t Count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double Sum() const;
  /** The raw fixed-point sum (2^-20 units) — integer, so snapshots can
   * be differenced without floating-point drift. */
  std::int64_t SumFp() const {
    return sum_fp_.load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_fp_{0};  // fixed-point, 2^-20 units
};

/**
 * One instrument's state at a point in time — the machine-readable
 * counterpart of the CSV/Prometheus text snapshots, consumed by the
 * flight recorder to difference successive registry states into
 * per-window deltas. Kinds match FlightSample: 0 counter, 1 gauge,
 * 2 histogram.
 */
struct InstrumentSnapshot {
  std::string name;
  int kind = 0;
  std::uint64_t counter_value = 0;
  std::int64_t gauge_value = 0;
  std::vector<double> upper_bounds;           // histogram only
  std::vector<std::uint64_t> bucket_counts;   // incl. +Inf overflow
  std::uint64_t histogram_count = 0;
  std::int64_t histogram_sum_fp = 0;          // 2^-20 fixed point
};

/**
 * The name -> instrument directory. A name registers exactly one kind;
 * re-requesting an existing name returns the same instrument (same
 * address), and requesting it as a different kind — or a histogram
 * with different bounds — is a programmer-error CHECK.
 */
class MetricsRegistry {
 public:
  // Both out-of-line: Entry is incomplete here, and the defaulted
  // constructor/destructor need its definition.
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // `help` is the Prometheus `# HELP` text; the first registration to
  // supply a non-empty string wins, later strings are ignored (the
  // exported bytes must not depend on call order beyond that).
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds,
                       const std::string& help = "");

  /**
   * Deterministic CSV snapshot, families sorted by name. Columns:
   * `metric,type,field,value`; histogram rows list per-bucket counts
   * (`bucket_le_<bound>`, then `bucket_le_+Inf`), `count`, `sum`, and
   * interpolated `p50`/`p95`/`p99` (stats::HistogramQuantile).
   */
  std::string CsvSnapshot() const;

  /**
   * Prometheus text exposition format, families sorted by name: each
   * family emits `# HELP` (the registered help text, or the metric
   * name when none was given) and `# TYPE` lines, then the values —
   * histograms use the conventional `_bucket{le=...}`/`_sum`/`_count`
   * series with cumulative buckets.
   */
  std::string PrometheusSnapshot() const;

  /** Every instrument's current state, sorted by name. */
  std::vector<InstrumentSnapshot> Snapshot() const;

  /**
   * Writes a snapshot to `path`: Prometheus text when the path ends in
   * `.prom`, CSV otherwise. Unwritable path is an Unavailable error.
   */
  [[nodiscard]] Status WriteSnapshot(const std::string& path) const;

  /** Zeroes every instrument (tests and sweep boundaries). */
  void ResetAll();

  /** The process-wide registry all gpuperf instrumentation shares. */
  static MetricsRegistry& Global();

 private:
  struct Entry;

  /**
   * Looks up `name`, constructing the instrument (for histograms, from
   * `*upper_bounds`) under `mu_` on first registration so concurrent
   * registrations and snapshots never see a half-built entry.
   */
  Entry& FindOrCreate(const std::string& name, int kind,
                      const std::vector<double>* upper_bounds,
                      const std::string& help);

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Entry>> entries_ GP_GUARDED_BY(mu_);
};

/**
 * Binds process-level instrumentation hooks to the global registry —
 * currently the ThreadPool queue-depth observer feeding
 * `gpuperf_threadpool_queue_depth`. Idempotent; call once at process
 * start (gpuperf_cli and build_database do).
 */
void InstallProcessMetrics();

}  // namespace gpuperf::obs

#endif  // GPUPERF_OBS_METRICS_REGISTRY_H_
