#include "obs/breaker_metrics.h"

#include "common/circuit_breaker.h"
#include "obs/metrics_registry.h"

namespace gpuperf::obs {

namespace {

struct BreakerMetrics {
  Counter& opens;
  Counter& half_opens;
  Counter& closes;

  static BreakerMetrics& Get() {
    static BreakerMetrics* const kMetrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      return new BreakerMetrics{
          registry.counter("gpuperf_breaker_opens"),
          registry.counter("gpuperf_breaker_half_opens"),
          registry.counter("gpuperf_breaker_closes")};
    }();
    return *kMetrics;
  }
};

void OnBreakerTransition(BreakerState from, BreakerState to) {
  (void)from;
  BreakerMetrics& metrics = BreakerMetrics::Get();
  switch (to) {
    case BreakerState::kOpen:
      metrics.opens.Increment();
      break;
    case BreakerState::kHalfOpen:
      metrics.half_opens.Increment();
      break;
    case BreakerState::kClosed:
      metrics.closes.Increment();
      break;
  }
}

}  // namespace

void InstallBreakerMetrics() {
  // Resolve the instruments before publishing the hook so the first
  // transition never races a registry insertion.
  BreakerMetrics::Get();
  SetBreakerTransitionHook(&OnBreakerTransition);
}

}  // namespace gpuperf::obs
