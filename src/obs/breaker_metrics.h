#ifndef GPUPERF_OBS_BREAKER_METRICS_H_
#define GPUPERF_OBS_BREAKER_METRICS_H_

/**
 * @file
 * Circuit-breaker transition metrics.
 *
 * common/circuit_breaker.h exposes a process-wide transition hook
 * (common/ cannot depend on obs/); this installer binds it to the
 * global registry so every breaker transition lands in
 *
 *   gpuperf_breaker_opens       closed/half-open -> open trips
 *   gpuperf_breaker_half_opens  open -> half-open cooldown expiries
 *   gpuperf_breaker_closes      half-open -> closed probe successes
 *
 * regardless of which simulation owns the breaker. Installed by
 * simsys/serving's metric bootstrap and by gpuperf_cli at startup;
 * idempotent.
 */

namespace gpuperf::obs {

/** Binds the breaker transition hook to the global registry. */
void InstallBreakerMetrics();

}  // namespace gpuperf::obs

#endif  // GPUPERF_OBS_BREAKER_METRICS_H_
