#include "obs/span_tracer.h"

#include <utility>

namespace gpuperf::obs {

void SpanTracer::SetTrackName(int track, const std::string& name) {
  track_names_[track] = name;
}

void SpanTracer::Span(int track, const std::string& name,
                      const std::string& category, double start_us,
                      double end_us, std::string args_json) {
  events_.push_back(Event{/*instant=*/false, track, name, category, start_us,
                          end_us, std::move(args_json)});
}

void SpanTracer::Instant(int track, const std::string& name,
                         const std::string& category, double ts_us,
                         std::string args_json) {
  events_.push_back(Event{/*instant=*/true, track, name, category, ts_us,
                          ts_us, std::move(args_json)});
}

void SpanTracer::AppendTo(ChromeTraceWriter* writer, int pid,
                          const std::string& process_name) const {
  writer->SetProcessName(pid, process_name);
  for (const auto& [track, name] : track_names_) {
    writer->SetThreadName(pid, track, name);
  }
  for (const Event& event : events_) {
    if (event.instant) {
      writer->AddInstant(event.name, event.category, pid, event.track,
                         event.start_us, event.args_json);
    } else {
      writer->AddComplete(event.name, event.category, pid, event.track,
                          event.start_us, event.end_us - event.start_us,
                          event.args_json);
    }
  }
}

}  // namespace gpuperf::obs
