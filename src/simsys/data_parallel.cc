#include "simsys/data_parallel.h"

#include <algorithm>

#include "common/logging.h"
#include "simsys/event_queue.h"
#include "simsys/link.h"

namespace gpuperf::simsys {

double RingAllReduceUs(std::int64_t bytes, const DataParallelConfig& config) {
  GP_CHECK_GE(bytes, 0);
  if (config.num_gpus <= 1 || bytes == 0) return 0.0;
  const double n = static_cast<double>(config.num_gpus);
  // Classic ring all-reduce: 2(N-1)/N of the data crosses each link,
  // in 2(N-1) latency-bound steps.
  const double volume_us = 2.0 * (n - 1.0) / n *
                           static_cast<double>(bytes) /
                           (config.link_bandwidth_gbps * 1e9) * 1e6;
  return volume_us + 2.0 * (n - 1.0) * config.link_latency_us;
}

DataParallelResult SimulateDataParallelStep(
    const std::vector<double>& forward_us,
    const std::vector<double>& backward_us,
    const std::vector<std::int64_t>& gradient_bytes,
    const DataParallelConfig& config) {
  GP_CHECK_EQ(forward_us.size(), backward_us.size());
  GP_CHECK_EQ(forward_us.size(), gradient_bytes.size());
  GP_CHECK_GT(config.num_gpus, 0);

  DataParallelResult result;
  for (std::size_t i = 0; i < forward_us.size(); ++i) {
    result.compute_us += forward_us[i] + backward_us[i];
    result.comm_us += RingAllReduceUs(gradient_bytes[i], config);
  }
  if (forward_us.empty()) return result;

  if (!config.overlap || config.num_gpus == 1) {
    // Communication fully exposed after the backward pass.
    result.step_time_us = result.compute_us + result.comm_us;
    result.exposed_comm_us = result.comm_us;
  } else {
    // Event-driven overlap: the backward pass walks layers in reverse;
    // each layer's gradient bucket enters the (serialized) fabric as soon
    // as its backward finishes. The effective all-reduce of a bucket is
    // modeled as one fabric transfer of its ring volume plus ring latency.
    EventQueue queue;
    // Fabric "link" carries the ring traffic of this replica.
    NetworkLink fabric(&queue, config.link_bandwidth_gbps,
                       2.0 * (config.num_gpus - 1) * config.link_latency_us);
    const double n = static_cast<double>(config.num_gpus);
    const double ring_factor = 2.0 * (n - 1.0) / n;

    double compute_end = 0;
    for (double f : forward_us) compute_end += f;
    double last_comm_end = 0;
    double backward_cursor = compute_end;
    queue.ScheduleAfter(0.0, [&] {
      // Walk backward layers in reverse, scheduling bucket transfers.
      for (int i = static_cast<int>(backward_us.size()) - 1; i >= 0; --i) {
        backward_cursor += backward_us[i];
        if (gradient_bytes[i] == 0) continue;
        const double ready_at = backward_cursor;
        const std::int64_t ring_bytes = static_cast<std::int64_t>(
            ring_factor * static_cast<double>(gradient_bytes[i]));
        queue.Schedule(ready_at, [&, ring_bytes] {
          fabric.Transfer(ring_bytes, [&] {
            last_comm_end = std::max(last_comm_end, queue.NowUs());
          });
        });
      }
    });
    queue.Run();
    result.step_time_us = std::max(backward_cursor, last_comm_end);
    result.exposed_comm_us =
        std::max(0.0, result.step_time_us - result.compute_us);
  }
  result.scaling_efficiency = result.compute_us / result.step_time_us;
  return result;
}

}  // namespace gpuperf::simsys
