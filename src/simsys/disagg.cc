#include "simsys/disagg.h"

#include "common/logging.h"
#include "simsys/event_queue.h"
#include "simsys/link.h"

namespace gpuperf::simsys {
namespace {

/** Shared mutable state of the prefetcher/compute co-simulation. */
struct SimState {
  EventQueue queue;
  NetworkLink link;
  const std::vector<double>& compute_us;
  const std::vector<std::int64_t>& weight_bytes;
  const DisaggConfig& config;

  std::vector<bool> arrived;
  std::size_t next_fetch = 0;    // next layer whose weights to request
  std::size_t compute_layer = 0; // next layer to execute
  bool computing = false;
  double finish_time = 0;
  double busy_us = 0;

  SimState(const std::vector<double>& compute,
           const std::vector<std::int64_t>& weights,
           const DisaggConfig& cfg)
      : link(&queue, cfg.link_bandwidth_gbps, cfg.link_latency_us),
        compute_us(compute), weight_bytes(weights), config(cfg),
        arrived(compute.size(), false) {}

  /** Issues prefetches up to the look-ahead window. */
  void PumpPrefetch() {
    while (next_fetch < compute_us.size() &&
           next_fetch < compute_layer + config.prefetch_window) {
      const std::size_t layer = next_fetch++;
      if (weight_bytes[layer] == 0) {
        arrived[layer] = true;
        continue;
      }
      link.Transfer(weight_bytes[layer], [this, layer] {
        arrived[layer] = true;
        MaybeStartCompute();
      });
    }
  }

  /** Starts the next layer if its weights are resident. */
  void MaybeStartCompute() {
    if (computing || compute_layer >= compute_us.size()) return;
    if (!arrived[compute_layer]) return;
    computing = true;
    const std::size_t layer = compute_layer;
    busy_us += compute_us[layer];
    queue.ScheduleAfter(compute_us[layer], [this, layer] {
      computing = false;
      compute_layer = layer + 1;
      finish_time = queue.NowUs();
      PumpPrefetch();
      MaybeStartCompute();
    });
  }
};

}  // namespace

DisaggResult SimulateDisaggregated(
    const std::vector<double>& layer_compute_us,
    const std::vector<std::int64_t>& layer_weight_bytes,
    const DisaggConfig& config) {
  GP_CHECK_EQ(layer_compute_us.size(), layer_weight_bytes.size());
  GP_CHECK_GT(config.prefetch_window, 0);
  DisaggResult result;
  if (layer_compute_us.empty()) return result;

  SimState state(layer_compute_us, layer_weight_bytes, config);
  state.queue.ScheduleAfter(0.0, [&state] {
    state.PumpPrefetch();
    state.MaybeStartCompute();
  });
  state.queue.Run();

  GP_CHECK_EQ(state.compute_layer, layer_compute_us.size())
      << "simulation deadlocked";
  result.total_time_us = state.finish_time;
  result.compute_us = state.busy_us;
  result.stall_us = state.finish_time - state.busy_us;
  result.events = state.queue.fired_count();
  return result;
}

}  // namespace gpuperf::simsys
