#include "simsys/serving_matrix.h"

#include <cmath>
#include <span>

namespace gpuperf::simsys {

void FillPredictedServingMatrix(
    const models::KwModel& kw, const std::vector<dnn::Network>& networks,
    const std::vector<const gpuexec::GpuSpec*>& gpus, std::int64_t batch,
    ServingMatrixBuffer& buffer,
    std::vector<std::vector<double>>& predicted) {
  predicted.assign(networks.size(), std::vector<double>(gpus.size(), 0.0));
  buffer.queries.clear();
  buffer.cells.clear();

  // Coverage pass: uncovered cells take the NaN sentinel immediately
  // (the dispatcher degrades that decision); covered cells are packed
  // job-major, so the sweep sees same-network runs and resolves each
  // network's fingerprint and plan once.
  for (std::size_t j = 0; j < networks.size(); ++j) {
    for (std::size_t g = 0; g < gpus.size(); ++g) {
      if (kw.CoverageFor(networks[j], gpus[g]->name).Full()) {
        buffer.queries.push_back({&networks[j], gpus[g], batch});
        buffer.cells.emplace_back(j, g);
      } else {
        predicted[j][g] = std::nan("");
      }
    }
  }

  buffer.out_us.resize(buffer.queries.size());
  kw.PredictMany(buffer.queries, buffer.out_us);
  for (std::size_t i = 0; i < buffer.cells.size(); ++i) {
    predicted[buffer.cells[i].first][buffer.cells[i].second] =
        buffer.out_us[i];
  }
}

}  // namespace gpuperf::simsys
