#ifndef GPUPERF_SIMSYS_DATA_PARALLEL_H_
#define GPUPERF_SIMSYS_DATA_PARALLEL_H_

/**
 * @file
 * Data-parallel training-step simulation — the multi-GPU research domain
 * the paper's case-study section calls out ("researchers who work in
 * domains such as multi-GPU training architecture").
 *
 * N replicas execute the same training step; each layer's weight
 * gradients are ring-all-reduced across the replicas as soon as that
 * layer's backward pass finishes (gradient bucketing with
 * computation/communication overlap, as in PyTorch DDP), serialized on
 * one inter-GPU link per replica. The step ends when both the backward
 * pass and the last all-reduce have finished. Per-layer compute times
 * come from a performance model, so sweeping cluster sizes and fabrics
 * costs milliseconds.
 */

#include <cstdint>
#include <vector>

namespace gpuperf::simsys {

/** Configuration of the replica group. */
struct DataParallelConfig {
  int num_gpus = 4;
  double link_bandwidth_gbps = 64;  // per-GPU fabric bandwidth
  double link_latency_us = 3.0;     // per all-reduce ring step
  bool overlap = true;              // all-reduce during backward (DDP)
};

/** Outcome of one simulated training step. */
struct DataParallelResult {
  double step_time_us = 0;      // wall time of the step
  double compute_us = 0;        // forward + backward on one replica
  double comm_us = 0;           // total all-reduce link occupancy
  double exposed_comm_us = 0;   // communication not hidden by compute
  double scaling_efficiency = 0;  // compute / step time
};

/**
 * Simulates one data-parallel step.
 *
 * @param forward_us Per-layer forward time on one replica.
 * @param backward_us Per-layer backward time (same indexing; the
 *        backward pass executes these in reverse layer order).
 * @param gradient_bytes Per-layer gradient volume to all-reduce.
 */
DataParallelResult SimulateDataParallelStep(
    const std::vector<double>& forward_us,
    const std::vector<double>& backward_us,
    const std::vector<std::int64_t>& gradient_bytes,
    const DataParallelConfig& config);

/** Ring all-reduce time for `bytes` over `num_gpus` replicas. */
double RingAllReduceUs(std::int64_t bytes, const DataParallelConfig& config);

}  // namespace gpuperf::simsys

#endif  // GPUPERF_SIMSYS_DATA_PARALLEL_H_
