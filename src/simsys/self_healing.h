#ifndef GPUPERF_SIMSYS_SELF_HEALING_H_
#define GPUPERF_SIMSYS_SELF_HEALING_H_

/**
 * @file
 * The self-healing serving loop: epochs of simulated serving feeding
 * the drift-detection / refit / promotion lifecycle.
 *
 * Each epoch:
 *  1. refresh the predicted-service matrix from the registry's current
 *     snapshot (one PredictMany sweep; a promotion between epochs is
 *     picked up here — the new generation's plans compile fresh, so
 *     stale PlanCache entries cannot survive a swap);
 *  2. run SimulateServing with the epoch's slice of the drift timeline
 *     (time_origin_us advances by the epoch duration, so one long
 *     schedule spans the whole run) and observation recording on;
 *  3. stream every completed job into the LifecycleController and let
 *     it advance (trip -> refit -> shadow -> canary -> promote /
 *     rollback), then record the epoch's per-GPU residual summary.
 *
 * Everything downstream of the config is deterministic: arrivals,
 * faults, and drift come from seeded plans, observations are replayed
 * in completion order, and the lifecycle never consults a wall clock —
 * so a fixed scenario heals bit-identically on every run and --jobs
 * value.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "dnn/network.h"
#include "gpuexec/gpu_spec.h"
#include "models/bundle_registry.h"
#include "models/refit.h"
#include "simsys/serving.h"

namespace gpuperf::simsys {

/** Self-healing loop knobs. */
struct SelfHealingConfig {
  // Per-epoch serving configuration. `duration_s` is the epoch length;
  // the loop forces `record_observations = true` and advances
  // `time_origin_us` (and the arrival seed) per epoch itself.
  ServingConfig serving;
  int epochs = 8;
  std::int64_t batch = 16;  // serving batch for the predicted matrix
  // Lifecycle transitions allowed per epoch (1 = one per epoch, the
  // most observable pacing; larger values heal faster).
  int lifecycle_steps_per_epoch = 1;
};

/** One epoch's outcome. */
struct SelfHealingEpoch {
  models::LifecycleState state = models::LifecycleState::kHealthy;
  int completed = 0;
  int dropped = 0;
  int shed = 0;
  // Mean |log(observed/predicted)| and observation count per GPU, over
  // this epoch's completed jobs that had a finite prediction.
  std::vector<double> mean_abs_log_ratio;
  std::vector<int> observation_count;
};

/** The whole run's outcome. */
struct SelfHealingResult {
  std::vector<SelfHealingEpoch> epochs;
  models::LifecycleCounters counters;   // controller counters at the end
  models::LifecycleState final_state = models::LifecycleState::kHealthy;
  std::string final_serving_dir;
};

/**
 * Runs `config.epochs` serving epochs over `controller`'s registry.
 *
 * `registry` must already be serving a generation (the caller seeds it
 * — gpuperf_cli promotes the initial bundle; keeping promotion calls
 * out of simsys is also what the `bundle-lifecycle` lint rule
 * enforces), and `controller` must have been constructed over the same
 * registry with the matching serving directory. `true_service_us` is
 * the undrifted `[job][gpu]` ground truth; drift, faults, and overload
 * mechanics come from `config.serving`.
 *
 * Shapes (networks vs. matrix rows vs. job_mix, gpus vs. columns) are
 * validated here; everything else is validated by SimulateServing.
 */
[[nodiscard]] StatusOr<SelfHealingResult> RunSelfHealingServing(
    const std::vector<dnn::Network>& networks,
    const std::vector<const gpuexec::GpuSpec*>& gpus,
    const std::vector<std::vector<double>>& true_service_us,
    const std::vector<double>& job_mix, models::BundleRegistry* registry,
    models::LifecycleController* controller, const SelfHealingConfig& config);

}  // namespace gpuperf::simsys

#endif  // GPUPERF_SIMSYS_SELF_HEALING_H_
