#include "simsys/pipeline_parallel.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace gpuperf::simsys {

std::vector<int> BalancedPartition(const std::vector<double>& weights,
                                   int stages) {
  GP_CHECK_GT(stages, 0);
  const int n = static_cast<int>(weights.size());
  GP_CHECK_GE(n, stages);

  // prefix[i] = sum of weights[0..i).
  std::vector<double> prefix(n + 1, 0.0);
  for (int i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + weights[i];
  auto segment = [&](int begin, int end) {
    return prefix[end] - prefix[begin];
  };

  // best[s][i]: minimal max-segment-sum splitting weights[0..i) into s
  // segments; cut[s][i] records the last boundary.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> best(
      stages + 1, std::vector<double>(n + 1, kInf));
  std::vector<std::vector<int>> cut(stages + 1, std::vector<int>(n + 1, 0));
  best[0][0] = 0.0;
  for (int s = 1; s <= stages; ++s) {
    for (int i = s; i <= n; ++i) {
      for (int j = s - 1; j < i; ++j) {
        if (best[s - 1][j] == kInf) continue;
        const double candidate =
            std::max(best[s - 1][j], segment(j, i));
        if (candidate < best[s][i]) {
          best[s][i] = candidate;
          cut[s][i] = j;
        }
      }
    }
  }

  std::vector<int> boundaries(stages);
  int position = n;
  for (int s = stages; s >= 1; --s) {
    boundaries[s - 1] = cut[s][position];
    position = cut[s][position];
  }
  return boundaries;
}

PipelineResult SimulatePipeline(
    const std::vector<double>& forward_us,
    const std::vector<double>& backward_us,
    const std::vector<std::int64_t>& activation_bytes,
    const PipelineConfig& config) {
  GP_CHECK_EQ(forward_us.size(), backward_us.size());
  GP_CHECK_EQ(forward_us.size(), activation_bytes.size());
  GP_CHECK_GT(config.micro_batches, 0);
  const int stages = config.num_stages;
  const int micro = config.micro_batches;

  PipelineResult result;
  // Partition by total per-layer compute (forward + backward).
  std::vector<double> weights(forward_us.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = forward_us[i] + backward_us[i];
  }
  result.stage_first_layer = BalancedPartition(weights, stages);

  // Aggregate per-stage costs and boundary transfer times.
  result.stage_forward_us.assign(stages, 0.0);
  result.stage_backward_us.assign(stages, 0.0);
  std::vector<double> transfer_us(stages, 0.0);  // into stage s+1
  for (int s = 0; s < stages; ++s) {
    const int begin = result.stage_first_layer[s];
    const int end = s + 1 < stages ? result.stage_first_layer[s + 1]
                                   : static_cast<int>(forward_us.size());
    for (int i = begin; i < end; ++i) {
      result.stage_forward_us[s] += forward_us[i];
      result.stage_backward_us[s] += backward_us[i];
    }
    if (s + 1 < stages && end > 0) {
      transfer_us[s] = static_cast<double>(activation_bytes[end - 1]) /
                           (config.link_bandwidth_gbps * 1e9) * 1e6 +
                       config.link_latency_us;
    }
  }

  // GPipe schedule: forwards wavefront, then backwards in reverse.
  // done_f[m][s] = completion of micro-batch m's forward on stage s.
  std::vector<std::vector<double>> done_f(
      micro, std::vector<double>(stages, 0.0));
  for (int m = 0; m < micro; ++m) {
    for (int s = 0; s < stages; ++s) {
      const double stage_free = m > 0 ? done_f[m - 1][s] : 0.0;
      const double input_ready =
          s > 0 ? done_f[m][s - 1] + transfer_us[s - 1] : 0.0;
      done_f[m][s] =
          std::max(stage_free, input_ready) + result.stage_forward_us[s];
    }
  }
  // Backward: micro-batches in reverse order, stages from last to first.
  const double flush = done_f[micro - 1][stages - 1];
  std::vector<std::vector<double>> done_b(
      micro, std::vector<double>(stages, 0.0));
  for (int mi = 0; mi < micro; ++mi) {
    const int m = micro - 1 - mi;
    for (int s = stages - 1; s >= 0; --s) {
      const double stage_free =
          mi > 0 ? done_b[micro - mi][s] : flush;
      const double grad_ready =
          s + 1 < stages ? done_b[m][s + 1] + transfer_us[s] : flush;
      done_b[m][s] =
          std::max(stage_free, grad_ready) + result.stage_backward_us[s];
    }
  }
  result.step_time_us = done_b[0][0];

  double busy = 0;
  for (int s = 0; s < stages; ++s) {
    busy += micro * (result.stage_forward_us[s] +
                     result.stage_backward_us[s]);
  }
  result.bubble_fraction =
      1.0 - busy / (static_cast<double>(stages) * result.step_time_us);
  return result;
}

}  // namespace gpuperf::simsys
