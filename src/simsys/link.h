#ifndef GPUPERF_SIMSYS_LINK_H_
#define GPUPERF_SIMSYS_LINK_H_

/**
 * @file
 * A serialized network link with bandwidth and latency — the model that
 * connects the GPU's local memory to the disaggregated memory pool in
 * case study 2.
 */

#include <cstdint>
#include <functional>

#include "simsys/event_queue.h"

namespace gpuperf::simsys {

/** A FIFO link: transfers queue behind each other at fixed bandwidth. */
class NetworkLink {
 public:
  /**
   * @param queue Owning event queue (must outlive the link).
   * @param bandwidth_gbps Link bandwidth in GB/s.
   * @param latency_us One-way latency added to every transfer.
   */
  NetworkLink(EventQueue* queue, double bandwidth_gbps, double latency_us);

  /** Enqueues a transfer; `on_complete` fires when the last byte lands. */
  void Transfer(std::int64_t bytes, std::function<void()> on_complete);

  /** Total bytes ever enqueued. */
  std::int64_t transferred_bytes() const { return transferred_bytes_; }

  /** Simulated time the link spent actively transferring. */
  double busy_us() const { return busy_us_; }

 private:
  EventQueue* queue_;
  double bandwidth_gbps_;
  double latency_us_;
  double free_at_us_ = 0;
  std::int64_t transferred_bytes_ = 0;
  double busy_us_ = 0;
};

}  // namespace gpuperf::simsys

#endif  // GPUPERF_SIMSYS_LINK_H_
