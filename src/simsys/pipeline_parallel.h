#ifndef GPUPERF_SIMSYS_PIPELINE_PARALLEL_H_
#define GPUPERF_SIMSYS_PIPELINE_PARALLEL_H_

/**
 * @file
 * Pipeline-parallel training simulation (GPipe-style).
 *
 * The network's layers are partitioned into contiguous stages, one stage
 * per GPU, balanced by *predicted* per-layer times — one more scheduling
 * problem the paper's microsecond-latency models make cheap to solve. A
 * training step pushes M micro-batches forward through the stages, then
 * flushes the backward passes in reverse; the classic pipeline bubble
 * (S-1)/(M+S-1) emerges, modulated by stage imbalance and inter-stage
 * activation transfers.
 */

#include <cstdint>
#include <vector>

namespace gpuperf::simsys {

/** Configuration of the pipeline. */
struct PipelineConfig {
  int num_stages = 4;
  int micro_batches = 8;
  double link_bandwidth_gbps = 64;  // stage-to-stage activation link
  double link_latency_us = 3.0;
};

/** Outcome of one pipelined training step. */
struct PipelineResult {
  double step_time_us = 0;
  double bubble_fraction = 0;         // pipeline idle share
  std::vector<int> stage_first_layer; // partition boundaries
  std::vector<double> stage_forward_us;   // per stage, per micro-batch
  std::vector<double> stage_backward_us;
};

/**
 * Minimizes the maximum contiguous-segment sum: the optimal balanced
 * partition of `weights` into `stages` segments (dynamic programming).
 * Returns the first index of each segment.
 */
std::vector<int> BalancedPartition(const std::vector<double>& weights,
                                   int stages);

/**
 * Simulates one GPipe step.
 *
 * @param forward_us Per-layer forward time for ONE micro-batch.
 * @param backward_us Per-layer backward time for one micro-batch.
 * @param activation_bytes Per-layer output activation size for one
 *        micro-batch (the boundary layer's output crosses the link).
 */
PipelineResult SimulatePipeline(
    const std::vector<double>& forward_us,
    const std::vector<double>& backward_us,
    const std::vector<std::int64_t>& activation_bytes,
    const PipelineConfig& config);

}  // namespace gpuperf::simsys

#endif  // GPUPERF_SIMSYS_PIPELINE_PARALLEL_H_
