#include "simsys/serving.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"
#include "common/stats.h"
#include "simsys/event_queue.h"

namespace gpuperf::simsys {

std::string DispatchPolicyName(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin: return "round-robin";
    case DispatchPolicy::kLeastOutstanding: return "least-outstanding";
    case DispatchPolicy::kPredictedLeastLoad: return "predicted-least-load";
  }
  GP_CHECK(false);
  return "";
}

ServingResult SimulateServing(
    const std::vector<std::vector<double>>& true_service_us,
    const std::vector<std::vector<double>>& predicted_service_us,
    const std::vector<double>& job_mix, const ServingConfig& config) {
  GP_CHECK(!true_service_us.empty());
  GP_CHECK_EQ(true_service_us.size(), predicted_service_us.size());
  GP_CHECK_EQ(true_service_us.size(), job_mix.size());
  const std::size_t gpus = true_service_us[0].size();
  GP_CHECK_GT(gpus, 0u);
  for (const auto& row : true_service_us) GP_CHECK_EQ(row.size(), gpus);
  GP_CHECK_GT(config.arrival_rate_per_s, 0.0);

  double mix_total = 0;
  for (double w : job_mix) {
    GP_CHECK_GE(w, 0.0);
    mix_total += w;
  }
  GP_CHECK_GT(mix_total, 0.0);

  Rng rng(config.seed);
  EventQueue queue;
  // Per-GPU FIFO: when the GPU frees up (true time) and its predicted
  // free-up time (what the model-driven dispatcher believes).
  std::vector<double> gpu_free(gpus, 0.0);
  std::vector<double> gpu_predicted_free(gpus, 0.0);
  std::vector<int> gpu_outstanding(gpus, 0);
  std::vector<double> gpu_busy(gpus, 0.0);
  std::vector<double> latencies_ms;
  int round_robin_next = 0;

  const double horizon_us = config.duration_s * 1e6;
  double next_arrival = 0;
  while (true) {
    // Exponential inter-arrival times.
    next_arrival +=
        -std::log(1.0 - rng.NextDouble()) / config.arrival_rate_per_s * 1e6;
    if (next_arrival > horizon_us) break;

    // Sample the job type from the mix.
    double pick = rng.NextDouble() * mix_total;
    std::size_t job = 0;
    for (; job + 1 < job_mix.size(); ++job) {
      if (pick < job_mix[job]) break;
      pick -= job_mix[job];
    }

    const double arrival = next_arrival;
    queue.Schedule(arrival, [&, job, arrival] {
      // Dispatch decision.
      std::size_t target = 0;
      switch (config.policy) {
        case DispatchPolicy::kRoundRobin:
          target = round_robin_next++ % gpus;
          break;
        case DispatchPolicy::kLeastOutstanding: {
          target = std::min_element(gpu_outstanding.begin(),
                                    gpu_outstanding.end()) -
                   gpu_outstanding.begin();
          break;
        }
        case DispatchPolicy::kPredictedLeastLoad: {
          double best = 1e300;
          for (std::size_t g = 0; g < gpus; ++g) {
            const double finish =
                std::max(gpu_predicted_free[g], queue.NowUs()) +
                predicted_service_us[job][g];
            if (finish < best) {
              best = finish;
              target = g;
            }
          }
          break;
        }
      }
      const double service = true_service_us[job][target];
      const double start = std::max(gpu_free[target], queue.NowUs());
      gpu_free[target] = start + service;
      gpu_predicted_free[target] =
          std::max(gpu_predicted_free[target], queue.NowUs()) +
          predicted_service_us[job][target];
      gpu_busy[target] += service;
      ++gpu_outstanding[target];
      queue.Schedule(gpu_free[target], [&, arrival, target] {
        latencies_ms.push_back((queue.NowUs() - arrival) / 1e3);
        --gpu_outstanding[target];
      });
    });
  }
  queue.Run();

  ServingResult result;
  result.completed = static_cast<int>(latencies_ms.size());
  if (!latencies_ms.empty()) {
    result.p50_ms = Percentile(latencies_ms, 50);
    result.p95_ms = Percentile(latencies_ms, 95);
    result.p99_ms = Percentile(latencies_ms, 99);
    result.mean_ms = Mean(latencies_ms);
  }
  const double end = std::max(queue.NowUs(), 1.0);
  for (std::size_t g = 0; g < gpus; ++g) {
    result.gpu_utilization.push_back(gpu_busy[g] / end);
  }
  return result;
}

}  // namespace gpuperf::simsys
