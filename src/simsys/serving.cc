#include "simsys/serving.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "gpuexec/oracle.h"
#include "obs/breaker_metrics.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/span_tracer.h"
#include "simsys/event_queue.h"

namespace gpuperf::simsys {

namespace {

// Flight-recorder channel names mirror the gpuperf_serving_* registry
// families bumped in RecordSimulation, so summing a channel's
// per-window deltas across every cell reproduces the final registry
// snapshot totals (the obs smoke asserts exactly this).
constexpr char kChCompleted[] = "gpuperf_serving_jobs_completed";
constexpr char kChDropped[] = "gpuperf_serving_jobs_dropped";
constexpr char kChShed[] = "gpuperf_serving_jobs_shed";
constexpr char kChRetries[] = "gpuperf_serving_retries";
constexpr char kChRetriesSuppressed[] = "gpuperf_serving_retries_suppressed";
constexpr char kChBreakerOpens[] = "gpuperf_serving_breaker_opens";
constexpr char kChDeadlineMisses[] = "gpuperf_serving_deadline_misses";
constexpr char kChHedgesIssued[] = "gpuperf_serving_hedges_issued";
constexpr char kChHedgesWon[] = "gpuperf_serving_hedges_won";
constexpr char kChQueueDepth[] = "gpuperf_serving_queue_depth";
constexpr char kChLatencyMs[] = "gpuperf_serving_latency_ms";
constexpr char kChResidualPct[] = "gpuperf_serving_residual_pct";

/**
 * The serving module's registry instruments, resolved once (name
 * lookup takes the registry Mutex) and bumped lock-free afterwards —
 * possibly from many grid threads at once. Naming per DESIGN.md §10:
 * gpuperf_serving_<name>.
 */
struct ServingMetrics {
  obs::Counter& simulations;
  obs::Counter& jobs_arrived;
  obs::Counter& jobs_completed;
  obs::Counter& jobs_dropped;
  obs::Counter& jobs_shed;
  obs::Counter& retries;
  obs::Counter& breaker_opens;
  obs::Counter& deadline_misses;
  obs::Counter& hedges_issued;
  obs::Counter& hedges_won;
  obs::Counter& retries_suppressed;
  obs::Histogram& latency_ms;

  static ServingMetrics& Get() {
    static ServingMetrics* const kMetrics = [] {
      // Breakers run inside serving sims; bind their transition hook to
      // the gpuperf_breaker_* counters before the first one can trip.
      obs::InstallBreakerMetrics();
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return new ServingMetrics{
          registry.counter("gpuperf_serving_simulations",
                           "Successful SimulateServing returns"),
          registry.counter("gpuperf_serving_jobs_arrived",
                           "Arrivals (completed + dropped + shed)"),
          registry.counter("gpuperf_serving_jobs_completed",
                           "Jobs served to completion"),
          registry.counter("gpuperf_serving_jobs_dropped",
                           "Jobs abandoned after the retry budget"),
          registry.counter("gpuperf_serving_jobs_shed",
                           "Admission-control rejections"),
          registry.counter("gpuperf_serving_retries",
                           "Re-dispatches caused by GPU failures"),
          registry.counter("gpuperf_serving_breaker_opens",
                           "Circuit-breaker trips across the pool"),
          registry.counter("gpuperf_serving_deadline_misses",
                           "Completions later than the SLO"),
          registry.counter("gpuperf_serving_hedges_issued",
                           "Duplicate dispatches for slow jobs"),
          registry.counter("gpuperf_serving_hedges_won",
                           "Jobs delivered by the hedge leg"),
          registry.counter("gpuperf_serving_retries_suppressed",
                           "Retries dropped by an empty token bucket"),
          registry.histogram("gpuperf_serving_latency_ms",
                             {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000},
                             "End-to-end job latency in milliseconds")};
    }();
    return *kMetrics;
  }
};

void RecordSimulation(const ServingResult& result,
                      const std::vector<double>& latencies_ms) {
  ServingMetrics& metrics = ServingMetrics::Get();
  metrics.simulations.Increment();
  metrics.jobs_arrived.Increment(static_cast<std::uint64_t>(
      result.completed + result.dropped + result.shed_on_admission));
  metrics.jobs_completed.Increment(
      static_cast<std::uint64_t>(result.completed));
  metrics.jobs_dropped.Increment(static_cast<std::uint64_t>(result.dropped));
  metrics.jobs_shed.Increment(
      static_cast<std::uint64_t>(result.shed_on_admission));
  metrics.retries.Increment(static_cast<std::uint64_t>(result.retries));
  metrics.breaker_opens.Increment(
      static_cast<std::uint64_t>(result.breaker_opens));
  metrics.deadline_misses.Increment(
      static_cast<std::uint64_t>(result.deadline_misses));
  metrics.hedges_issued.Increment(
      static_cast<std::uint64_t>(result.hedges_issued));
  metrics.hedges_won.Increment(
      static_cast<std::uint64_t>(result.hedges_won));
  metrics.retries_suppressed.Increment(
      static_cast<std::uint64_t>(result.retries_suppressed));
  for (double latency : latencies_ms) metrics.latency_ms.Observe(latency);
}

}  // namespace

ServingCounters SnapshotServingCounters() {
  const ServingMetrics& metrics = ServingMetrics::Get();
  ServingCounters counters;
  counters.simulations = metrics.simulations.Value();
  counters.jobs_arrived = metrics.jobs_arrived.Value();
  counters.jobs_completed = metrics.jobs_completed.Value();
  counters.jobs_dropped = metrics.jobs_dropped.Value();
  counters.jobs_shed = metrics.jobs_shed.Value();
  counters.retries = metrics.retries.Value();
  counters.breaker_opens = metrics.breaker_opens.Value();
  return counters;
}

void ResetServingCounters() {
  ServingMetrics& metrics = ServingMetrics::Get();
  metrics.simulations.Reset();
  metrics.jobs_arrived.Reset();
  metrics.jobs_completed.Reset();
  metrics.jobs_dropped.Reset();
  metrics.jobs_shed.Reset();
  metrics.retries.Reset();
  metrics.breaker_opens.Reset();
  metrics.deadline_misses.Reset();
  metrics.hedges_issued.Reset();
  metrics.hedges_won.Reset();
  metrics.retries_suppressed.Reset();
  metrics.latency_ms.Reset();
}

std::string DispatchPolicyName(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin: return "round-robin";
    case DispatchPolicy::kLeastOutstanding: return "least-outstanding";
    case DispatchPolicy::kPredictedLeastLoad: return "predicted-least-load";
  }
  GP_CHECK(false);
  return "";
}

namespace {

/** How a dispatch attempt resolved its target search. */
enum class PickOutcome {
  kOk,         // a GPU was selected
  kPoolDown,   // nothing up (or breaker-allowed): retry later
  kQueueFull,  // live GPUs exist, but every bounded queue is full: shed
};

/** Mutable simulation state shared by the event handlers. */
struct Sim {
  const std::vector<std::vector<double>>& truth;
  const std::vector<std::vector<double>>& predicted;  // empty = no model
  const ServingConfig& config;
  std::size_t gpus;
  EventQueue queue;
  FaultPlan plan;

  // Per-GPU FIFO: when the GPU frees up (true time) and its predicted
  // free-up time (what the model-driven dispatcher believes).
  std::vector<double> gpu_free;
  std::vector<double> gpu_predicted_free;
  std::vector<int> gpu_outstanding;
  std::vector<double> gpu_busy;
  std::vector<CircuitBreaker> breakers;
  std::vector<double> latencies_ms;
  std::vector<ServingObservation> observations;  // record_observations only
  int round_robin_next = 0;

  // Gray-failure resilience state. `chaos` is borrowed (nullptr = no
  // chaos); `retry_tokens` is the per-simulation retry token bucket;
  // `observed_service_us` feeds the adaptive detection timeout.
  const ChaosPlan* chaos = nullptr;
  double retry_tokens = 0;
  std::vector<double> observed_service_us;
  int hedges_issued = 0;
  int hedges_won = 0;
  int retries_suppressed = 0;

  // Optional sim-time lifecycle recording; null = tracing off. Track 0
  // is the dispatcher (shed/drop/retry instants), track g+1 is GPU g
  // (queue-wait and service spans). Purely observational: no branch in
  // the simulation ever reads tracer state.
  obs::SpanTracer* tracer = nullptr;

  // Optional sim-time flight recording; null = off. Event handlers bump
  // counters/gauges/sketches here; windows close lazily in the run
  // loop. Purely observational, like `tracer`.
  obs::FlightRecorder* recorder = nullptr;
  // Cached channel handles (valid while `recorder` is): per-event
  // updates must not pay the by-name map lookup (bench_speed_obs).
  obs::FlightRecorder::CounterHandle ch_completed, ch_dropped, ch_shed,
      ch_retries, ch_retries_suppressed, ch_breaker_opens,
      ch_deadline_misses, ch_hedges_issued, ch_hedges_won;
  obs::FlightRecorder::GaugeHandle ch_queue_depth;
  obs::FlightRecorder::SketchHandle ch_latency_ms, ch_residual_pct;
  int outstanding_total = 0;  // sum of gpu_outstanding (queue-depth gauge)

  /** Publishes the pool-wide queue depth to the recorder gauge. */
  void RecordQueueDepth() {
    recorder->SetGauge(ch_queue_depth, outstanding_total);
  }

  int retries = 0;
  int dropped = 0;
  int dispatches = 0;
  int degraded = 0;
  int shed = 0;
  int deadline_misses = 0;
  int completed_within_slo = 0;

  Sim(const std::vector<std::vector<double>>& truth_in,
      const std::vector<std::vector<double>>& predicted_in,
      const ServingConfig& config_in, std::size_t gpus_in, FaultPlan plan_in)
      : truth(truth_in),
        predicted(predicted_in),
        config(config_in),
        gpus(gpus_in),
        plan(std::move(plan_in)),
        gpu_free(gpus_in, 0.0),
        gpu_predicted_free(gpus_in, 0.0),
        gpu_outstanding(gpus_in, 0),
        gpu_busy(gpus_in, 0.0),
        breakers(gpus_in, CircuitBreaker(config_in.breaker)) {}

  /**
   * Failure-detection delay: the fixed `retry.detect_timeout_ms`, or —
   * once adaptive detection has enough completions to trust — the
   * configured quantile of observed service times scaled by the
   * multiplier, whichever is larger. Under gray failures the observed
   * quantile tracks the real (slowed) service distribution, so healthy
   * slow jobs are not misdetected as failures.
   */
  double DetectTimeoutMs() const {
    const RetryPolicy& r = config.retry;
    if (config.adaptive_detect_quantile <= 0 ||
        observed_service_us.size() < 8) {
      return r.detect_timeout_ms;
    }
    const double quantile_us = Percentile(
        observed_service_us, config.adaptive_detect_quantile * 100);
    return std::max(r.detect_timeout_ms,
                    quantile_us * config.adaptive_detect_multiplier / 1e3);
  }

  /** Delay before re-dispatching after the `attempt`-th failure (0-based):
   *  failure-detection timeout plus capped exponential backoff. */
  double RetryDelayUs(int attempt) const {
    const RetryPolicy& r = config.retry;
    const double backoff_ms =
        std::min(r.backoff_base_ms * std::ldexp(1.0, attempt),
                 r.backoff_cap_ms);
    return (DetectTimeoutMs() + backoff_ms) * 1e3;
  }

  /** Memory-bound time share of (job, gpu) for scoped drift events. */
  double MemoryShare(std::size_t job, std::size_t gpu) const {
    if (config.drift_memory_share == nullptr) return 0.5;
    return (*config.drift_memory_share)[job][gpu];
  }

  /** `truth[job][target]` with the drift schedule applied at `start`. */
  double DriftedService(std::size_t job, std::size_t target,
                        double start) const {
    const double service = truth[job][target];
    if (config.drift == nullptr || config.drift->empty()) return service;
    return service * config.drift->FactorAt(target,
                                            config.time_origin_us + start,
                                            MemoryShare(job, target));
  }

  /** Drifted service time with the chaos slowdown sampled at `start`
   *  applied for the leg's whole duration. */
  double ServiceTime(std::size_t job, std::size_t target,
                     double start) const {
    double service = DriftedService(job, target, start);
    if (chaos != nullptr) service *= chaos->SlowdownAt(target, start);
    return service;
  }

  /** Least-outstanding among the up candidates. */
  std::size_t LeastOutstanding(const std::vector<std::size_t>& up) const {
    std::size_t target = up[0];
    for (std::size_t g : up) {
      if (gpu_outstanding[g] < gpu_outstanding[target]) target = g;
    }
    return target;
  }

  /**
   * Picks a GPU among those live right now: up per the fault plan,
   * admitted by the circuit breaker, and (with a bounded queue) below
   * queue_cap. kPoolDown means retry later (an outage or cooldown may
   * end); kQueueFull means admission control sheds the job. Sets
   * *degraded_decision when a predicted-least-load decision had to fall
   * back to least-outstanding because predictions are missing or
   * non-finite.
   */
  PickOutcome PickTarget(std::size_t job, std::size_t* target,
                         bool* degraded_decision) {
    *degraded_decision = false;
    const double now = queue.NowUs();
    std::vector<bool> live(gpus, false);
    std::vector<std::size_t> candidates;
    candidates.reserve(gpus);
    bool any_live = false;
    for (std::size_t g = 0; g < gpus; ++g) {
      if (plan.IsDownAt(g, now) || !breakers[g].AllowsAt(now)) continue;
      any_live = true;
      if (config.queue_cap > 0 && gpu_outstanding[g] >= config.queue_cap) {
        continue;  // live but full: bounded queue rejects new work
      }
      live[g] = true;
      candidates.push_back(g);
    }
    if (candidates.empty()) {
      return any_live ? PickOutcome::kQueueFull : PickOutcome::kPoolDown;
    }

    switch (config.policy) {
      case DispatchPolicy::kRoundRobin: {
        // Probe from the cursor for the first live GPU; fault-free this
        // is exactly `round_robin_next++ % gpus`.
        const int start = round_robin_next++;
        for (std::size_t i = 0; i < gpus; ++i) {
          const std::size_t g =
              (static_cast<std::size_t>(start) + i) % gpus;
          if (live[g]) {
            *target = g;
            return PickOutcome::kOk;
          }
        }
        *target = candidates[0];
        return PickOutcome::kOk;
      }
      case DispatchPolicy::kLeastOutstanding:
        *target = LeastOutstanding(candidates);
        return PickOutcome::kOk;
      case DispatchPolicy::kPredictedLeastLoad: {
        bool usable = !predicted.empty();
        if (usable) {
          for (std::size_t g : candidates) {
            if (!std::isfinite(predicted[job][g])) {
              usable = false;
              break;
            }
          }
        }
        if (!usable) {
          // Graceful degradation: serve with the best model-free policy
          // rather than failing the dispatch.
          *degraded_decision = true;
          *target = LeastOutstanding(candidates);
          return PickOutcome::kOk;
        }
        double best = 1e300;
        *target = candidates[0];
        for (std::size_t g : candidates) {
          const double finish = std::max(gpu_predicted_free[g], now) +
                                predicted[job][g];
          if (finish < best) {
            best = finish;
            *target = g;
          }
        }
        return PickOutcome::kOk;
      }
    }
    GP_CHECK(false);
    return PickOutcome::kPoolDown;
  }

  /** args body shared by every trace event of one job attempt. */
  std::string TraceArgs(std::size_t id, std::size_t job, int attempt) const {
    return Format("\"id\":%zu,\"job\":%zu,\"attempt\":%d", id, job, attempt);
  }

  /** Drops the job or schedules its next attempt after the backoff. */
  void RetryOrDrop(std::size_t id, std::size_t job, double arrival,
                   int attempt) {
    if (attempt >= config.retry.max_retries) {
      ++dropped;
      if (recorder != nullptr) recorder->Count(ch_dropped);
      if (tracer != nullptr) {
        tracer->Instant(0, "drop", "retry", queue.NowUs(),
                        TraceArgs(id, job, attempt));
      }
      return;
    }
    if (config.retry_budget > 0 && retry_tokens < 1.0) {
      // Token bucket empty: a mass failure has outrun the completions
      // that refill it. Dropping here is what breaks the retry-storm
      // metastable state — the drop is final, not deferred load.
      ++retries_suppressed;
      ++dropped;
      if (recorder != nullptr) {
        recorder->Count(ch_retries_suppressed);
        recorder->Count(ch_dropped);
      }
      if (tracer != nullptr) {
        tracer->Instant(0, "drop", "retry", queue.NowUs(),
                        TraceArgs(id, job, attempt) +
                            ",\"reason\":\"retry-budget\"");
      }
      return;
    }
    if (config.retry_budget > 0) retry_tokens -= 1.0;
    ++retries;
    if (recorder != nullptr) recorder->Count(ch_retries);
    const double at = queue.NowUs() + RetryDelayUs(attempt);
    if (tracer != nullptr) {
      tracer->Instant(
          0, "retry", "retry", queue.NowUs(),
          TraceArgs(id, job, attempt) + Format(",\"next_at_us\":%.3f", at));
    }
    queue.Schedule(at, [this, id, job, arrival, attempt] {
      Dispatch(id, job, arrival, attempt + 1);
    });
  }

  /** One dispatch attempt of `job` (attempt 0 = first try). */
  void Dispatch(std::size_t id, std::size_t job, double arrival,
                int attempt) {
    std::size_t target = 0;
    bool degraded_decision = false;
    switch (PickTarget(job, &target, &degraded_decision)) {
      case PickOutcome::kPoolDown:
        // Whole pool down: detection timeout + backoff, like a failure.
        RetryOrDrop(id, job, arrival, attempt);
        return;
      case PickOutcome::kQueueFull:
        // Admission control: every live queue is at capacity. Shedding
        // now is cheaper than queueing into a deadline miss.
        ++shed;
        if (recorder != nullptr) recorder->Count(ch_shed);
        if (tracer != nullptr) {
          tracer->Instant(0, "shed", "admission", queue.NowUs(),
                          TraceArgs(id, job, attempt) +
                              ",\"reason\":\"queue-full\"");
        }
        return;
      case PickOutcome::kOk:
        break;
    }

    const double now = queue.NowUs();
    // Prediction-driven load shedding: when the model already knows the
    // deadline is hopeless on the best available GPU, reject at
    // admission instead of wasting service time on a guaranteed miss.
    if (config.slo_ms > 0 && !predicted.empty() &&
        std::isfinite(predicted[job][target])) {
      const double predicted_latency_ms =
          (std::max(gpu_predicted_free[target], now) +
           predicted[job][target] - arrival) /
          1e3;
      if (predicted_latency_ms > config.slo_ms) {
        ++shed;
        if (recorder != nullptr) recorder->Count(ch_shed);
        if (tracer != nullptr) {
          tracer->Instant(0, "shed", "admission", now,
                          TraceArgs(id, job, attempt) +
                              ",\"reason\":\"predicted-slo-miss\"");
        }
        return;
      }
    }

    ++dispatches;
    if (degraded_decision) ++degraded;
    breakers[target].OnDispatch(now);

    const double start = std::max(gpu_free[target], now);
    const double service = ServiceTime(job, target, start);
    if (!predicted.empty() && std::isfinite(predicted[job][target])) {
      gpu_predicted_free[target] =
          std::max(gpu_predicted_free[target], now) + predicted[job][target];
    }
    ++gpu_outstanding[target];
    ++outstanding_total;
    if (recorder != nullptr) RecordQueueDepth();
    const int track = static_cast<int>(target) + 1;
    if (tracer != nullptr && start > now) {
      tracer->Span(track, "queued", "queue", now, start,
                   TraceArgs(id, job, attempt));
    }

    // One leg on `target`: either it completes at start + service, or
    // the GPU fails under it mid-job (or while it is queued) and the
    // partial work is wasted. Both outcomes are known now; committing
    // the GPU timeline here keeps later dispatch decisions consistent.
    const DownInterval* outage =
        plan.FirstOutageIn(target, start, start + service);
    const bool fails = outage != nullptr;
    const double leg_end =
        fails ? std::max(start, outage->down_us) : start + service;
    gpu_busy[target] += leg_end - start;
    gpu_free[target] = leg_end;
    if (tracer != nullptr) {
      tracer->Span(track, Format("job %zu", job), "service", start, leg_end,
                   TraceArgs(id, job, attempt) +
                       (fails ? std::string(",\"outcome\":\"failed\"")
                              : Format(",\"wait_us\":%.3f", start - now)));
    }

    // Hedged dispatch: if the job will still be running once it has
    // exceeded its predicted time by the trigger factor, revisit it
    // then — the dispatcher cannot tell "slow" from "dying", so it
    // duplicates the work instead of guessing.
    if (config.hedge_trigger_factor > 0 && !predicted.empty() &&
        std::isfinite(predicted[job][target])) {
      const double trigger =
          start + predicted[job][target] * config.hedge_trigger_factor;
      if (trigger < leg_end) {
        queue.Schedule(trigger, [this, id, job, arrival, attempt, target,
                                 start, service, leg_end, fails] {
          HedgeCheck(id, job, arrival, attempt, target, start, service,
                     leg_end, fails);
        });
        return;
      }
    }
    if (fails) {
      ScheduleLegFailure(id, job, arrival, attempt, target, leg_end,
                         /*retry=*/true);
    } else {
      ScheduleLegCompletion(job, target, arrival, start, service, leg_end);
    }
  }

  /**
   * The hedge trigger fired while the primary leg is still running:
   * duplicate the job onto a second GPU picked live right now (primary
   * excluded; least-outstanding — the model already voted for the
   * primary, the hedge buys diversity). First completion wins; the
   * loser is cancelled and its unspent tail refunded. A hedge landing
   * on a half-open breaker claims that breaker's probe slot exactly
   * like a normal dispatch.
   */
  void HedgeCheck(std::size_t id, std::size_t job, double arrival,
                  int attempt, std::size_t primary, double primary_start,
                  double primary_service, double primary_end,
                  bool primary_fails) {
    const double now = queue.NowUs();
    std::vector<std::size_t> candidates;
    candidates.reserve(gpus);
    for (std::size_t g = 0; g < gpus; ++g) {
      if (g == primary) continue;
      if (plan.IsDownAt(g, now) || !breakers[g].AllowsAt(now)) continue;
      if (config.queue_cap > 0 && gpu_outstanding[g] >= config.queue_cap) {
        continue;
      }
      candidates.push_back(g);
    }
    if (candidates.empty()) {
      // No second GPU to hedge onto: the job continues unhedged.
      if (primary_fails) {
        ScheduleLegFailure(id, job, arrival, attempt, primary, primary_end,
                           /*retry=*/true);
      } else {
        ScheduleLegCompletion(job, primary, arrival, primary_start,
                              primary_service, primary_end);
      }
      return;
    }

    const std::size_t hedge = LeastOutstanding(candidates);
    ++hedges_issued;
    if (recorder != nullptr) recorder->Count(ch_hedges_issued);
    breakers[hedge].OnDispatch(now);
    ++gpu_outstanding[hedge];
    ++outstanding_total;
    if (recorder != nullptr) RecordQueueDepth();
    const double hedge_start = std::max(gpu_free[hedge], now);
    const double hedge_service = ServiceTime(job, hedge, hedge_start);
    const DownInterval* outage =
        plan.FirstOutageIn(hedge, hedge_start, hedge_start + hedge_service);
    const bool hedge_fails = outage != nullptr;
    const double hedge_end = hedge_fails
                                 ? std::max(hedge_start, outage->down_us)
                                 : hedge_start + hedge_service;
    gpu_busy[hedge] += hedge_end - hedge_start;
    gpu_free[hedge] = hedge_end;
    if (tracer != nullptr) {
      tracer->Span(static_cast<int>(hedge) + 1, Format("job %zu", job),
                   "hedge", hedge_start, hedge_end,
                   TraceArgs(id, job, attempt) +
                       (hedge_fails ? ",\"outcome\":\"failed\"" : ""));
    }

    if (primary_fails && hedge_fails) {
      // Both legs die; the later failure carries the retry so the job
      // is re-dispatched exactly once.
      const bool primary_last = primary_end >= hedge_end;
      ScheduleLegFailure(id, job, arrival, attempt, primary, primary_end,
                         /*retry=*/primary_last);
      ScheduleLegFailure(id, job, arrival, attempt, hedge, hedge_end,
                         /*retry=*/!primary_last);
      return;
    }
    if (primary_fails) {
      // The hedge saves the job: the primary's failure still feeds its
      // breaker, but no retry is needed.
      ++hedges_won;
      if (recorder != nullptr) recorder->Count(ch_hedges_won);
      ScheduleLegFailure(id, job, arrival, attempt, primary, primary_end,
                         /*retry=*/false);
      ScheduleLegCompletion(job, hedge, arrival, hedge_start, hedge_service,
                            hedge_end);
      return;
    }
    if (hedge_fails) {
      ScheduleLegFailure(id, job, arrival, attempt, hedge, hedge_end,
                         /*retry=*/false);
      ScheduleLegCompletion(job, primary, arrival, primary_start,
                            primary_service, primary_end);
      return;
    }
    if (hedge_end < primary_end) {
      ++hedges_won;
      if (recorder != nullptr) recorder->Count(ch_hedges_won);
      ScheduleLegCompletion(job, hedge, arrival, hedge_start, hedge_service,
                            hedge_end);
      ScheduleLegCancel(id, job, attempt, primary, primary_start,
                        primary_end, hedge_end);
    } else {
      ScheduleLegCompletion(job, primary, arrival, primary_start,
                            primary_service, primary_end);
      ScheduleLegCancel(id, job, attempt, hedge, hedge_start, hedge_end,
                        primary_end);
    }
  }

  /** Schedules one leg's failure bookkeeping at `fail_at`; when `retry`
   *  is set the job re-enters the retry path (no leg survived). */
  void ScheduleLegFailure(std::size_t id, std::size_t job, double arrival,
                          int attempt, std::size_t gpu, double fail_at,
                          bool retry) {
    queue.Schedule(fail_at, [this, id, job, arrival, attempt, gpu, retry] {
      --gpu_outstanding[gpu];
      --outstanding_total;
      if (recorder != nullptr) RecordQueueDepth();
      const std::int64_t opens_before = breakers[gpu].opens();
      breakers[gpu].OnFailure(queue.NowUs());
      if (breakers[gpu].opens() > opens_before) {
        if (recorder != nullptr) recorder->Count(ch_breaker_opens);
        if (tracer != nullptr) {
          tracer->Instant(static_cast<int>(gpu) + 1, "breaker-open",
                          "breaker", queue.NowUs(),
                          TraceArgs(id, job, attempt));
        }
      }
      if (retry) RetryOrDrop(id, job, arrival, attempt);
    });
  }

  /** Schedules the winning leg's completion bookkeeping at `leg_end`. */
  void ScheduleLegCompletion(std::size_t job, std::size_t gpu,
                             double arrival, double leg_start,
                             double service, double leg_end) {
    queue.Schedule(leg_end, [this, job, gpu, arrival, leg_start, service] {
      const double latency_ms = (queue.NowUs() - arrival) / 1e3;
      latencies_ms.push_back(latency_ms);
      --gpu_outstanding[gpu];
      --outstanding_total;
      breakers[gpu].OnSuccess(queue.NowUs());
      observed_service_us.push_back(service);
      if (recorder != nullptr) {
        RecordQueueDepth();
        recorder->Count(ch_completed);
        recorder->Observe(ch_latency_ms, latency_ms);
        if (!predicted.empty() && std::isfinite(predicted[job][gpu]) &&
            predicted[job][gpu] > 0) {
          // Per-completion residual: the signal the drift monitor and
          // `gpuperf explain` attribution both key on.
          recorder->Observe(ch_residual_pct,
                            std::abs(service - predicted[job][gpu]) /
                                predicted[job][gpu] * 100.0);
        }
      }
      if (config.retry_budget > 0) {
        retry_tokens = std::min(config.retry_budget_burst,
                                retry_tokens + config.retry_budget);
      }
      if (config.slo_ms > 0 && latency_ms > config.slo_ms) {
        ++deadline_misses;
        if (recorder != nullptr) recorder->Count(ch_deadline_misses);
      } else {
        ++completed_within_slo;
      }
      if (config.record_observations) {
        const double predicted_us =
            !predicted.empty() && std::isfinite(predicted[job][gpu])
                ? predicted[job][gpu]
                : std::numeric_limits<double>::quiet_NaN();
        observations.push_back({job, gpu, config.time_origin_us + leg_start,
                                service, predicted_us});
      }
    });
  }

  /**
   * Cancels the losing leg at `at` (the winner's completion time). The
   * unspent tail is refunded only when nothing queued behind the leg —
   * `gpu_free` still equals the leg's end — otherwise the capacity is
   * already committed and the leg just runs out. The breaker sees a
   * cancellation, not a verdict: a cancelled half-open probe releases
   * its slot instead of wedging the breaker.
   */
  void ScheduleLegCancel(std::size_t id, std::size_t job, int attempt,
                         std::size_t gpu, double leg_start, double leg_end,
                         double at) {
    queue.Schedule(at, [this, id, job, attempt, gpu, leg_start, leg_end] {
      const double now = queue.NowUs();
      if (gpu_free[gpu] == leg_end) {
        const double stop = std::clamp(now, leg_start, leg_end);
        gpu_busy[gpu] -= leg_end - stop;
        gpu_free[gpu] = stop;
      }
      --gpu_outstanding[gpu];
      --outstanding_total;
      if (recorder != nullptr) RecordQueueDepth();
      breakers[gpu].OnCancel(now);
      if (tracer != nullptr) {
        tracer->Instant(static_cast<int>(gpu) + 1, "hedge-cancel", "hedge",
                        now, TraceArgs(id, job, attempt));
      }
    });
  }
};

Status ValidateInputs(const std::vector<std::vector<double>>& true_service_us,
                      const std::vector<std::vector<double>>& predicted,
                      const std::vector<double>& job_mix,
                      const ServingConfig& config) {
  if (true_service_us.empty()) {
    return InvalidArgumentError("true_service_us is empty (no job types)");
  }
  const std::size_t gpus = true_service_us[0].size();
  if (gpus == 0) {
    return InvalidArgumentError("true_service_us has no GPUs (empty pool)");
  }
  for (std::size_t j = 0; j < true_service_us.size(); ++j) {
    if (true_service_us[j].size() != gpus) {
      return InvalidArgumentError(Format(
          "true_service_us row %zu has %zu GPUs, row 0 has %zu", j,
          true_service_us[j].size(), gpus));
    }
    for (std::size_t g = 0; g < gpus; ++g) {
      const double t = true_service_us[j][g];
      if (!std::isfinite(t) || t <= 0) {
        return InvalidArgumentError(Format(
            "true_service_us[%zu][%zu] = %g is not a positive finite time",
            j, g, t));
      }
    }
  }
  // predicted may be empty (no model: predicted-least-load degrades), but
  // when present it must match the truth's shape. Non-finite *values* are
  // allowed — they degrade the affected decisions instead.
  if (!predicted.empty()) {
    if (predicted.size() != true_service_us.size()) {
      return InvalidArgumentError(Format(
          "predicted_service_us has %zu job types, true_service_us has %zu",
          predicted.size(), true_service_us.size()));
    }
    for (std::size_t j = 0; j < predicted.size(); ++j) {
      if (predicted[j].size() != gpus) {
        return InvalidArgumentError(Format(
            "predicted_service_us row %zu has %zu GPUs, expected %zu", j,
            predicted[j].size(), gpus));
      }
    }
  }
  if (job_mix.size() != true_service_us.size()) {
    return InvalidArgumentError(
        Format("job_mix has %zu entries, true_service_us has %zu job types",
               job_mix.size(), true_service_us.size()));
  }
  double mix_total = 0;
  for (std::size_t j = 0; j < job_mix.size(); ++j) {
    if (!std::isfinite(job_mix[j]) || job_mix[j] < 0) {
      return InvalidArgumentError(Format(
          "job_mix[%zu] = %g is not a non-negative finite weight", j,
          job_mix[j]));
    }
    mix_total += job_mix[j];
  }
  if (mix_total <= 0) {
    return InvalidArgumentError("job_mix sums to zero (no job can arrive)");
  }
  if (!std::isfinite(config.arrival_rate_per_s) ||
      config.arrival_rate_per_s <= 0) {
    return InvalidArgumentError(
        Format("arrival_rate_per_s = %g must be positive and finite",
               config.arrival_rate_per_s));
  }
  if (!std::isfinite(config.duration_s) || config.duration_s <= 0) {
    return InvalidArgumentError(Format(
        "duration_s = %g must be positive and finite", config.duration_s));
  }
  if (!std::isfinite(config.faults.mtbf_s) || config.faults.mtbf_s < 0) {
    return InvalidArgumentError(Format(
        "faults.mtbf_s = %g must be non-negative and finite (0 disables "
        "fault injection)",
        config.faults.mtbf_s));
  }
  if (config.faults.mtbf_s > 0 &&
      (!std::isfinite(config.faults.mttr_s) || config.faults.mttr_s < 0)) {
    return InvalidArgumentError(Format(
        "faults.mttr_s = %g must be non-negative and finite when faults "
        "are enabled (0 = instant repair)",
        config.faults.mttr_s));
  }
  if (config.fault_plan != nullptr &&
      config.fault_plan->resources() < gpus) {
    return InvalidArgumentError(Format(
        "fault_plan covers %zu resources, pool has %zu GPUs",
        config.fault_plan->resources(), gpus));
  }
  if (config.drift != nullptr && !config.drift->empty() &&
      config.drift->resources() < gpus) {
    return InvalidArgumentError(
        Format("drift schedule covers %zu resources, pool has %zu GPUs",
               config.drift->resources(), gpus));
  }
  if (!std::isfinite(config.time_origin_us) || config.time_origin_us < 0) {
    return InvalidArgumentError(Format(
        "time_origin_us = %g must be non-negative and finite",
        config.time_origin_us));
  }
  if (config.drift_memory_share != nullptr) {
    const std::vector<std::vector<double>>& share =
        *config.drift_memory_share;
    if (share.size() != true_service_us.size()) {
      return InvalidArgumentError(Format(
          "drift_memory_share has %zu job types, true_service_us has %zu",
          share.size(), true_service_us.size()));
    }
    for (std::size_t j = 0; j < share.size(); ++j) {
      if (share[j].size() != gpus) {
        return InvalidArgumentError(Format(
            "drift_memory_share row %zu has %zu GPUs, expected %zu", j,
            share[j].size(), gpus));
      }
      for (std::size_t g = 0; g < gpus; ++g) {
        const double s = share[j][g];
        if (!std::isfinite(s) || s < 0 || s > 1) {
          return InvalidArgumentError(Format(
              "drift_memory_share[%zu][%zu] = %g is not in [0, 1]", j, g,
              s));
        }
      }
    }
  }
  if (config.retry.max_retries < 0) {
    return InvalidArgumentError(Format(
        "retry.max_retries = %d must be non-negative",
        config.retry.max_retries));
  }
  const RetryPolicy& r = config.retry;
  if (!std::isfinite(r.detect_timeout_ms) || r.detect_timeout_ms < 0 ||
      !std::isfinite(r.backoff_base_ms) || r.backoff_base_ms < 0 ||
      !std::isfinite(r.backoff_cap_ms) || r.backoff_cap_ms < 0) {
    return InvalidArgumentError(Format(
        "retry timeouts (detect %g ms, backoff base %g ms, cap %g ms) must "
        "be non-negative and finite",
        r.detect_timeout_ms, r.backoff_base_ms, r.backoff_cap_ms));
  }
  if (config.queue_cap < 0) {
    return InvalidArgumentError(
        Format("queue_cap = %d must be non-negative (0 disables the "
               "bounded queue)",
               config.queue_cap));
  }
  if (!std::isfinite(config.slo_ms) || config.slo_ms < 0) {
    return InvalidArgumentError(Format(
        "slo_ms = %g must be non-negative and finite (0 disables the SLO)",
        config.slo_ms));
  }
  if (!std::isfinite(config.hedge_trigger_factor) ||
      config.hedge_trigger_factor < 0) {
    return InvalidArgumentError(Format(
        "hedge_trigger_factor = %g must be non-negative and finite (0 "
        "disables hedging)",
        config.hedge_trigger_factor));
  }
  if (!std::isfinite(config.retry_budget) || config.retry_budget < 0) {
    return InvalidArgumentError(Format(
        "retry_budget = %g must be non-negative and finite (0 disables "
        "the retry budget)",
        config.retry_budget));
  }
  if (config.retry_budget > 0 &&
      (!std::isfinite(config.retry_budget_burst) ||
       config.retry_budget_burst < 1)) {
    return InvalidArgumentError(Format(
        "retry_budget_burst = %g must be >= 1 and finite when the retry "
        "budget is enabled",
        config.retry_budget_burst));
  }
  if (!std::isfinite(config.adaptive_detect_quantile) ||
      config.adaptive_detect_quantile < 0 ||
      config.adaptive_detect_quantile > 1) {
    return InvalidArgumentError(Format(
        "adaptive_detect_quantile = %g must be in [0, 1] (0 disables "
        "adaptive detection)",
        config.adaptive_detect_quantile));
  }
  if (config.adaptive_detect_quantile > 0 &&
      (!std::isfinite(config.adaptive_detect_multiplier) ||
       config.adaptive_detect_multiplier <= 0)) {
    return InvalidArgumentError(Format(
        "adaptive_detect_multiplier = %g must be positive and finite",
        config.adaptive_detect_multiplier));
  }
  const ChaosPlanConfig& chaos = config.chaos;
  if (!std::isfinite(chaos.gray_mtbf_s) || chaos.gray_mtbf_s < 0) {
    return InvalidArgumentError(Format(
        "chaos.gray_mtbf_s = %g must be non-negative and finite",
        chaos.gray_mtbf_s));
  }
  if (chaos.gray_mtbf_s > 0) {
    if (!std::isfinite(chaos.gray_mttr_s) || chaos.gray_mttr_s < 0) {
      return InvalidArgumentError(Format(
          "chaos.gray_mttr_s = %g must be non-negative and finite",
          chaos.gray_mttr_s));
    }
    if (!std::isfinite(chaos.gray_factor) || chaos.gray_factor <= 1) {
      return InvalidArgumentError(Format(
          "chaos.gray_factor = %g must be > 1 (a slowdown)",
          chaos.gray_factor));
    }
  }
  if (!std::isfinite(chaos.flap_mtbf_s) || chaos.flap_mtbf_s < 0) {
    return InvalidArgumentError(Format(
        "chaos.flap_mtbf_s = %g must be non-negative and finite",
        chaos.flap_mtbf_s));
  }
  if (chaos.flap_mtbf_s > 0 &&
      (chaos.flap_count < 1 || !std::isfinite(chaos.flap_period_s) ||
       chaos.flap_period_s <= 0 || !std::isfinite(chaos.flap_down_s) ||
       chaos.flap_down_s < 0)) {
    return InvalidArgumentError(Format(
        "chaos flap parameters (count %d, period %g s, down %g s) must be "
        "count >= 1, period > 0, down >= 0",
        chaos.flap_count, chaos.flap_period_s, chaos.flap_down_s));
  }
  const struct {
    const char* name;
    const ChaosDomainConfig& domain;
  } levels[] = {{"host", chaos.host}, {"rack", chaos.rack}};
  for (const auto& level : levels) {
    const ChaosDomainConfig& d = level.domain;
    if (!std::isfinite(d.mtbf_s) || d.mtbf_s < 0 ||
        !std::isfinite(d.mttr_s) || d.mttr_s < 0) {
      return InvalidArgumentError(Format(
          "chaos.%s MTBF/MTTR (%g s / %g s) must be non-negative and "
          "finite",
          level.name, d.mtbf_s, d.mttr_s));
    }
    if (!std::isfinite(d.factor) || (d.factor != 0 && d.factor <= 1)) {
      return InvalidArgumentError(Format(
          "chaos.%s factor = %g must be 0 (outage) or > 1 (slowdown)",
          level.name, d.factor));
    }
    if (d.first_event_at_s >= 0 && !std::isfinite(d.first_event_at_s)) {
      return InvalidArgumentError(Format(
          "chaos.%s first_event_at_s = %g must be finite", level.name,
          d.first_event_at_s));
    }
  }
  if (config.chaos_plan != nullptr &&
      config.chaos_plan->resources() < gpus) {
    return InvalidArgumentError(Format(
        "chaos_plan covers %zu resources, pool has %zu GPUs",
        config.chaos_plan->resources(), gpus));
  }
  const BreakerPolicy& b = config.breaker;
  if (b.failure_threshold < 0) {
    return InvalidArgumentError(
        Format("breaker.failure_threshold = %d must be non-negative (0 "
               "disables the breaker)",
               b.failure_threshold));
  }
  if (b.failure_threshold > 0) {
    if (!std::isfinite(b.cooldown_ms) || b.cooldown_ms < 0) {
      return InvalidArgumentError(Format(
          "breaker.cooldown_ms = %g must be non-negative and finite",
          b.cooldown_ms));
    }
    if (b.half_open_probes < 1) {
      return InvalidArgumentError(Format(
          "breaker.half_open_probes = %d must be at least 1",
          b.half_open_probes));
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<ServingResult> SimulateServing(
    const std::vector<std::vector<double>>& true_service_us,
    const std::vector<std::vector<double>>& predicted_service_us,
    const std::vector<double>& job_mix, const ServingConfig& config,
    obs::SpanTracer* tracer) {
  GP_RETURN_IF_ERROR(ValidateInputs(true_service_us, predicted_service_us,
                                    job_mix, config));
  const std::size_t gpus = true_service_us[0].size();
  const double horizon_us = config.duration_s * 1e6;
  // Resolve the module's instruments (and the breaker transition hook)
  // before any breaker can trip, not just at result-recording time.
  ServingMetrics::Get();

  FaultPlan base_plan = config.fault_plan != nullptr
                            ? *config.fault_plan
                            : FaultPlan(gpus, horizon_us, config.faults);
  // Compose the chaos timeline on top of the base outage plan; the
  // merged outages become the sim's plan and the slowdown timeline is
  // queried per dispatch.
  ChaosPlan chaos_local;
  const ChaosPlan* chaos = config.chaos_plan;
  if (chaos == nullptr && ChaosConfigEnabled(config.chaos)) {
    chaos_local = ChaosPlan(gpus, horizon_us, config.chaos, &base_plan);
    chaos = &chaos_local;
  }
  Sim sim(true_service_us, predicted_service_us, config, gpus,
          chaos != nullptr ? chaos->outage_plan() : std::move(base_plan));
  sim.chaos = chaos;
  sim.retry_tokens = config.retry_budget_burst;
  sim.tracer = tracer;
  sim.recorder = config.recorder;
  const long long origin_ll = std::llround(config.time_origin_us);
  if (sim.recorder != nullptr) {
    obs::FlightRecorder& rec = *sim.recorder;
    rec.Start(origin_ll);
    // Registering every channel up front serves double duty: each frame
    // carries the full, stable channel set from the first window on (a
    // no-op on later epochs), and the cached handles keep the by-name
    // map lookup off the per-event hot path.
    sim.ch_completed = rec.CounterChannel(kChCompleted);
    sim.ch_dropped = rec.CounterChannel(kChDropped);
    sim.ch_shed = rec.CounterChannel(kChShed);
    sim.ch_retries = rec.CounterChannel(kChRetries);
    sim.ch_retries_suppressed = rec.CounterChannel(kChRetriesSuppressed);
    sim.ch_breaker_opens = rec.CounterChannel(kChBreakerOpens);
    sim.ch_deadline_misses = rec.CounterChannel(kChDeadlineMisses);
    sim.ch_hedges_issued = rec.CounterChannel(kChHedgesIssued);
    sim.ch_hedges_won = rec.CounterChannel(kChHedgesWon);
    sim.ch_queue_depth = rec.GaugeChannel(kChQueueDepth);
    rec.SetGauge(sim.ch_queue_depth, 0);
    sim.ch_latency_ms = rec.SketchChannel(
        kChLatencyMs, {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000});
    sim.ch_residual_pct =
        rec.SketchChannel(kChResidualPct, {1, 2, 5, 10, 20, 50, 100});
  }
  if (tracer != nullptr) {
    tracer->SetTrackName(0, "dispatcher");
    for (std::size_t g = 0; g < gpus; ++g) {
      tracer->SetTrackName(static_cast<int>(g) + 1, Format("gpu %zu", g));
    }
  }

  double mix_total = 0;
  for (double w : job_mix) mix_total += w;

  Rng rng(config.seed);
  double next_arrival = 0;
  std::size_t next_id = 0;
  while (true) {
    // Exponential inter-arrival times.
    next_arrival +=
        -std::log(1.0 - rng.NextDouble()) / config.arrival_rate_per_s * 1e6;
    if (next_arrival > horizon_us) break;

    // Sample the job type from the mix.
    double pick = rng.NextDouble() * mix_total;
    std::size_t job = 0;
    for (; job + 1 < job_mix.size(); ++job) {
      if (pick < job_mix[job]) break;
      pick -= job_mix[job];
    }

    const double arrival = next_arrival;
    const std::size_t id = next_id++;
    sim.queue.Schedule(arrival, [&sim, id, job, arrival] {
      sim.Dispatch(id, job, arrival, /*attempt=*/0);
    });
  }
  if (sim.recorder == nullptr) {
    sim.queue.Run();
  } else {
    // Lazy window advancement: run every event with a (floored)
    // timestamp inside the open window in one tight chunk, close the
    // due windows at the boundary, repeat. An event at queue time t
    // ticks the recorder iff origin + floor(t) >= next close, i.e.
    // t >= next_close - origin, so RunUntil's strict `<` fires exactly
    // the events that must precede the close. The recorder never
    // schedules events of its own, so EventQueue sequence numbers —
    // and therefore same-timestamp ordering and the simulation
    // result — are untouched.
    while (!sim.queue.empty()) {
      sim.queue.RunUntil(
          static_cast<double>(sim.recorder->next_close_us() - origin_ll));
      if (sim.queue.empty()) break;
      sim.recorder->AdvanceTo(
          origin_ll +
          static_cast<long long>(std::floor(sim.queue.NextTimeUs())));
    }
    sim.recorder->FinishAt(
        origin_ll +
        std::max(std::llround(horizon_us),
                 static_cast<long long>(std::ceil(sim.queue.NowUs()))));
  }

  ServingResult result;
  result.completed = static_cast<int>(sim.latencies_ms.size());
  result.dropped = sim.dropped;
  result.retries = sim.retries;
  result.dispatches = sim.dispatches;
  result.degraded_dispatches = sim.degraded;
  result.degraded_dispatch_fraction =
      sim.dispatches > 0
          ? static_cast<double>(sim.degraded) / sim.dispatches
          : 0.0;
  result.shed_on_admission = sim.shed;
  result.deadline_misses = sim.deadline_misses;
  result.hedges_issued = sim.hedges_issued;
  result.hedges_won = sim.hedges_won;
  result.retries_suppressed = sim.retries_suppressed;
  for (std::size_t g = 0; g < gpus; ++g) {
    result.breaker_opens += static_cast<int>(sim.breakers[g].opens());
  }
  const int arrivals = result.completed + result.dropped + sim.shed;
  result.slo_attainment =
      arrivals > 0
          ? static_cast<double>(sim.completed_within_slo) / arrivals
          : 1.0;
  if (!sim.latencies_ms.empty()) {
    result.p50_ms = Percentile(sim.latencies_ms, 50);
    result.p95_ms = Percentile(sim.latencies_ms, 95);
    result.p99_ms = Percentile(sim.latencies_ms, 99);
    result.mean_ms = Mean(sim.latencies_ms);
  }
  const double end = std::max(sim.queue.NowUs(), 1.0);
  for (std::size_t g = 0; g < gpus; ++g) {
    result.gpu_utilization.push_back(sim.gpu_busy[g] / end);
    result.gpu_availability.push_back(sim.plan.Availability(g));
    if (sim.breakers[g].StateAt(end) == BreakerState::kOpen) {
      ++result.breakers_open_at_end;
    }
  }
  result.observations = std::move(sim.observations);
  RecordSimulation(result, sim.latencies_ms);
  return result;
}

std::vector<StatusOr<ServingResult>> SimulateServingGrid(
    const std::vector<std::vector<double>>& true_service_us,
    const std::vector<std::vector<double>>& predicted_service_us,
    const std::vector<double>& job_mix, const ServingConfig& base_config,
    const std::vector<ServingGridCell>& cells, int jobs,
    obs::ChromeTraceWriter* trace_out, obs::FlightTimeline* timeline_out) {
  std::vector<StatusOr<ServingResult>> results(
      cells.size(), InternalError("simulation did not run"));
  // Per-cell tracers and flight recorders, recorded in parallel and
  // merged serially below — the same pre-sized-slot pattern as
  // `results`, so trace and timeline bytes never depend on `jobs`.
  std::vector<obs::SpanTracer> tracers(
      trace_out != nullptr ? cells.size() : 0);
  std::vector<obs::FlightRecorder> recorders;
  if (timeline_out != nullptr) {
    recorders.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      recorders.emplace_back(base_config.recorder_config);
    }
  }
  ThreadPool pool(jobs);
  pool.ParallelFor(cells.size(), [&](std::size_t i) {
    ServingConfig config = base_config;
    config.policy = cells[i].policy;
    config.seed = cells[i].seed;
    config.faults.seed = cells[i].seed;
    config.chaos.seed = cells[i].seed;
    config.recorder = timeline_out != nullptr ? &recorders[i] : nullptr;
    results[i] =
        SimulateServing(true_service_us, predicted_service_us, job_mix,
                        config, trace_out != nullptr ? &tracers[i] : nullptr);
  });
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string label =
        Format("cell %zu: %s seed %llu", i,
               DispatchPolicyName(cells[i].policy).c_str(),
               (unsigned long long)cells[i].seed);
    if (trace_out != nullptr) {
      tracers[i].AppendTo(trace_out, static_cast<int>(i) + 1, label);
    }
    if (timeline_out != nullptr) {
      timeline_out->Append(recorders[i], label);
      if (trace_out != nullptr) {
        recorders[i].AppendCounterEvents(trace_out, static_cast<int>(i) + 1);
      }
    }
  }
  return results;
}

}  // namespace gpuperf::simsys
