#ifndef GPUPERF_SIMSYS_DISAGG_H_
#define GPUPERF_SIMSYS_DISAGG_H_

/**
 * @file
 * Case study 2: a memory-disaggregated GPU system.
 *
 * The GPU has a small local memory; layer weights live in a
 * network-attached pool. A prefetcher streams upcoming layers' weights
 * over the link while the GPU computes, up to a bounded look-ahead
 * window; a layer cannot start until its weights have landed. Layer
 * compute times come from a performance model (the paper plugs in the KW
 * model), so the whole experiment runs in milliseconds.
 */

#include <cstdint>
#include <vector>

namespace gpuperf::simsys {

/** Configuration of the disaggregated system. */
struct DisaggConfig {
  double link_bandwidth_gbps = 16;
  double link_latency_us = 2.0;
  int prefetch_window = 8;  // layers the prefetcher may run ahead
};

/** Outcome of one simulated inference pass. */
struct DisaggResult {
  double total_time_us = 0;   // makespan
  double compute_us = 0;      // sum of layer compute times
  double stall_us = 0;        // time the GPU waited on weights
  std::int64_t events = 0;    // events fired (engine statistic)
};

/**
 * Simulates one inference pass.
 *
 * @param layer_compute_us Predicted compute time per layer.
 * @param layer_weight_bytes Weight bytes each layer must receive first.
 */
DisaggResult SimulateDisaggregated(
    const std::vector<double>& layer_compute_us,
    const std::vector<std::int64_t>& layer_weight_bytes,
    const DisaggConfig& config);

}  // namespace gpuperf::simsys

#endif  // GPUPERF_SIMSYS_DISAGG_H_
