#include "simsys/event_queue.h"

#include <utility>

#include "common/logging.h"

namespace gpuperf::simsys {

void EventQueue::Schedule(double time_us, Callback callback) {
  GP_CHECK_GE(time_us, now_us_) << "cannot schedule into the past";
  queue_.push({time_us, next_sequence_++, std::move(callback)});
}

void EventQueue::ScheduleAfter(double delay_us, Callback callback) {
  GP_CHECK_GE(delay_us, 0.0);
  Schedule(now_us_ + delay_us, std::move(callback));
}

void EventQueue::Run() {
  while (RunOne()) {
  }
}

void EventQueue::RunUntil(double t_us) {
  while (!queue_.empty() && queue_.top().time_us < t_us) {
    RunOne();
  }
}

}  // namespace gpuperf::simsys
