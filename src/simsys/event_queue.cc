#include "simsys/event_queue.h"

#include <utility>

#include "common/logging.h"

namespace gpuperf::simsys {

void EventQueue::Schedule(double time_us, Callback callback) {
  GP_CHECK_GE(time_us, now_us_) << "cannot schedule into the past";
  queue_.push({time_us, next_sequence_++, std::move(callback)});
}

void EventQueue::ScheduleAfter(double delay_us, Callback callback) {
  GP_CHECK_GE(delay_us, 0.0);
  Schedule(now_us_ + delay_us, std::move(callback));
}

bool EventQueue::RunOne() {
  if (queue_.empty()) return false;
  // The callback is moved out before firing so it may schedule new events.
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  now_us_ = entry.time_us;
  ++fired_count_;
  entry.callback();
  return true;
}

void EventQueue::Run() {
  while (RunOne()) {
  }
}

}  // namespace gpuperf::simsys
