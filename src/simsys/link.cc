#include "simsys/link.h"

#include <algorithm>

#include "common/logging.h"

namespace gpuperf::simsys {

NetworkLink::NetworkLink(EventQueue* queue, double bandwidth_gbps,
                         double latency_us)
    : queue_(queue), bandwidth_gbps_(bandwidth_gbps),
      latency_us_(latency_us) {
  GP_CHECK(queue != nullptr);
  GP_CHECK_GT(bandwidth_gbps, 0.0);
  GP_CHECK_GE(latency_us, 0.0);
}

void NetworkLink::Transfer(std::int64_t bytes,
                           std::function<void()> on_complete) {
  GP_CHECK_GE(bytes, 0);
  // Bandwidth occupancy serializes transfers; latency pipelines.
  const double occupancy_us =
      static_cast<double>(bytes) / (bandwidth_gbps_ * 1e9) * 1e6;
  const double start = std::max(queue_->NowUs(), free_at_us_);
  free_at_us_ = start + occupancy_us;
  busy_us_ += occupancy_us;
  transferred_bytes_ += bytes;
  queue_->Schedule(free_at_us_ + latency_us_, std::move(on_complete));
}

}  // namespace gpuperf::simsys
