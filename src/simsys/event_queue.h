#ifndef GPUPERF_SIMSYS_EVENT_QUEUE_H_
#define GPUPERF_SIMSYS_EVENT_QUEUE_H_

/**
 * @file
 * A pure event-driven simulation kernel in the MGPUSim style the paper's
 * case study 2 uses: no cycle loop, time advances from event to event, so
 * whole networks simulate in microseconds of wall time.
 */

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace gpuperf::simsys {

/** A discrete-event scheduler with microsecond timestamps. */
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /** Schedules `callback` at absolute simulated time `time_us`. */
  void Schedule(double time_us, Callback callback);

  /** Schedules `callback` `delay_us` after the current time. */
  void ScheduleAfter(double delay_us, Callback callback);

  /** Current simulated time (the timestamp of the last fired event). */
  double NowUs() const { return now_us_; }

  /** True when no events remain. */
  bool empty() const { return queue_.empty(); }

  /**
   * Timestamp of the next event without firing it (queue must not be
   * empty). Lets the flight recorder close sample windows *before* an
   * event executes, without scheduling events of its own — inserted
   * events would shift sequence numbers and could reorder
   * same-timestamp callbacks.
   */
  double NextTimeUs() const { return queue_.top().time_us; }

  /**
   * Fires the next event; returns false if the queue is empty. Defined
   * in-class: serving's recorded path drives the queue one event at a
   * time (AdvanceTo between events), and a cross-TU call per event
   * would show up against the recorder's overhead budget.
   */
  bool RunOne() {
    if (queue_.empty()) return false;
    // The callback is moved out before firing so it may schedule new
    // events.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_us_ = entry.time_us;
    ++fired_count_;
    entry.callback();
    return true;
  }

  /** Runs until no events remain. */
  void Run();

  /**
   * Fires events with timestamps strictly before `t_us`, then returns
   * (with the first event at or past `t_us` still queued). Lets the
   * flight recorder run the queue in window-sized chunks: the per-event
   * cost over Run() is one timestamp comparison, and window closes
   * happen between chunks instead of being checked before every event.
   * Out-of-line like Run() on purpose — the event loop is hot enough
   * that its code placement is measurable, and compiling both loops in
   * the same translation unit keeps them on equal footing.
   */
  void RunUntil(double t_us);

  /** Events fired so far (statistics). */
  std::int64_t fired_count() const { return fired_count_; }

 private:
  struct Entry {
    double time_us;
    std::int64_t sequence;  // FIFO tie-break for simultaneous events
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time_us != b.time_us) return a.time_us > b.time_us;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  double now_us_ = 0;
  std::int64_t next_sequence_ = 0;
  std::int64_t fired_count_ = 0;
};

}  // namespace gpuperf::simsys

#endif  // GPUPERF_SIMSYS_EVENT_QUEUE_H_
