#ifndef GPUPERF_SIMSYS_EVENT_QUEUE_H_
#define GPUPERF_SIMSYS_EVENT_QUEUE_H_

/**
 * @file
 * A pure event-driven simulation kernel in the MGPUSim style the paper's
 * case study 2 uses: no cycle loop, time advances from event to event, so
 * whole networks simulate in microseconds of wall time.
 */

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace gpuperf::simsys {

/** A discrete-event scheduler with microsecond timestamps. */
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /** Schedules `callback` at absolute simulated time `time_us`. */
  void Schedule(double time_us, Callback callback);

  /** Schedules `callback` `delay_us` after the current time. */
  void ScheduleAfter(double delay_us, Callback callback);

  /** Current simulated time (the timestamp of the last fired event). */
  double NowUs() const { return now_us_; }

  /** Fires the next event; returns false if the queue is empty. */
  bool RunOne();

  /** Runs until no events remain. */
  void Run();

  /** Events fired so far (statistics). */
  std::int64_t fired_count() const { return fired_count_; }

 private:
  struct Entry {
    double time_us;
    std::int64_t sequence;  // FIFO tie-break for simultaneous events
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time_us != b.time_us) return a.time_us > b.time_us;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  double now_us_ = 0;
  std::int64_t next_sequence_ = 0;
  std::int64_t fired_count_ = 0;
};

}  // namespace gpuperf::simsys

#endif  // GPUPERF_SIMSYS_EVENT_QUEUE_H_
