#ifndef GPUPERF_SIMSYS_SERVING_H_
#define GPUPERF_SIMSYS_SERVING_H_

/**
 * @file
 * Online inference serving — case study 3 taken online. A
 * machine-learning-as-a-service pool receives a Poisson stream of
 * inference jobs of mixed network types; a dispatcher assigns each
 * arrival to a GPU. The paper's premise is that a microsecond-latency
 * performance model makes *predicted-time-aware* dispatch practical; this
 * simulator quantifies it against model-free policies.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace gpuperf::simsys {

/** How arrivals are assigned to GPUs. */
enum class DispatchPolicy {
  kRoundRobin,          // model-free baseline
  kLeastOutstanding,    // fewest queued jobs (model-free)
  kPredictedLeastLoad,  // earliest predicted finish (needs a model)
};

/** Human-readable policy name. */
std::string DispatchPolicyName(DispatchPolicy policy);

/** Configuration of a serving simulation. */
struct ServingConfig {
  double arrival_rate_per_s = 50;  // Poisson arrival rate
  double duration_s = 10;          // simulated horizon
  std::uint64_t seed = 1;
  DispatchPolicy policy = DispatchPolicy::kPredictedLeastLoad;
};

/** Latency statistics of one simulation. */
struct ServingResult {
  int completed = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double mean_ms = 0;
  std::vector<double> gpu_utilization;  // busy fraction per GPU
};

/**
 * Simulates the pool.
 *
 * @param true_service_us [job_type][gpu] actual execution time.
 * @param predicted_service_us [job_type][gpu] model-predicted time (used
 *        only by kPredictedLeastLoad).
 * @param job_mix relative arrival weight per job type.
 */
ServingResult SimulateServing(
    const std::vector<std::vector<double>>& true_service_us,
    const std::vector<std::vector<double>>& predicted_service_us,
    const std::vector<double>& job_mix, const ServingConfig& config);

}  // namespace gpuperf::simsys

#endif  // GPUPERF_SIMSYS_SERVING_H_
