#ifndef GPUPERF_SIMSYS_SERVING_H_
#define GPUPERF_SIMSYS_SERVING_H_

/**
 * @file
 * Online inference serving — case study 3 taken online. A
 * machine-learning-as-a-service pool receives a Poisson stream of
 * inference jobs of mixed network types; a dispatcher assigns each
 * arrival to a GPU. The paper's premise is that a microsecond-latency
 * performance model makes *predicted-time-aware* dispatch practical; this
 * simulator quantifies it against model-free policies.
 *
 * The pool is fault-tolerant: a deterministic seed-driven fault plan
 * (common/fault_injection.h) takes GPUs down and brings them back
 * (MTBF/MTTR); jobs in flight on a failed GPU are retried elsewhere after
 * a detection timeout plus capped exponential backoff, and dropped once
 * the retry budget is exhausted. When model predictions are unavailable
 * (bundle failed to load, or a value is non-finite), the
 * predicted-least-load dispatcher degrades to least-outstanding instead
 * of failing — mirroring the predictor stack's graceful degradation.
 *
 * The pool is also overload-resilient ("degrade, don't die"):
 *  - per-GPU bounded queues (`queue_cap`) shed arrivals on admission
 *    once every live GPU is full, instead of growing latency unboundedly;
 *  - per-job SLO deadlines (`slo_ms`): when the *predicted* completion
 *    time of the chosen GPU already exceeds the deadline, the job is
 *    shed immediately — the paper's microsecond predictor used as a
 *    load-shedder — and completions past the deadline count as misses;
 *  - per-GPU circuit breakers (common/circuit_breaker.h) stop retries
 *    from hammering a flapping GPU: after `breaker.failure_threshold`
 *    consecutive failures the GPU is excluded for a sim-time cooldown,
 *    then probed half-open before full traffic resumes.
 *
 * Gray-failure resilience (all off by default) hardens the pool against
 * the failures that are *partial* rather than binary:
 *  - a ChaosPlan (common/fault_injection.h) composes gray slowdowns,
 *    flap bursts, and correlated host/rack domain events on top of the
 *    uncorrelated fault plan; a job dispatched at time t runs at the
 *    slowdown factor sampled at t for its whole service;
 *  - hedged dispatch (`hedge_trigger_factor`): when a running job
 *    exceeds its predicted time by the factor, a duplicate is issued to
 *    a second GPU; the first completion wins and the loser is cancelled
 *    (its unspent tail refunded when nothing queued behind it);
 *  - retry budgets (`retry_budget`): a token bucket refilled by
 *    completions bounds retries to burst + budget x completions, so a
 *    mass failure cannot ignite a retry storm;
 *  - adaptive failure detection (`adaptive_detect_quantile`): the
 *    detection timeout follows a quantile of observed service times
 *    instead of a fixed guess, with `retry.detect_timeout_ms` as floor.
 * All mechanisms are deterministic (sim-time driven), so results stay
 * bit-identical across runs and `--jobs` values.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/fault_injection.h"
#include "common/status.h"
#include "obs/flight_recorder.h"

namespace gpuperf::gpuexec {
class DriftSchedule;
}  // namespace gpuperf::gpuexec

namespace gpuperf::obs {
class ChromeTraceWriter;
class SpanTracer;
}  // namespace gpuperf::obs

namespace gpuperf::simsys {

/** How arrivals are assigned to GPUs. */
enum class DispatchPolicy {
  kRoundRobin,          // model-free baseline
  kLeastOutstanding,    // fewest queued jobs (model-free)
  kPredictedLeastLoad,  // earliest predicted finish (needs a model)
};

/** Human-readable policy name. */
std::string DispatchPolicyName(DispatchPolicy policy);

/** Retry behavior for jobs interrupted by a GPU failure. */
struct RetryPolicy {
  int max_retries = 3;            // re-dispatches before a job is dropped
  double detect_timeout_ms = 1;   // failure-detection delay before retrying
  double backoff_base_ms = 1;     // first backoff; doubles per attempt
  double backoff_cap_ms = 100;    // exponential backoff cap
};

/** Configuration of a serving simulation. */
struct ServingConfig {
  double arrival_rate_per_s = 50;  // Poisson arrival rate
  double duration_s = 10;          // simulated horizon
  std::uint64_t seed = 1;
  DispatchPolicy policy = DispatchPolicy::kPredictedLeastLoad;
  FaultPlanConfig faults;          // mtbf_s == 0 keeps the pool fault-free
  RetryPolicy retry;
  // --- Overload resilience; defaults keep all three mechanisms off, and
  // the off state is byte-identical to the pre-overload simulator.
  int queue_cap = 0;     // max outstanding jobs per GPU (0 = unbounded)
  double slo_ms = 0;     // per-job latency deadline (0 = no SLO)
  BreakerPolicy breaker; // failure_threshold == 0 disables breakers
  // --- Drift and observation plumbing (self-healing lifecycle); the
  // defaults keep results byte-identical to the pre-drift simulator.
  // Deterministic service-time perturbation over sim time (borrowed,
  // not owned; nullptr = no drift). Must cover at least the pool size.
  const gpuexec::DriftSchedule* drift = nullptr;
  // [job_type][gpu] fraction of each cell's service time that is
  // memory-bound, used to scale scoped drift events (borrowed; nullptr
  // = 0.5 everywhere). Shape must match true_service_us when set.
  const std::vector<std::vector<double>>* drift_memory_share = nullptr;
  // Epoch offset added to sim time when evaluating the drift schedule,
  // so back-to-back epochs advance through one long drift timeline.
  double time_origin_us = 0;
  // Record one ServingObservation per completed job (the drift
  // monitor's input stream). Purely additive: never changes results.
  bool record_observations = false;
  // Explicit fault plan override (tests and replay; borrowed). When
  // set, `faults` is ignored; the plan must cover the pool.
  const FaultPlan* fault_plan = nullptr;
  // --- Gray-failure resilience; defaults keep every mechanism off and
  // the off state byte-identical to the pre-chaos simulator.
  // Issue a hedge to a second GPU when a job's elapsed time exceeds
  // hedge_trigger_factor x its predicted time (0 = no hedging; needs
  // finite predictions for the job).
  double hedge_trigger_factor = 0;
  // Retry token bucket: a retry spends one token, every completion
  // refills `retry_budget` tokens (capped at `retry_budget_burst`,
  // which is also the initial balance). An empty bucket suppresses the
  // retry — the job drops instead of joining a retry storm. 0 = off.
  double retry_budget = 0;
  double retry_budget_burst = 10;
  // Adaptive failure detection: once enough completions are observed,
  // the detection timeout becomes adaptive_detect_multiplier x this
  // quantile of observed service times, floored at
  // retry.detect_timeout_ms. 0 disables (fixed timeout).
  double adaptive_detect_quantile = 0;
  double adaptive_detect_multiplier = 3;
  // Chaos timeline composed on top of `faults` (the chaos seed follows
  // the grid cell seed, like the fault seed). All channels default off.
  ChaosPlanConfig chaos;
  // Explicit chaos plan override (tests and replay; borrowed). When
  // set, `chaos` is ignored; the plan must cover the pool.
  const ChaosPlan* chaos_plan = nullptr;
  // --- Sim-time flight recording (DESIGN.md §15); nullptr keeps the
  // hot path untouched. When set, the simulator advances the recorder
  // lazily between events (never scheduling events of its own, so
  // results are bit-identical with and without a recorder): counters
  // for completions/drops/sheds/retries/hedges/breaker opens, a queue
  // depth gauge, and windowed latency/residual sketches, all stamped
  // at `time_origin_us` + sim time so back-to-back epochs form one
  // monotone timeline. The recorder is borrowed and single-threaded —
  // one per simulation (or per grid cell).
  obs::FlightRecorder* recorder = nullptr;
  // Window cadence/capacity for the per-cell recorders
  // SimulateServingGrid creates when given a timeline sink.
  obs::FlightRecorderConfig recorder_config;
};

/** One completed job, as the drift monitor sees it. */
struct ServingObservation {
  std::size_t job = 0;       // job type (row of the service matrices)
  std::size_t gpu = 0;       // serving GPU
  double start_us = 0;       // service start in drift time (origin added)
  double observed_us = 0;    // actual (drifted) service duration
  double predicted_us = 0;   // model prediction for the cell (NaN = none)
};

/** Latency and fault statistics of one simulation. */
struct ServingResult {
  int completed = 0;
  int dropped = 0;     // jobs abandoned after exhausting the retry budget
  int retries = 0;     // re-dispatches caused by GPU failures
  int dispatches = 0;  // dispatch decisions that placed a job on a GPU
  int degraded_dispatches = 0;  // decisions degraded to least-outstanding
  double degraded_dispatch_fraction = 0;  // degraded / dispatches
  int shed_on_admission = 0;  // rejected: queues full or deadline hopeless
  int deadline_misses = 0;    // completed, but later than the SLO
  int breaker_opens = 0;      // circuit-breaker trips across the pool
  int hedges_issued = 0;      // duplicate dispatches for slow jobs
  int hedges_won = 0;         // jobs delivered by the hedge leg
  int retries_suppressed = 0;  // retries dropped by an empty token bucket
  int breakers_open_at_end = 0;  // breakers still open when the sim ends
  // Completed-within-SLO fraction of all arrivals (shed and dropped jobs
  // count as misses; 1.0 when everything completed and slo_ms == 0).
  double slo_attainment = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double mean_ms = 0;
  std::vector<double> gpu_utilization;   // busy fraction per GPU
  std::vector<double> gpu_availability;  // up fraction per GPU (fault plan)
  // Completed jobs in completion order; filled only when
  // config.record_observations is set, so the default result is
  // byte-identical to the pre-drift simulator's.
  std::vector<ServingObservation> observations;
};

/**
 * Simulates the pool. Deterministic: a fixed config (seed included)
 * yields a bit-identical ServingResult on every run, platform, and
 * thread count — faults come from the precomputed plan, never from
 * ad-hoc randomness.
 *
 * @param true_service_us [job_type][gpu] actual execution time.
 * @param predicted_service_us [job_type][gpu] model-predicted time (used
 *        only by kPredictedLeastLoad). Pass an empty vector when no model
 *        is available: the policy then degrades to least-outstanding and
 *        the result reports the degraded fraction.
 * @param job_mix relative arrival weight per job type.
 *
 * Malformed inputs (empty pool, shape mismatch, non-positive rate,
 * non-finite service times, ...) are InvalidArgument errors, not aborts.
 *
 * When `tracer` is non-null, per-job lifecycle events are recorded in
 * sim time: queue-wait and service spans per GPU track, plus
 * shed/drop/retry/breaker-open instants on the dispatcher track. The
 * tracer is single-threaded state owned by this one simulation (one
 * per grid cell); tracing never changes the simulation result.
 */
[[nodiscard]] StatusOr<ServingResult> SimulateServing(
    const std::vector<std::vector<double>>& true_service_us,
    const std::vector<std::vector<double>>& predicted_service_us,
    const std::vector<double>& job_mix, const ServingConfig& config,
    obs::SpanTracer* tracer = nullptr);

/** One cell of a (policy, seed) simulation grid. */
struct ServingGridCell {
  DispatchPolicy policy = DispatchPolicy::kRoundRobin;
  std::uint64_t seed = 0;
};

/**
 * Runs one SimulateServing per cell — `base_config` with the cell's
 * policy and seed (the fault-plan seed follows the cell seed) — across a
 * ThreadPool of `jobs` threads (0 = all hardware threads). Results land
 * in pre-sized per-cell slots, so entry i is bit-identical for every
 * `jobs` value; a failing cell carries its own Status instead of
 * poisoning the rest of the grid.
 *
 * When `trace_out` is non-null, each cell records into its own
 * obs::SpanTracer and the tracers are appended to `trace_out` serially
 * in cell order after the parallel loop (cell i = trace process i+1),
 * so the exported Chrome-trace JSON is bit-identical for every `jobs`
 * value.
 *
 * When `timeline_out` is non-null, each cell additionally records into
 * its own obs::FlightRecorder (cadence from
 * base_config.recorder_config) and the recorders merge into
 * `timeline_out` serially in cell order — and, when `trace_out` is
 * also set, as Chrome counter events under the cell's trace process —
 * so timeline CSV and trace bytes are bit-identical for every `jobs`
 * value.
 */
[[nodiscard]] std::vector<StatusOr<ServingResult>> SimulateServingGrid(
    const std::vector<std::vector<double>>& true_service_us,
    const std::vector<std::vector<double>>& predicted_service_us,
    const std::vector<double>& job_mix, const ServingConfig& base_config,
    const std::vector<ServingGridCell>& cells, int jobs,
    obs::ChromeTraceWriter* trace_out = nullptr,
    obs::FlightTimeline* timeline_out = nullptr);

/**
 * Cumulative process-wide serving observability counters, aggregated
 * across every SimulateServing call (including concurrent grid runs).
 * Counters never influence simulation results — they exist so a long
 * sweep can be monitored cheaply.
 *
 * DEPRECATED: this struct and the Snapshot/Reset pair below are thin
 * compatibility shims over the `gpuperf_serving_*` families in
 * obs::MetricsRegistry::Global() — new code should read the registry
 * directly (it additionally has `gpuperf_serving_jobs_arrived`,
 * `gpuperf_serving_deadline_misses`, and the
 * `gpuperf_serving_latency_ms` histogram). The shim is kept
 * API-compatible for one release and will then be removed.
 */
struct ServingCounters {
  std::uint64_t simulations = 0;    // successful SimulateServing returns
  std::uint64_t jobs_arrived = 0;   // completed + dropped + shed
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_dropped = 0;
  std::uint64_t jobs_shed = 0;      // admission-control rejections
  std::uint64_t retries = 0;
  std::uint64_t breaker_opens = 0;  // circuit-breaker trips
};

/**
 * DEPRECATED shim: reads the `gpuperf_serving_*` registry counters.
 * Each field is individually atomic; quiesce the pool before relying
 * on cross-field invariants (grid tests do).
 */
ServingCounters SnapshotServingCounters();

/**
 * DEPRECATED shim: zeroes the `gpuperf_serving_*` registry counters
 * (tests and sweep boundaries). Leaves other registry families alone.
 */
void ResetServingCounters();

}  // namespace gpuperf::simsys

#endif  // GPUPERF_SIMSYS_SERVING_H_
