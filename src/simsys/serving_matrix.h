#ifndef GPUPERF_SIMSYS_SERVING_MATRIX_H_
#define GPUPERF_SIMSYS_SERVING_MATRIX_H_

/**
 * @file
 * Batched fill of the serving simulator's predicted-service matrix.
 *
 * SimulateServing consumes a `[job_type][gpu]` matrix of model-predicted
 * service times — the input to predicted-least-load dispatch and
 * predicted-SLO shedding. Filling it is the predictor's serving hot
 * path: every refresh (bundle promotion, pool change, batch change) is
 * |jobs| x |gpus| predictions. This helper packs the covered cells into
 * one PredictQuery span, answers them with a single zero-allocation
 * KwModel::PredictMany sweep over compiled plans, and scatters the
 * results back; uncovered cells get the NaN sentinel that makes the
 * dispatcher degrade per-decision. Results are bit-identical to the
 * per-cell `CoverageFor + PredictUs` loop it replaces.
 *
 * The scratch buffer is caller-owned so steady-state refills reuse its
 * capacity instead of reallocating.
 */

#include <cstdint>
#include <utility>
#include <vector>

#include "dnn/network.h"
#include "gpuexec/gpu_spec.h"
#include "models/kw_model.h"

namespace gpuperf::simsys {

/** Reusable scratch for FillPredictedServingMatrix. */
struct ServingMatrixBuffer {
  std::vector<models::PredictQuery> queries;          // covered cells only
  std::vector<double> out_us;                         // sweep results
  std::vector<std::pair<std::size_t, std::size_t>> cells;  // (job, gpu)
};

/**
 * Fills `predicted` as a `networks.size() x gpus.size()` matrix:
 * `kw`-predicted service time where the model's trained scope covers
 * the (network, GPU) cell, NaN (degrade-this-decision sentinel)
 * elsewhere. One PredictMany sweep answers every covered cell.
 */
void FillPredictedServingMatrix(
    const models::KwModel& kw, const std::vector<dnn::Network>& networks,
    const std::vector<const gpuexec::GpuSpec*>& gpus, std::int64_t batch,
    ServingMatrixBuffer& buffer,
    std::vector<std::vector<double>>& predicted);

}  // namespace gpuperf::simsys

#endif  // GPUPERF_SIMSYS_SERVING_MATRIX_H_
