#include "simsys/self_healing.h"

#include <cmath>
#include <memory>

#include "common/logging.h"
#include "simsys/serving_matrix.h"

namespace gpuperf::simsys {

StatusOr<SelfHealingResult> RunSelfHealingServing(
    const std::vector<dnn::Network>& networks,
    const std::vector<const gpuexec::GpuSpec*>& gpus,
    const std::vector<std::vector<double>>& true_service_us,
    const std::vector<double>& job_mix, models::BundleRegistry* registry,
    models::LifecycleController* controller,
    const SelfHealingConfig& config) {
  if (registry == nullptr || controller == nullptr) {
    return InvalidArgumentError("registry and controller must be non-null");
  }
  if (registry->Snapshot() == nullptr) {
    return FailedPreconditionError(
        "registry is empty: promote an initial bundle before self-healing");
  }
  if (networks.empty() || gpus.empty()) {
    return InvalidArgumentError("need at least one network and one GPU");
  }
  if (true_service_us.size() != networks.size() ||
      job_mix.size() != networks.size()) {
    return InvalidArgumentError(
        "true_service_us rows and job_mix must match networks");
  }
  for (const std::vector<double>& row : true_service_us) {
    if (row.size() != gpus.size()) {
      return InvalidArgumentError("true_service_us columns must match gpus");
    }
  }
  if (config.epochs <= 0 || config.lifecycle_steps_per_epoch <= 0) {
    return InvalidArgumentError(
        "epochs and lifecycle_steps_per_epoch must be positive");
  }

  SelfHealingResult result;
  ServingMatrixBuffer buffer;
  std::vector<std::vector<double>> predicted;
  const double epoch_us = config.serving.duration_s * 1e6;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // A promotion or rollback between epochs swaps the snapshot; the
    // refreshed matrix (and the fresh generation's compiled plans) are
    // how the dispatcher starts trusting the new model.
    const std::shared_ptr<const models::KwModel> model = registry->Snapshot();
    FillPredictedServingMatrix(*model, networks, gpus, config.batch, buffer,
                               predicted);

    ServingConfig serving = config.serving;
    serving.record_observations = true;
    serving.time_origin_us =
        config.serving.time_origin_us + epoch_us * epoch;
    serving.seed = config.serving.seed + static_cast<std::uint64_t>(epoch);

    StatusOr<ServingResult> simulated = SimulateServing(
        true_service_us, predicted, job_mix, serving);
    if (!simulated.ok()) return simulated.status();

    SelfHealingEpoch summary;
    summary.completed = simulated->completed;
    summary.dropped = simulated->dropped;
    summary.shed = simulated->shed_on_admission;
    std::vector<double> abs_sum(gpus.size(), 0.0);
    summary.observation_count.assign(gpus.size(), 0);
    for (const ServingObservation& obs : simulated->observations) {
      controller->Observe(networks[obs.job], gpus[obs.gpu]->name,
                          config.batch, obs.predicted_us, obs.observed_us);
      const double r = std::log(obs.observed_us / obs.predicted_us);
      if (std::isfinite(r)) {
        abs_sum[obs.gpu] += std::abs(r);
        ++summary.observation_count[obs.gpu];
      }
    }
    summary.mean_abs_log_ratio.assign(gpus.size(), 0.0);
    for (std::size_t g = 0; g < gpus.size(); ++g) {
      if (summary.observation_count[g] > 0) {
        summary.mean_abs_log_ratio[g] =
            abs_sum[g] / summary.observation_count[g];
      }
    }

    for (int step = 0; step < config.lifecycle_steps_per_epoch; ++step) {
      controller->Step();
    }
    summary.state = controller->state();
    LogInfo("self-healing epoch",
            {{"epoch", std::to_string(epoch)},
             {"state", models::LifecycleStateName(summary.state)},
             {"completed", std::to_string(summary.completed)}});
    result.epochs.push_back(std::move(summary));
  }

  result.counters = controller->counters();
  result.final_state = controller->state();
  result.final_serving_dir = controller->serving_dir();
  return result;
}

}  // namespace gpuperf::simsys
