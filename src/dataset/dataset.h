#ifndef GPUPERF_DATASET_DATASET_H_
#define GPUPERF_DATASET_DATASET_H_

/**
 * @file
 * The open DNN performance database (the paper's first contribution).
 *
 * Two tables, mirroring the paper's CSV layout: a network table with one
 * row per (GPU, network, batch) execution, and a kernel table with one row
 * per kernel execution carrying the layer linkage and the three candidate
 * regression features (input NCHW, layer FLOPs, output NCHW). Strings
 * (GPU, network, kernel, layer-signature) are interned into id pools.
 */

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "dnn/layer.h"
#include "gpuexec/kernel.h"

namespace gpuperf::dataset {

/** One kernel execution (averaged over measured batches). */
struct KernelRow {
  int gpu_id = 0;
  int network_id = 0;
  int kernel_id = 0;      // interned kernel name
  int signature_id = 0;   // interned layer signature (mapping-table key)
  int layer_index = 0;
  dnn::LayerKind layer_kind = dnn::LayerKind::kRelu;
  gpuexec::CostDriver true_driver = gpuexec::CostDriver::kOutput;
  gpuexec::KernelFamily family = gpuexec::KernelFamily::kElementwise;
  std::int64_t batch = 0;
  double time_us = 0;
  std::int64_t layer_flops = 0;
  std::int64_t input_elems = 0;
  std::int64_t output_elems = 0;

  /** The feature value selected by `driver`. */
  std::int64_t DriverValue(gpuexec::CostDriver driver) const;
};

/** One end-to-end execution. */
struct NetworkRow {
  int gpu_id = 0;
  int network_id = 0;
  std::string family;
  std::int64_t batch = 0;
  double e2e_us = 0;
  double gpu_busy_us = 0;
  std::int64_t total_flops = 0;
};

/** An interning pool mapping strings to dense ids. */
class StringPool {
 public:
  /** Returns the id of `text`, adding it if new. */
  int Intern(const std::string& text);

  /** Id of `text`, or -1 if absent. */
  int Find(const std::string& text) const;

  /** String for `id`. */
  const std::string& Get(int id) const;

  /** Number of interned strings. */
  int size() const { return static_cast<int>(strings_.size()); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, int> index_;
};

/** The performance database. */
class Dataset {
 public:
  StringPool& gpus() { return gpus_; }
  StringPool& networks() { return networks_; }
  StringPool& kernels() { return kernels_; }
  StringPool& signatures() { return signatures_; }
  const StringPool& gpus() const { return gpus_; }
  const StringPool& networks() const { return networks_; }
  const StringPool& kernels() const { return kernels_; }
  const StringPool& signatures() const { return signatures_; }

  std::vector<KernelRow>& kernel_rows() { return kernel_rows_; }
  std::vector<NetworkRow>& network_rows() { return network_rows_; }
  const std::vector<KernelRow>& kernel_rows() const { return kernel_rows_; }
  const std::vector<NetworkRow>& network_rows() const {
    return network_rows_;
  }

  /** Writes networks.csv and kernels.csv into `directory`. */
  void SaveCsv(const std::string& directory) const;

  /** Reads a database written by SaveCsv(); Fatal() on any error. */
  static Dataset LoadCsv(const std::string& directory);

  /**
   * Reads a database written by SaveCsv(), validating every field; any
   * missing file, malformed number, non-finite timing, or negative count
   * is reported as `path:line: field '...': message` instead of dying.
   */
  [[nodiscard]] static StatusOr<Dataset> TryLoadCsv(const std::string& directory);

 private:
  StringPool gpus_;
  StringPool networks_;
  StringPool kernels_;
  StringPool signatures_;
  std::vector<KernelRow> kernel_rows_;
  std::vector<NetworkRow> network_rows_;
};

/** Deterministic split of network ids into train/test (paper: 15% test). */
struct NetworkSplit {
  std::vector<int> train_ids;
  std::vector<int> test_ids;

  /** True if `network_id` is in the test partition. */
  bool IsTest(int network_id) const;
};

/** Splits the dataset's networks; `test_fraction` in (0, 1). */
NetworkSplit SplitByNetwork(const Dataset& dataset, double test_fraction,
                            std::uint64_t seed);

}  // namespace gpuperf::dataset

#endif  // GPUPERF_DATASET_DATASET_H_
