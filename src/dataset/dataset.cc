#include "dataset/dataset.h"

#include <algorithm>

#include "common/csv.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"

namespace gpuperf::dataset {

std::int64_t KernelRow::DriverValue(gpuexec::CostDriver driver) const {
  switch (driver) {
    case gpuexec::CostDriver::kInput: return input_elems;
    case gpuexec::CostDriver::kOperation: return layer_flops;
    case gpuexec::CostDriver::kOutput: return output_elems;
  }
  GP_CHECK(false) << "unhandled CostDriver";
  return 0;
}

int StringPool::Intern(const std::string& text) {
  auto [it, inserted] = index_.emplace(text, size());
  if (inserted) strings_.push_back(text);
  return it->second;
}

int StringPool::Find(const std::string& text) const {
  auto it = index_.find(text);
  return it == index_.end() ? -1 : it->second;
}

const std::string& StringPool::Get(int id) const {
  GP_CHECK_GE(id, 0);
  GP_CHECK_LT(static_cast<std::size_t>(id), strings_.size());
  return strings_[id];
}

void Dataset::SaveCsv(const std::string& directory) const {
  {
    CsvWriter writer(directory + "/networks.csv");
    writer.WriteRow({"gpu", "network", "family", "batch", "e2e_us",
                     "gpu_busy_us", "total_flops"});
    for (const NetworkRow& row : network_rows_) {
      writer.WriteRow({gpus_.Get(row.gpu_id), networks_.Get(row.network_id),
                       row.family, Format("%ld", (long)row.batch),
                       Format("%.6f", row.e2e_us),
                       Format("%.6f", row.gpu_busy_us),
                       Format("%ld", (long)row.total_flops)});
    }
  }
  {
    CsvWriter writer(directory + "/kernels.csv");
    writer.WriteRow({"gpu", "network", "kernel", "signature", "layer_index",
                     "layer_kind", "true_driver", "family", "batch",
                     "time_us", "layer_flops", "input_elems",
                     "output_elems"});
    for (const KernelRow& row : kernel_rows_) {
      writer.WriteRow(
          {gpus_.Get(row.gpu_id), networks_.Get(row.network_id),
           kernels_.Get(row.kernel_id), signatures_.Get(row.signature_id),
           Format("%d", row.layer_index), dnn::LayerKindName(row.layer_kind),
           gpuexec::CostDriverName(row.true_driver),
           gpuexec::KernelFamilyName(row.family),
           Format("%ld", (long)row.batch), Format("%.6f", row.time_us),
           Format("%ld", (long)row.layer_flops),
           Format("%ld", (long)row.input_elems),
           Format("%ld", (long)row.output_elems)});
    }
  }
}

namespace {

/** "path:line: field 'x': <why>" — every loader error names all three. */
Status AtField(const CsvTable& table, std::size_t row, const char* field,
               Status status) {
  return status.Annotate(table.RowLocation(row) + ": field '" + field + "'");
}

/** Parses a non-negative integer field. */
Status ReadCount(const CsvTable& table, std::size_t row, std::size_t column,
                 const char* field, std::int64_t* out) {
  StatusOr<long long> value = ParseInt64(table.rows[row][column]);
  if (!value.ok()) return AtField(table, row, field, value.status());
  if (*value < 0) {
    return AtField(table, row, field,
                   OutOfRangeError("'" + table.rows[row][column] +
                                   "' must be non-negative"));
  }
  *out = *value;
  return Status::Ok();
}

/** Parses a finite, non-negative timing field. */
Status ReadTimeUs(const CsvTable& table, std::size_t row, std::size_t column,
                  const char* field, double* out) {
  StatusOr<double> value = ParseFiniteDouble(table.rows[row][column]);
  if (!value.ok()) return AtField(table, row, field, value.status());
  if (*value < 0) {
    return AtField(table, row, field,
                   OutOfRangeError("'" + table.rows[row][column] +
                                   "' must be non-negative"));
  }
  *out = *value;
  return Status::Ok();
}

Status ParseCostDriver(const CsvTable& table, std::size_t row,
                       std::size_t column, const char* field,
                       gpuexec::CostDriver* out) {
  const std::string& text = table.rows[row][column];
  if (text == "input") {
    *out = gpuexec::CostDriver::kInput;
  } else if (text == "operation") {
    *out = gpuexec::CostDriver::kOperation;
  } else if (text == "output") {
    *out = gpuexec::CostDriver::kOutput;
  } else {
    return AtField(table, row, field,
                   InvalidArgumentError(
                       "'" + text +
                       "' is not a cost driver (input|operation|output)"));
  }
  return Status::Ok();
}

}  // namespace

Dataset Dataset::LoadCsv(const std::string& directory) {
  StatusOr<Dataset> dataset = TryLoadCsv(directory);
  if (!dataset.ok()) Fatal(dataset.status().message());
  return std::move(dataset).value();
}

StatusOr<Dataset> Dataset::TryLoadCsv(const std::string& directory) {
  Dataset dataset;
  {
    GP_ASSIGN_OR_RETURN(const CsvTable table,
                        TryReadCsv(directory + "/networks.csv"));
    GP_ASSIGN_OR_RETURN(const std::size_t gpu, table.FindColumn("gpu"));
    GP_ASSIGN_OR_RETURN(const std::size_t network,
                        table.FindColumn("network"));
    GP_ASSIGN_OR_RETURN(const std::size_t family, table.FindColumn("family"));
    GP_ASSIGN_OR_RETURN(const std::size_t batch, table.FindColumn("batch"));
    GP_ASSIGN_OR_RETURN(const std::size_t e2e, table.FindColumn("e2e_us"));
    GP_ASSIGN_OR_RETURN(const std::size_t busy,
                        table.FindColumn("gpu_busy_us"));
    GP_ASSIGN_OR_RETURN(const std::size_t flops,
                        table.FindColumn("total_flops"));
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      const auto& fields = table.rows[r];
      NetworkRow row;
      row.gpu_id = dataset.gpus_.Intern(fields[gpu]);
      row.network_id = dataset.networks_.Intern(fields[network]);
      row.family = fields[family];
      GP_RETURN_IF_ERROR(ReadCount(table, r, batch, "batch", &row.batch));
      GP_RETURN_IF_ERROR(ReadTimeUs(table, r, e2e, "e2e_us", &row.e2e_us));
      GP_RETURN_IF_ERROR(
          ReadTimeUs(table, r, busy, "gpu_busy_us", &row.gpu_busy_us));
      GP_RETURN_IF_ERROR(
          ReadCount(table, r, flops, "total_flops", &row.total_flops));
      dataset.network_rows_.push_back(std::move(row));
    }
  }
  {
    GP_ASSIGN_OR_RETURN(const CsvTable table,
                        TryReadCsv(directory + "/kernels.csv"));
    GP_ASSIGN_OR_RETURN(const std::size_t gpu, table.FindColumn("gpu"));
    GP_ASSIGN_OR_RETURN(const std::size_t network,
                        table.FindColumn("network"));
    GP_ASSIGN_OR_RETURN(const std::size_t kernel, table.FindColumn("kernel"));
    GP_ASSIGN_OR_RETURN(const std::size_t signature,
                        table.FindColumn("signature"));
    GP_ASSIGN_OR_RETURN(const std::size_t layer_index,
                        table.FindColumn("layer_index"));
    GP_ASSIGN_OR_RETURN(const std::size_t layer_kind,
                        table.FindColumn("layer_kind"));
    GP_ASSIGN_OR_RETURN(const std::size_t driver,
                        table.FindColumn("true_driver"));
    GP_ASSIGN_OR_RETURN(const std::size_t family, table.FindColumn("family"));
    GP_ASSIGN_OR_RETURN(const std::size_t batch, table.FindColumn("batch"));
    GP_ASSIGN_OR_RETURN(const std::size_t time, table.FindColumn("time_us"));
    GP_ASSIGN_OR_RETURN(const std::size_t layer_flops,
                        table.FindColumn("layer_flops"));
    GP_ASSIGN_OR_RETURN(const std::size_t input_elems,
                        table.FindColumn("input_elems"));
    GP_ASSIGN_OR_RETURN(const std::size_t output_elems,
                        table.FindColumn("output_elems"));
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      const auto& fields = table.rows[r];
      KernelRow row;
      row.gpu_id = dataset.gpus_.Intern(fields[gpu]);
      row.network_id = dataset.networks_.Intern(fields[network]);
      row.kernel_id = dataset.kernels_.Intern(fields[kernel]);
      row.signature_id = dataset.signatures_.Intern(fields[signature]);
      std::int64_t index = 0;
      GP_RETURN_IF_ERROR(
          ReadCount(table, r, layer_index, "layer_index", &index));
      row.layer_index = static_cast<int>(index);
      if (!dnn::TryLayerKindFromName(fields[layer_kind], &row.layer_kind)) {
        return AtField(table, r, "layer_kind",
                       InvalidArgumentError("'" + fields[layer_kind] +
                                            "' is not a layer kind"));
      }
      GP_RETURN_IF_ERROR(
          ParseCostDriver(table, r, driver, "true_driver", &row.true_driver));
      // Family is informational; match by name.
      row.family = gpuexec::KernelFamily::kElementwise;
      for (int f = 0; f <= static_cast<int>(gpuexec::KernelFamily::kGather);
           ++f) {
        if (gpuexec::KernelFamilyName(
                static_cast<gpuexec::KernelFamily>(f)) == fields[family]) {
          row.family = static_cast<gpuexec::KernelFamily>(f);
          break;
        }
      }
      GP_RETURN_IF_ERROR(ReadCount(table, r, batch, "batch", &row.batch));
      GP_RETURN_IF_ERROR(ReadTimeUs(table, r, time, "time_us", &row.time_us));
      GP_RETURN_IF_ERROR(ReadCount(table, r, layer_flops, "layer_flops",
                                   &row.layer_flops));
      GP_RETURN_IF_ERROR(ReadCount(table, r, input_elems, "input_elems",
                                   &row.input_elems));
      GP_RETURN_IF_ERROR(ReadCount(table, r, output_elems, "output_elems",
                                   &row.output_elems));
      dataset.kernel_rows_.push_back(std::move(row));
    }
  }
  return dataset;
}

bool NetworkSplit::IsTest(int network_id) const {
  // test_ids is kept sorted by SplitByNetwork.
  return std::binary_search(test_ids.begin(), test_ids.end(), network_id);
}

NetworkSplit SplitByNetwork(const Dataset& dataset, double test_fraction,
                            std::uint64_t seed) {
  GP_CHECK_GT(test_fraction, 0.0);
  GP_CHECK_LT(test_fraction, 1.0);
  const int count = dataset.networks().size();
  std::vector<int> ids(count);
  for (int i = 0; i < count; ++i) ids[i] = i;
  // Fisher-Yates with the project RNG for platform-stable shuffles.
  Rng rng(seed);
  for (int i = count - 1; i > 0; --i) {
    const int j = static_cast<int>(rng.NextBelow(i + 1));
    std::swap(ids[i], ids[j]);
  }
  const int test_count =
      std::max(1, static_cast<int>(test_fraction * count));
  NetworkSplit split;
  split.test_ids.assign(ids.begin(), ids.begin() + test_count);
  split.train_ids.assign(ids.begin() + test_count, ids.end());
  std::sort(split.test_ids.begin(), split.test_ids.end());
  std::sort(split.train_ids.begin(), split.train_ids.end());
  return split;
}

}  // namespace gpuperf::dataset
