#include "dataset/dataset.h"

#include <algorithm>

#include "common/csv.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"

namespace gpuperf::dataset {

std::int64_t KernelRow::DriverValue(gpuexec::CostDriver driver) const {
  switch (driver) {
    case gpuexec::CostDriver::kInput: return input_elems;
    case gpuexec::CostDriver::kOperation: return layer_flops;
    case gpuexec::CostDriver::kOutput: return output_elems;
  }
  GP_CHECK(false) << "unhandled CostDriver";
  return 0;
}

int StringPool::Intern(const std::string& text) {
  auto [it, inserted] = index_.emplace(text, size());
  if (inserted) strings_.push_back(text);
  return it->second;
}

int StringPool::Find(const std::string& text) const {
  auto it = index_.find(text);
  return it == index_.end() ? -1 : it->second;
}

const std::string& StringPool::Get(int id) const {
  GP_CHECK_GE(id, 0);
  GP_CHECK_LT(static_cast<std::size_t>(id), strings_.size());
  return strings_[id];
}

void Dataset::SaveCsv(const std::string& directory) const {
  {
    CsvWriter writer(directory + "/networks.csv");
    writer.WriteRow({"gpu", "network", "family", "batch", "e2e_us",
                     "gpu_busy_us", "total_flops"});
    for (const NetworkRow& row : network_rows_) {
      writer.WriteRow({gpus_.Get(row.gpu_id), networks_.Get(row.network_id),
                       row.family, Format("%ld", (long)row.batch),
                       Format("%.6f", row.e2e_us),
                       Format("%.6f", row.gpu_busy_us),
                       Format("%ld", (long)row.total_flops)});
    }
  }
  {
    CsvWriter writer(directory + "/kernels.csv");
    writer.WriteRow({"gpu", "network", "kernel", "signature", "layer_index",
                     "layer_kind", "true_driver", "family", "batch",
                     "time_us", "layer_flops", "input_elems",
                     "output_elems"});
    for (const KernelRow& row : kernel_rows_) {
      writer.WriteRow(
          {gpus_.Get(row.gpu_id), networks_.Get(row.network_id),
           kernels_.Get(row.kernel_id), signatures_.Get(row.signature_id),
           Format("%d", row.layer_index), dnn::LayerKindName(row.layer_kind),
           gpuexec::CostDriverName(row.true_driver),
           gpuexec::KernelFamilyName(row.family),
           Format("%ld", (long)row.batch), Format("%.6f", row.time_us),
           Format("%ld", (long)row.layer_flops),
           Format("%ld", (long)row.input_elems),
           Format("%ld", (long)row.output_elems)});
    }
  }
}

Dataset Dataset::LoadCsv(const std::string& directory) {
  Dataset dataset;
  {
    CsvTable table = ReadCsv(directory + "/networks.csv");
    const std::size_t gpu = table.ColumnIndex("gpu");
    const std::size_t network = table.ColumnIndex("network");
    const std::size_t family = table.ColumnIndex("family");
    const std::size_t batch = table.ColumnIndex("batch");
    const std::size_t e2e = table.ColumnIndex("e2e_us");
    const std::size_t busy = table.ColumnIndex("gpu_busy_us");
    const std::size_t flops = table.ColumnIndex("total_flops");
    for (const auto& fields : table.rows) {
      NetworkRow row;
      row.gpu_id = dataset.gpus_.Intern(fields[gpu]);
      row.network_id = dataset.networks_.Intern(fields[network]);
      row.family = fields[family];
      row.batch = std::stoll(fields[batch]);
      row.e2e_us = std::stod(fields[e2e]);
      row.gpu_busy_us = std::stod(fields[busy]);
      row.total_flops = std::stoll(fields[flops]);
      dataset.network_rows_.push_back(std::move(row));
    }
  }
  {
    CsvTable table = ReadCsv(directory + "/kernels.csv");
    const std::size_t gpu = table.ColumnIndex("gpu");
    const std::size_t network = table.ColumnIndex("network");
    const std::size_t kernel = table.ColumnIndex("kernel");
    const std::size_t signature = table.ColumnIndex("signature");
    const std::size_t layer_index = table.ColumnIndex("layer_index");
    const std::size_t layer_kind = table.ColumnIndex("layer_kind");
    const std::size_t driver = table.ColumnIndex("true_driver");
    const std::size_t family = table.ColumnIndex("family");
    const std::size_t batch = table.ColumnIndex("batch");
    const std::size_t time = table.ColumnIndex("time_us");
    const std::size_t layer_flops = table.ColumnIndex("layer_flops");
    const std::size_t input_elems = table.ColumnIndex("input_elems");
    const std::size_t output_elems = table.ColumnIndex("output_elems");
    for (const auto& fields : table.rows) {
      KernelRow row;
      row.gpu_id = dataset.gpus_.Intern(fields[gpu]);
      row.network_id = dataset.networks_.Intern(fields[network]);
      row.kernel_id = dataset.kernels_.Intern(fields[kernel]);
      row.signature_id = dataset.signatures_.Intern(fields[signature]);
      row.layer_index = std::stoi(fields[layer_index]);
      row.layer_kind = dnn::LayerKindFromName(fields[layer_kind]);
      if (fields[driver] == "input") {
        row.true_driver = gpuexec::CostDriver::kInput;
      } else if (fields[driver] == "operation") {
        row.true_driver = gpuexec::CostDriver::kOperation;
      } else {
        row.true_driver = gpuexec::CostDriver::kOutput;
      }
      // Family is informational; match by name.
      row.family = gpuexec::KernelFamily::kElementwise;
      for (int f = 0; f <= static_cast<int>(gpuexec::KernelFamily::kGather);
           ++f) {
        if (gpuexec::KernelFamilyName(
                static_cast<gpuexec::KernelFamily>(f)) == fields[family]) {
          row.family = static_cast<gpuexec::KernelFamily>(f);
          break;
        }
      }
      row.batch = std::stoll(fields[batch]);
      row.time_us = std::stod(fields[time]);
      row.layer_flops = std::stoll(fields[layer_flops]);
      row.input_elems = std::stoll(fields[input_elems]);
      row.output_elems = std::stoll(fields[output_elems]);
      dataset.kernel_rows_.push_back(std::move(row));
    }
  }
  return dataset;
}

bool NetworkSplit::IsTest(int network_id) const {
  // test_ids is kept sorted by SplitByNetwork.
  return std::binary_search(test_ids.begin(), test_ids.end(), network_id);
}

NetworkSplit SplitByNetwork(const Dataset& dataset, double test_fraction,
                            std::uint64_t seed) {
  GP_CHECK_GT(test_fraction, 0.0);
  GP_CHECK_LT(test_fraction, 1.0);
  const int count = dataset.networks().size();
  std::vector<int> ids(count);
  for (int i = 0; i < count; ++i) ids[i] = i;
  // Fisher-Yates with the project RNG for platform-stable shuffles.
  Rng rng(seed);
  for (int i = count - 1; i > 0; --i) {
    const int j = static_cast<int>(rng.NextBelow(i + 1));
    std::swap(ids[i], ids[j]);
  }
  const int test_count =
      std::max(1, static_cast<int>(test_fraction * count));
  NetworkSplit split;
  split.test_ids.assign(ids.begin(), ids.begin() + test_count);
  split.train_ids.assign(ids.begin() + test_count, ids.end());
  std::sort(split.test_ids.begin(), split.test_ids.end());
  std::sort(split.train_ids.begin(), split.train_ids.end());
  return split;
}

}  // namespace gpuperf::dataset
