#ifndef GPUPERF_DATASET_BUILDER_H_
#define GPUPERF_DATASET_BUILDER_H_

/**
 * @file
 * Builds the performance database by profiling a zoo on the hardware
 * oracle — the equivalent of the paper's measurement campaign (646
 * networks x 7 GPUs, ~240k kernel executions per GPU).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/dataset.h"
#include "dnn/network.h"
#include "gpuexec/oracle.h"
#include "gpuexec/training.h"

namespace gpuperf::dataset {

/** Options of a measurement campaign. */
struct BuildOptions {
  std::vector<std::string> gpu_names;  // empty = all seven Table 1 GPUs
  std::int64_t batch = 512;            // the paper trains at BS = 512
  int measured_batches = 30;           // paper: average batches 21..50
  // What each profiled run executes. Do not mix workloads in one dataset:
  // the layer-to-kernel mapping table is keyed by layer signature, and a
  // training step launches a different kernel list for the same layer.
  gpuexec::Workload workload = gpuexec::Workload::kInference;
  // The paper removes "fail-to-execute experiments (e.g., out-of-memory
  // error)" from its dataset; when true, (network, GPU, batch) combos
  // whose estimated footprint exceeds the device memory are skipped.
  bool skip_oom = true;
  // Worker threads for the profiling sweep; <= 0 selects
  // hardware_concurrency. The result is identical for every job count:
  // (gpu, network) combos are profiled concurrently into private
  // buffers, then merged single-threaded in the serial loop order, so
  // string interning and row order match the jobs=1 build byte for byte.
  int jobs = 0;
  gpuexec::OracleConfig oracle;
};

/**
 * Profiles every network on every GPU and appends rows to `dataset`.
 * Parallel over (gpu, network) per `options.jobs`; the appended rows and
 * interned id pools are independent of the job count.
 */
void AppendProfiles(const std::vector<dnn::Network>& networks,
                    const BuildOptions& options, Dataset* dataset);

/** Convenience: fresh dataset from a zoo. */
Dataset BuildDataset(const std::vector<dnn::Network>& networks,
                     const BuildOptions& options);

}  // namespace gpuperf::dataset

#endif  // GPUPERF_DATASET_BUILDER_H_
