#include "dataset/builder.h"

#include "common/logging.h"
#include "gpuexec/gpu_spec.h"
#include "gpuexec/profiler.h"

#include "dnn/memory.h"

namespace gpuperf::dataset {

void AppendProfiles(const std::vector<dnn::Network>& networks,
                    const BuildOptions& options, Dataset* dataset) {
  GP_CHECK(dataset != nullptr);
  std::vector<gpuexec::GpuSpec> gpus;
  if (options.gpu_names.empty()) {
    gpus = gpuexec::AllGpus();
  } else {
    for (const std::string& name : options.gpu_names) {
      gpus.push_back(gpuexec::GpuByName(name));
    }
  }

  const gpuexec::HardwareOracle oracle(options.oracle);
  const gpuexec::Profiler profiler(oracle, options.measured_batches);

  for (const gpuexec::GpuSpec& gpu : gpus) {
    const int gpu_id = dataset->gpus().Intern(gpu.name);
    for (const dnn::Network& network : networks) {
      if (options.skip_oom) {
        const std::int64_t footprint =
            options.workload == gpuexec::Workload::kTraining
                ? dnn::TrainingFootprintBytes(network, options.batch)
                : dnn::InferenceFootprintBytes(network, options.batch);
        if (!dnn::FitsInMemory(footprint, gpu.memory_gb)) continue;
      }
      const int network_id = dataset->networks().Intern(network.name());
      gpuexec::NetworkProfile profile =
          profiler.Profile(network, gpu, options.batch, options.workload);

      NetworkRow net_row;
      net_row.gpu_id = gpu_id;
      net_row.network_id = network_id;
      net_row.family = network.family();
      net_row.batch = options.batch;
      net_row.e2e_us = profile.e2e_time_us;
      net_row.gpu_busy_us = profile.gpu_busy_us;
      net_row.total_flops = profile.total_flops;
      dataset->network_rows().push_back(std::move(net_row));

      for (const gpuexec::KernelRecord& record : profile.kernels) {
        KernelRow row;
        row.gpu_id = gpu_id;
        row.network_id = network_id;
        row.kernel_id = dataset->kernels().Intern(record.kernel_name);
        row.signature_id = dataset->signatures().Intern(
            dnn::LayerSignature(network.layers()[record.layer_index]));
        row.layer_index = record.layer_index;
        row.layer_kind = record.layer_kind;
        row.true_driver = record.true_driver;
        row.family = record.family;
        row.batch = options.batch;
        row.time_us = record.time_us;
        row.layer_flops = record.layer_flops;
        row.input_elems = record.input_elems;
        row.output_elems = record.output_elems;
        dataset->kernel_rows().push_back(std::move(row));
      }
    }
  }
}

Dataset BuildDataset(const std::vector<dnn::Network>& networks,
                     const BuildOptions& options) {
  Dataset dataset;
  AppendProfiles(networks, options, &dataset);
  return dataset;
}

}  // namespace gpuperf::dataset
