#include "dataset/builder.h"

#include <cstddef>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "gpuexec/gpu_spec.h"
#include "gpuexec/profiler.h"

#include "dnn/memory.h"

namespace gpuperf::dataset {
namespace {

/** One (gpu, network) combo that survives the OOM filter. */
struct WorkItem {
  std::size_t gpu_index;
  std::size_t network_index;
};

}  // namespace

void AppendProfiles(const std::vector<dnn::Network>& networks,
                    const BuildOptions& options, Dataset* dataset) {
  GP_CHECK(dataset != nullptr);
  std::vector<gpuexec::GpuSpec> gpus;
  if (options.gpu_names.empty()) {
    gpus = gpuexec::AllGpus();
  } else {
    for (const std::string& name : options.gpu_names) {
      gpus.push_back(gpuexec::GpuByName(name));
    }
  }

  const gpuexec::HardwareOracle oracle(options.oracle);
  const gpuexec::Profiler profiler(oracle, options.measured_batches);

  // Phase 1 (serial, cheap): decide the campaign plan. The OOM filter
  // runs here so the work list — and therefore the merge order — is
  // fixed before any profiling starts.
  std::vector<WorkItem> items;
  items.reserve(gpus.size() * networks.size());
  for (std::size_t g = 0; g < gpus.size(); ++g) {
    for (std::size_t n = 0; n < networks.size(); ++n) {
      if (options.skip_oom) {
        const std::int64_t footprint =
            options.workload == gpuexec::Workload::kTraining
                ? dnn::TrainingFootprintBytes(networks[n], options.batch)
                : dnn::InferenceFootprintBytes(networks[n], options.batch);
        if (!dnn::FitsInMemory(footprint, gpus[g].memory_gb)) continue;
      }
      items.push_back({g, n});
    }
  }

  // Phase 2 (parallel, expensive): profile each combo into its own slot.
  // The profiler is deterministic per combo (its noise stream is keyed
  // by (network, gpu, batch)), so slot contents do not depend on which
  // thread ran them or in what order.
  std::vector<gpuexec::NetworkProfile> profiles(items.size());
  ThreadPool pool(options.jobs);
  pool.ParallelFor(items.size(), [&](std::size_t i) {
    profiles[i] = profiler.Profile(networks[items[i].network_index],
                                   gpus[items[i].gpu_index], options.batch,
                                   options.workload);
  });

  // Phase 3 (serial): merge in the original gpu-major loop order.
  // Interning happens only here, so the id pools and row order are byte
  // for byte those of a jobs=1 build. GPU names are interned even when
  // every network was skipped, matching the historical serial loop.
  std::size_t next = 0;
  for (std::size_t g = 0; g < gpus.size(); ++g) {
    const int gpu_id = dataset->gpus().Intern(gpus[g].name);
    for (; next < items.size() && items[next].gpu_index == g; ++next) {
      const dnn::Network& network = networks[items[next].network_index];
      const gpuexec::NetworkProfile& profile = profiles[next];
      const int network_id = dataset->networks().Intern(network.name());

      NetworkRow net_row;
      net_row.gpu_id = gpu_id;
      net_row.network_id = network_id;
      net_row.family = network.family();
      net_row.batch = options.batch;
      net_row.e2e_us = profile.e2e_time_us;
      net_row.gpu_busy_us = profile.gpu_busy_us;
      net_row.total_flops = profile.total_flops;
      dataset->network_rows().push_back(std::move(net_row));

      for (const gpuexec::KernelRecord& record : profile.kernels) {
        KernelRow row;
        row.gpu_id = gpu_id;
        row.network_id = network_id;
        row.kernel_id = dataset->kernels().Intern(record.kernel_name);
        row.signature_id = dataset->signatures().Intern(
            dnn::LayerSignature(network.layers()[record.layer_index]));
        row.layer_index = record.layer_index;
        row.layer_kind = record.layer_kind;
        row.true_driver = record.true_driver;
        row.family = record.family;
        row.batch = options.batch;
        row.time_us = record.time_us;
        row.layer_flops = record.layer_flops;
        row.input_elems = record.input_elems;
        row.output_elems = record.output_elems;
        dataset->kernel_rows().push_back(std::move(row));
      }
    }
  }
}

Dataset BuildDataset(const std::vector<dnn::Network>& networks,
                     const BuildOptions& options) {
  Dataset dataset;
  AppendProfiles(networks, options, &dataset);
  return dataset;
}

}  // namespace gpuperf::dataset
