#ifndef GPUPERF_MODELS_LW_MODEL_H_
#define GPUPERF_MODELS_LW_MODEL_H_

/**
 * @file
 * The Layer-Wise model (Section 5.3): one linear regression per
 * (GPU, layer type) from layer theoretical FLOPs to layer time; the
 * network prediction is the sum over layers (paper: 28% error on A100).
 */

#include <map>
#include <string>

#include "dataset/dataset.h"
#include "dnn/layer.h"
#include "models/predictor.h"
#include "regression/linreg.h"

namespace gpuperf::models {

/** Per-layer-type FLOPs -> time regressions. */
class LwModel : public Predictor {
 public:
  /** Trains on the training-network kernel rows (summed per layer). */
  void Train(const dataset::Dataset& data,
             const dataset::NetworkSplit& split);

  std::string Name() const override { return "LW"; }

  double PredictUs(const dnn::Network& network, const gpuexec::GpuSpec& gpu,
                   std::int64_t batch) const override;

  /** Predicted time of one layer (used by schedulers and case studies). */
  double PredictLayerUs(const dnn::Layer& layer, const std::string& gpu_name,
                        std::int64_t batch) const;

  /** The fit for (gpu, layer kind), or nullptr if that pair was unseen. */
  const regression::LinearFit* FitFor(const std::string& gpu_name,
                                      dnn::LayerKind kind) const;

  /** Installs a fit directly (deserialization path of ModelIo). */
  void SetFit(const std::string& gpu_name, dnn::LayerKind kind,
              const regression::LinearFit& fit);

  /** All (gpu, kind) fits (serialization path of ModelIo). */
  const std::map<std::pair<std::string, dnn::LayerKind>,
                 regression::LinearFit>&
  fits() const {
    return fits_;
  }

 private:
  std::map<std::pair<std::string, dnn::LayerKind>, regression::LinearFit>
      fits_;
};

}  // namespace gpuperf::models

#endif  // GPUPERF_MODELS_LW_MODEL_H_
