#include "models/kw_model.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "dnn/flops.h"
#include "gpuexec/lowering.h"

namespace gpuperf::models {
namespace {

using gpuexec::CostDriver;

constexpr CostDriver kDrivers[] = {CostDriver::kInput, CostDriver::kOperation,
                                   CostDriver::kOutput};

/** Per-kernel training sample set (one point per execution). */
struct KernelSamples {
  std::vector<double> x_input;
  std::vector<double> x_operation;
  std::vector<double> x_output;
  std::vector<double> y;

  const std::vector<double>& XFor(CostDriver driver) const {
    switch (driver) {
      case CostDriver::kInput: return x_input;
      case CostDriver::kOperation: return x_operation;
      case CostDriver::kOutput: return x_output;
    }
    GP_CHECK(false);
    return x_input;
  }
};

/** Longest common prefix length of two strings. */
std::size_t CommonPrefix(const std::string& a, const std::string& b) {
  std::size_t i = 0;
  while (i < a.size() && i < b.size() && a[i] == b[i]) ++i;
  return i;
}

/**
 * The intercept-clamped OLS fit shared with the online refit path
 * (regression::FitLinearClampedIntercept): unclamped OLS can push the
 * intercept far outside the physical launch-overhead range when the
 * sampled sizes cluster, which wrecks extrapolation to small batches.
 */
regression::LinearFit ClampedFit(const std::vector<double>& x,
                                 const std::vector<double>& y,
                                 double max_intercept_us) {
  return regression::FitLinearClampedIntercept(x, y, max_intercept_us);
}

}  // namespace

std::string ReducedSignature(const std::string& signature) {
  std::vector<std::string> parts = Split(signature, '/');
  std::vector<std::string> kept;
  for (const std::string& part : parts) {
    // Shape components are "i<CxHxW>" and "o<CxHxW>".
    if (part.size() > 1 && (part[0] == 'i' || part[0] == 'o') &&
        part.find('x') != std::string::npos &&
        std::isdigit(static_cast<unsigned char>(part[1]))) {
      continue;
    }
    kept.push_back(part);
  }
  return Join(kept, "/");
}

KwModel::KwModel(const KwOptions& options) : options_(options) {}

void KwModel::Train(const dataset::Dataset& data,
                    const dataset::NetworkSplit& split) {
  per_gpu_.clear();
  mapping_.clear();
  reduced_mapping_.clear();

  // --- 1. Mapping table from all traces (library behaviour, not timing).
  // Rows are trace-ordered, so kernels of one layer instance are
  // consecutive; commit each instance's list on boundary change.
  {
    std::tuple<int, int, int> current{-1, -1, -1};
    int current_signature = -1;
    std::vector<std::string> names;
    auto commit = [&]() {
      if (current_signature < 0 || names.empty()) return;
      mapping_.emplace(data.signatures().Get(current_signature), names);
    };
    for (const dataset::KernelRow& row : data.kernel_rows()) {
      std::tuple<int, int, int> key{row.gpu_id, row.network_id,
                                    row.layer_index};
      if (key != current) {
        commit();
        current = key;
        current_signature = row.signature_id;
        names.clear();
      }
      names.push_back(data.kernels().Get(row.kernel_id));
    }
    commit();
    // Derive the reduced-signature fallback table from the (sorted) full
    // table, so its contents do not depend on trace order and the save/
    // load round trip reproduces it exactly.
    for (const auto& [signature, kernel_names] : mapping_) {
      reduced_mapping_.emplace(ReducedSignature(signature), kernel_names);
    }
  }

  // --- 2. Per-(GPU, kernel) samples from training networks only.
  std::map<std::pair<int, int>, KernelSamples> samples;
  for (const dataset::KernelRow& row : data.kernel_rows()) {
    if (split.IsTest(row.network_id)) continue;
    KernelSamples& s = samples[{row.gpu_id, row.kernel_id}];
    s.x_input.push_back(static_cast<double>(row.input_elems));
    s.x_operation.push_back(static_cast<double>(row.layer_flops));
    s.x_output.push_back(static_cast<double>(row.output_elems));
    s.y.push_back(row.time_us);
  }

  // Classification: the driver whose regression has the best R² (O5).
  for (auto& [key, s] : samples) {
    const std::string& gpu = data.gpus().Get(key.first);
    const std::string& kernel = data.kernels().Get(key.second);
    KernelModel model;
    if (options_.classify_drivers) {
      double best_r2 = -1e300;
      for (CostDriver driver : kDrivers) {
        regression::LinearFit fit =
            ClampedFit(s.XFor(driver), s.y, options_.max_intercept_us);
        if (fit.r2 > best_r2) {
          best_r2 = fit.r2;
          model.driver = driver;
          model.fit = fit;
        }
      }
    } else {
      model.driver = CostDriver::kOperation;
      model.fit =
          ClampedFit(s.x_operation, s.y, options_.max_intercept_us);
    }
    model.solo_r2 = model.fit.r2;
    per_gpu_[gpu][kernel] = model;
  }

  // --- 3. Clustering: merge kernels with similar lines (Section 5.4).
  if (options_.cluster) {
    for (auto& [gpu, kernels] : per_gpu_) {
      const int gpu_id = data.gpus().Find(gpu);
      for (CostDriver driver : kDrivers) {
        // Kernels of this driver sorted by slope.
        std::vector<std::string> names;
        for (const auto& [name, model] : kernels) {
          if (model.driver == driver) names.push_back(name);
        }
        std::sort(names.begin(), names.end(),
                  [&](const std::string& a, const std::string& b) {
                    return kernels.at(a).fit.slope < kernels.at(b).fit.slope;
                  });
        std::vector<std::vector<std::string>> clusters;
        for (const std::string& name : names) {
          const regression::LinearFit& fit = kernels.at(name).fit;
          bool merged = false;
          if (!clusters.empty()) {
            const regression::LinearFit& head =
                kernels.at(clusters.back().front()).fit;
            const double base = std::max(std::abs(head.slope), 1e-12);
            if (std::abs(fit.slope - head.slope) / base <=
                    options_.cluster_slope_tol &&
                std::abs(fit.intercept - head.intercept) <=
                    options_.cluster_intercept_tol_us) {
              clusters.back().push_back(name);
              merged = true;
            }
          }
          if (!merged) clusters.push_back({name});
        }
        // Refit each multi-kernel cluster on the union of its samples.
        for (std::size_t c = 0; c < clusters.size(); ++c) {
          const int cluster_id =
              static_cast<int>(driver) * 100000 + static_cast<int>(c);
          if (clusters[c].size() == 1) {
            kernels[clusters[c][0]].cluster_id = cluster_id;
            continue;
          }
          std::vector<double> x, y;
          for (const std::string& name : clusters[c]) {
            const KernelSamples& s =
                samples.at({gpu_id, data.kernels().Find(name)});
            const std::vector<double>& xs = s.XFor(driver);
            x.insert(x.end(), xs.begin(), xs.end());
            y.insert(y.end(), s.y.begin(), s.y.end());
          }
          regression::LinearFit fit =
              ClampedFit(x, y, options_.max_intercept_us);
          for (const std::string& name : clusters[c]) {
            kernels[name].fit = fit;
            kernels[name].cluster_id = cluster_id;
          }
        }
      }
    }
  } else {
    for (auto& [gpu, kernels] : per_gpu_) {
      int next = 0;
      for (auto& [name, model] : kernels) model.cluster_id = next++;
    }
  }

  // --- 4. Last-resort fallback for layers with unknown kernels.
  lw_fallback_.Train(data, split);

  // --- 5. Per-GPU end-to-end calibration: the ratio of measured wall
  // time to summed kernel predictions over the training networks.
  calibration_.clear();
  if (options_.calibrate_e2e) {
    std::map<std::pair<int, int>, double> predicted_sums;
    for (const dataset::KernelRow& row : data.kernel_rows()) {
      if (split.IsTest(row.network_id)) continue;
      const auto& kernels = per_gpu_.at(data.gpus().Get(row.gpu_id));
      auto it = kernels.find(data.kernels().Get(row.kernel_id));
      if (it == kernels.end()) continue;
      const double x =
          static_cast<double>(row.DriverValue(it->second.driver));
      predicted_sums[{row.gpu_id, row.network_id}] +=
          std::max(0.0, it->second.fit.Predict(x));
    }
    std::map<int, std::pair<double, double>> totals;  // gpu -> (e2e, pred)
    for (const dataset::NetworkRow& row : data.network_rows()) {
      if (split.IsTest(row.network_id)) continue;
      auto it = predicted_sums.find({row.gpu_id, row.network_id});
      if (it == predicted_sums.end() || it->second <= 0) continue;
      totals[row.gpu_id].first += row.e2e_us;
      totals[row.gpu_id].second += it->second;
    }
    for (const auto& [gpu_id, sums] : totals) {
      if (sums.second > 0) {
        calibration_[data.gpus().Get(gpu_id)] = sums.first / sums.second;
      }
    }
  }

  // --- 6. Resolve the string-keyed state into dense prediction tables.
  FinalizeTables();
}

void KwModel::FinalizeTables() {
  gpu_names_.clear();
  gpu_index_.clear();
  calibration_by_gpu_.clear();
  cluster_counts_.clear();
  sig_index_.clear();
  reduced_index_.clear();
  resolved_.clear();
  predict_cache_.Clear();
  plan_cache_.Clear();

  for (const auto& [gpu, kernels] : per_gpu_) {
    gpu_index_.emplace(gpu, static_cast<int>(gpu_names_.size()));
    gpu_names_.push_back(gpu);
    calibration_by_gpu_.push_back(CalibrationFor(gpu));
    std::vector<int> ids;
    ids.reserve(kernels.size());
    for (const auto& [name, model] : kernels) ids.push_back(model.cluster_id);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    cluster_counts_.push_back(static_cast<int>(ids.size()));
  }

  // Signature ids follow the sorted mapping-table order; the reduced
  // index keeps the first full signature per reduced key, matching the
  // emplace semantics used to derive reduced_mapping_.
  for (const auto& [signature, names] : mapping_) {
    (void)names;
    sig_index_.emplace(signature, static_cast<int>(sig_index_.size()));
  }
  for (const auto& [signature, names] : mapping_) {
    (void)names;
    reduced_index_.emplace(ReducedSignature(signature),
                           sig_index_.at(signature));
  }

  // Resolve every (gpu, signature) to concrete fitted lines, applying
  // the exact-name then longest-common-prefix lookup (tile-variant
  // mismatch) that the predict path previously re-ran per call.
  resolved_.assign(gpu_names_.size(), {});
  for (std::size_t g = 0; g < gpu_names_.size(); ++g) {
    const std::map<std::string, KernelModel>& kernels =
        per_gpu_.at(gpu_names_[g]);
    resolved_[g].resize(sig_index_.size());
    for (const auto& [signature, names] : mapping_) {
      ResolvedLayer& layer = resolved_[g][sig_index_.at(signature)];
      for (const std::string& name : names) {
        const KernelModel* model = nullptr;
        auto kernel_it = kernels.find(name);
        if (kernel_it != kernels.end()) {
          model = &kernel_it->second;
        } else {
          std::size_t best_prefix = 0;
          for (const auto& [candidate, candidate_model] : kernels) {
            const std::size_t prefix = CommonPrefix(candidate, name);
            if (prefix > best_prefix) {
              best_prefix = prefix;
              model = &candidate_model;
            }
          }
          if (model == nullptr || best_prefix < name.size() / 2) {
            layer.use_lw = true;
            layer.kernels.clear();
            break;
          }
        }
        layer.kernels.push_back({model->driver, model->fit.slope,
                                 model->fit.intercept, model->cluster_id});
      }
    }
  }
}

double KwModel::CalibrationFor(const std::string& gpu_name) const {
  auto it = calibration_.find(gpu_name);
  return it == calibration_.end() ? 1.0 : it->second;
}

std::vector<std::string> KwModel::KernelsForLayer(
    const dnn::Layer& layer) const {
  const std::string signature = dnn::LayerSignature(layer);
  auto it = mapping_.find(signature);
  if (it != mapping_.end()) return it->second;
  auto reduced = reduced_mapping_.find(ReducedSignature(signature));
  if (reduced != reduced_mapping_.end()) return reduced->second;
  return {};
}

KwModel::Coverage KwModel::CoverageFor(const dnn::Network& network,
                                       const std::string& gpu_name) const {
  Coverage coverage;
  coverage.gpu_trained = gpu_index_.find(gpu_name) != gpu_index_.end();
  coverage.layers = static_cast<int>(network.layers().size());
  // Reuses the per-network sid memo, so steady-state coverage checks are
  // one hash lookup, not one signature build per layer.
  const std::vector<int>* sids = predict_cache_.Get(
      network, [this](const dnn::Layer& layer) { return ResolveSid(layer); });
  for (std::size_t i = 0; i < sids->size(); ++i) {
    // Layers that launch no kernels (flatten, dropout) never appear in
    // profiled traces, so they have no mapping entry by construction;
    // the model still predicts them exactly (zero time).
    if ((*sids)[i] >= 0 ||
        !gpuexec::LayerLaunchesKernels(network.layers()[i].kind)) {
      ++coverage.mapped;
    }
  }
  return coverage;
}

int KwModel::ResolveSid(const dnn::Layer& layer) const {
  const std::string signature = dnn::LayerSignature(layer);
  auto it = sig_index_.find(signature);
  if (it != sig_index_.end()) return it->second;
  auto reduced = reduced_index_.find(ReducedSignature(signature));
  if (reduced != reduced_index_.end()) return reduced->second;
  return -1;
}

double KwModel::PredictLayerResolved(int gpu_idx, int sid,
                                     const dnn::Layer& layer,
                                     const std::string& gpu_name,
                                     std::int64_t batch) const {
  if (sid < 0) {
    // Unknown layer configuration: layer-wise estimate.
    return lw_fallback_.PredictLayerUs(layer, gpu_name, batch);
  }
  const ResolvedLayer& resolved = resolved_[gpu_idx][sid];
  if (resolved.use_lw) {
    return lw_fallback_.PredictLayerUs(layer, gpu_name, batch);
  }

  const double x_input =
      static_cast<double>(batch * layer.InputElements());
  const double x_operation =
      static_cast<double>(dnn::LayerFlops(layer, batch));
  const double x_output =
      static_cast<double>(batch * layer.output.Elements());

  double total = 0;
  for (const ResolvedKernel& kernel : resolved.kernels) {
    double x = x_operation;
    if (kernel.driver == CostDriver::kInput) x = x_input;
    if (kernel.driver == CostDriver::kOutput) x = x_output;
    total += std::max(0.0, kernel.intercept + kernel.slope * x);
  }
  return total * calibration_by_gpu_[gpu_idx];
}

bool KwModel::AppendKernelTerms(const dnn::Layer& layer,
                                const std::string& gpu_name,
                                std::int64_t batch,
                                std::vector<KernelTerm>* out) const {
  auto gpu_it = gpu_index_.find(gpu_name);
  if (gpu_it == gpu_index_.end()) {
    Fatal("KW model not trained for GPU " + gpu_name);
  }
  const int sid = ResolveSid(layer);
  if (sid < 0 || resolved_[gpu_it->second][sid].use_lw) return false;
  const ResolvedLayer& resolved = resolved_[gpu_it->second][sid];

  const double x_input = static_cast<double>(batch * layer.InputElements());
  const double x_operation =
      static_cast<double>(dnn::LayerFlops(layer, batch));
  const double x_output =
      static_cast<double>(batch * layer.output.Elements());
  for (const ResolvedKernel& kernel : resolved.kernels) {
    double x = x_operation;
    if (kernel.driver == CostDriver::kInput) x = x_input;
    if (kernel.driver == CostDriver::kOutput) x = x_output;
    out->push_back({kernel.cluster_id, x,
                    std::max(0.0, kernel.intercept + kernel.slope * x)});
  }
  return true;
}

int KwModel::UpdateClusterFit(const std::string& gpu_name, int cluster_id,
                              const regression::LinearFit& fit) {
  auto it = per_gpu_.find(gpu_name);
  if (it == per_gpu_.end()) return 0;
  int updated = 0;
  for (auto& [name, model] : it->second) {
    if (model.cluster_id == cluster_id) {
      model.fit = fit;
      ++updated;
    }
  }
  if (updated > 0) FinalizeTables();
  return updated;
}

double KwModel::PredictLayerUs(const dnn::Layer& layer,
                               const std::string& gpu_name,
                               std::int64_t batch) const {
  auto gpu_it = gpu_index_.find(gpu_name);
  if (gpu_it == gpu_index_.end()) {
    Fatal("KW model not trained for GPU " + gpu_name);
  }
  return PredictLayerResolved(gpu_it->second, ResolveSid(layer), layer,
                              gpu_name, batch);
}

double KwModel::PredictUs(const dnn::Network& network,
                          const gpuexec::GpuSpec& gpu,
                          std::int64_t batch) const {
  auto gpu_it = gpu_index_.find(gpu.name);
  if (gpu_it == gpu_index_.end()) {
    Fatal("KW model not trained for GPU " + gpu.name);
  }
  const int gpu_idx = gpu_it->second;
  // Per-layer signature resolution is memoized per network, so the loop
  // below does no string building, hashing, or map lookups.
  const std::vector<int>* sids = predict_cache_.Get(
      network, [this](const dnn::Layer& layer) { return ResolveSid(layer); });
  const std::vector<dnn::Layer>& layers = network.layers();
  double total = 0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    total += PredictLayerResolved(gpu_idx, (*sids)[i], layers[i], gpu.name,
                                  batch);
  }
  return total;
}

void KwModel::CompileLayerInto(const dnn::Layer& layer,
                               const std::string& gpu_name,
                               double extra_scale,
                               PredictionPlan& plan) const {
  auto gpu_it = gpu_index_.find(gpu_name);
  if (gpu_it == gpu_index_.end()) {
    Fatal("KW model not trained for GPU " + gpu_name);
  }
  const int gpu_idx = gpu_it->second;
  const int sid = ResolveSid(layer);
  // Mirrors PredictLayerResolved exactly: the plan's per-layer sweep
  // performs the same floating-point operations in the same order, so
  // EvalUs is bit-identical to the per-query path.
  if (sid < 0 || resolved_[gpu_idx][sid].use_lw) {
    // Layer-wise fallback: max(0, fit(FLOPs)), no calibration factor.
    plan.BeginLayer(1.0, extra_scale, layer.name);
    const regression::LinearFit* fit =
        lw_fallback_.FitFor(gpu_name, layer.kind);
    if (fit != nullptr) {
      plan.AddTerm(dnn::LayerFlops(layer, 1), fit->slope, fit->intercept);
    }
    return;
  }
  plan.BeginLayer(calibration_by_gpu_[gpu_idx], extra_scale, layer.name);
  for (const ResolvedKernel& kernel : resolved_[gpu_idx][sid].kernels) {
    plan.AddTerm(gpuexec::PerSampleDriverValue(layer, kernel.driver),
                 kernel.slope, kernel.intercept, kernel.cluster_id);
  }
}

PredictionPlan KwModel::CompilePlan(const dnn::Network& network,
                                    const std::string& gpu_name) const {
  PredictionPlan plan;
  for (const dnn::Layer& layer : network.layers()) {
    CompileLayerInto(layer, gpu_name, 1.0, plan);
  }
  return plan;
}

const PredictionPlan* KwModel::PlanForFp(const dnn::Network& network,
                                         std::uint64_t fingerprint,
                                         const gpuexec::GpuSpec& gpu) const {
  auto gpu_it = gpu_index_.find(gpu.name);
  if (gpu_it == gpu_index_.end()) {
    Fatal("KW model not trained for GPU " + gpu.name);
  }
  PlanCache::SlotKey slot;
  slot.gpu_index = gpu_it->second;
  return plan_cache_.Get(network, fingerprint, slot, [&] {
    return CompilePlan(network, gpu.name);
  });
}

const PredictionPlan* KwModel::PlanFor(const dnn::Network& network,
                                       const gpuexec::GpuSpec& gpu) const {
  return PlanForFp(network, NetworkFingerprint(network), gpu);
}

void KwModel::PredictMany(std::span<const PredictQuery> queries,
                          std::span<double> out_us) const {
  GP_CHECK_EQ(queries.size(), out_us.size());
  // Queries for the same network (and same (network, GPU) pair) tend to
  // arrive in runs — a serving matrix fill is one row per network — so
  // the sweep memoizes the fingerprint per network run and the plan per
  // pair run. Steady state is then pure EvalUs: no hashing, no locks,
  // no allocation.
  const dnn::Network* last_network = nullptr;
  const gpuexec::GpuSpec* last_gpu = nullptr;
  std::uint64_t fingerprint = 0;
  const PredictionPlan* plan = nullptr;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const PredictQuery& query = queries[i];
    if (query.network != last_network) {
      fingerprint = NetworkFingerprint(*query.network);
      last_network = query.network;
      last_gpu = nullptr;
    }
    if (query.gpu != last_gpu) {
      plan = PlanForFp(*query.network, fingerprint, *query.gpu);
      last_gpu = query.gpu;
    }
    out_us[i] = plan->EvalUs(query.batch);
  }
  internal::CountPlanQueries(queries.size());
}

const std::map<std::string, KernelModel>& KwModel::KernelModels(
    const std::string& gpu_name) const {
  auto it = per_gpu_.find(gpu_name);
  if (it == per_gpu_.end()) {
    Fatal("KW model not trained for GPU " + gpu_name);
  }
  return it->second;
}

std::vector<std::string> KwModel::TrainedGpus() const {
  std::vector<std::string> gpus;
  for (const auto& [gpu, kernels] : per_gpu_) gpus.push_back(gpu);
  return gpus;
}

int KwModel::KernelCount(const std::string& gpu_name) const {
  return static_cast<int>(KernelModels(gpu_name).size());
}

int KwModel::ClusterCount(const std::string& gpu_name) const {
  // Counted once in FinalizeTables(); this used to sort + unique the
  // whole kernel set on every call.
  auto it = gpu_index_.find(gpu_name);
  if (it == gpu_index_.end()) {
    Fatal("KW model not trained for GPU " + gpu_name);
  }
  return cluster_counts_[it->second];
}

}  // namespace gpuperf::models
