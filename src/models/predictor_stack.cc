#include "models/predictor_stack.h"

#include <memory>
#include <utility>

namespace gpuperf::models {
namespace {

/** Process-wide tier counters, aggregated across every stack. */
struct PredictorMetrics {
  obs::Counter& kw_hits;
  obs::Counter& lw_fallbacks;
  obs::Counter& e2e_fallbacks;
  obs::Counter& unanswered;

  static PredictorMetrics& Get() {
    static PredictorMetrics* const kMetrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return new PredictorMetrics{
          registry.counter("gpuperf_predictor_kw_hits"),
          registry.counter("gpuperf_predictor_lw_fallbacks"),
          registry.counter("gpuperf_predictor_e2e_fallbacks"),
          registry.counter("gpuperf_predictor_unanswered")};
    }();
    return *kMetrics;
  }
};

}  // namespace

const char* PredictorTierName(PredictorTier tier) {
  switch (tier) {
    case PredictorTier::kKw: return "KW";
    case PredictorTier::kLw: return "LW";
    case PredictorTier::kE2e: return "E2E";
    case PredictorTier::kNone: return "none";
  }
  GP_CHECK(false) << "unhandled PredictorTier";
  return "";
}

double PredictorStackCounters::DegradedFraction() const {
  const std::uint64_t answered = kw_hits + lw_fallbacks + e2e_fallbacks;
  if (answered == 0) return 0.0;
  return static_cast<double>(lw_fallbacks + e2e_fallbacks) /
         static_cast<double>(answered);
}

void PredictorStack::SetKw(KwModel kw) {
  kw_ = std::make_shared<const KwModel>(std::move(kw));
}

void PredictorStack::SetKw(std::shared_ptr<const KwModel> kw) {
  kw_ = std::move(kw);
}

void PredictorStack::SetLw(LwModel lw) {
  lw_ = std::move(lw);
  lw_gpus_.clear();
  for (const auto& [key, fit] : lw_->fits()) {
    (void)fit;
    lw_gpus_.insert(key.first);
  }
}

void PredictorStack::SetE2e(E2eModel e2e) { e2e_ = std::move(e2e); }

StatusOr<double> PredictorStack::TryPredictUs(const dnn::Network& network,
                                              const gpuexec::GpuSpec& gpu,
                                              std::int64_t batch,
                                              PredictorTier* tier) const {
  if (tier != nullptr) *tier = PredictorTier::kNone;
  PredictorMetrics& global = PredictorMetrics::Get();
  if (kw_ != nullptr && kw_->CoverageFor(network, gpu.name).Full()) {
    kw_hits_.Increment();
    global.kw_hits.Increment();
    if (tier != nullptr) *tier = PredictorTier::kKw;
    return kw_->PredictUs(network, gpu, batch);
  }
  if (lw_.has_value() && lw_gpus_.count(gpu.name) > 0) {
    lw_fallbacks_.Increment();
    global.lw_fallbacks.Increment();
    if (tier != nullptr) *tier = PredictorTier::kLw;
    return lw_->PredictUs(network, gpu, batch);
  }
  if (e2e_.has_value() && e2e_->TryFitFor(gpu.name) != nullptr) {
    e2e_fallbacks_.Increment();
    global.e2e_fallbacks.Increment();
    if (tier != nullptr) *tier = PredictorTier::kE2e;
    return e2e_->PredictUs(network, gpu, batch);
  }
  unanswered_.Increment();
  global.unanswered.Increment();
  return FailedPreconditionError(
      "no predictor tier covers network '" + network.name() + "' on GPU '" +
      gpu.name + "' (installed: " + (has_kw() ? "KW " : "") +
      (has_lw() ? "LW " : "") + (has_e2e() ? "E2E" : "") +
      "); retrain or extend the measurement campaign");
}

double PredictorStack::PredictUs(const dnn::Network& network,
                                 const gpuexec::GpuSpec& gpu,
                                 std::int64_t batch) const {
  StatusOr<double> prediction = TryPredictUs(network, gpu, batch);
  return prediction.ok() ? *prediction : 0.0;
}

PredictorStackCounters PredictorStack::counters() const {
  PredictorStackCounters counters;
  counters.kw_hits = kw_hits_.Value();
  counters.lw_fallbacks = lw_fallbacks_.Value();
  counters.e2e_fallbacks = e2e_fallbacks_.Value();
  counters.unanswered = unanswered_.Value();
  return counters;
}

void PredictorStack::ResetCounters() {
  kw_hits_.Reset();
  lw_fallbacks_.Reset();
  e2e_fallbacks_.Reset();
  unanswered_.Reset();
}

}  // namespace gpuperf::models
