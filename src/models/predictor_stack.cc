#include "models/predictor_stack.h"

#include <memory>
#include <utility>

namespace gpuperf::models {
namespace {

/** Process-wide tier counters, aggregated across every stack. */
struct PredictorMetrics {
  obs::Counter& kw_hits;
  obs::Counter& lw_fallbacks;
  obs::Counter& e2e_fallbacks;
  obs::Counter& unanswered;

  static PredictorMetrics& Get() {
    static PredictorMetrics* const kMetrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return new PredictorMetrics{
          registry.counter("gpuperf_predictor_kw_hits"),
          registry.counter("gpuperf_predictor_lw_fallbacks"),
          registry.counter("gpuperf_predictor_e2e_fallbacks"),
          registry.counter("gpuperf_predictor_unanswered")};
    }();
    return *kMetrics;
  }
};

}  // namespace

const char* PredictorTierName(PredictorTier tier) {
  switch (tier) {
    case PredictorTier::kKw: return "KW";
    case PredictorTier::kLw: return "LW";
    case PredictorTier::kE2e: return "E2E";
    case PredictorTier::kNone: return "none";
  }
  GP_CHECK(false) << "unhandled PredictorTier";
  return "";
}

double PredictorStackCounters::DegradedFraction() const {
  const std::uint64_t answered = kw_hits + lw_fallbacks + e2e_fallbacks;
  if (answered == 0) return 0.0;
  return static_cast<double>(lw_fallbacks + e2e_fallbacks) /
         static_cast<double>(answered);
}

void PredictorStack::SetKw(KwModel kw) {
  kw_ = std::make_shared<const KwModel>(std::move(kw));
}

void PredictorStack::SetKw(std::shared_ptr<const KwModel> kw) {
  kw_ = std::move(kw);
}

void PredictorStack::SetLw(LwModel lw) {
  lw_ = std::move(lw);
  lw_gpus_.clear();
  for (const auto& [key, fit] : lw_->fits()) {
    (void)fit;
    lw_gpus_.insert(key.first);
  }
}

void PredictorStack::SetE2e(E2eModel e2e) { e2e_ = std::move(e2e); }

StatusOr<double> PredictorStack::TryPredictUs(const dnn::Network& network,
                                              const gpuexec::GpuSpec& gpu,
                                              std::int64_t batch,
                                              PredictorTier* tier) const {
  if (tier != nullptr) *tier = PredictorTier::kNone;
  PredictorMetrics& global = PredictorMetrics::Get();
  if (kw_ != nullptr && kw_->CoverageFor(network, gpu.name).Full()) {
    kw_hits_.Increment();
    global.kw_hits.Increment();
    if (tier != nullptr) *tier = PredictorTier::kKw;
    return kw_->PredictUs(network, gpu, batch);
  }
  if (lw_.has_value() && lw_gpus_.count(gpu.name) > 0) {
    lw_fallbacks_.Increment();
    global.lw_fallbacks.Increment();
    if (tier != nullptr) *tier = PredictorTier::kLw;
    return lw_->PredictUs(network, gpu, batch);
  }
  if (e2e_.has_value() && e2e_->TryFitFor(gpu.name) != nullptr) {
    e2e_fallbacks_.Increment();
    global.e2e_fallbacks.Increment();
    if (tier != nullptr) *tier = PredictorTier::kE2e;
    return e2e_->PredictUs(network, gpu, batch);
  }
  unanswered_.Increment();
  global.unanswered.Increment();
  return FailedPreconditionError(
      "no predictor tier covers network '" + network.name() + "' on GPU '" +
      gpu.name + "' (installed: " + (has_kw() ? "KW " : "") +
      (has_lw() ? "LW " : "") + (has_e2e() ? "E2E" : "") +
      "); retrain or extend the measurement campaign");
}

double PredictorStack::PredictUs(const dnn::Network& network,
                                 const gpuexec::GpuSpec& gpu,
                                 std::int64_t batch) const {
  StatusOr<double> prediction = TryPredictUs(network, gpu, batch);
  return prediction.ok() ? *prediction : 0.0;
}

void PredictorStack::PredictMany(std::span<const PredictQuery> queries,
                                 std::span<double> out_us) const {
  PredictManySwept(queries, out_us, nullptr);
}

void PredictorStack::PredictManyWithTiers(
    std::span<const PredictQuery> queries, std::span<double> out_us,
    std::span<PredictorTier> tiers) const {
  GP_CHECK_EQ(queries.size(), tiers.size());
  PredictManySwept(queries, out_us, tiers.data());
}

void PredictorStack::PredictManySwept(std::span<const PredictQuery> queries,
                                      std::span<double> out_us,
                                      PredictorTier* tiers) const {
  GP_CHECK_EQ(queries.size(), out_us.size());
  // One KW generation snapshot per sweep, not per query: a concurrent
  // BundleRegistry hot-swap costs this sweep a single shared_ptr copy,
  // and the local reference keeps the old generation (and its compiled
  // plans) alive until the sweep finishes.
  const std::shared_ptr<const KwModel> kw_snapshot = kw_;
  const KwModel* kw = kw_snapshot.get();

  const dnn::Network* last_network = nullptr;
  const gpuexec::GpuSpec* last_gpu = nullptr;
  PredictorTier tier = PredictorTier::kNone;
  const PredictionPlan* plan = nullptr;  // set iff tier == kKw
  std::uint64_t tally[4] = {0, 0, 0, 0};
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const PredictQuery& query = queries[i];
    if (query.network != last_network || query.gpu != last_gpu) {
      // Tier selection depends only on the (network, GPU) pair, so it —
      // and the KW plan resolution — is memoized across a run of
      // same-pair queries (e.g. a batch-size scan).
      plan = nullptr;
      if (kw != nullptr && kw->CoverageFor(*query.network, query.gpu->name)
                               .Full()) {
        tier = PredictorTier::kKw;
        plan = kw->PlanFor(*query.network, *query.gpu);
      } else if (lw_.has_value() && lw_gpus_.count(query.gpu->name) > 0) {
        tier = PredictorTier::kLw;
      } else if (e2e_.has_value() &&
                 e2e_->TryFitFor(query.gpu->name) != nullptr) {
        tier = PredictorTier::kE2e;
      } else {
        tier = PredictorTier::kNone;
      }
      last_network = query.network;
      last_gpu = query.gpu;
    }
    switch (tier) {
      case PredictorTier::kKw:
        out_us[i] = plan->EvalUs(query.batch);
        break;
      case PredictorTier::kLw:
        out_us[i] = lw_->PredictUs(*query.network, *query.gpu, query.batch);
        break;
      case PredictorTier::kE2e:
        out_us[i] = e2e_->PredictUs(*query.network, *query.gpu, query.batch);
        break;
      case PredictorTier::kNone:
        out_us[i] = 0.0;  // PredictUs maps an uncovered query to 0
        break;
    }
    if (tiers != nullptr) tiers[i] = tier;
    ++tally[static_cast<int>(tier)];
  }

  // Counters carry the same totals as per-query calls, bumped once per
  // sweep with the aggregated tallies.
  PredictorMetrics& global = PredictorMetrics::Get();
  const std::uint64_t kw_n = tally[static_cast<int>(PredictorTier::kKw)];
  const std::uint64_t lw_n = tally[static_cast<int>(PredictorTier::kLw)];
  const std::uint64_t e2e_n = tally[static_cast<int>(PredictorTier::kE2e)];
  const std::uint64_t none_n = tally[static_cast<int>(PredictorTier::kNone)];
  if (kw_n > 0) {
    kw_hits_.Increment(kw_n);
    global.kw_hits.Increment(kw_n);
    internal::CountPlanQueries(kw_n);
  }
  if (lw_n > 0) {
    lw_fallbacks_.Increment(lw_n);
    global.lw_fallbacks.Increment(lw_n);
  }
  if (e2e_n > 0) {
    e2e_fallbacks_.Increment(e2e_n);
    global.e2e_fallbacks.Increment(e2e_n);
  }
  if (none_n > 0) {
    unanswered_.Increment(none_n);
    global.unanswered.Increment(none_n);
  }
}

PredictorStackCounters PredictorStack::counters() const {
  PredictorStackCounters counters;
  counters.kw_hits = kw_hits_.Value();
  counters.lw_fallbacks = lw_fallbacks_.Value();
  counters.e2e_fallbacks = e2e_fallbacks_.Value();
  counters.unanswered = unanswered_.Value();
  return counters;
}

void PredictorStack::ResetCounters() {
  kw_hits_.Reset();
  lw_fallbacks_.Reset();
  e2e_fallbacks_.Reset();
  unanswered_.Reset();
}

}  // namespace gpuperf::models
