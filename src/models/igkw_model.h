#ifndef GPUPERF_MODELS_IGKW_MODEL_H_
#define GPUPERF_MODELS_IGKW_MODEL_H_

/**
 * @file
 * The Inter-GPU Kernel-Wise model (Section 5.5): predicts a GPU that is
 * not in the training set by regressing each kernel's KW parameters
 * against GPU theoretical specifications (O6).
 *
 * The paper selects memory bandwidth as the scaling feature; for every
 * kernel the KW slope on the training GPUs is fit as
 * slope = a + b / bandwidth (memory-bound kernels are pure b/bandwidth,
 * compute-bound kernels pure a), and likewise for the intercept.
 * Prediction needs only the target GPU's Table 1 numbers — hypothetical
 * GPUs (case study 1) are supported by construction. The feature choice
 * is parameterized to support the paper's discussion-section ablation
 * (bandwidth vs TFLOPS vs both).
 */

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataset/dataset.h"
#include "dnn/layer.h"
#include "gpuexec/kernel.h"
#include "models/kw_model.h"
#include "models/network_cache.h"
#include "models/predictor.h"

namespace gpuperf::models {

/** Which Table 1 column(s) drive the inter-GPU parameter scaling. */
enum class ScalingFeature {
  kBandwidth,  // the paper's choice (O6)
  kTflops,     // ablation: theoretical FP32 throughput
  kBoth,       // ablation: both reciprocals
};

/** Spec-parameterized regression of one kernel. */
struct InterGpuKernelModel {
  gpuexec::CostDriver driver = gpuexec::CostDriver::kOperation;
  // slope(gpu) = slope_beta[0] + sum_i slope_beta[i+1] * feature_i(gpu)
  std::vector<double> slope_beta;
  std::vector<double> intercept_beta;
};

/** The Inter-GPU Kernel-Wise predictor. */
class IgkwModel : public Predictor {
 public:
  /**
   * Trains per-kernel KW models on `training_gpus` (which must all be in
   * `data`), then fits the spec scaling laws. The driver of a kernel is
   * the majority vote across training GPUs.
   */
  void Train(const dataset::Dataset& data, const dataset::NetworkSplit& split,
             const std::vector<std::string>& training_gpus,
             ScalingFeature feature = ScalingFeature::kBandwidth,
             const KwOptions& options = KwOptions());

  std::string Name() const override { return "IGKW"; }

  /** Predicts from `gpu`'s Table 1 numbers only; `gpu.name` is ignored. */
  double PredictUs(const dnn::Network& network, const gpuexec::GpuSpec& gpu,
                   std::int64_t batch) const override;

  /**
   * Batched prediction through compiled plans (scaling laws evaluated
   * once at compile time per (network, GPU-spec) pair, not per query).
   * Bit-identical to per-query PredictUs. Hypothetical GPUs are keyed
   * by their scaling-feature values, so two specs with equal features
   * share a plan — by construction they predict identically.
   */
  void PredictMany(std::span<const PredictQuery> queries,
                   std::span<double> out_us) const override;

  /**
   * The compiled plan for (`network`, `gpu`), compiling and caching it
   * on first use. Valid for the model's lifetime (or until retrain).
   */
  const PredictionPlan* PlanFor(const dnn::Network& network,
                                const gpuexec::GpuSpec& gpu) const;

  /** Per-layer prediction for a (possibly hypothetical) GPU spec. */
  double PredictLayerUs(const dnn::Layer& layer, const gpuexec::GpuSpec& gpu,
                        std::int64_t batch) const;

  /** The kernel's fitted line on a (possibly hypothetical) GPU spec. */
  regression::LinearFit KernelFitAt(const InterGpuKernelModel& law,
                                    const gpuexec::GpuSpec& gpu) const;

  /** The underlying per-GPU KW model (for inspection). */
  const KwModel& kw_model() const { return kw_; }

  /** Scaling law for `kernel_name`, or nullptr if unknown. */
  const InterGpuKernelModel* KernelLaw(const std::string& kernel_name) const;

 private:
  /** A layer signature resolved to its kernels' scaling laws. */
  struct ResolvedSig {
    bool fallback = false;  // a kernel has no law: nearest-GPU estimate
    std::vector<InterGpuKernelModel> laws;
  };

  /** Feature vector of a GPU spec under the configured ScalingFeature. */
  std::vector<double> Features(const gpuexec::GpuSpec& gpu) const;

  /** Resolves the mapping table into per-signature law lists. */
  void FinalizeTables();

  /** Dense signature id of `layer` (full, then reduced), or -1. */
  int ResolveSid(const dnn::Layer& layer) const;

  /** Layer prediction from a resolved sid and precomputed GPU features. */
  double PredictLayerResolved(int sid, const dnn::Layer& layer,
                              const gpuexec::GpuSpec& gpu,
                              const std::vector<double>& features,
                              std::int64_t batch) const;

  /** The fitted line evaluated from precomputed features. */
  regression::LinearFit FitFromFeatures(
      const InterGpuKernelModel& law,
      const std::vector<double>& features) const;

  /** Compiles the whole network for one GPU spec (PlanFor misses). */
  PredictionPlan CompilePlan(const dnn::Network& network,
                             const gpuexec::GpuSpec& gpu) const;

  /** PlanFor with the network fingerprint already computed. */
  const PredictionPlan* PlanForFp(const dnn::Network& network,
                                  std::uint64_t fingerprint,
                                  const gpuexec::GpuSpec& gpu) const;

  KwModel kw_;
  double mean_calibration_ = 1.0;  // mean of the training GPUs' factors
  ScalingFeature feature_ = ScalingFeature::kBandwidth;
  std::map<std::string, InterGpuKernelModel> laws_;
  std::vector<std::string> training_gpus_;

  // --- Dense tables built by FinalizeTables(); indexed by sid.
  std::unordered_map<std::string, int> sig_index_;
  std::unordered_map<std::string, int> reduced_index_;
  std::vector<ResolvedSig> resolved_;
  // network name -> per-layer sids, filled lazily on prediction.
  NetworkSidCache predict_cache_;
  // (network, gpu features) -> compiled plan, filled lazily by PlanFor.
  PlanCache plan_cache_;
};

}  // namespace gpuperf::models

#endif  // GPUPERF_MODELS_IGKW_MODEL_H_
