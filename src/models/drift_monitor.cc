#include "models/drift_monitor.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics_registry.h"

namespace gpuperf::models {
namespace {

struct DriftMetrics {
  obs::Counter& observations;
  obs::Counter& trips;
  obs::Gauge& tripped_pairs;

  static DriftMetrics& Get() {
    static DriftMetrics* const kMetrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return new DriftMetrics{
          registry.counter("gpuperf_drift_observations"),
          registry.counter("gpuperf_drift_trips"),
          registry.gauge("gpuperf_drift_tripped_pairs")};
    }();
    return *kMetrics;
  }
};

}  // namespace

DriftMonitor::DriftMonitor(const DriftMonitorOptions& options)
    : options_(options) {
  GP_CHECK_GT(options_.ewma_alpha, 0.0);
  GP_CHECK_LE(options_.ewma_alpha, 1.0);
  GP_CHECK_GE(options_.cusum_k, 0.0);
  GP_CHECK_GT(options_.cusum_h, 0.0);
  GP_CHECK_GE(options_.min_observations, 1);
}

void DriftMonitor::Observe(const std::string& gpu, int cluster_id,
                           double log_ratio) {
  if (!std::isfinite(log_ratio)) return;
  DriftMetrics& metrics = DriftMetrics::Get();
  metrics.observations.Increment();

  DriftTracker& tracker = trackers_[{gpu, cluster_id}];
  if (tracker.observations == 0) {
    tracker.ewma = log_ratio;
  } else {
    tracker.ewma = options_.ewma_alpha * log_ratio +
                   (1.0 - options_.ewma_alpha) * tracker.ewma;
  }
  tracker.cusum_pos =
      std::max(0.0, tracker.cusum_pos + log_ratio - options_.cusum_k);
  tracker.cusum_neg =
      std::max(0.0, tracker.cusum_neg - log_ratio - options_.cusum_k);
  ++tracker.observations;

  if (!tracker.tripped &&
      tracker.observations >= options_.min_observations &&
      std::max(tracker.cusum_pos, tracker.cusum_neg) > options_.cusum_h) {
    tracker.tripped = true;
    metrics.trips.Increment();
    metrics.tripped_pairs.Add(1);
    LogInfo("drift detected",
            {{"gpu", gpu},
             {"cluster", Format("%d", cluster_id)},
             {"ewma", Format("%.4f", tracker.ewma)},
             {"cusum", Format("%.4f", std::max(tracker.cusum_pos,
                                               tracker.cusum_neg))},
             {"observations", Format("%lld", static_cast<long long>(
                                                 tracker.observations))}});
  }
}

std::vector<DriftKey> DriftMonitor::Tripped() const {
  std::vector<DriftKey> keys;
  for (const auto& [key, tracker] : trackers_) {
    if (tracker.tripped) keys.push_back(key);
  }
  return keys;
}

const DriftTracker* DriftMonitor::Find(const std::string& gpu,
                                       int cluster_id) const {
  auto it = trackers_.find({gpu, cluster_id});
  return it == trackers_.end() ? nullptr : &it->second;
}

double DriftMonitor::MeanAbsEwma(const std::string& gpu) const {
  double sum = 0;
  int count = 0;
  for (const auto& [key, tracker] : trackers_) {
    if (key.gpu != gpu) continue;
    sum += std::abs(tracker.ewma);
    ++count;
  }
  return count == 0 ? 0.0 : sum / count;
}

void DriftMonitor::Reset(const std::string& gpu, int cluster_id) {
  auto it = trackers_.find({gpu, cluster_id});
  if (it == trackers_.end()) return;
  if (it->second.tripped) DriftMetrics::Get().tripped_pairs.Add(-1);
  trackers_.erase(it);
}

void DriftMonitor::ResetAll() {
  DriftMetrics& metrics = DriftMetrics::Get();
  for (const auto& [key, tracker] : trackers_) {
    (void)key;
    if (tracker.tripped) metrics.tripped_pairs.Add(-1);
  }
  trackers_.clear();
}

}  // namespace gpuperf::models
