#include "models/igkw_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "dnn/flops.h"
#include "gpuexec/gpu_spec.h"
#include "regression/linreg.h"

namespace gpuperf::models {

using gpuexec::CostDriver;

std::vector<double> IgkwModel::Features(const gpuexec::GpuSpec& gpu) const {
  GP_CHECK_GT(gpu.bandwidth_gbps, 0.0);
  GP_CHECK_GT(gpu.fp32_tflops, 0.0);
  switch (feature_) {
    case ScalingFeature::kBandwidth:
      return {1.0 / gpu.bandwidth_gbps};
    case ScalingFeature::kTflops:
      return {1.0 / gpu.fp32_tflops};
    case ScalingFeature::kBoth:
      return {1.0 / gpu.bandwidth_gbps, 1.0 / gpu.fp32_tflops};
  }
  GP_CHECK(false);
  return {};
}

regression::LinearFit IgkwModel::FitFromFeatures(
    const InterGpuKernelModel& law,
    const std::vector<double>& features) const {
  auto evaluate = [&](const std::vector<double>& beta) {
    GP_CHECK_EQ(beta.size(), features.size() + 1);
    double value = beta[0];
    for (std::size_t i = 0; i < features.size(); ++i) {
      value += beta[i + 1] * features[i];
    }
    return value;
  };
  regression::LinearFit fit;
  fit.slope = std::max(0.0, evaluate(law.slope_beta));
  fit.intercept = std::max(0.0, evaluate(law.intercept_beta));
  return fit;
}

regression::LinearFit IgkwModel::KernelFitAt(
    const InterGpuKernelModel& law, const gpuexec::GpuSpec& gpu) const {
  return FitFromFeatures(law, Features(gpu));
}

void IgkwModel::Train(const dataset::Dataset& data,
                      const dataset::NetworkSplit& split,
                      const std::vector<std::string>& training_gpus,
                      ScalingFeature feature, const KwOptions& options) {
  GP_CHECK_GE(training_gpus.size(), 2u)
      << "spec scaling needs at least two training GPUs";
  kw_ = KwModel(options);
  kw_.Train(data, split);
  training_gpus_ = training_gpus;
  feature_ = feature;
  laws_.clear();
  mean_calibration_ = 0;
  for (const std::string& gpu : training_gpus) {
    mean_calibration_ += kw_.CalibrationFor(gpu);
  }
  mean_calibration_ /= static_cast<double>(training_gpus.size());

  const std::size_t feature_count = Features(
      gpuexec::GpuByName(training_gpus.front())).size();

  // Kernel universe: names seen on the first training GPU.
  for (const auto& [name, first_model] :
       kw_.KernelModels(training_gpus.front())) {
    (void)first_model;
    // Majority driver across training GPUs.
    int votes[3] = {0, 0, 0};
    for (const std::string& gpu : training_gpus) {
      const auto& kernels = kw_.KernelModels(gpu);
      auto it = kernels.find(name);
      if (it != kernels.end()) ++votes[static_cast<int>(it->second.driver)];
    }
    int majority = 0;
    for (int d = 1; d < 3; ++d) {
      if (votes[d] > votes[majority]) majority = d;
    }
    InterGpuKernelModel law;
    law.driver = static_cast<CostDriver>(majority);

    // Gather (features, slope/intercept) over driver-consistent training
    // GPUs; inconsistent drivers would mix incomparable x units.
    std::vector<std::vector<double>> rows;
    std::vector<double> slopes, intercepts;
    for (const std::string& gpu : training_gpus) {
      const auto& kernels = kw_.KernelModels(gpu);
      auto it = kernels.find(name);
      if (it == kernels.end() || it->second.driver != law.driver) continue;
      rows.push_back(Features(gpuexec::GpuByName(gpu)));
      slopes.push_back(it->second.fit.slope);
      intercepts.push_back(it->second.fit.intercept);
    }
    if (rows.empty()) continue;
    if (rows.size() <= feature_count) {
      // Too few GPUs for a full fit: constant law from the mean.
      law.slope_beta.assign(feature_count + 1, 0.0);
      law.intercept_beta.assign(feature_count + 1, 0.0);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        law.slope_beta[0] += slopes[i] / static_cast<double>(rows.size());
        law.intercept_beta[0] +=
            intercepts[i] / static_cast<double>(rows.size());
      }
    } else {
      law.slope_beta = regression::FitMulti(rows, slopes).beta;
      law.intercept_beta = regression::FitMulti(rows, intercepts).beta;
    }
    laws_[name] = law;
  }

  FinalizeTables();
}

void IgkwModel::FinalizeTables() {
  sig_index_.clear();
  reduced_index_.clear();
  resolved_.clear();
  predict_cache_.Clear();
  plan_cache_.Clear();

  // Signature ids follow the sorted mapping-table order; the reduced
  // index keeps the first full signature per reduced key, matching the
  // KW model's fallback-table derivation.
  const std::map<std::string, std::vector<std::string>>& mapping =
      kw_.MappingTable();
  for (const auto& [signature, names] : mapping) {
    (void)names;
    sig_index_.emplace(signature, static_cast<int>(sig_index_.size()));
  }
  for (const auto& [signature, names] : mapping) {
    (void)names;
    reduced_index_.emplace(ReducedSignature(signature),
                           sig_index_.at(signature));
  }

  resolved_.resize(sig_index_.size());
  for (const auto& [signature, names] : mapping) {
    ResolvedSig& sig = resolved_[sig_index_.at(signature)];
    for (const std::string& name : names) {
      auto it = laws_.find(name);
      if (it == laws_.end()) {
        sig.fallback = true;
        sig.laws.clear();
        break;
      }
      sig.laws.push_back(it->second);
    }
  }
}

int IgkwModel::ResolveSid(const dnn::Layer& layer) const {
  const std::string signature = dnn::LayerSignature(layer);
  auto it = sig_index_.find(signature);
  if (it != sig_index_.end()) return it->second;
  auto reduced = reduced_index_.find(ReducedSignature(signature));
  if (reduced != reduced_index_.end()) return reduced->second;
  return -1;
}

double IgkwModel::PredictLayerResolved(int sid, const dnn::Layer& layer,
                                       const gpuexec::GpuSpec& gpu,
                                       const std::vector<double>& features,
                                       std::int64_t batch) const {
  // Fallbacks route through the nearest-bandwidth training GPU's KW
  // estimate, scaled by the bandwidth ratio (memory-bound default).
  auto fallback = [&]() {
    std::string nearest = training_gpus_.front();
    double best = 1e300;
    for (const std::string& name : training_gpus_) {
      const double gap = std::fabs(
          gpuexec::GpuByName(name).bandwidth_gbps - gpu.bandwidth_gbps);
      if (gap < best) {
        best = gap;
        nearest = name;
      }
    }
    const double near_bw = gpuexec::GpuByName(nearest).bandwidth_gbps;
    return kw_.PredictLayerUs(layer, nearest, batch) *
           (near_bw / gpu.bandwidth_gbps);
  };
  if (sid < 0) return fallback();
  const ResolvedSig& resolved = resolved_[sid];
  if (resolved.fallback) return fallback();

  const double x_input = static_cast<double>(batch * layer.InputElements());
  const double x_operation =
      static_cast<double>(dnn::LayerFlops(layer, batch));
  const double x_output =
      static_cast<double>(batch * layer.output.Elements());

  double total = 0;
  for (const InterGpuKernelModel& law : resolved.laws) {
    const regression::LinearFit fit = FitFromFeatures(law, features);
    double x = x_operation;
    if (law.driver == CostDriver::kInput) x = x_input;
    if (law.driver == CostDriver::kOutput) x = x_output;
    total += std::max(0.0, fit.Predict(x));
  }
  return total * mean_calibration_;
}

double IgkwModel::PredictLayerUs(const dnn::Layer& layer,
                                 const gpuexec::GpuSpec& gpu,
                                 std::int64_t batch) const {
  return PredictLayerResolved(ResolveSid(layer), layer, gpu, Features(gpu),
                              batch);
}

double IgkwModel::PredictUs(const dnn::Network& network,
                            const gpuexec::GpuSpec& gpu,
                            std::int64_t batch) const {
  // GPU features are evaluated once per call, and per-layer signature
  // resolution is memoized per network, so the loop below does no string
  // building, hashing, or map lookups.
  const std::vector<double> features = Features(gpu);
  const std::vector<int>* sids = predict_cache_.Get(
      network, [this](const dnn::Layer& layer) { return ResolveSid(layer); });
  const std::vector<dnn::Layer>& layers = network.layers();
  double total = 0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    total += PredictLayerResolved((*sids)[i], layers[i], gpu, features, batch);
  }
  return total;
}

PredictionPlan IgkwModel::CompilePlan(const dnn::Network& network,
                                      const gpuexec::GpuSpec& gpu) const {
  const std::vector<double> features = Features(gpu);
  // The nearest-bandwidth training GPU and its scaling ratio depend
  // only on the target spec, so they are resolved once per plan instead
  // of once per fallback layer per query.
  std::string nearest = training_gpus_.front();
  double best = 1e300;
  for (const std::string& name : training_gpus_) {
    const double gap = std::fabs(
        gpuexec::GpuByName(name).bandwidth_gbps - gpu.bandwidth_gbps);
    if (gap < best) {
      best = gap;
      nearest = name;
    }
  }
  const double near_bw = gpuexec::GpuByName(nearest).bandwidth_gbps;
  const double ratio = near_bw / gpu.bandwidth_gbps;

  const std::vector<int>* sids = predict_cache_.Get(
      network, [this](const dnn::Layer& layer) { return ResolveSid(layer); });
  const std::vector<dnn::Layer>& layers = network.layers();
  PredictionPlan plan;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const int sid = (*sids)[i];
    if (sid < 0 || resolved_[sid].fallback) {
      // Nearest-GPU KW estimate scaled by the bandwidth ratio — the KW
      // model compiles the layer with `ratio` as the trailing scale,
      // reproducing `kw_.PredictLayerUs(...) * ratio` bit-for-bit.
      kw_.CompileLayerInto(layers[i], nearest, ratio, plan);
      continue;
    }
    plan.BeginLayer(mean_calibration_, 1.0);
    for (const InterGpuKernelModel& law : resolved_[sid].laws) {
      const regression::LinearFit fit = FitFromFeatures(law, features);
      plan.AddTerm(gpuexec::PerSampleDriverValue(layers[i], law.driver),
                   fit.slope, fit.intercept);
    }
  }
  return plan;
}

const PredictionPlan* IgkwModel::PlanForFp(const dnn::Network& network,
                                           std::uint64_t fingerprint,
                                           const gpuexec::GpuSpec& gpu) const {
  // Spec-driven slot key: everything a plan bakes in — the scaling
  // features and the fallback bandwidth ratio — derives from these two
  // numbers, so hypothetical GPUs (no stable name) key correctly and
  // equal-spec GPUs share a plan.
  PlanCache::SlotKey slot;
  slot.feature_a = gpu.bandwidth_gbps;
  slot.feature_b = gpu.fp32_tflops;
  return plan_cache_.Get(network, fingerprint, slot, [&] {
    return CompilePlan(network, gpu);
  });
}

const PredictionPlan* IgkwModel::PlanFor(const dnn::Network& network,
                                         const gpuexec::GpuSpec& gpu) const {
  return PlanForFp(network, NetworkFingerprint(network), gpu);
}

void IgkwModel::PredictMany(std::span<const PredictQuery> queries,
                            std::span<double> out_us) const {
  GP_CHECK_EQ(queries.size(), out_us.size());
  const dnn::Network* last_network = nullptr;
  const gpuexec::GpuSpec* last_gpu = nullptr;
  std::uint64_t fingerprint = 0;
  const PredictionPlan* plan = nullptr;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const PredictQuery& query = queries[i];
    if (query.network != last_network) {
      fingerprint = NetworkFingerprint(*query.network);
      last_network = query.network;
      last_gpu = nullptr;
    }
    if (query.gpu != last_gpu) {
      plan = PlanForFp(*query.network, fingerprint, *query.gpu);
      last_gpu = query.gpu;
    }
    out_us[i] = plan->EvalUs(query.batch);
  }
  internal::CountPlanQueries(queries.size());
}

const InterGpuKernelModel* IgkwModel::KernelLaw(
    const std::string& kernel_name) const {
  auto it = laws_.find(kernel_name);
  return it == laws_.end() ? nullptr : &it->second;
}

}  // namespace gpuperf::models
