#ifndef GPUPERF_MODELS_NETWORK_CACHE_H_
#define GPUPERF_MODELS_NETWORK_CACHE_H_

/**
 * @file
 * Per-network memo of resolved layer ids for the prediction hot path.
 *
 * KwModel and IgkwModel resolve every layer of a network to a dense
 * signature id (an index into tables precomputed at train time). The
 * resolution itself builds and hashes signature strings, so it is done
 * once per distinct network and memoized here; later PredictUs calls on
 * the same network do a single hash lookup per network, not per layer.
 *
 * Entries are keyed by network name and validated against a structural
 * fingerprint (layer kinds and shapes), so re-using a name for a
 * different architecture recomputes instead of returning stale ids.
 * Lookups take a shared lock; the cache is safe to hit from concurrent
 * serving threads. Copying a model copies the cached entries but gives
 * the copy its own lock.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/synchronization.h"
#include "dnn/network.h"

namespace gpuperf::models {

/** Structural hash of a network (layer kinds and element counts). */
std::uint64_t NetworkFingerprint(const dnn::Network& network);

/** Thread-safe network-name -> per-layer-id memo. */
class NetworkSidCache {
 public:
  NetworkSidCache() = default;
  NetworkSidCache(const NetworkSidCache& other);
  NetworkSidCache& operator=(const NetworkSidCache& other);

  /**
   * The per-layer ids of `network`, computing them with `resolve` (one
   * call per layer) on first sight or on a fingerprint mismatch.
   *
   * Returns a stable raw pointer (valid until Clear()) rather than a
   * shared_ptr copy: a predict is two reads away from the ids, and the
   * atomic refcount ping-pong of a per-call shared_ptr copy is
   * measurable contention on the serving hot path. Entries replaced by
   * a fingerprint mismatch are retired, not freed, so a pointer held
   * across a concurrent name reuse stays valid.
   */
  const std::vector<int>* Get(
      const dnn::Network& network,
      const std::function<int(const dnn::Layer&)>& resolve) const;

  /** Drops every entry (models call this when retrained). */
  void Clear();

 private:
  struct Entry {
    std::uint64_t fingerprint = 0;
    std::shared_ptr<const std::vector<int>> sids;
  };

  mutable SharedMutex mu_;
  mutable std::unordered_map<std::string, Entry> entries_ GP_GUARDED_BY(mu_);
  mutable std::vector<std::shared_ptr<const std::vector<int>>> retired_
      GP_GUARDED_BY(mu_);
};

}  // namespace gpuperf::models

#endif  // GPUPERF_MODELS_NETWORK_CACHE_H_
