#ifndef GPUPERF_MODELS_PREDICTOR_STACK_H_
#define GPUPERF_MODELS_PREDICTOR_STACK_H_

/**
 * @file
 * Graceful-degradation predictor: KW -> LW -> E2E.
 *
 * A deployed predictor (Figure 10's shipped bundle, the serving
 * dispatcher) meets workloads outside its trained scope: networks whose
 * layer signatures miss the mapping table, GPUs the bundle was never
 * trained for, or a bundle that failed to load entirely. Habitat
 * (arXiv:2102.00527) frames this as the central deployment problem — a
 * predictor must degrade, not die. The stack answers from the most
 * accurate tier whose trained scope covers the query and exposes per-tier
 * hit/fallback counters so operators can observe how often they are
 * running on a degraded tier (and go retrain when the fraction grows).
 *
 * Tier order mirrors the paper's accuracy ladder: KW (~7% error), LW
 * (~28%), E2E (~35%). A query no tier covers is a recoverable error,
 * never an abort.
 */

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "common/status.h"
#include "models/e2e_model.h"
#include "models/kw_model.h"
#include "models/lw_model.h"
#include "models/predictor.h"
#include "obs/metrics_registry.h"

namespace gpuperf::models {

/** The tier that answered (or kNone when nothing covered the query). */
enum class PredictorTier { kKw, kLw, kE2e, kNone };

/** Stable tier name: "KW", "LW", "E2E", "none". */
const char* PredictorTierName(PredictorTier tier);

/** Snapshot of the stack's per-tier counters. */
struct PredictorStackCounters {
  std::uint64_t kw_hits = 0;        // answered by the full-accuracy tier
  std::uint64_t lw_fallbacks = 0;   // KW missing/out of scope, LW answered
  std::uint64_t e2e_fallbacks = 0;  // KW and LW out of scope, E2E answered
  std::uint64_t unanswered = 0;     // no tier covered the query

  std::uint64_t total() const {
    return kw_hits + lw_fallbacks + e2e_fallbacks + unanswered;
  }
  /** Fraction of answered queries served by a degraded (non-KW) tier. */
  double DegradedFraction() const;
};

/** The KW -> LW -> E2E fallback stack. */
class PredictorStack : public Predictor {
 public:
  PredictorStack() = default;

  /**
   * Installs a tier (each takes ownership; overwrites any previous one).
   * A stack built from a bundle that failed to load simply never gets
   * SetKw() called and starts at the LW tier.
   */
  void SetKw(KwModel kw);
  void SetLw(LwModel lw);
  void SetE2e(E2eModel e2e);

  /**
   * Installs a shared KW generation — typically a BundleRegistry
   * snapshot, so the stack and the registry share one immutable model.
   * nullptr uninstalls the tier (the stack degrades to LW).
   */
  void SetKw(std::shared_ptr<const KwModel> kw);

  bool has_kw() const { return kw_ != nullptr; }
  bool has_lw() const { return lw_.has_value(); }
  bool has_e2e() const { return e2e_.has_value(); }

  std::string Name() const override { return "Stack"; }

  /**
   * Predicts from the best covering tier; reports which tier answered
   * via `tier` (optional). Returns FailedPrecondition when no installed
   * tier covers (network, gpu) — e.g. an empty stack, or a GPU no tier
   * was trained for.
   */
  [[nodiscard]] StatusOr<double> TryPredictUs(const dnn::Network& network,
                                const gpuexec::GpuSpec& gpu,
                                std::int64_t batch,
                                PredictorTier* tier = nullptr) const;

  /** Predictor interface: as TryPredictUs, but an uncovered query is 0. */
  double PredictUs(const dnn::Network& network, const gpuexec::GpuSpec& gpu,
                   std::int64_t batch) const override;

  /**
   * Batched prediction with the same tier ladder and counter semantics
   * as per-query TryPredictUs (uncovered queries produce 0.0, matching
   * PredictUs), but amortized across the sweep: the KW generation
   * shared_ptr is snapshotted once per call instead of once per query,
   * tier selection and the compiled KW plan are memoized across
   * same-(network, GPU) runs, and counters are bumped once per sweep
   * with the aggregated tallies. Bit-identical to per-query PredictUs.
   */
  void PredictMany(std::span<const PredictQuery> queries,
                   std::span<double> out_us) const override;

  /**
   * As PredictMany, additionally reporting the answering tier per query
   * in `tiers` (same length as `queries`; kNone for uncovered).
   */
  void PredictManyWithTiers(std::span<const PredictQuery> queries,
                            std::span<double> out_us,
                            std::span<PredictorTier> tiers) const;

  /** Thread-safe counter snapshot. */
  PredictorStackCounters counters() const;

  /** Zeroes this stack's counters (e.g. between measurement windows). */
  void ResetCounters();

 private:
  // Shared with BundleRegistry snapshots; the pointee is immutable and
  // its predict path is const and thread-safe.
  std::shared_ptr<const KwModel> kw_;
  std::optional<LwModel> lw_;
  std::optional<E2eModel> e2e_;
  std::set<std::string> lw_gpus_;  // GPUs the LW tier has fits for

  // Per-instance counters (counters()/ResetCounters() are scoped to
  // this stack); every query additionally bumps the process-wide
  // `gpuperf_predictor_*` registry families.
  mutable obs::Counter kw_hits_;
  mutable obs::Counter lw_fallbacks_;
  mutable obs::Counter e2e_fallbacks_;
  mutable obs::Counter unanswered_;

  /** Shared sweep implementation; `tiers` may be null. */
  void PredictManySwept(std::span<const PredictQuery> queries,
                        std::span<double> out_us,
                        PredictorTier* tiers) const;
};

}  // namespace gpuperf::models

#endif  // GPUPERF_MODELS_PREDICTOR_STACK_H_
