#ifndef GPUPERF_MODELS_BUNDLE_REGISTRY_H_
#define GPUPERF_MODELS_BUNDLE_REGISTRY_H_

/**
 * @file
 * Hot-swappable, canary-gated generations of the shipped KW bundle.
 *
 * PR 2 hardened a *single* bundle load at startup; a serving process
 * that runs for weeks also needs to pick up retrained bundles without a
 * restart — and must never let a bad bundle take over. Stevens &
 * Klöckner (arXiv:1904.09538) argue a model's scope and accuracy must
 * be re-validated before trusting it on new inputs; the registry
 * enforces exactly that before a candidate serves traffic:
 *
 *  1. integrity: `ModelIo::LoadKw` (manifest version, per-file
 *     checksums, field validation) — any corruption is a `path:line:
 *     field` Status;
 *  2. canary: the candidate must produce finite, positive predictions
 *     on a caller-supplied probe set, each within a relative tolerance
 *     of the currently-serving generation (when one exists and covers
 *     the probe).
 *
 * Only after both gates pass is the candidate promoted, atomically,
 * under an exclusive lock; a failing candidate never becomes visible —
 * the previous generation keeps serving throughout, which *is* the
 * rollback. `Rollback()` additionally restores the pre-promotion
 * generation after a regression is noticed post-promote.
 *
 * Readers call Snapshot() (shared lock) and keep predicting from their
 * `shared_ptr<const KwModel>` while promotions happen concurrently;
 * KwModel's predict path is const and thread-safe.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/synchronization.h"
#include "dnn/network.h"
#include "models/kw_model.h"

namespace gpuperf::models {

/** The canary gate's probe workload and acceptance tolerance. */
struct CanaryOptions {
  std::vector<dnn::Network> probe_networks;  // empty = integrity check only
  std::vector<std::string> gpus;  // probe GPUs; empty = candidate's trained
  std::int64_t batch = 16;
  // Max |candidate - current| / current per probe; only enforced when a
  // current generation exists and is trained for the probe GPU.
  double tolerance = 0.5;
};

/** Observability counters of one registry. */
struct BundleRegistryCounters {
  std::uint64_t generation = 0;   // promotions so far (0 = empty registry)
  std::uint64_t promotions = 0;   // candidates that passed both gates
  std::uint64_t rejections = 0;   // failed integrity or canary validation
  std::uint64_t rollbacks = 0;    // explicit Rollback() calls that restored
};

/** Versioned bundle generations behind a reader/writer snapshot. */
class BundleRegistry {
 public:
  BundleRegistry() = default;
  BundleRegistry(const BundleRegistry&) = delete;
  BundleRegistry& operator=(const BundleRegistry&) = delete;

  /**
   * Validates the bundle in `directory` (crash recovery, then
   * integrity, then canary) and atomically promotes it to the serving
   * generation. A save that crashed mid-swap in `directory` is resolved
   * to exactly one generation first. On any failure the registry is
   * untouched — the previous generation keeps serving — and the Status
   * names the offending file/field or probe.
   */
  [[nodiscard]] Status TryPromote(const std::string& directory,
                                  const CanaryOptions& options);

  /**
   * The serving generation's model (nullptr while the registry is
   * empty). The snapshot stays valid — and keeps predicting correctly —
   * across later promotions and rollbacks.
   */
  std::shared_ptr<const KwModel> Snapshot() const;

  /**
   * Restores the generation that was serving before the last promote.
   * FailedPrecondition when there is no previous generation (one level
   * of history is kept).
   */
  [[nodiscard]] Status Rollback();

  /** Consistent counter snapshot. */
  BundleRegistryCounters counters() const;

 private:
  /** Runs the canary gate for `candidate` against `current`. */
  static Status RunCanary(const KwModel& candidate, const KwModel* current,
                          const CanaryOptions& options);

  mutable SharedMutex mu_;
  std::shared_ptr<const KwModel> current_ GP_GUARDED_BY(mu_);
  std::shared_ptr<const KwModel> previous_ GP_GUARDED_BY(mu_);
  BundleRegistryCounters counters_ GP_GUARDED_BY(mu_);
};

}  // namespace gpuperf::models

#endif  // GPUPERF_MODELS_BUNDLE_REGISTRY_H_
