#ifndef GPUPERF_MODELS_REFIT_H_
#define GPUPERF_MODELS_REFIT_H_

/**
 * @file
 * Incremental refit and the self-healing bundle lifecycle.
 *
 * When the drift monitor trips a (GPU, cluster) pair, retraining the
 * whole model from a fresh profiling campaign is the slow path (hours
 * of tracing). The fast path implemented here re-estimates *only the
 * tripped clusters* from a bounded reservoir of recent serving
 * observations — each completed job contributes one (driver value,
 * attributed observed time) pair per kernel term — and ships the result
 * through the exact same gates as an offline retrain:
 *
 *   healthy --(monitor trips)--> drifting --(refit + save)--> shadow
 *     --(candidate scores >= champion on recent jobs)--> canary
 *     (BundleRegistry::TryPromote: integrity + probe gate, atomic swap)
 *     --(post-promotion residuals stay small)--> promoted
 *     --(residuals worsen)--> rolled-back (BundleRegistry::Rollback)
 *
 * The LifecycleController walks that state machine one transition per
 * Step(); every transition is a structured log line ("lifecycle
 * transition", from=/to=) and a `gpuperf_lifecycle_*` counter, so an
 * operator — or scripts/drift_smoke.sh — can audit exactly what the
 * loop decided and why. All decisions are driven by the deterministic
 * observation stream, never wall clocks, so a fixed scenario heals
 * bit-identically on every run.
 */

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "dnn/network.h"
#include "models/bundle_registry.h"
#include "models/drift_monitor.h"

namespace gpuperf::models {

/** Refit knobs. */
struct RefitOptions {
  int reservoir_capacity = 256;  // samples kept per (GPU, cluster)
  int min_samples = 8;           // samples required to re-estimate a pair
  double max_intercept_us = 20.0;  // same physical clamp as training
};

/**
 * A bounded ring of recent (driver value, attributed observed us)
 * samples per (GPU, cluster). Attribution: a completed job's kernel
 * term contributes y = term.us * observed_e2e / predicted_e2e — the
 * e2e drift ratio applied to the term's predicted share, in the same
 * pre-calibration units the cluster fit is trained in. Not thread-safe.
 */
class RefitReservoir {
 public:
  explicit RefitReservoir(int capacity);

  /** Records one sample, evicting the oldest once the ring is full. */
  void Add(const std::string& gpu, int cluster_id, double x, double y);

  /**
   * Copies the pair's samples into `x`/`y` (appended, oldest-first
   * within the ring's stable order). Returns the sample count.
   */
  std::size_t Collect(const std::string& gpu, int cluster_id,
                      std::vector<double>* x, std::vector<double>* y) const;

  std::size_t Size(const std::string& gpu, int cluster_id) const;

  /** Drops one pair's ring (after its cluster was re-estimated). */
  void Reset(const std::string& gpu, int cluster_id);

 private:
  struct Ring {
    std::vector<double> x;
    std::vector<double> y;
    std::size_t next = 0;  // insertion cursor once the ring wrapped
    bool full = false;
  };

  int capacity_;
  std::map<std::pair<std::string, int>, Ring> rings_;
};

/** What RefitTrippedClusters produced. */
struct RefitResult {
  std::string candidate_dir;    // the saved candidate bundle
  std::vector<DriftKey> refit;  // pairs actually re-estimated
};

/**
 * Loads the serving bundle from `serving_dir`, re-estimates every
 * tripped pair that has at least `options.min_samples` reservoir
 * samples with an intercept-clamped OLS fit (the training clamp), and
 * saves the patched model into `candidate_dir` (created if needed).
 * Pairs with too few samples are skipped; kUnavailable when *no* pair
 * could be re-estimated (the caller keeps collecting). The serving
 * bundle on disk is never modified.
 */
[[nodiscard]] StatusOr<RefitResult> RefitTrippedClusters(
    const std::string& serving_dir, const std::vector<DriftKey>& tripped,
    const RefitReservoir& reservoir, const RefitOptions& options,
    const std::string& candidate_dir);

/** The lifecycle controller's state machine. */
enum class LifecycleState {
  kHealthy,     // residuals nominal; monitoring
  kDrifting,    // pairs tripped; collecting refit samples
  kShadow,      // candidate saved; scoring it against the champion
  kCanary,      // candidate promoted; watching post-promotion residuals
  kPromoted,    // watch passed; candidate confirmed
  kRolledBack,  // watch failed; previous generation restored
};

/** Stable lower-case state name ("healthy", ..., "rolled-back"). */
const char* LifecycleStateName(LifecycleState state);

/** Controller knobs. */
struct LifecycleOptions {
  DriftMonitorOptions monitor;
  RefitOptions refit;
  std::string work_dir;  // candidate bundles land in work_dir/candidate-N
  int shadow_window = 64;           // recent jobs kept for shadow scoring
  int min_shadow_observations = 8;  // affected-GPU jobs needed to score
  // Candidate passes shadow when its mean |log-ratio| on recent affected-
  // GPU jobs is <= the champion's times this margin (1.0 = must not be
  // worse).
  double shadow_margin = 1.0;
  int watch_window = 32;  // affected-GPU jobs watched after promotion
  // Post-promotion mean |log-ratio| above this triggers Rollback().
  double rollback_threshold = 0.25;
};

/** Observability counters of one controller. */
struct LifecycleCounters {
  std::uint64_t transitions = 0;
  std::uint64_t refits = 0;             // candidate bundles produced
  std::uint64_t shadow_rejections = 0;  // candidates worse than champion
  std::uint64_t canary_rejections = 0;  // TryPromote refusals
  std::uint64_t promotions = 0;
  std::uint64_t rollbacks = 0;
};

/**
 * Drives drift detection, refit, and promotion over a registry. The
 * caller streams completed jobs through Observe() and calls Step()
 * whenever it wants the lifecycle to make progress (the self-healing
 * serving loop does so once per epoch); each Step() advances at most
 * one transition. Not thread-safe — one controller per serving loop.
 */
class LifecycleController {
 public:
  /**
   * `registry` (borrowed) must outlive the controller and already be
   * serving the bundle in `serving_dir` — the refit path reloads that
   * directory to build candidates.
   */
  LifecycleController(BundleRegistry* registry, std::string serving_dir,
                      CanaryOptions canary, LifecycleOptions options);

  /**
   * Feeds one completed job. Attributes the residual to the kernel
   * clusters the serving snapshot used for this (network, GPU, batch),
   * stores a shadow-scoring sample, and during the canary watch
   * accumulates post-promotion residuals. Jobs with non-finite or
   * non-positive predicted/observed times are ignored. `network` is
   * borrowed and must stay alive for `shadow_window` more observations.
   */
  void Observe(const dnn::Network& network, const std::string& gpu,
               std::int64_t batch, double predicted_us, double observed_us);

  /** Advances at most one transition; returns the state afterwards. */
  LifecycleState Step();

  LifecycleState state() const { return state_; }
  const DriftMonitor& monitor() const { return monitor_; }
  const LifecycleCounters& counters() const { return counters_; }
  /** Directory of the generation the controller believes is serving. */
  const std::string& serving_dir() const { return serving_dir_; }

 private:
  struct ShadowSample {
    const dnn::Network* network;
    std::string gpu;
    std::int64_t batch;
    double observed_us;
  };

  void Transition(LifecycleState to);
  /** Mean |log(observed/predicted(model))| over affected-GPU samples. */
  double ShadowScore(const KwModel& model, std::size_t* scored) const;
  bool AffectsGpu(const std::string& gpu) const;

  BundleRegistry* registry_;
  std::string serving_dir_;
  CanaryOptions canary_;
  LifecycleOptions options_;
  DriftMonitor monitor_;
  RefitReservoir reservoir_;
  LifecycleCounters counters_;

  LifecycleState state_ = LifecycleState::kHealthy;
  std::deque<ShadowSample> shadow_;
  int candidate_seq_ = 0;
  std::string candidate_dir_;
  std::string previous_serving_dir_;
  std::vector<DriftKey> refit_keys_;  // pairs the candidate re-estimated
  double watch_abs_sum_ = 0;          // post-promotion |log-ratio| sum
  std::size_t watch_count_ = 0;
};

}  // namespace gpuperf::models

#endif  // GPUPERF_MODELS_REFIT_H_
