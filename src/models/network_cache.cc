#include "models/network_cache.h"

#include "common/random.h"

namespace gpuperf::models {

std::uint64_t NetworkFingerprint(const dnn::Network& network) {
  std::uint64_t hash = network.layers().size();
  for (const dnn::Layer& layer : network.layers()) {
    hash = HashCombine(hash, static_cast<std::uint64_t>(layer.kind));
    hash = HashCombine(hash,
                       static_cast<std::uint64_t>(layer.InputElements()));
    hash = HashCombine(
        hash, static_cast<std::uint64_t>(layer.output.Elements()));
  }
  return hash;
}

NetworkSidCache::NetworkSidCache(const NetworkSidCache& other) {
  SharedReaderLock lock(other.mu_);
  entries_ = other.entries_;
}

NetworkSidCache& NetworkSidCache::operator=(const NetworkSidCache& other) {
  if (this == &other) return *this;
  std::unordered_map<std::string, Entry> copy;
  {
    SharedReaderLock lock(other.mu_);
    copy = other.entries_;
  }
  SharedMutexLock lock(mu_);
  entries_ = std::move(copy);
  retired_.clear();
  return *this;
}

const std::vector<int>* NetworkSidCache::Get(
    const dnn::Network& network,
    const std::function<int(const dnn::Layer&)>& resolve) const {
  const std::uint64_t fingerprint = NetworkFingerprint(network);
  {
    SharedReaderLock lock(mu_);
    auto it = entries_.find(network.name());
    if (it != entries_.end() && it->second.fingerprint == fingerprint) {
      return it->second.sids.get();
    }
  }
  auto sids = std::make_shared<std::vector<int>>();
  sids->reserve(network.layers().size());
  for (const dnn::Layer& layer : network.layers()) {
    sids->push_back(resolve(layer));
  }
  std::shared_ptr<const std::vector<int>> result = std::move(sids);
  SharedMutexLock lock(mu_);
  Entry& entry = entries_[network.name()];
  if (entry.sids != nullptr) {
    if (entry.fingerprint == fingerprint) {
      // A concurrent resolve won the race; keep the incumbent so raw
      // pointers handed out under the reader lock stay canonical.
      return entry.sids.get();
    }
    // Name reused for a different architecture: park the old ids (a
    // concurrent predict may still be walking them) and replace.
    retired_.push_back(std::move(entry.sids));
  }
  entry = Entry{fingerprint, std::move(result)};
  return entry.sids.get();
}

void NetworkSidCache::Clear() {
  SharedMutexLock lock(mu_);
  entries_.clear();
  retired_.clear();
}

}  // namespace gpuperf::models
