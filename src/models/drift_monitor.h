#ifndef GPUPERF_MODELS_DRIFT_MONITOR_H_
#define GPUPERF_MODELS_DRIFT_MONITOR_H_

/**
 * @file
 * Online drift detection over serving residuals.
 *
 * A deployed bundle ages: driver updates, clock policies, and thermal
 * regimes shift real kernel times away from the fitted lines while the
 * model keeps predicting yesterday's GPU. The monitor watches the live
 * residual stream — one log-ratio log(observed/predicted) per completed
 * job, attributed to the (GPU, cluster) regressions that produced the
 * prediction — and trips exactly the pairs whose residuals develop a
 * persistent bias, which is what the incremental refit path
 * (models/refit) then re-estimates.
 *
 * Per (GPU, cluster) tracker:
 *  - an EWMA of the log-ratio (the current bias estimate, reported and
 *    used for the post-refit "did it shrink" check), and
 *  - a two-sided CUSUM: s+ accumulates positive drift above a slack k,
 *    s- negative drift; the pair trips when either side exceeds the
 *    threshold h after a minimum observation count. CUSUM reacts to
 *    small persistent shifts far faster than a threshold on the EWMA
 *    alone, and the slack absorbs zero-mean noise.
 *
 * Deterministic and single-threaded by design: the serving simulator's
 * observation stream is replayed in completion order, so trip decisions
 * are bit-identical across runs and `--jobs` values. Registry-visible
 * state is exported under `gpuperf_drift_*`.
 */

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

namespace gpuperf::models {

/** Detection knobs; defaults trip on a ~10% persistent bias quickly. */
struct DriftMonitorOptions {
  double ewma_alpha = 0.2;   // residual EWMA smoothing factor
  double cusum_k = 0.02;     // CUSUM slack: |log-ratio| noise to ignore
  double cusum_h = 0.35;     // CUSUM trip threshold
  int min_observations = 8;  // observations before a pair may trip
};

/** The residual stream key: one shared cluster regression on one GPU. */
struct DriftKey {
  std::string gpu;
  int cluster_id = -1;

  bool operator<(const DriftKey& other) const {
    return std::tie(gpu, cluster_id) < std::tie(other.gpu, other.cluster_id);
  }
  bool operator==(const DriftKey& other) const {
    return gpu == other.gpu && cluster_id == other.cluster_id;
  }
};

/** The running state of one (GPU, cluster) residual tracker. */
struct DriftTracker {
  double ewma = 0;       // EWMA of log(observed/predicted)
  double cusum_pos = 0;  // positive-drift CUSUM statistic
  double cusum_neg = 0;  // negative-drift CUSUM statistic
  std::int64_t observations = 0;
  bool tripped = false;
};

/** Streams residuals into per-(GPU, cluster) trackers. Not thread-safe. */
class DriftMonitor {
 public:
  explicit DriftMonitor(const DriftMonitorOptions& options =
                            DriftMonitorOptions());

  /**
   * Feeds one residual log_ratio = log(observed / predicted) for the
   * cluster `cluster_id` on `gpu`. Non-finite ratios are dropped (a
   * missing prediction is a serving concern, not drift). The first trip
   * of a pair emits a structured log line and bumps
   * `gpuperf_drift_trips`.
   */
  void Observe(const std::string& gpu, int cluster_id, double log_ratio);

  /** Keys currently tripped, in deterministic (gpu, cluster) order. */
  std::vector<DriftKey> Tripped() const;

  /** The tracker for a pair, or nullptr if it never observed anything. */
  const DriftTracker* Find(const std::string& gpu, int cluster_id) const;

  /**
   * Mean |EWMA| over every tracked cluster of `gpu` (0 when none) — the
   * per-GPU health number the lifecycle's post-promotion watch compares
   * against its rollback threshold.
   */
  double MeanAbsEwma(const std::string& gpu) const;

  /**
   * Forgets one pair's state (the refit lifecycle resets trackers whose
   * clusters were just re-estimated, so the new generation is judged on
   * fresh residuals only).
   */
  void Reset(const std::string& gpu, int cluster_id);

  /** Drops all trackers. */
  void ResetAll();

  /** Pairs with at least one observation. */
  std::size_t TrackedPairs() const { return trackers_.size(); }

  const DriftMonitorOptions& options() const { return options_; }

 private:
  DriftMonitorOptions options_;
  std::map<DriftKey, DriftTracker> trackers_;
};

}  // namespace gpuperf::models

#endif  // GPUPERF_MODELS_DRIFT_MONITOR_H_
