#ifndef GPUPERF_MODELS_PREDICTOR_H_
#define GPUPERF_MODELS_PREDICTOR_H_

/**
 * @file
 * The common interface of the paper's performance models (Figure 10):
 * after training on the performance database, a predictor maps a network
 * structure (never an execution) to a predicted end-to-end time.
 */

#include <cstdint>
#include <string>

#include "dnn/network.h"
#include "gpuexec/gpu_spec.h"

namespace gpuperf::models {

/** A trained execution-time predictor. */
class Predictor {
 public:
  virtual ~Predictor() = default;

  /** Model name for reports, e.g. "E2E", "KW". */
  virtual std::string Name() const = 0;

  /**
   * Predicted end-to-end execution time in microseconds for one batch of
   * size `batch` of `network` on `gpu`. Only the network structure and the
   * GPU's Table 1 specification may be consulted.
   */
  virtual double PredictUs(const dnn::Network& network,
                           const gpuexec::GpuSpec& gpu,
                           std::int64_t batch) const = 0;
};

}  // namespace gpuperf::models

#endif  // GPUPERF_MODELS_PREDICTOR_H_
