#ifndef GPUPERF_MODELS_PREDICTOR_H_
#define GPUPERF_MODELS_PREDICTOR_H_

/**
 * @file
 * The common interface of the paper's performance models (Figure 10):
 * after training on the performance database, a predictor maps a network
 * structure (never an execution) to a predicted end-to-end time.
 */

#include <cstdint>
#include <span>
#include <string>

#include "common/logging.h"
#include "dnn/network.h"
#include "gpuexec/gpu_spec.h"

namespace gpuperf::models {

/**
 * One element of a batched prediction sweep. Plain pointers by design:
 * queries are transient views into caller-owned networks/specs, built
 * into a reusable buffer with no ownership traffic. Batch size is a
 * query axis — the same compiled plan answers every batch size.
 */
struct PredictQuery {
  const dnn::Network* network = nullptr;
  const gpuexec::GpuSpec* gpu = nullptr;
  std::int64_t batch = 1;
};

/** A trained execution-time predictor. */
class Predictor {
 public:
  virtual ~Predictor() = default;

  /** Model name for reports, e.g. "E2E", "KW". */
  virtual std::string Name() const = 0;

  /**
   * Predicted end-to-end execution time in microseconds for one batch of
   * size `batch` of `network` on `gpu`. Only the network structure and the
   * GPU's Table 1 specification may be consulted.
   */
  virtual double PredictUs(const dnn::Network& network,
                           const gpuexec::GpuSpec& gpu,
                           std::int64_t batch) const = 0;

  /**
   * Batched prediction: `out_us[i]` receives the prediction for
   * `queries[i]`. Bit-identical to calling PredictUs per query; models
   * with compiled plans (KW, IGKW, the stack) override this with a
   * zero-allocation sweep that amortizes per-(network, GPU) resolution
   * across the batch. `out_us.size()` must equal `queries.size()`.
   */
  virtual void PredictMany(std::span<const PredictQuery> queries,
                           std::span<double> out_us) const {
    GP_CHECK_EQ(queries.size(), out_us.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      out_us[i] = PredictUs(*queries[i].network, *queries[i].gpu,
                            queries[i].batch);
    }
  }
};

}  // namespace gpuperf::models

#endif  // GPUPERF_MODELS_PREDICTOR_H_
