#ifndef GPUPERF_MODELS_E2E_MODEL_H_
#define GPUPERF_MODELS_E2E_MODEL_H_

/**
 * @file
 * The End-to-End model (Section 5.2): one linear regression per GPU from
 * total theoretical network FLOPs to end-to-end execution time. The
 * simplest, least accurate model (paper: 35% error on A100).
 */

#include <map>
#include <string>

#include "dataset/dataset.h"
#include "models/predictor.h"
#include "regression/linreg.h"

namespace gpuperf::models {

/** FLOPs -> e2e time, one line per GPU. */
class E2eModel : public Predictor {
 public:
  /** Trains on the training-network rows of `data` for every GPU in it. */
  void Train(const dataset::Dataset& data,
             const dataset::NetworkSplit& split);

  std::string Name() const override { return "E2E"; }

  double PredictUs(const dnn::Network& network, const gpuexec::GpuSpec& gpu,
                   std::int64_t batch) const override;

  /** The fitted line for `gpu_name`; Fatal() if untrained. */
  const regression::LinearFit& FitFor(const std::string& gpu_name) const;

  /** The fitted line for `gpu_name`, or nullptr if untrained. */
  const regression::LinearFit* TryFitFor(const std::string& gpu_name) const;

 private:
  std::map<std::string, regression::LinearFit> fits_;
};

}  // namespace gpuperf::models

#endif  // GPUPERF_MODELS_E2E_MODEL_H_
