#include "models/model_io.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <system_error>
#include <utility>

#include "common/csv.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"

namespace gpuperf::models {
namespace {

constexpr const char* kBundleFiles[] = {
    "kernel_models.csv", "mapping_table.csv", "calibration.csv",
    "layer_fallback.csv"};

/** Stable content checksum rendered as fixed-width hex. */
std::string ContentChecksum(const std::string& content) {
  return Format("%016llx",
                static_cast<unsigned long long>(StableHash(content)));
}

Status AtField(const CsvTable& table, std::size_t row, const char* field,
               Status status) {
  return status.Annotate(table.RowLocation(row) + ": field '" + field + "'");
}

/** Parses a finite double field of a bundle table. */
Status ReadFinite(const CsvTable& table, std::size_t row, std::size_t column,
                  const char* field, double* out) {
  StatusOr<double> value = ParseFiniteDouble(table.rows[row][column]);
  if (!value.ok()) return AtField(table, row, field, value.status());
  *out = *value;
  return Status::Ok();
}

/** One manifest entry: what the bundle claims about a file. */
struct ManifestEntry {
  std::string checksum;
  long long rows = 0;
};

/**
 * Loads, checksums, and parses one bundle file against its manifest
 * entry. Truncation, tampering, and row-count drift all surface here.
 */
StatusOr<CsvTable> LoadBundleFile(
    const std::string& directory, const std::string& file,
    const std::map<std::string, ManifestEntry>& manifest) {
  auto entry = manifest.find(file);
  if (entry == manifest.end()) {
    return DataLossError(directory + "/manifest.csv: no entry for '" + file +
                         "'");
  }
  const std::string path = directory + "/" + file;
  GP_ASSIGN_OR_RETURN(const std::string content, ReadFileToString(path));
  const std::string checksum = ContentChecksum(content);
  if (checksum != entry->second.checksum) {
    return DataLossError(path + ": checksum mismatch (manifest " +
                         entry->second.checksum + ", file " + checksum +
                         "): bundle is corrupt or was edited by hand");
  }
  GP_ASSIGN_OR_RETURN(CsvTable table, ParseCsv(content, path));
  if (static_cast<long long>(table.rows.size()) != entry->second.rows) {
    return DataLossError(
        path + Format(": manifest says %lld rows, file has %zu (truncated?)",
                      entry->second.rows, table.rows.size()));
  }
  return table;
}

/** Renders rows to an in-memory CSV with the same escaping as CsvWriter. */
class CsvBuffer {
 public:
  void WriteRow(const std::vector<std::string>& fields) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i != 0) content_ += ',';
      content_ += CsvEscape(fields[i]);
    }
    content_ += '\n';
    ++rows_;
  }

  /** Data rows written so far (the header row is not counted). */
  long long data_rows() const { return rows_ - 1; }

  std::string Take() { return std::move(content_); }

 private:
  std::string content_;
  long long rows_ = 0;
};

Status FsError(const std::string& what, const std::error_code& ec) {
  return InternalError(what + ": " + ec.message());
}

}  // namespace

std::vector<BundleFilePlan> ModelIo::PlanKwSave(const KwModel& model) {
  std::vector<BundleFilePlan> plan;
  std::vector<long long> data_rows;
  {
    CsvBuffer csv;
    csv.WriteRow({"gpu", "kernel", "driver", "slope", "intercept",
                  "cluster_id", "solo_r2"});
    for (const auto& [gpu, kernels] : model.per_gpu_) {
      for (const auto& [name, km] : kernels) {
        csv.WriteRow({gpu, name, gpuexec::CostDriverName(km.driver),
                      Format("%.12g", km.fit.slope),
                      Format("%.12g", km.fit.intercept),
                      Format("%d", km.cluster_id),
                      Format("%.8g", km.solo_r2)});
      }
    }
    data_rows.push_back(csv.data_rows());
    plan.push_back({"kernel_models.csv", csv.Take()});
  }
  {
    CsvBuffer csv;
    csv.WriteRow({"signature", "kernels"});
    for (const auto& [signature, names] : model.mapping_) {
      csv.WriteRow({signature, Join(names, ";")});
    }
    data_rows.push_back(csv.data_rows());
    plan.push_back({"mapping_table.csv", csv.Take()});
  }
  {
    CsvBuffer csv;
    csv.WriteRow({"gpu", "factor"});
    for (const auto& [gpu, factor] : model.calibration_) {
      csv.WriteRow({gpu, Format("%.12g", factor)});
    }
    data_rows.push_back(csv.data_rows());
    plan.push_back({"calibration.csv", csv.Take()});
  }
  {
    CsvBuffer csv;
    csv.WriteRow({"gpu", "layer_kind", "slope", "intercept"});
    for (const auto& [key, fit] : model.lw_fallback_.fits()) {
      csv.WriteRow({key.first, dnn::LayerKindName(key.second),
                    Format("%.12g", fit.slope),
                    Format("%.12g", fit.intercept)});
    }
    data_rows.push_back(csv.data_rows());
    plan.push_back({"layer_fallback.csv", csv.Take()});
  }
  {
    // The manifest is planned (and written) last so a save interrupted
    // anywhere earlier never yields a bundle that checks out.
    CsvBuffer csv;
    csv.WriteRow({"bundle_version", "file", "checksum", "rows"});
    for (std::size_t i = 0; i < plan.size(); ++i) {
      csv.WriteRow({Format("%d", kKwBundleVersion), plan[i].name,
                    ContentChecksum(plan[i].content),
                    Format("%lld", data_rows[i])});
    }
    plan.push_back({"manifest.csv", csv.Take()});
  }
  return plan;
}

Status ModelIo::SaveKw(const KwModel& model, const std::string& directory) {
  namespace fs = std::filesystem;
  const fs::path dir(directory);
  const fs::path staging(directory + kBundleSavingSuffix);
  const fs::path stale(directory + kBundleStaleSuffix);
  std::error_code ec;

  // Stage the whole next generation beside the live bundle.
  fs::remove_all(staging, ec);
  if (ec) return FsError("removing stale staging dir " + staging.string(), ec);
  fs::create_directories(staging, ec);
  if (ec) return FsError("creating staging dir " + staging.string(), ec);
  for (const BundleFilePlan& file : PlanKwSave(model)) {
    const fs::path path = staging / file.name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(file.content.data(),
              static_cast<std::streamsize>(file.content.size()));
    out.close();
    if (!out) return DataLossError(path.string() + ": write failed");
  }

  // Commit with renames only; a crash between any two steps leaves a
  // state LoadKwRecovering() resolves to exactly one generation.
  fs::remove_all(stale, ec);
  if (ec) return FsError("removing stale dir " + stale.string(), ec);
  if (fs::exists(dir, ec)) {
    fs::rename(dir, stale, ec);
    if (ec) {
      return FsError("renaming " + dir.string() + " -> " + stale.string(), ec);
    }
  }
  fs::rename(staging, dir, ec);
  if (ec) {
    return FsError("renaming " + staging.string() + " -> " + dir.string(), ec);
  }
  fs::remove_all(stale, ec);
  if (ec) return FsError("removing stale dir " + stale.string(), ec);
  return Status::Ok();
}

StatusOr<KwModel> ModelIo::LoadKwRecovering(const std::string& directory) {
  namespace fs = std::filesystem;
  const std::string staging = directory + kBundleSavingSuffix;
  const std::string stale = directory + kBundleStaleSuffix;
  std::error_code ec;

  StatusOr<KwModel> committed = LoadKw(directory);
  if (committed.ok()) {
    // The committed generation wins; sidecars from an interrupted save
    // (an unswapped candidate or an unremoved predecessor) are dropped.
    fs::remove_all(staging, ec);
    fs::remove_all(stale, ec);
    return committed;
  }

  StatusOr<KwModel> staged = LoadKw(staging);
  if (staged.ok()) {
    // The save had fully staged the new generation but crashed mid-swap:
    // finish the commit it started.
    fs::remove_all(directory, ec);
    if (ec) return FsError("removing partial bundle " + directory, ec);
    fs::rename(staging, directory, ec);
    if (ec) return FsError("renaming " + staging + " -> " + directory, ec);
    fs::remove_all(stale, ec);
    if (ec) return FsError("removing stale dir " + stale, ec);
    return staged;
  }

  StatusOr<KwModel> previous = LoadKw(stale);
  if (previous.ok()) {
    // Crash after the old generation moved aside but before the staging
    // dir was complete: unwind to the old generation.
    fs::remove_all(directory, ec);
    if (ec) return FsError("removing partial bundle " + directory, ec);
    fs::remove_all(staging, ec);
    if (ec) return FsError("removing partial staging dir " + staging, ec);
    fs::rename(stale, directory, ec);
    if (ec) return FsError("renaming " + stale + " -> " + directory, ec);
    return previous;
  }

  return Status(committed.status())
      .Annotate("no recoverable generation (also checked the '" +
                std::string(kBundleSavingSuffix) + "' and '" +
                std::string(kBundleStaleSuffix) + "' sidecars)");
}

StatusOr<KwModel> ModelIo::LoadKw(const std::string& directory) {
  // --- Manifest: version gate + per-file integrity expectations.
  StatusOr<CsvTable> manifest_table =
      TryReadCsv(directory + "/manifest.csv");
  if (!manifest_table.ok()) {
    return Status(manifest_table.status())
        .Annotate("not a model bundle (missing or unreadable manifest)");
  }
  std::map<std::string, ManifestEntry> manifest;
  {
    const CsvTable& table = *manifest_table;
    GP_ASSIGN_OR_RETURN(const std::size_t version,
                        table.FindColumn("bundle_version"));
    GP_ASSIGN_OR_RETURN(const std::size_t file, table.FindColumn("file"));
    GP_ASSIGN_OR_RETURN(const std::size_t checksum,
                        table.FindColumn("checksum"));
    GP_ASSIGN_OR_RETURN(const std::size_t rows, table.FindColumn("rows"));
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      StatusOr<int> v = ParseInt(table.rows[r][version]);
      if (!v.ok()) {
        return AtField(table, r, "bundle_version", v.status());
      }
      if (*v != kKwBundleVersion) {
        return AtField(
            table, r, "bundle_version",
            FailedPreconditionError(Format(
                "bundle version %d is not supported (this build reads "
                "version %d); re-export with `gpuperf train`",
                *v, kKwBundleVersion)));
      }
      StatusOr<long long> row_count = ParseInt64(table.rows[r][rows]);
      if (!row_count.ok()) return AtField(table, r, "rows", row_count.status());
      manifest[table.rows[r][file]] = {table.rows[r][checksum], *row_count};
    }
  }

  KwModel model;
  {
    GP_ASSIGN_OR_RETURN(
        const CsvTable table,
        LoadBundleFile(directory, "kernel_models.csv", manifest));
    GP_ASSIGN_OR_RETURN(const std::size_t gpu, table.FindColumn("gpu"));
    GP_ASSIGN_OR_RETURN(const std::size_t kernel, table.FindColumn("kernel"));
    GP_ASSIGN_OR_RETURN(const std::size_t driver, table.FindColumn("driver"));
    GP_ASSIGN_OR_RETURN(const std::size_t slope, table.FindColumn("slope"));
    GP_ASSIGN_OR_RETURN(const std::size_t intercept,
                        table.FindColumn("intercept"));
    GP_ASSIGN_OR_RETURN(const std::size_t cluster,
                        table.FindColumn("cluster_id"));
    GP_ASSIGN_OR_RETURN(const std::size_t solo_r2,
                        table.FindColumn("solo_r2"));
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      const auto& fields = table.rows[r];
      KernelModel km;
      if (fields[driver] == "input") {
        km.driver = gpuexec::CostDriver::kInput;
      } else if (fields[driver] == "operation") {
        km.driver = gpuexec::CostDriver::kOperation;
      } else if (fields[driver] == "output") {
        km.driver = gpuexec::CostDriver::kOutput;
      } else {
        return AtField(table, r, "driver",
                       InvalidArgumentError(
                           "'" + fields[driver] +
                           "' is not a cost driver (input|operation|output)"));
      }
      GP_RETURN_IF_ERROR(
          ReadFinite(table, r, slope, "slope", &km.fit.slope));
      GP_RETURN_IF_ERROR(
          ReadFinite(table, r, intercept, "intercept", &km.fit.intercept));
      StatusOr<int> cluster_id = ParseInt(fields[cluster]);
      if (!cluster_id.ok()) {
        return AtField(table, r, "cluster_id", cluster_id.status());
      }
      km.cluster_id = *cluster_id;
      GP_RETURN_IF_ERROR(
          ReadFinite(table, r, solo_r2, "solo_r2", &km.solo_r2));
      auto [it, inserted] =
          model.per_gpu_[fields[gpu]].emplace(fields[kernel], km);
      (void)it;
      if (!inserted) {
        return AtField(table, r, "kernel",
                       DataLossError("duplicate kernel model for (" +
                                     fields[gpu] + ", " + fields[kernel] +
                                     ")"));
      }
    }
    if (model.per_gpu_.empty()) {
      return DataLossError(table.path + ": no kernel models (empty bundle)");
    }
  }
  {
    GP_ASSIGN_OR_RETURN(
        const CsvTable table,
        LoadBundleFile(directory, "mapping_table.csv", manifest));
    GP_ASSIGN_OR_RETURN(const std::size_t signature,
                        table.FindColumn("signature"));
    GP_ASSIGN_OR_RETURN(const std::size_t kernels,
                        table.FindColumn("kernels"));
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      const auto& fields = table.rows[r];
      if (fields[kernels].empty()) {
        return AtField(table, r, "kernels",
                       InvalidArgumentError("empty kernel list for signature '" +
                                            fields[signature] + "'"));
      }
      auto [it, inserted] = model.mapping_.emplace(
          fields[signature], Split(fields[kernels], ';'));
      (void)it;
      if (!inserted) {
        return AtField(table, r, "signature",
                       DataLossError("duplicate mapping-table key '" +
                                     fields[signature] + "'"));
      }
    }
    // Same derivation order as KwModel::Train (sorted full table).
    for (const auto& [sig, names] : model.mapping_) {
      model.reduced_mapping_.emplace(ReducedSignature(sig), names);
    }
  }
  {
    GP_ASSIGN_OR_RETURN(const CsvTable table,
                        LoadBundleFile(directory, "calibration.csv",
                                       manifest));
    GP_ASSIGN_OR_RETURN(const std::size_t gpu, table.FindColumn("gpu"));
    GP_ASSIGN_OR_RETURN(const std::size_t factor,
                        table.FindColumn("factor"));
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      const auto& fields = table.rows[r];
      double value = 0;
      GP_RETURN_IF_ERROR(ReadFinite(table, r, factor, "factor", &value));
      if (value <= 0) {
        return AtField(table, r, "factor",
                       OutOfRangeError(Format(
                           "calibration factor %g must be positive", value)));
      }
      auto [it, inserted] = model.calibration_.emplace(fields[gpu], value);
      (void)it;
      if (!inserted) {
        return AtField(table, r, "gpu",
                       DataLossError("duplicate calibration row for GPU '" +
                                     fields[gpu] + "'"));
      }
    }
  }
  {
    GP_ASSIGN_OR_RETURN(
        const CsvTable table,
        LoadBundleFile(directory, "layer_fallback.csv", manifest));
    GP_ASSIGN_OR_RETURN(const std::size_t gpu, table.FindColumn("gpu"));
    GP_ASSIGN_OR_RETURN(const std::size_t kind,
                        table.FindColumn("layer_kind"));
    GP_ASSIGN_OR_RETURN(const std::size_t slope, table.FindColumn("slope"));
    GP_ASSIGN_OR_RETURN(const std::size_t intercept,
                        table.FindColumn("intercept"));
    std::set<std::pair<std::string, dnn::LayerKind>> seen;
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      const auto& fields = table.rows[r];
      dnn::LayerKind layer_kind;
      if (!dnn::TryLayerKindFromName(fields[kind], &layer_kind)) {
        return AtField(table, r, "layer_kind",
                       InvalidArgumentError("'" + fields[kind] +
                                            "' is not a layer kind"));
      }
      if (!seen.emplace(fields[gpu], layer_kind).second) {
        return AtField(table, r, "layer_kind",
                       DataLossError("duplicate fallback row for (" +
                                     fields[gpu] + ", " + fields[kind] +
                                     ")"));
      }
      regression::LinearFit fit;
      GP_RETURN_IF_ERROR(ReadFinite(table, r, slope, "slope", &fit.slope));
      GP_RETURN_IF_ERROR(
          ReadFinite(table, r, intercept, "intercept", &fit.intercept));
      model.lw_fallback_.SetFit(fields[gpu], layer_kind, fit);
    }
    // Every trained GPU must be able to degrade to the layer-wise tier;
    // a bundle missing those rows would silently predict 0 for unseen
    // kernels, which is worse than failing the load.
    for (const auto& [gpu_name, kernels] : model.per_gpu_) {
      (void)kernels;
      bool found = false;
      for (const auto& [key, fit] : model.lw_fallback_.fits()) {
        (void)fit;
        if (key.first == gpu_name) {
          found = true;
          break;
        }
      }
      if (!found) {
        return DataLossError(table.path + ": no fallback rows for GPU '" +
                             gpu_name +
                             "' (bundle incomplete: unseen kernels on this "
                             "GPU could not degrade to the LW tier)");
      }
    }
  }
  // Deserialized state is string-keyed; rebuild the dense predict tables
  // exactly as Train() does so a loaded model predicts at full speed.
  model.FinalizeTables();
  return model;
}

}  // namespace gpuperf::models
