#include "models/model_io.h"

#include "common/csv.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace gpuperf::models {

void ModelIo::SaveKw(const KwModel& model, const std::string& directory) {
  {
    CsvWriter writer(directory + "/kernel_models.csv");
    writer.WriteRow({"gpu", "kernel", "driver", "slope", "intercept",
                     "cluster_id", "solo_r2"});
    for (const auto& [gpu, kernels] : model.per_gpu_) {
      for (const auto& [name, km] : kernels) {
        writer.WriteRow({gpu, name, gpuexec::CostDriverName(km.driver),
                         Format("%.12g", km.fit.slope),
                         Format("%.12g", km.fit.intercept),
                         Format("%d", km.cluster_id),
                         Format("%.8g", km.solo_r2)});
      }
    }
  }
  {
    CsvWriter writer(directory + "/mapping_table.csv");
    writer.WriteRow({"signature", "kernels"});
    for (const auto& [signature, names] : model.mapping_) {
      writer.WriteRow({signature, Join(names, ";")});
    }
  }
  {
    CsvWriter writer(directory + "/calibration.csv");
    writer.WriteRow({"gpu", "factor"});
    for (const auto& [gpu, factor] : model.calibration_) {
      writer.WriteRow({gpu, Format("%.12g", factor)});
    }
  }
  {
    CsvWriter writer(directory + "/layer_fallback.csv");
    writer.WriteRow({"gpu", "layer_kind", "slope", "intercept"});
    for (const auto& [key, fit] : model.lw_fallback_.fits()) {
      writer.WriteRow({key.first, dnn::LayerKindName(key.second),
                       Format("%.12g", fit.slope),
                       Format("%.12g", fit.intercept)});
    }
  }
}

KwModel ModelIo::LoadKw(const std::string& directory) {
  KwModel model;
  {
    CsvTable table = ReadCsv(directory + "/kernel_models.csv");
    const std::size_t gpu = table.ColumnIndex("gpu");
    const std::size_t kernel = table.ColumnIndex("kernel");
    const std::size_t driver = table.ColumnIndex("driver");
    const std::size_t slope = table.ColumnIndex("slope");
    const std::size_t intercept = table.ColumnIndex("intercept");
    const std::size_t cluster = table.ColumnIndex("cluster_id");
    const std::size_t solo_r2 = table.ColumnIndex("solo_r2");
    for (const auto& fields : table.rows) {
      KernelModel km;
      if (fields[driver] == "input") {
        km.driver = gpuexec::CostDriver::kInput;
      } else if (fields[driver] == "operation") {
        km.driver = gpuexec::CostDriver::kOperation;
      } else {
        km.driver = gpuexec::CostDriver::kOutput;
      }
      km.fit.slope = std::stod(fields[slope]);
      km.fit.intercept = std::stod(fields[intercept]);
      km.cluster_id = std::stoi(fields[cluster]);
      km.solo_r2 = std::stod(fields[solo_r2]);
      model.per_gpu_[fields[gpu]][fields[kernel]] = km;
    }
  }
  {
    CsvTable table = ReadCsv(directory + "/mapping_table.csv");
    const std::size_t signature = table.ColumnIndex("signature");
    const std::size_t kernels = table.ColumnIndex("kernels");
    for (const auto& fields : table.rows) {
      model.mapping_[fields[signature]] = Split(fields[kernels], ';');
    }
    // Same derivation order as KwModel::Train (sorted full table).
    for (const auto& [sig, names] : model.mapping_) {
      model.reduced_mapping_.emplace(ReducedSignature(sig), names);
    }
  }
  {
    CsvTable table = ReadCsv(directory + "/calibration.csv");
    const std::size_t gpu = table.ColumnIndex("gpu");
    const std::size_t factor = table.ColumnIndex("factor");
    for (const auto& fields : table.rows) {
      model.calibration_[fields[gpu]] = std::stod(fields[factor]);
    }
  }
  {
    CsvTable table = ReadCsv(directory + "/layer_fallback.csv");
    const std::size_t gpu = table.ColumnIndex("gpu");
    const std::size_t kind = table.ColumnIndex("layer_kind");
    const std::size_t slope = table.ColumnIndex("slope");
    const std::size_t intercept = table.ColumnIndex("intercept");
    for (const auto& fields : table.rows) {
      regression::LinearFit fit;
      fit.slope = std::stod(fields[slope]);
      fit.intercept = std::stod(fields[intercept]);
      model.lw_fallback_.SetFit(fields[gpu],
                                dnn::LayerKindFromName(fields[kind]), fit);
    }
  }
  // Deserialized state is string-keyed; rebuild the dense predict tables
  // exactly as Train() does so a loaded model predicts at full speed.
  model.FinalizeTables();
  return model;
}

}  // namespace gpuperf::models
