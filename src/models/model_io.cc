#include "models/model_io.h"

#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "common/csv.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"

namespace gpuperf::models {
namespace {

constexpr const char* kBundleFiles[] = {
    "kernel_models.csv", "mapping_table.csv", "calibration.csv",
    "layer_fallback.csv"};

/** Stable content checksum rendered as fixed-width hex. */
std::string ContentChecksum(const std::string& content) {
  return Format("%016llx",
                static_cast<unsigned long long>(StableHash(content)));
}

Status AtField(const CsvTable& table, std::size_t row, const char* field,
               Status status) {
  return status.Annotate(table.RowLocation(row) + ": field '" + field + "'");
}

/** Parses a finite double field of a bundle table. */
Status ReadFinite(const CsvTable& table, std::size_t row, std::size_t column,
                  const char* field, double* out) {
  StatusOr<double> value = ParseFiniteDouble(table.rows[row][column]);
  if (!value.ok()) return AtField(table, row, field, value.status());
  *out = *value;
  return Status::Ok();
}

/** One manifest entry: what the bundle claims about a file. */
struct ManifestEntry {
  std::string checksum;
  long long rows = 0;
};

/**
 * Loads, checksums, and parses one bundle file against its manifest
 * entry. Truncation, tampering, and row-count drift all surface here.
 */
StatusOr<CsvTable> LoadBundleFile(
    const std::string& directory, const std::string& file,
    const std::map<std::string, ManifestEntry>& manifest) {
  auto entry = manifest.find(file);
  if (entry == manifest.end()) {
    return DataLossError(directory + "/manifest.csv: no entry for '" + file +
                         "'");
  }
  const std::string path = directory + "/" + file;
  GP_ASSIGN_OR_RETURN(const std::string content, ReadFileToString(path));
  const std::string checksum = ContentChecksum(content);
  if (checksum != entry->second.checksum) {
    return DataLossError(path + ": checksum mismatch (manifest " +
                         entry->second.checksum + ", file " + checksum +
                         "): bundle is corrupt or was edited by hand");
  }
  GP_ASSIGN_OR_RETURN(CsvTable table, ParseCsv(content, path));
  if (static_cast<long long>(table.rows.size()) != entry->second.rows) {
    return DataLossError(
        path + Format(": manifest says %lld rows, file has %zu (truncated?)",
                      entry->second.rows, table.rows.size()));
  }
  return table;
}

}  // namespace

void ModelIo::SaveKw(const KwModel& model, const std::string& directory) {
  {
    CsvWriter writer(directory + "/kernel_models.csv");
    writer.WriteRow({"gpu", "kernel", "driver", "slope", "intercept",
                     "cluster_id", "solo_r2"});
    for (const auto& [gpu, kernels] : model.per_gpu_) {
      for (const auto& [name, km] : kernels) {
        writer.WriteRow({gpu, name, gpuexec::CostDriverName(km.driver),
                         Format("%.12g", km.fit.slope),
                         Format("%.12g", km.fit.intercept),
                         Format("%d", km.cluster_id),
                         Format("%.8g", km.solo_r2)});
      }
    }
  }
  {
    CsvWriter writer(directory + "/mapping_table.csv");
    writer.WriteRow({"signature", "kernels"});
    for (const auto& [signature, names] : model.mapping_) {
      writer.WriteRow({signature, Join(names, ";")});
    }
  }
  {
    CsvWriter writer(directory + "/calibration.csv");
    writer.WriteRow({"gpu", "factor"});
    for (const auto& [gpu, factor] : model.calibration_) {
      writer.WriteRow({gpu, Format("%.12g", factor)});
    }
  }
  {
    CsvWriter writer(directory + "/layer_fallback.csv");
    writer.WriteRow({"gpu", "layer_kind", "slope", "intercept"});
    for (const auto& [key, fit] : model.lw_fallback_.fits()) {
      writer.WriteRow({key.first, dnn::LayerKindName(key.second),
                       Format("%.12g", fit.slope),
                       Format("%.12g", fit.intercept)});
    }
  }
  {
    // The manifest is written last so an interrupted save never yields a
    // bundle that checks out.
    CsvWriter writer(directory + "/manifest.csv");
    writer.WriteRow({"bundle_version", "file", "checksum", "rows"});
    for (const char* file : kBundleFiles) {
      StatusOr<std::string> content =
          ReadFileToString(directory + "/" + std::string(file));
      GP_CHECK(content.ok()) << "re-reading just-written bundle file: "
                             << content.status().ToString();
      StatusOr<CsvTable> table = ParseCsv(*content, file);
      GP_CHECK(table.ok()) << table.status().ToString();
      writer.WriteRow({Format("%d", kKwBundleVersion), file,
                       ContentChecksum(*content),
                       Format("%zu", table->rows.size())});
    }
  }
}

StatusOr<KwModel> ModelIo::LoadKw(const std::string& directory) {
  // --- Manifest: version gate + per-file integrity expectations.
  StatusOr<CsvTable> manifest_table =
      TryReadCsv(directory + "/manifest.csv");
  if (!manifest_table.ok()) {
    return Status(manifest_table.status())
        .Annotate("not a model bundle (missing or unreadable manifest)");
  }
  std::map<std::string, ManifestEntry> manifest;
  {
    const CsvTable& table = *manifest_table;
    GP_ASSIGN_OR_RETURN(const std::size_t version,
                        table.FindColumn("bundle_version"));
    GP_ASSIGN_OR_RETURN(const std::size_t file, table.FindColumn("file"));
    GP_ASSIGN_OR_RETURN(const std::size_t checksum,
                        table.FindColumn("checksum"));
    GP_ASSIGN_OR_RETURN(const std::size_t rows, table.FindColumn("rows"));
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      StatusOr<int> v = ParseInt(table.rows[r][version]);
      if (!v.ok()) {
        return AtField(table, r, "bundle_version", v.status());
      }
      if (*v != kKwBundleVersion) {
        return AtField(
            table, r, "bundle_version",
            FailedPreconditionError(Format(
                "bundle version %d is not supported (this build reads "
                "version %d); re-export with `gpuperf train`",
                *v, kKwBundleVersion)));
      }
      StatusOr<long long> row_count = ParseInt64(table.rows[r][rows]);
      if (!row_count.ok()) return AtField(table, r, "rows", row_count.status());
      manifest[table.rows[r][file]] = {table.rows[r][checksum], *row_count};
    }
  }

  KwModel model;
  {
    GP_ASSIGN_OR_RETURN(
        const CsvTable table,
        LoadBundleFile(directory, "kernel_models.csv", manifest));
    GP_ASSIGN_OR_RETURN(const std::size_t gpu, table.FindColumn("gpu"));
    GP_ASSIGN_OR_RETURN(const std::size_t kernel, table.FindColumn("kernel"));
    GP_ASSIGN_OR_RETURN(const std::size_t driver, table.FindColumn("driver"));
    GP_ASSIGN_OR_RETURN(const std::size_t slope, table.FindColumn("slope"));
    GP_ASSIGN_OR_RETURN(const std::size_t intercept,
                        table.FindColumn("intercept"));
    GP_ASSIGN_OR_RETURN(const std::size_t cluster,
                        table.FindColumn("cluster_id"));
    GP_ASSIGN_OR_RETURN(const std::size_t solo_r2,
                        table.FindColumn("solo_r2"));
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      const auto& fields = table.rows[r];
      KernelModel km;
      if (fields[driver] == "input") {
        km.driver = gpuexec::CostDriver::kInput;
      } else if (fields[driver] == "operation") {
        km.driver = gpuexec::CostDriver::kOperation;
      } else if (fields[driver] == "output") {
        km.driver = gpuexec::CostDriver::kOutput;
      } else {
        return AtField(table, r, "driver",
                       InvalidArgumentError(
                           "'" + fields[driver] +
                           "' is not a cost driver (input|operation|output)"));
      }
      GP_RETURN_IF_ERROR(
          ReadFinite(table, r, slope, "slope", &km.fit.slope));
      GP_RETURN_IF_ERROR(
          ReadFinite(table, r, intercept, "intercept", &km.fit.intercept));
      StatusOr<int> cluster_id = ParseInt(fields[cluster]);
      if (!cluster_id.ok()) {
        return AtField(table, r, "cluster_id", cluster_id.status());
      }
      km.cluster_id = *cluster_id;
      GP_RETURN_IF_ERROR(
          ReadFinite(table, r, solo_r2, "solo_r2", &km.solo_r2));
      auto [it, inserted] =
          model.per_gpu_[fields[gpu]].emplace(fields[kernel], km);
      (void)it;
      if (!inserted) {
        return AtField(table, r, "kernel",
                       DataLossError("duplicate kernel model for (" +
                                     fields[gpu] + ", " + fields[kernel] +
                                     ")"));
      }
    }
    if (model.per_gpu_.empty()) {
      return DataLossError(table.path + ": no kernel models (empty bundle)");
    }
  }
  {
    GP_ASSIGN_OR_RETURN(
        const CsvTable table,
        LoadBundleFile(directory, "mapping_table.csv", manifest));
    GP_ASSIGN_OR_RETURN(const std::size_t signature,
                        table.FindColumn("signature"));
    GP_ASSIGN_OR_RETURN(const std::size_t kernels,
                        table.FindColumn("kernels"));
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      const auto& fields = table.rows[r];
      if (fields[kernels].empty()) {
        return AtField(table, r, "kernels",
                       InvalidArgumentError("empty kernel list for signature '" +
                                            fields[signature] + "'"));
      }
      auto [it, inserted] = model.mapping_.emplace(
          fields[signature], Split(fields[kernels], ';'));
      (void)it;
      if (!inserted) {
        return AtField(table, r, "signature",
                       DataLossError("duplicate mapping-table key '" +
                                     fields[signature] + "'"));
      }
    }
    // Same derivation order as KwModel::Train (sorted full table).
    for (const auto& [sig, names] : model.mapping_) {
      model.reduced_mapping_.emplace(ReducedSignature(sig), names);
    }
  }
  {
    GP_ASSIGN_OR_RETURN(const CsvTable table,
                        LoadBundleFile(directory, "calibration.csv",
                                       manifest));
    GP_ASSIGN_OR_RETURN(const std::size_t gpu, table.FindColumn("gpu"));
    GP_ASSIGN_OR_RETURN(const std::size_t factor,
                        table.FindColumn("factor"));
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      const auto& fields = table.rows[r];
      double value = 0;
      GP_RETURN_IF_ERROR(ReadFinite(table, r, factor, "factor", &value));
      if (value <= 0) {
        return AtField(table, r, "factor",
                       OutOfRangeError(Format(
                           "calibration factor %g must be positive", value)));
      }
      auto [it, inserted] = model.calibration_.emplace(fields[gpu], value);
      (void)it;
      if (!inserted) {
        return AtField(table, r, "gpu",
                       DataLossError("duplicate calibration row for GPU '" +
                                     fields[gpu] + "'"));
      }
    }
  }
  {
    GP_ASSIGN_OR_RETURN(
        const CsvTable table,
        LoadBundleFile(directory, "layer_fallback.csv", manifest));
    GP_ASSIGN_OR_RETURN(const std::size_t gpu, table.FindColumn("gpu"));
    GP_ASSIGN_OR_RETURN(const std::size_t kind,
                        table.FindColumn("layer_kind"));
    GP_ASSIGN_OR_RETURN(const std::size_t slope, table.FindColumn("slope"));
    GP_ASSIGN_OR_RETURN(const std::size_t intercept,
                        table.FindColumn("intercept"));
    std::set<std::pair<std::string, dnn::LayerKind>> seen;
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      const auto& fields = table.rows[r];
      dnn::LayerKind layer_kind;
      if (!dnn::TryLayerKindFromName(fields[kind], &layer_kind)) {
        return AtField(table, r, "layer_kind",
                       InvalidArgumentError("'" + fields[kind] +
                                            "' is not a layer kind"));
      }
      if (!seen.emplace(fields[gpu], layer_kind).second) {
        return AtField(table, r, "layer_kind",
                       DataLossError("duplicate fallback row for (" +
                                     fields[gpu] + ", " + fields[kind] +
                                     ")"));
      }
      regression::LinearFit fit;
      GP_RETURN_IF_ERROR(ReadFinite(table, r, slope, "slope", &fit.slope));
      GP_RETURN_IF_ERROR(
          ReadFinite(table, r, intercept, "intercept", &fit.intercept));
      model.lw_fallback_.SetFit(fields[gpu], layer_kind, fit);
    }
    // Every trained GPU must be able to degrade to the layer-wise tier;
    // a bundle missing those rows would silently predict 0 for unseen
    // kernels, which is worse than failing the load.
    for (const auto& [gpu_name, kernels] : model.per_gpu_) {
      (void)kernels;
      bool found = false;
      for (const auto& [key, fit] : model.lw_fallback_.fits()) {
        (void)fit;
        if (key.first == gpu_name) {
          found = true;
          break;
        }
      }
      if (!found) {
        return DataLossError(table.path + ": no fallback rows for GPU '" +
                             gpu_name +
                             "' (bundle incomplete: unseen kernels on this "
                             "GPU could not degrade to the LW tier)");
      }
    }
  }
  // Deserialized state is string-keyed; rebuild the dense predict tables
  // exactly as Train() does so a loaded model predicts at full speed.
  model.FinalizeTables();
  return model;
}

}  // namespace gpuperf::models
