#include "models/cpu_aware_model.h"

#include <algorithm>

#include "common/logging.h"
#include "regression/linreg.h"

namespace gpuperf::models {

void CpuAwareModel::Train(const KwModel& kw, const dataset::Dataset& data,
                          const dataset::NetworkSplit& split,
                          double launch_bound_threshold) {
  GP_CHECK_GT(launch_bound_threshold, 1.0);
  kw_ = kw;
  fits_.clear();

  // Kernel counts per (gpu, network) from the campaign's traces.
  std::map<std::pair<int, int>, std::int64_t> kernel_counts;
  for (const dataset::KernelRow& row : data.kernel_rows()) {
    ++kernel_counts[{row.gpu_id, row.network_id}];
  }

  // Launch-bound runs: wall time well above GPU busy time.
  std::map<int, std::pair<std::vector<double>, std::vector<double>>> samples;
  for (const dataset::NetworkRow& row : data.network_rows()) {
    if (split.IsTest(row.network_id)) continue;
    if (row.e2e_us < launch_bound_threshold * row.gpu_busy_us) continue;
    auto it = kernel_counts.find({row.gpu_id, row.network_id});
    if (it == kernel_counts.end()) continue;
    auto& [x, y] = samples[row.gpu_id];
    x.push_back(static_cast<double>(it->second));
    y.push_back(row.e2e_us);
  }
  for (const auto& [gpu_id, xy] : samples) {
    regression::LinearFit fit = regression::FitLinear(xy.first, xy.second);
    CpuPipelineFit cpu;
    cpu.overhead_us = std::max(0.0, fit.intercept);
    cpu.per_kernel_us = std::max(0.0, fit.slope);
    cpu.samples = xy.first.size();
    fits_[data.gpus().Get(gpu_id)] = cpu;
  }
}

std::int64_t CpuAwareModel::PredictKernelCount(
    const dnn::Network& network) const {
  std::int64_t count = 0;
  for (const dnn::Layer& layer : network.layers()) {
    count += static_cast<std::int64_t>(kw_.KernelsForLayer(layer).size());
  }
  return count;
}

double CpuAwareModel::PredictUs(const dnn::Network& network,
                                const gpuexec::GpuSpec& gpu,
                                std::int64_t batch) const {
  const double gpu_us = kw_.PredictUs(network, gpu, batch);
  const CpuPipelineFit& cpu = FitFor(gpu.name);
  if (cpu.samples == 0) return gpu_us;
  const double cpu_us =
      cpu.overhead_us +
      cpu.per_kernel_us * static_cast<double>(PredictKernelCount(network));
  return std::max(gpu_us, cpu_us);
}

const CpuPipelineFit& CpuAwareModel::FitFor(
    const std::string& gpu_name) const {
  static const CpuPipelineFit kNone{};
  auto it = fits_.find(gpu_name);
  return it == fits_.end() ? kNone : it->second;
}

}  // namespace gpuperf::models
