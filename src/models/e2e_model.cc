#include "models/e2e_model.h"

#include <algorithm>

#include "common/logging.h"
#include "dnn/flops.h"

namespace gpuperf::models {

void E2eModel::Train(const dataset::Dataset& data,
                     const dataset::NetworkSplit& split) {
  fits_.clear();
  std::map<std::string, std::pair<std::vector<double>, std::vector<double>>>
      samples;
  for (const dataset::NetworkRow& row : data.network_rows()) {
    if (split.IsTest(row.network_id)) continue;
    auto& [x, y] = samples[data.gpus().Get(row.gpu_id)];
    x.push_back(static_cast<double>(row.total_flops));
    y.push_back(row.e2e_us);
  }
  for (auto& [gpu, xy] : samples) {
    fits_[gpu] = regression::FitLinear(xy.first, xy.second);
  }
}

double E2eModel::PredictUs(const dnn::Network& network,
                           const gpuexec::GpuSpec& gpu,
                           std::int64_t batch) const {
  const regression::LinearFit& fit = FitFor(gpu.name);
  const double flops =
      static_cast<double>(dnn::NetworkFlops(network, batch));
  return std::max(0.0, fit.Predict(flops));
}

const regression::LinearFit& E2eModel::FitFor(
    const std::string& gpu_name) const {
  const regression::LinearFit* fit = TryFitFor(gpu_name);
  if (fit == nullptr) Fatal("E2E model not trained for GPU " + gpu_name);
  return *fit;
}

const regression::LinearFit* E2eModel::TryFitFor(
    const std::string& gpu_name) const {
  auto it = fits_.find(gpu_name);
  return it == fits_.end() ? nullptr : &it->second;
}

}  // namespace gpuperf::models
