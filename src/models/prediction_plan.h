#ifndef GPUPERF_MODELS_PREDICTION_PLAN_H_
#define GPUPERF_MODELS_PREDICTION_PLAN_H_

/**
 * @file
 * Compiled prediction plans — the sub-microsecond batched predict path.
 *
 * A trained KW/IGKW model answers `PredictUs` by walking string-keyed
 * and dense-ID tables per layer, recomputing the layer's cost-driver
 * feature values, and touching a shared_ptr-guarded memo per call. That
 * costs single-digit microseconds per network — fine for offline
 * studies, a bottleneck once the predictor sits inside every
 * admission/batching/dispatch decision of a serving loop.
 *
 * A PredictionPlan freezes one (network, GPU) pair into a flat
 * structure-of-arrays program: one term per kernel (or per layer-wise
 * fallback fit) holding the per-sample cost-driver value and the fitted
 * slope/intercept, grouped into layers that carry the calibration
 * scales. Evaluating a query is then a single linear sweep over plain
 * arrays — no hash lookups, no shared_ptr refcount churn, no virtual
 * dispatch, no allocation — and is bit-identical to `PredictUs` by
 * construction (the sweep performs the exact same floating-point
 * operations in the exact same order).
 *
 * Batch size is a *query* axis, not a plan axis: every cost driver the
 * models use (input NCHW, layer FLOPs, output NCHW) is linear in batch
 * (`bench_fig05_batch_linear`), so a term stores the per-sample value
 * and the sweep multiplies by the query's batch. One plan serves all
 * batch sizes.
 *
 * Plans live in a per-model PlanCache keyed by network name (validated
 * against the structural fingerprint) and a per-GPU slot. A model
 * generation owns its cache, so bundle promotion/rollback through
 * models::BundleRegistry invalidates plans for free: a new generation
 * is a new KwModel with an empty cache, while snapshots of the old
 * generation keep their compiled plans alive and correct.
 *
 * Observability: `gpuperf_predictor_plan_{compiles,queries,
 * invalidations}` in obs::MetricsRegistry::Global(), plus a structured
 * debug log line per compilation.
 */

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/synchronization.h"
#include "dnn/network.h"
#include "models/network_cache.h"

namespace gpuperf::models {

/**
 * A compiled (network, GPU) prediction program: contiguous per-term
 * arrays swept in layer order. Immutable after compilation; safe to
 * evaluate from concurrent threads.
 */
class PredictionPlan {
 public:
  /**
   * Opens the next layer group. `scale_a` multiplies the layer's term
   * sum first (the KW per-GPU or IGKW mean calibration factor; 1.0 for
   * layer-wise fallback terms), `scale_b` second (the IGKW
   * nearest-GPU bandwidth ratio; 1.0 otherwise). Multiplying by 1.0 is
   * an IEEE identity, so unused scales never perturb bit-equality.
   * `label` is explain-only metadata (the layer's name; never read by
   * the evaluation sweep).
   */
  void BeginLayer(double scale_a, double scale_b, std::string label = "");

  /**
   * Appends one `max(0, intercept + slope * (batch * per_sample_value))`
   * term to the currently open layer. `cluster_id` is explain-only
   * metadata (the kernel cluster the fit came from; -1 for layer-wise
   * fallback terms).
   */
  void AddTerm(std::int64_t per_sample_value, double slope, double intercept,
               int cluster_id = -1);

  /** Predicted end-to-end microseconds for one batch size. */
  double EvalUs(std::int64_t batch) const;

  /** One EvalUs per entry; `out_us.size()` must equal `batches.size()`. */
  void EvalMany(std::span<const std::int64_t> batches,
                std::span<double> out_us) const;

  std::size_t layer_count() const { return layer_end_.size(); }
  std::size_t term_count() const { return value_.size(); }

  // --- Plan-walking accessors (models/explain.h decomposes a
  // prediction by replaying EvalUs's exact op order through these).
  std::uint32_t layer_end(std::size_t layer) const {
    return layer_end_[layer];
  }
  double layer_scale_a(std::size_t layer) const { return scale_a_[layer]; }
  double layer_scale_b(std::size_t layer) const { return scale_b_[layer]; }
  const std::string& layer_label(std::size_t layer) const {
    return label_[layer];
  }
  std::int64_t term_value(std::size_t term) const { return value_[term]; }
  double term_slope(std::size_t term) const { return slope_[term]; }
  double term_intercept(std::size_t term) const { return intercept_[term]; }
  int term_cluster(std::size_t term) const { return cluster_[term]; }

 private:
  // Terms (SoA): per-sample cost-driver value and fitted line.
  std::vector<std::int64_t> value_;
  std::vector<double> slope_;
  std::vector<double> intercept_;
  std::vector<int> cluster_;  // explain metadata; not read by EvalUs
  // Layers: exclusive end index into the term arrays plus both scales.
  std::vector<std::uint32_t> layer_end_;
  std::vector<double> scale_a_;
  std::vector<double> scale_b_;
  std::vector<std::string> label_;  // explain metadata; not read by EvalUs
};

/**
 * Thread-safe per-model cache of compiled plans.
 *
 * Keyed by network name + structural fingerprint (reusing a name for a
 * different architecture retires the stale plans and recompiles), with
 * one slot per GPU identity. Lookups take a shared lock and return a
 * stable raw pointer — valid until Clear() — so the steady-state hot
 * path does no refcounting and no allocation. Copying a model copies
 * the cache (plans are immutable and shared); the copy gets its own
 * lock.
 */
class PlanCache {
 public:
  /**
   * The GPU identity of a slot. KW plans use the dense trained-GPU
   * index; IGKW plans are spec-driven (hypothetical GPUs have no stable
   * name), so they key on the scaling features instead.
   */
  struct SlotKey {
    int gpu_index = -1;
    double feature_a = 0;
    double feature_b = 0;
    bool operator==(const SlotKey&) const = default;
  };

  PlanCache() = default;
  PlanCache(const PlanCache& other);
  PlanCache& operator=(const PlanCache& other);

  /**
   * The plan for (`network`, `slot`), compiling it with `compile()` (a
   * callable returning a PredictionPlan) on first sight or after a
   * fingerprint mismatch. `fingerprint` is NetworkFingerprint(network),
   * passed in so batched sweeps hash each network once per run, not
   * once per (network, GPU) cell. The returned pointer stays valid
   * until Clear() — models only Clear() when retrained or reloaded.
   */
  template <typename CompileFn>
  const PredictionPlan* Get(const dnn::Network& network,
                            std::uint64_t fingerprint, const SlotKey& slot,
                            const CompileFn& compile) const {
    {
      SharedReaderLock lock(mu_);
      const PredictionPlan* hit =
          FindLocked(network.name(), fingerprint, slot);
      if (hit != nullptr) return hit;
    }
    // Compile outside the lock so a slow compilation never blocks
    // readers hitting other plans; a concurrent identical compile keeps
    // the incumbent (first writer wins, the loser's plan is dropped).
    auto plan = std::make_shared<const PredictionPlan>(compile());
    SharedMutexLock lock(mu_);
    return InsertLocked(network.name(), fingerprint, slot, std::move(plan));
  }

  /** Drops every plan (models call this when retrained or reloaded). */
  void Clear();

 private:
  struct Entry {
    std::uint64_t fingerprint = 0;
    // Slot count is the number of distinct GPUs queried for this
    // network — single digits in practice, so a linear scan beats a
    // second hash map and stays allocation-free on the hit path.
    std::vector<std::pair<SlotKey, std::shared_ptr<const PredictionPlan>>>
        slots;
  };

  const PredictionPlan* FindLocked(const std::string& name,
                                   std::uint64_t fingerprint,
                                   const SlotKey& slot) const
      GP_REQUIRES_SHARED(mu_);
  const PredictionPlan* InsertLocked(
      const std::string& name, std::uint64_t fingerprint, const SlotKey& slot,
      std::shared_ptr<const PredictionPlan> plan) const GP_REQUIRES(mu_);

  mutable SharedMutex mu_;
  mutable std::unordered_map<std::string, Entry> entries_ GP_GUARDED_BY(mu_);
  // Plans retired by a fingerprint mismatch are parked here (not freed)
  // until Clear(), so raw plan pointers held by in-flight sweeps stay
  // valid even across a concurrent name reuse.
  mutable std::vector<std::shared_ptr<const PredictionPlan>> retired_
      GP_GUARDED_BY(mu_);
};

namespace internal {

/** Bumps `gpuperf_predictor_plan_queries` (PredictMany implementations). */
void CountPlanQueries(std::uint64_t n);

}  // namespace internal

}  // namespace gpuperf::models

#endif  // GPUPERF_MODELS_PREDICTION_PLAN_H_
