#include "models/explain.h"

#include <algorithm>
#include <map>

namespace gpuperf::models {

PredictionBreakdown ExplainPlan(const PredictionPlan& plan,
                                std::int64_t batch) {
  PredictionBreakdown out;
  out.layers.reserve(plan.layer_count());
  out.terms.reserve(plan.term_count());
  std::map<int, ClusterContribution> clusters;  // sorted => deterministic
  double total = 0.0;
  std::uint32_t term = 0;
  for (std::size_t i = 0; i < plan.layer_count(); ++i) {
    const std::uint32_t end = plan.layer_end(i);
    const double scale_a = plan.layer_scale_a(i);
    const double scale_b = plan.layer_scale_b(i);
    double subtotal = 0.0;
    for (; term < end; ++term) {
      // Same op order as EvalUs: x converts the int64 product once, the
      // fit is intercept + slope * x, negatives clamp to zero.
      const double x = static_cast<double>(batch * plan.term_value(term));
      const double raw = std::max(
          0.0, plan.term_intercept(term) + plan.term_slope(term) * x);
      subtotal += raw;
      TermContribution tc;
      tc.layer = i;
      tc.layer_label = plan.layer_label(i);
      tc.cluster_id = plan.term_cluster(term);
      tc.raw_us = raw;
      // Applying the scales per term re-associates one multiply; the
      // exact addend lives in the layer contribution below.
      tc.scaled_us = raw * scale_a * scale_b;
      ClusterContribution& cc = clusters[tc.cluster_id];
      cc.cluster_id = tc.cluster_id;
      cc.terms += 1;
      cc.us += tc.scaled_us;
      out.terms.push_back(std::move(tc));
    }
    const double addend = subtotal * scale_a * scale_b;
    total += addend;
    LayerContribution lc;
    lc.index = i;
    lc.label = plan.layer_label(i);
    lc.us = addend;
    out.layers.push_back(std::move(lc));
  }
  out.total_us = total;
  for (LayerContribution& lc : out.layers) {
    lc.share = total != 0.0 ? lc.us / total : 0.0;
  }
  out.clusters.reserve(clusters.size());
  for (auto& [id, cc] : clusters) {
    (void)id;
    cc.share = total != 0.0 ? cc.us / total : 0.0;
    out.clusters.push_back(std::move(cc));
  }
  return out;
}

std::vector<ResidualAttribution> AttributeResiduals(
    const PredictionBreakdown& breakdown, double observed_us) {
  std::vector<ResidualAttribution> out;
  if (breakdown.total_us == 0.0) return out;
  const double residual = observed_us - breakdown.total_us;
  out.reserve(breakdown.clusters.size());
  for (const ClusterContribution& cc : breakdown.clusters) {
    ResidualAttribution ra;
    ra.cluster_id = cc.cluster_id;
    ra.share = cc.share;
    ra.residual_us = residual * cc.share;
    out.push_back(ra);
  }
  return out;
}

}  // namespace gpuperf::models
