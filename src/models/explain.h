#ifndef GPUPERF_MODELS_EXPLAIN_H_
#define GPUPERF_MODELS_EXPLAIN_H_

/**
 * @file
 * Prediction-error attribution: decompose a compiled prediction into
 * per-layer, per-cluster, and per-term contributions.
 *
 * ExplainPlan replays PredictionPlan::EvalUs's exact floating-point
 * accumulation order through the plan's metadata accessors, so the
 * reported `total_us` is bit-identical to EvalUs (and therefore to
 * PredictUs, which plans mirror by construction). Each layer's
 * contribution is the exact addend `subtotal * scale_a * scale_b` that
 * EvalUs folds into its running total — summing the layer
 * contributions in order reproduces the total bit-for-bit. Per-term
 * and per-cluster contributions apply the layer scales to each term
 * individually, which re-associates one multiplication; their sums
 * agree with the total to within accumulated rounding (1 ulp per
 * term), never more.
 *
 * AttributeResiduals distributes an observed-minus-predicted residual
 * across kernel clusters in proportion to each cluster's share of the
 * prediction — the serving-time attribution `gpuperf explain` prints
 * when given an observations CSV. Cluster id -1 collects layer-wise
 * fallback terms (layers predicted without kernel decomposition).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "models/prediction_plan.h"

namespace gpuperf::models {

/** One plan term's contribution to a prediction. */
struct TermContribution {
  std::size_t layer = 0;    // owning layer's index in the plan
  std::string layer_label;  // owning layer's name ("" for unlabeled plans)
  int cluster_id = -1;      // kernel cluster; -1 = layer-wise fallback
  double raw_us = 0;        // max(0, intercept + slope * batch*value)
  double scaled_us = 0;     // raw_us * scale_a * scale_b
};

/** One layer's contribution: the exact addend EvalUs accumulates. */
struct LayerContribution {
  std::size_t index = 0;
  std::string label;
  double us = 0;     // subtotal * scale_a * scale_b, bit-exact
  double share = 0;  // us / total_us (0 when the total is 0)
};

/** One kernel cluster's contribution, summed across layers. */
struct ClusterContribution {
  int cluster_id = -1;  // -1 = layer-wise fallback terms
  std::uint64_t terms = 0;
  double us = 0;     // sum of member terms' scaled_us, plan order
  double share = 0;  // us / total_us (0 when the total is 0)
};

/** A prediction decomposed along every axis the plan records. */
struct PredictionBreakdown {
  double total_us = 0;  // bit-identical to plan.EvalUs(batch)
  std::vector<LayerContribution> layers;      // plan order
  std::vector<ClusterContribution> clusters;  // ascending cluster_id
  std::vector<TermContribution> terms;        // plan order
};

/** Decomposes `plan.EvalUs(batch)` without changing its value. */
PredictionBreakdown ExplainPlan(const PredictionPlan& plan,
                                std::int64_t batch);

/** One cluster's slice of an observed-minus-predicted residual. */
struct ResidualAttribution {
  int cluster_id = -1;
  double share = 0;        // the cluster's share of the prediction
  double residual_us = 0;  // (observed - predicted) * share
};

/**
 * Splits `observed_us - breakdown.total_us` across the breakdown's
 * clusters by prediction share, in ascending cluster_id order. A zero
 * total (nothing to apportion by) yields an empty vector.
 */
std::vector<ResidualAttribution> AttributeResiduals(
    const PredictionBreakdown& breakdown, double observed_us);

}  // namespace gpuperf::models

#endif  // GPUPERF_MODELS_EXPLAIN_H_
