#include "models/lw_model.h"

#include <algorithm>

#include "common/logging.h"
#include "dnn/flops.h"

namespace gpuperf::models {

void LwModel::Train(const dataset::Dataset& data,
                    const dataset::NetworkSplit& split) {
  fits_.clear();
  // Layer time = sum of its kernels' times; aggregate per
  // (gpu, network, layer_index) first, then bucket by layer kind.
  struct LayerAccum {
    double time_us = 0;
    double flops = 0;
    dnn::LayerKind kind = dnn::LayerKind::kRelu;
  };
  std::map<std::tuple<int, int, int>, LayerAccum> layers;
  for (const dataset::KernelRow& row : data.kernel_rows()) {
    if (split.IsTest(row.network_id)) continue;
    LayerAccum& accum =
        layers[{row.gpu_id, row.network_id, row.layer_index}];
    accum.time_us += row.time_us;
    accum.flops = static_cast<double>(row.layer_flops);
    accum.kind = row.layer_kind;
  }
  std::map<std::pair<std::string, dnn::LayerKind>,
           std::pair<std::vector<double>, std::vector<double>>>
      samples;
  for (const auto& [key, accum] : layers) {
    auto& [x, y] =
        samples[{data.gpus().Get(std::get<0>(key)), accum.kind}];
    x.push_back(accum.flops);
    y.push_back(accum.time_us);
  }
  for (auto& [key, xy] : samples) {
    fits_[key] = regression::FitLinear(xy.first, xy.second);
  }
}

double LwModel::PredictLayerUs(const dnn::Layer& layer,
                               const std::string& gpu_name,
                               std::int64_t batch) const {
  const regression::LinearFit* fit = FitFor(gpu_name, layer.kind);
  if (fit == nullptr) return 0.0;  // unseen layer type contributes nothing
  const double flops = static_cast<double>(dnn::LayerFlops(layer, batch));
  return std::max(0.0, fit->Predict(flops));
}

double LwModel::PredictUs(const dnn::Network& network,
                          const gpuexec::GpuSpec& gpu,
                          std::int64_t batch) const {
  double total = 0;
  for (const dnn::Layer& layer : network.layers()) {
    total += PredictLayerUs(layer, gpu.name, batch);
  }
  return total;
}

const regression::LinearFit* LwModel::FitFor(const std::string& gpu_name,
                                             dnn::LayerKind kind) const {
  auto it = fits_.find({gpu_name, kind});
  return it == fits_.end() ? nullptr : &it->second;
}

void LwModel::SetFit(const std::string& gpu_name, dnn::LayerKind kind,
                     const regression::LinearFit& fit) {
  fits_[{gpu_name, kind}] = fit;
}

}  // namespace gpuperf::models
