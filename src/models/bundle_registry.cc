#include "models/bundle_registry.h"

#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "gpuexec/gpu_spec.h"
#include "models/model_io.h"
#include "obs/metrics_registry.h"

namespace gpuperf::models {
namespace {

/** Process-wide lifecycle counters, aggregated across every registry. */
struct BundleMetrics {
  obs::Counter& promotions;
  obs::Counter& rejections;
  obs::Counter& rollbacks;

  static BundleMetrics& Get() {
    static BundleMetrics* const kMetrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return new BundleMetrics{
          registry.counter("gpuperf_bundle_promotions"),
          registry.counter("gpuperf_bundle_rejections"),
          registry.counter("gpuperf_bundle_rollbacks")};
    }();
    return *kMetrics;
  }
};

}  // namespace

Status BundleRegistry::RunCanary(const KwModel& candidate,
                                 const KwModel* current,
                                 const CanaryOptions& options) {
  if (options.probe_networks.empty()) return Status::Ok();
  std::vector<std::string> gpus = options.gpus;
  if (gpus.empty()) gpus = candidate.TrainedGpus();
  if (gpus.empty()) {
    return FailedPreconditionError(
        "canary: candidate bundle has no trained GPUs");
  }
  for (const std::string& gpu_name : gpus) {
    const gpuexec::GpuSpec* gpu = gpuexec::FindGpu(gpu_name);
    if (gpu == nullptr) {
      return InvalidArgumentError("canary: unknown probe GPU '" + gpu_name +
                                  "'");
    }
    for (const dnn::Network& network : options.probe_networks) {
      const KwModel::Coverage coverage =
          candidate.CoverageFor(network, gpu_name);
      if (!coverage.gpu_trained) {
        return FailedPreconditionError(
            "canary: candidate bundle is not trained for GPU '" + gpu_name +
            "' (probe network '" + network.name() + "')");
      }
      const double value = candidate.PredictUs(network, *gpu, options.batch);
      if (!std::isfinite(value) || value <= 0) {
        return FailedPreconditionError(Format(
            "canary: candidate predicts %g us for '%s' on '%s' @BS%lld — "
            "not a positive finite time",
            value, network.name().c_str(), gpu_name.c_str(),
            static_cast<long long>(options.batch)));
      }
      if (current != nullptr &&
          current->CoverageFor(network, gpu_name).gpu_trained) {
        const double baseline =
            current->PredictUs(network, *gpu, options.batch);
        if (std::isfinite(baseline) && baseline > 0) {
          const double drift = std::abs(value - baseline) / baseline;
          if (drift > options.tolerance) {
            return FailedPreconditionError(Format(
                "canary: candidate drifts %.0f%% from the serving "
                "generation for '%s' on '%s' @BS%lld (%g us vs %g us, "
                "tolerance %.0f%%) — validate the new training run before "
                "promoting",
                100 * drift, network.name().c_str(), gpu_name.c_str(),
                static_cast<long long>(options.batch), value, baseline,
                100 * options.tolerance));
          }
        }
      }
    }
  }
  return Status::Ok();
}

Status BundleRegistry::TryPromote(const std::string& directory,
                                  const CanaryOptions& options) {
  // Load and canary outside any lock: the current generation keeps
  // serving readers while the candidate is validated. The recovering
  // load first resolves any save that crashed mid-swap in `directory`,
  // so a candidate is always exactly one generation, never a hybrid.
  StatusOr<KwModel> loaded = ModelIo::LoadKwRecovering(directory);
  if (!loaded.ok()) {
    BundleMetrics::Get().rejections.Increment();
    LogDebug("bundle rejected", {{"directory", directory},
                                 {"reason", "load-failed"}});
    SharedMutexLock lock(mu_);
    ++counters_.rejections;
    return Status(loaded.status())
        .Annotate("candidate bundle '" + directory + "' rejected");
  }
  auto candidate =
      std::make_shared<const KwModel>(std::move(loaded).value());
  std::shared_ptr<const KwModel> current = Snapshot();
  Status canary = RunCanary(*candidate, current.get(), options);
  if (!canary.ok()) {
    BundleMetrics::Get().rejections.Increment();
    LogDebug("bundle rejected", {{"directory", directory},
                                 {"reason", "canary-failed"}});
    SharedMutexLock lock(mu_);
    ++counters_.rejections;
    return canary.Annotate("candidate bundle '" + directory + "' rejected");
  }
  BundleMetrics::Get().promotions.Increment();
  SharedMutexLock lock(mu_);
  previous_ = std::move(current_);
  current_ = std::move(candidate);
  ++counters_.generation;
  ++counters_.promotions;
  LogDebug("bundle promoted",
           {{"directory", directory},
            {"generation", Format("%lld", static_cast<long long>(
                                              counters_.generation))}});
  return Status::Ok();
}

std::shared_ptr<const KwModel> BundleRegistry::Snapshot() const {
  SharedReaderLock lock(mu_);
  return current_;
}

Status BundleRegistry::Rollback() {
  SharedMutexLock lock(mu_);
  if (previous_ == nullptr) {
    return FailedPreconditionError(
        "rollback: no previous bundle generation to restore");
  }
  current_ = std::move(previous_);
  previous_ = nullptr;
  ++counters_.generation;
  ++counters_.rollbacks;
  BundleMetrics::Get().rollbacks.Increment();
  LogDebug("bundle rolled back",
           {{"generation", Format("%lld", static_cast<long long>(
                                              counters_.generation))}});
  return Status::Ok();
}

BundleRegistryCounters BundleRegistry::counters() const {
  SharedReaderLock lock(mu_);
  return counters_;
}

}  // namespace gpuperf::models
