#include "models/prediction_plan.h"

#include <algorithm>
#include <sstream>

#include "obs/metrics_registry.h"

namespace gpuperf::models {
namespace {

/** Process-wide plan-cache counters, aggregated across every model. */
struct PlanMetrics {
  obs::Counter& compiles;
  obs::Counter& queries;
  obs::Counter& invalidations;

  static PlanMetrics& Get() {
    static PlanMetrics* const kMetrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return new PlanMetrics{
          registry.counter("gpuperf_predictor_plan_compiles",
                           "Prediction plans compiled"),
          registry.counter("gpuperf_predictor_plan_queries",
                           "Batched plan evaluations"),
          registry.counter("gpuperf_predictor_plan_invalidations",
                           "Plans retired by refit or name reuse")};
    }();
    return *kMetrics;
  }
};

std::string SlotKeyString(const PlanCache::SlotKey& slot) {
  std::ostringstream out;
  if (slot.gpu_index >= 0) {
    out << "gpu#" << slot.gpu_index;
  } else {
    out << "spec(" << slot.feature_a << "," << slot.feature_b << ")";
  }
  return out.str();
}

}  // namespace

void PredictionPlan::BeginLayer(double scale_a, double scale_b,
                                std::string label) {
  layer_end_.push_back(static_cast<std::uint32_t>(value_.size()));
  scale_a_.push_back(scale_a);
  scale_b_.push_back(scale_b);
  label_.push_back(std::move(label));
}

void PredictionPlan::AddTerm(std::int64_t per_sample_value, double slope,
                             double intercept, int cluster_id) {
  GP_CHECK(!layer_end_.empty()) << "AddTerm before BeginLayer";
  value_.push_back(per_sample_value);
  slope_.push_back(slope);
  intercept_.push_back(intercept);
  cluster_.push_back(cluster_id);
  layer_end_.back() = static_cast<std::uint32_t>(value_.size());
}

double PredictionPlan::EvalUs(std::int64_t batch) const {
  const std::int64_t* value = value_.data();
  const double* slope = slope_.data();
  const double* intercept = intercept_.data();
  double total = 0.0;
  std::uint32_t term = 0;
  const std::size_t layers = layer_end_.size();
  for (std::size_t i = 0; i < layers; ++i) {
    const std::uint32_t end = layer_end_[i];
    double subtotal = 0.0;
    for (; term < end; ++term) {
      // Same float op order as Kw/Igkw PredictLayerResolved: the driver
      // value is an int64 product converted once, the fit is evaluated
      // as intercept + slope * x, negatives clamp to zero.
      const double x = static_cast<double>(batch * value[term]);
      subtotal += std::max(0.0, intercept[term] + slope[term] * x);
    }
    total += subtotal * scale_a_[i] * scale_b_[i];
  }
  return total;
}

void PredictionPlan::EvalMany(std::span<const std::int64_t> batches,
                              std::span<double> out_us) const {
  GP_CHECK_EQ(batches.size(), out_us.size());
  for (std::size_t i = 0; i < batches.size(); ++i) {
    out_us[i] = EvalUs(batches[i]);
  }
}

PlanCache::PlanCache(const PlanCache& other) {
  SharedReaderLock lock(other.mu_);
  entries_ = other.entries_;
}

PlanCache& PlanCache::operator=(const PlanCache& other) {
  if (this == &other) return *this;
  std::unordered_map<std::string, Entry> copy;
  {
    SharedReaderLock lock(other.mu_);
    copy = other.entries_;
  }
  SharedMutexLock lock(mu_);
  entries_ = std::move(copy);
  retired_.clear();
  return *this;
}

const PredictionPlan* PlanCache::FindLocked(const std::string& name,
                                            std::uint64_t fingerprint,
                                            const SlotKey& slot) const {
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.fingerprint != fingerprint) {
    return nullptr;
  }
  for (const auto& [key, plan] : it->second.slots) {
    if (key == slot) return plan.get();
  }
  return nullptr;
}

const PredictionPlan* PlanCache::InsertLocked(
    const std::string& name, std::uint64_t fingerprint, const SlotKey& slot,
    std::shared_ptr<const PredictionPlan> plan) const {
  Entry& entry = entries_[name];
  if (!entry.slots.empty() && entry.fingerprint != fingerprint) {
    // The name now denotes a different architecture: retire the stale
    // plans (raw pointers handed out earlier must stay valid) and start
    // a fresh slot list.
    PlanMetrics::Get().invalidations.Increment(entry.slots.size());
    for (auto& [key, old] : entry.slots) {
      (void)key;
      retired_.push_back(std::move(old));
    }
    entry.slots.clear();
  }
  entry.fingerprint = fingerprint;
  // A concurrent compile may have installed this slot while we were
  // compiling outside the lock; keep the incumbent so earlier raw
  // pointers remain canonical, and drop our duplicate.
  for (const auto& [key, incumbent] : entry.slots) {
    if (key == slot) return incumbent.get();
  }
  entry.slots.emplace_back(slot, std::move(plan));
  const PredictionPlan* installed = entry.slots.back().second.get();
  PlanMetrics::Get().compiles.Increment();
  LogDebug("prediction plan compiled",
           {{"network", name},
            {"slot", SlotKeyString(slot)},
            {"layers", std::to_string(installed->layer_count())},
            {"terms", std::to_string(installed->term_count())}});
  return installed;
}

void PlanCache::Clear() {
  SharedMutexLock lock(mu_);
  std::uint64_t dropped = 0;
  for (const auto& [name, entry] : entries_) {
    (void)name;
    dropped += entry.slots.size();
  }
  if (dropped > 0) PlanMetrics::Get().invalidations.Increment(dropped);
  entries_.clear();
  retired_.clear();
}

namespace internal {

void CountPlanQueries(std::uint64_t n) {
  PlanMetrics::Get().queries.Increment(n);
}

}  // namespace internal

}  // namespace gpuperf::models
