#ifndef GPUPERF_MODELS_MODEL_IO_H_
#define GPUPERF_MODELS_MODEL_IO_H_

/**
 * @file
 * Serialization of trained KW models.
 *
 * Figure 10's workflow distributes the trained analytical model (linear
 * functions + kernel mapping table) to users who never touch the training
 * dataset; this is the ship-it format: three CSV files in a directory
 * (kernel_models.csv, mapping_table.csv, layer_fallback.csv).
 */

#include <string>

#include "models/kw_model.h"

namespace gpuperf::models {

/** Saves/loads trained KW models as CSV bundles. */
class ModelIo {
 public:
  /** Writes `model` into `directory` (must exist). */
  static void SaveKw(const KwModel& model, const std::string& directory);

  /** Reads a model bundle written by SaveKw(). */
  static KwModel LoadKw(const std::string& directory);
};

}  // namespace gpuperf::models

#endif  // GPUPERF_MODELS_MODEL_IO_H_
