#ifndef GPUPERF_MODELS_MODEL_IO_H_
#define GPUPERF_MODELS_MODEL_IO_H_

/**
 * @file
 * Serialization of trained KW models.
 *
 * Figure 10's workflow distributes the trained analytical model (linear
 * functions + kernel mapping table) to users who never touch the training
 * dataset; this is the ship-it format: four CSV files in a directory
 * (kernel_models.csv, mapping_table.csv, calibration.csv,
 * layer_fallback.csv) plus a manifest.csv carrying the bundle version and
 * a per-file checksum + row count.
 *
 * Because bundles cross a trust boundary (users load files they did not
 * produce), loading is fully recoverable: every corruption — truncated
 * file, checksum mismatch, non-finite coefficient, duplicate key, missing
 * fallback row — comes back as a Status naming the file, line, and field,
 * never a process abort.
 *
 * Saves are crash-consistent: the bundle is fully staged into a
 * `<dir>.saving` sidecar (manifest written last) and committed with a
 * rename swap through `<dir>.stale`, so a process killed at any byte of
 * any write — or between any two renames — leaves either the old or the
 * new generation recoverable, never a hybrid. LoadKwRecovering() is the
 * matching read side: it finishes or unwinds an interrupted swap before
 * loading.
 */

#include <string>
#include <vector>

#include "common/status.h"
#include "models/kw_model.h"

namespace gpuperf::models {

/** Version written into manifest.csv; bump on layout changes. */
inline constexpr int kKwBundleVersion = 2;

/** Sidecar holding the fully-staged next generation during SaveKw(). */
inline constexpr const char* kBundleSavingSuffix = ".saving";

/** Sidecar holding the displaced previous generation mid-swap. */
inline constexpr const char* kBundleStaleSuffix = ".stale";

/** One file of a bundle save: name inside the directory plus full bytes. */
struct BundleFilePlan {
  std::string name;
  std::string content;
};

/** Saves/loads trained KW models as CSV bundles. */
class ModelIo {
 public:
  /**
   * Renders `model` as the ordered list of files SaveKw() writes —
   * manifest.csv strictly last — without touching the filesystem. The
   * crash-point harness truncates this plan at every byte boundary; any
   * prefix of it must be unloadable (the manifest is absent or stale).
   */
  static std::vector<BundleFilePlan> PlanKwSave(const KwModel& model);

  /**
   * Crash-consistently writes `model` as the bundle at `directory`
   * (created if absent, replaced atomically if present). The plan is
   * staged into `directory`.saving, then committed by renaming the old
   * generation to `directory`.stale, the staging dir to `directory`,
   * and finally removing the stale copy.
   */
  [[nodiscard]] static Status SaveKw(const KwModel& model,
                                     const std::string& directory);

  /**
   * Reads and validates a model bundle written by SaveKw(). All errors
   * are recoverable: the Status message is `file:line: ...` wherever a
   * location exists.
   */
  [[nodiscard]] static StatusOr<KwModel> LoadKw(const std::string& directory);

  /**
   * LoadKw() plus crash recovery: prefers a valid `directory`; failing
   * that, completes an interrupted swap from a fully-staged
   * `directory`.saving; failing that, restores `directory`.stale. Always
   * yields exactly one committed generation (old or new) and cleans the
   * sidecars, or reports the original load error when nothing is
   * recoverable.
   */
  [[nodiscard]] static StatusOr<KwModel> LoadKwRecovering(
      const std::string& directory);
};

}  // namespace gpuperf::models

#endif  // GPUPERF_MODELS_MODEL_IO_H_
