#ifndef GPUPERF_MODELS_MODEL_IO_H_
#define GPUPERF_MODELS_MODEL_IO_H_

/**
 * @file
 * Serialization of trained KW models.
 *
 * Figure 10's workflow distributes the trained analytical model (linear
 * functions + kernel mapping table) to users who never touch the training
 * dataset; this is the ship-it format: four CSV files in a directory
 * (kernel_models.csv, mapping_table.csv, calibration.csv,
 * layer_fallback.csv) plus a manifest.csv carrying the bundle version and
 * a per-file checksum + row count.
 *
 * Because bundles cross a trust boundary (users load files they did not
 * produce), loading is fully recoverable: every corruption — truncated
 * file, checksum mismatch, non-finite coefficient, duplicate key, missing
 * fallback row — comes back as a Status naming the file, line, and field,
 * never a process abort.
 */

#include <string>

#include "common/status.h"
#include "models/kw_model.h"

namespace gpuperf::models {

/** Version written into manifest.csv; bump on layout changes. */
inline constexpr int kKwBundleVersion = 2;

/** Saves/loads trained KW models as CSV bundles. */
class ModelIo {
 public:
  /** Writes `model` into `directory` (must exist). */
  static void SaveKw(const KwModel& model, const std::string& directory);

  /**
   * Reads and validates a model bundle written by SaveKw(). All errors
   * are recoverable: the Status message is `file:line: ...` wherever a
   * location exists.
   */
  [[nodiscard]] static StatusOr<KwModel> LoadKw(const std::string& directory);
};

}  // namespace gpuperf::models

#endif  // GPUPERF_MODELS_MODEL_IO_H_
