#ifndef GPUPERF_MODELS_CPU_AWARE_MODEL_H_
#define GPUPERF_MODELS_CPU_AWARE_MODEL_H_

/**
 * @file
 * The CPU-aware extension — the paper's stated limitation fix ("in the
 * future, we plan to include a CPU and a communication model so that we
 * can also accurately predict performance for small workloads").
 *
 * When the batch (or the network) is small, the GPU drains kernels faster
 * than the CPU can launch them and wall time is set by the launch
 * pipeline, not the GPU. This model combines a trained KW model with a
 * per-GPU CPU-pipeline law
 *
 *   cpu_us(n) = overhead + per_kernel * n_kernels
 *
 * fitted on the launch-bound runs of a small-batch campaign, and predicts
 *
 *   e2e = max(KW prediction, cpu_us(n_kernels)).
 *
 * The kernel count of an unseen network comes from the KW mapping table,
 * so prediction still needs nothing but the network structure.
 */

#include <cstdint>
#include <map>
#include <string>

#include "dataset/dataset.h"
#include "models/kw_model.h"
#include "models/predictor.h"

namespace gpuperf::models {

/** The fitted CPU launch-pipeline law of one GPU. */
struct CpuPipelineFit {
  double overhead_us = 0;    // per-run fixed cost (framework dispatch)
  double per_kernel_us = 0;  // cost of issuing one kernel
  std::size_t samples = 0;   // launch-bound runs used for the fit
};

/** KW + CPU launch pipeline. */
class CpuAwareModel : public Predictor {
 public:
  /**
   * Wraps a copy of `kw` (already trained, typically at BS 512) and fits
   * the CPU law from `data` — a campaign at a SMALL batch size where the
   * launch pipeline is visible. Runs whose wall time exceeds GPU busy
   * time by `launch_bound_threshold` are treated as launch-bound.
   */
  void Train(const KwModel& kw, const dataset::Dataset& data,
             const dataset::NetworkSplit& split,
             double launch_bound_threshold = 1.10);

  std::string Name() const override { return "KW+CPU"; }

  double PredictUs(const dnn::Network& network, const gpuexec::GpuSpec& gpu,
                   std::int64_t batch) const override;

  /** Predicted kernel-launch count of `network` from the mapping table. */
  std::int64_t PredictKernelCount(const dnn::Network& network) const;

  /** The CPU law for `gpu_name` (zeros if no launch-bound runs existed). */
  const CpuPipelineFit& FitFor(const std::string& gpu_name) const;

  const KwModel& kw_model() const { return kw_; }

 private:
  KwModel kw_;
  std::map<std::string, CpuPipelineFit> fits_;
};

}  // namespace gpuperf::models

#endif  // GPUPERF_MODELS_CPU_AWARE_MODEL_H_
