#ifndef GPUPERF_MODELS_KW_MODEL_H_
#define GPUPERF_MODELS_KW_MODEL_H_

/**
 * @file
 * The Kernel-Wise model (Section 5.4) — the paper's flagship (7% error on
 * A100, 6-9.4% across GPUs, 4.76% on transformers).
 *
 * Training:
 *  1. Build the layer-to-kernel mapping table from the profiled traces
 *     (keyed by layer signature, batch-agnostic).
 *  2. For every (GPU, kernel name), fit three candidate regressions —
 *     time vs input NCHW, vs layer FLOPs, vs output NCHW — and classify
 *     the kernel by the driver with the highest R² (O5, Figure 8).
 *  3. Merge kernels with similar (driver, slope, intercept) into shared
 *     cluster regressions (paper: 182 kernels -> 83 models on A100).
 *
 * Prediction sums per-kernel regression outputs over the kernel lists of
 * all layers; unseen layer signatures fall back to a reduced
 * (type + filter parameters) key, and unseen kernels to a layer-wise fit.
 */

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataset/dataset.h"
#include "dnn/layer.h"
#include "gpuexec/kernel.h"
#include "models/lw_model.h"
#include "models/network_cache.h"
#include "models/prediction_plan.h"
#include "models/predictor.h"
#include "regression/linreg.h"

namespace gpuperf::models {

/** Training knobs; defaults reproduce the paper's configuration. */
struct KwOptions {
  bool classify_drivers = true;   // ablation: false forces FLOPs everywhere
  bool cluster = true;            // ablation: false keeps per-kernel fits
  double cluster_slope_tol = 0.05;        // relative slope match
  double cluster_intercept_tol_us = 3.0;  // absolute intercept match
  // Upper bound on a kernel's fitted fixed cost. GPU kernel launch /
  // ramp-up overheads are single-digit microseconds; without this cap,
  // kernels observed only at large sizes can absorb hundreds of
  // microseconds of heteroscedastic scatter into the intercept, which
  // wrecks extrapolation to small batch sizes.
  double max_intercept_us = 20.0;
  // Apply a per-GPU end-to-end calibration factor (the ratio of measured
  // wall time to summed kernel predictions over the training networks).
  // Kernel sums systematically miss launch gaps and framework wall
  // overheads; one fitted constant per GPU absorbs the mean of that bias.
  bool calibrate_e2e = true;
};

/** The trained regression of one kernel on one GPU. */
struct KernelModel {
  gpuexec::CostDriver driver = gpuexec::CostDriver::kOperation;
  regression::LinearFit fit;  // the (possibly cluster-shared) line
  int cluster_id = -1;
  double solo_r2 = 0;         // per-kernel fit quality before clustering
};

/** The Kernel-Wise predictor. */
class KwModel : public Predictor {
 public:
  explicit KwModel(const KwOptions& options = KwOptions());

  /**
   * Trains for every GPU in `data`. The mapping table uses all traces
   * (it encodes library behaviour, not timings); regressions use only
   * training-network rows.
   */
  void Train(const dataset::Dataset& data,
             const dataset::NetworkSplit& split);

  std::string Name() const override { return "KW"; }

  double PredictUs(const dnn::Network& network, const gpuexec::GpuSpec& gpu,
                   std::int64_t batch) const override;

  /**
   * Batched prediction through compiled plans: one flat-array sweep per
   * query, with plan resolution amortized across same-(network, GPU)
   * runs. Bit-identical to per-query PredictUs; Fatal (like PredictUs)
   * on an untrained GPU.
   */
  void PredictMany(std::span<const PredictQuery> queries,
                   std::span<double> out_us) const override;

  /**
   * The compiled plan for (`network`, `gpu`), compiling and caching it
   * on first use. The pointer stays valid for the model's lifetime (or
   * until retrain/reload). Fatal on an untrained GPU.
   */
  const PredictionPlan* PlanFor(const dnn::Network& network,
                                const gpuexec::GpuSpec& gpu) const;

  /**
   * Appends `layer`'s compiled terms to `plan` as one plan layer whose
   * subtotal is scaled by the GPU calibration factor (resolved layers)
   * and then by `extra_scale` — the IGKW nearest-GPU fallback compiles
   * through this with its bandwidth ratio; everyone else passes 1.0.
   * Fatal on an untrained GPU.
   */
  void CompileLayerInto(const dnn::Layer& layer, const std::string& gpu_name,
                        double extra_scale, PredictionPlan& plan) const;

  /** Predicted time of one layer (case studies 2 and 3 schedule layers). */
  double PredictLayerUs(const dnn::Layer& layer, const std::string& gpu_name,
                        std::int64_t batch) const;

  /** Kernel names the mapping table yields for `layer` (may be empty). */
  std::vector<std::string> KernelsForLayer(const dnn::Layer& layer) const;

  /**
   * One kernel's contribution to a resolved layer prediction — the unit
   * the drift monitor attributes observed e2e residuals to.
   */
  struct KernelTerm {
    int cluster_id = -1;  // shared-regression id on this GPU
    double x = 0;         // batch-scaled driver value fed into the fit
    double us = 0;        // max(0, intercept + slope * x), pre-calibration
  };

  /**
   * Appends the per-kernel terms of `layer` on `gpu_name` at `batch` to
   * `out`. Returns false — appending nothing — when the layer resolves
   * through the LW fallback or misses the mapping table entirely (no
   * cluster to attribute to). For resolved layers the terms sum, times
   * CalibrationFor(gpu_name), to PredictLayerUs. Fatal on an untrained
   * GPU, like the predict path.
   */
  bool AppendKernelTerms(const dnn::Layer& layer, const std::string& gpu_name,
                         std::int64_t batch,
                         std::vector<KernelTerm>* out) const;

  /**
   * Replaces the shared fit of cluster `cluster_id` on `gpu_name` with
   * `fit` — every kernel in the cluster — and rebuilds the dense
   * prediction tables (which also discards this generation's compiled
   * plans and sid memos). Returns the number of kernel models updated;
   * 0 means unknown GPU or cluster and leaves the model untouched.
   * The online-refit path (models/refit) is the intended caller.
   */
  int UpdateClusterFit(const std::string& gpu_name, int cluster_id,
                       const regression::LinearFit& fit);

  /** How much of a network the trained scope covers (PredictorStack). */
  struct Coverage {
    bool gpu_trained = false;  // model has kernels for this GPU
    int layers = 0;            // layers in the network
    int mapped = 0;            // layers resolved (no-kernel layers count)
    bool Full() const { return gpu_trained && mapped == layers; }
  };

  /**
   * Reports whether `gpu_name` is trained and how many of `network`'s
   * layers resolve through the mapping table (full or reduced signature).
   * Layers that miss entirely would silently use the last-resort LW
   * fallback inside PredictUs; callers wanting observable degradation
   * (the predictor stack) check this first.
   */
  Coverage CoverageFor(const dnn::Network& network,
                       const std::string& gpu_name) const;

  /** Trained per-kernel models of one GPU (IGKW consumes these). */
  const std::map<std::string, KernelModel>& KernelModels(
      const std::string& gpu_name) const;

  /** GPUs the model was trained for. */
  std::vector<std::string> TrainedGpus() const;

  /** Distinct kernels recorded for `gpu_name`. */
  int KernelCount(const std::string& gpu_name) const;

  /** Regression models after clustering for `gpu_name`. */
  int ClusterCount(const std::string& gpu_name) const;

  /** The fitted e2e calibration factor for `gpu_name` (1.0 if disabled). */
  double CalibrationFor(const std::string& gpu_name) const;

  /** The signature -> kernel-list mapping table. */
  const std::map<std::string, std::vector<std::string>>& MappingTable()
      const {
    return mapping_;
  }

  const KwOptions& options() const { return options_; }

 private:
  friend class ModelIo;

  /** One mapping-table kernel resolved to its fitted line. */
  struct ResolvedKernel {
    gpuexec::CostDriver driver = gpuexec::CostDriver::kOperation;
    double slope = 0;
    double intercept = 0;
    int cluster_id = -1;  // drift attribution; not used by prediction
  };

  /** A layer signature fully resolved for one GPU. */
  struct ResolvedLayer {
    bool use_lw = false;  // a kernel had no usable model: LW fallback
    std::vector<ResolvedKernel> kernels;
  };

  /**
   * Builds the dense prediction tables from the string-keyed training
   * state. Called at the end of Train() and after ModelIo::LoadKw();
   * every string lookup, prefix-match fallback, and cluster count the
   * old predict path performed per call is resolved here once.
   */
  void FinalizeTables();

  /** Dense signature id of `layer` (full, then reduced), or -1. */
  int ResolveSid(const dnn::Layer& layer) const;

  /** Hot-path layer prediction from pre-resolved ids; no string work. */
  double PredictLayerResolved(int gpu_idx, int sid, const dnn::Layer& layer,
                              const std::string& gpu_name,
                              std::int64_t batch) const;

  /** Compiles the whole network for one GPU (PlanFor cache misses). */
  PredictionPlan CompilePlan(const dnn::Network& network,
                             const std::string& gpu_name) const;

  /** PlanFor with the network fingerprint already computed. */
  const PredictionPlan* PlanForFp(const dnn::Network& network,
                                  std::uint64_t fingerprint,
                                  const gpuexec::GpuSpec& gpu) const;

  KwOptions options_;
  // gpu name -> kernel name -> trained model.
  std::map<std::string, std::map<std::string, KernelModel>> per_gpu_;
  // layer signature -> ordered kernel names.
  std::map<std::string, std::vector<std::string>> mapping_;
  // reduced signature (kind + filter params) -> ordered kernel names.
  std::map<std::string, std::vector<std::string>> reduced_mapping_;
  // Per-GPU end-to-end calibration factors.
  std::map<std::string, double> calibration_;
  // Last-resort per-layer-kind fallback.
  LwModel lw_fallback_;

  // --- Dense tables built by FinalizeTables(); indexed by gpu idx / sid.
  std::vector<std::string> gpu_names_;
  std::unordered_map<std::string, int> gpu_index_;
  std::vector<double> calibration_by_gpu_;
  std::vector<int> cluster_counts_;
  std::unordered_map<std::string, int> sig_index_;
  std::unordered_map<std::string, int> reduced_index_;
  std::vector<std::vector<ResolvedLayer>> resolved_;  // [gpu][sid]
  // network name -> per-layer sids, filled lazily on prediction.
  NetworkSidCache predict_cache_;
  // (network, gpu) -> compiled plan, filled lazily by PlanFor.
  PlanCache plan_cache_;
};

/** Drops the shape components of a layer signature (fallback table key). */
std::string ReducedSignature(const std::string& signature);

}  // namespace gpuperf::models

#endif  // GPUPERF_MODELS_KW_MODEL_H_
