#include "models/refit.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>
#include <set>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "gpuexec/gpu_spec.h"
#include "models/model_io.h"
#include "obs/metrics_registry.h"
#include "regression/linreg.h"

namespace gpuperf::models {
namespace {

struct LifecycleMetrics {
  obs::Counter& transitions;
  obs::Counter& refits;
  obs::Counter& shadow_rejections;
  obs::Counter& canary_rejections;
  obs::Counter& promotions;
  obs::Counter& rollbacks;

  static LifecycleMetrics& Get() {
    static LifecycleMetrics* const kMetrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return new LifecycleMetrics{
          registry.counter("gpuperf_lifecycle_transitions"),
          registry.counter("gpuperf_lifecycle_refits"),
          registry.counter("gpuperf_lifecycle_shadow_rejections"),
          registry.counter("gpuperf_lifecycle_canary_rejections"),
          registry.counter("gpuperf_lifecycle_promotions"),
          registry.counter("gpuperf_lifecycle_rollbacks")};
    }();
    return *kMetrics;
  }
};

}  // namespace

RefitReservoir::RefitReservoir(int capacity) : capacity_(capacity) {
  GP_CHECK_GT(capacity_, 0);
}

void RefitReservoir::Add(const std::string& gpu, int cluster_id, double x,
                         double y) {
  if (!std::isfinite(x) || !std::isfinite(y)) return;
  Ring& ring = rings_[{gpu, cluster_id}];
  if (!ring.full) {
    ring.x.push_back(x);
    ring.y.push_back(y);
    if (ring.x.size() == static_cast<std::size_t>(capacity_)) {
      ring.full = true;
      ring.next = 0;
    }
    return;
  }
  ring.x[ring.next] = x;
  ring.y[ring.next] = y;
  ring.next = (ring.next + 1) % static_cast<std::size_t>(capacity_);
}

std::size_t RefitReservoir::Collect(const std::string& gpu, int cluster_id,
                                    std::vector<double>* x,
                                    std::vector<double>* y) const {
  auto it = rings_.find({gpu, cluster_id});
  if (it == rings_.end()) return 0;
  const Ring& ring = it->second;
  // Oldest-first: once wrapped, the cursor points at the oldest sample.
  const std::size_t start = ring.full ? ring.next : 0;
  const std::size_t count = ring.x.size();
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = (start + i) % count;
    x->push_back(ring.x[j]);
    y->push_back(ring.y[j]);
  }
  return count;
}

std::size_t RefitReservoir::Size(const std::string& gpu,
                                 int cluster_id) const {
  auto it = rings_.find({gpu, cluster_id});
  return it == rings_.end() ? 0 : it->second.x.size();
}

void RefitReservoir::Reset(const std::string& gpu, int cluster_id) {
  rings_.erase({gpu, cluster_id});
}

StatusOr<RefitResult> RefitTrippedClusters(const std::string& serving_dir,
                                           const std::vector<DriftKey>& tripped,
                                           const RefitReservoir& reservoir,
                                           const RefitOptions& options,
                                           const std::string& candidate_dir) {
  if (tripped.empty()) {
    return InvalidArgumentError("refit called with no tripped pairs");
  }
  // Recovering load: the serving dir is exactly the bundle promotions
  // overwrite, so a crashed save must resolve before refitting on it.
  StatusOr<KwModel> loaded = ModelIo::LoadKwRecovering(serving_dir);
  if (!loaded.ok()) return loaded.status();
  KwModel& model = *loaded;

  RefitResult result;
  result.candidate_dir = candidate_dir;
  for (const DriftKey& key : tripped) {
    std::vector<double> x, y;
    if (reservoir.Collect(key.gpu, key.cluster_id, &x, &y) <
        static_cast<std::size_t>(options.min_samples)) {
      continue;
    }
    const regression::LinearFit fit = regression::FitLinearClampedIntercept(
        x, y, options.max_intercept_us);
    if (fit.n == 0 || !std::isfinite(fit.slope) ||
        !std::isfinite(fit.intercept)) {
      continue;
    }
    if (model.UpdateClusterFit(key.gpu, key.cluster_id, fit) > 0) {
      result.refit.push_back(key);
    }
  }
  if (result.refit.empty()) {
    return UnavailableError(
        "no tripped (GPU, cluster) pair has enough refit samples yet");
  }

  std::error_code ec;
  std::filesystem::create_directories(candidate_dir, ec);
  if (ec) {
    return UnavailableError("cannot create candidate directory " +
                            candidate_dir + ": " + ec.message());
  }
  GP_RETURN_IF_ERROR(ModelIo::SaveKw(model, candidate_dir));
  LogInfo("refit candidate saved",
          {{"dir", candidate_dir},
           {"clusters", Format("%zu", result.refit.size())}});
  return result;
}

const char* LifecycleStateName(LifecycleState state) {
  switch (state) {
    case LifecycleState::kHealthy: return "healthy";
    case LifecycleState::kDrifting: return "drifting";
    case LifecycleState::kShadow: return "shadow";
    case LifecycleState::kCanary: return "canary";
    case LifecycleState::kPromoted: return "promoted";
    case LifecycleState::kRolledBack: return "rolled-back";
  }
  return "unknown";
}

LifecycleController::LifecycleController(BundleRegistry* registry,
                                         std::string serving_dir,
                                         CanaryOptions canary,
                                         LifecycleOptions options)
    : registry_(registry),
      serving_dir_(std::move(serving_dir)),
      canary_(std::move(canary)),
      options_(std::move(options)),
      monitor_(options_.monitor),
      reservoir_(options_.refit.reservoir_capacity) {
  GP_CHECK(registry_ != nullptr);
  GP_CHECK(!options_.work_dir.empty());
  GP_CHECK_GT(options_.shadow_window, 0);
  GP_CHECK_GT(options_.watch_window, 0);
}

void LifecycleController::Observe(const dnn::Network& network,
                                  const std::string& gpu, std::int64_t batch,
                                  double predicted_us, double observed_us) {
  if (!std::isfinite(predicted_us) || predicted_us <= 0 ||
      !std::isfinite(observed_us) || observed_us <= 0) {
    return;
  }
  std::shared_ptr<const KwModel> snapshot = registry_->Snapshot();
  if (snapshot == nullptr) return;
  if (!snapshot->CoverageFor(network, gpu).gpu_trained) return;

  const double ratio = observed_us / predicted_us;
  const double log_ratio = std::log(ratio);

  std::vector<KwModel::KernelTerm> terms;
  for (const dnn::Layer& layer : network.layers()) {
    snapshot->AppendKernelTerms(layer, gpu, batch, &terms);
  }
  // One residual per distinct cluster per job: a layer list that uses a
  // cluster many times must not out-vote single-use clusters.
  std::set<int> clusters;
  for (const KwModel::KernelTerm& term : terms) {
    clusters.insert(term.cluster_id);
    reservoir_.Add(gpu, term.cluster_id, term.x, term.us * ratio);
  }
  for (int cluster_id : clusters) {
    monitor_.Observe(gpu, cluster_id, log_ratio);
  }

  shadow_.push_back({&network, gpu, batch, observed_us});
  while (shadow_.size() > static_cast<std::size_t>(options_.shadow_window)) {
    shadow_.pop_front();
  }

  if (state_ == LifecycleState::kCanary && AffectsGpu(gpu)) {
    watch_abs_sum_ += std::abs(log_ratio);
    ++watch_count_;
  }
}

bool LifecycleController::AffectsGpu(const std::string& gpu) const {
  for (const DriftKey& key : refit_keys_) {
    if (key.gpu == gpu) return true;
  }
  return false;
}

double LifecycleController::ShadowScore(const KwModel& model,
                                        std::size_t* scored) const {
  double sum = 0;
  std::size_t count = 0;
  for (const ShadowSample& sample : shadow_) {
    if (!AffectsGpu(sample.gpu)) continue;
    gpuexec::GpuSpec spec;
    spec.name = sample.gpu;
    const double predicted =
        model.PredictUs(*sample.network, spec, sample.batch);
    const double r = std::log(sample.observed_us / predicted);
    if (!std::isfinite(r)) continue;
    sum += std::abs(r);
    ++count;
  }
  if (scored != nullptr) *scored = count;
  return count == 0 ? std::numeric_limits<double>::infinity() : sum / count;
}

void LifecycleController::Transition(LifecycleState to) {
  LogInfo("lifecycle transition",
          {{"from", LifecycleStateName(state_)}, {"to", LifecycleStateName(to)}});
  ++counters_.transitions;
  LifecycleMetrics::Get().transitions.Increment();
  state_ = to;
}

LifecycleState LifecycleController::Step() {
  LifecycleMetrics& metrics = LifecycleMetrics::Get();
  switch (state_) {
    case LifecycleState::kHealthy: {
      if (!monitor_.Tripped().empty()) Transition(LifecycleState::kDrifting);
      break;
    }
    case LifecycleState::kDrifting: {
      const std::vector<DriftKey> tripped = monitor_.Tripped();
      if (tripped.empty()) {
        Transition(LifecycleState::kHealthy);
        break;
      }
      const std::string candidate =
          options_.work_dir + "/candidate-" + std::to_string(candidate_seq_);
      StatusOr<RefitResult> result = RefitTrippedClusters(
          serving_dir_, tripped, reservoir_, options_.refit, candidate);
      if (!result.ok()) break;  // not enough samples yet; keep collecting
      ++candidate_seq_;
      candidate_dir_ = result->candidate_dir;
      refit_keys_ = result->refit;
      ++counters_.refits;
      metrics.refits.Increment();
      Transition(LifecycleState::kShadow);
      break;
    }
    case LifecycleState::kShadow: {
      StatusOr<KwModel> candidate = ModelIo::LoadKw(candidate_dir_);
      if (!candidate.ok()) {
        ++counters_.shadow_rejections;
        metrics.shadow_rejections.Increment();
        LogWarn("shadow rejected: candidate unreadable",
                {{"dir", candidate_dir_},
                 {"error", candidate.status().message()}});
        Transition(LifecycleState::kDrifting);
        break;
      }
      std::size_t scored = 0;
      const double candidate_score = ShadowScore(*candidate, &scored);
      if (scored <
          static_cast<std::size_t>(options_.min_shadow_observations)) {
        break;  // keep shadowing until enough affected-GPU jobs exist
      }
      const std::shared_ptr<const KwModel> champion = registry_->Snapshot();
      const double champion_score =
          champion == nullptr ? std::numeric_limits<double>::infinity()
                              : ShadowScore(*champion, nullptr);
      if (candidate_score > champion_score * options_.shadow_margin) {
        ++counters_.shadow_rejections;
        metrics.shadow_rejections.Increment();
        LogWarn("shadow rejected: candidate scores worse than champion",
                {{"candidate", Format("%.4f", candidate_score)},
                 {"champion", Format("%.4f", champion_score)}});
        Transition(LifecycleState::kDrifting);
        break;
      }
      const Status promoted = registry_->TryPromote(candidate_dir_, canary_);
      if (!promoted.ok()) {
        ++counters_.canary_rejections;
        metrics.canary_rejections.Increment();
        LogWarn("canary rejected",
                {{"dir", candidate_dir_}, {"error", promoted.message()}});
        Transition(LifecycleState::kDrifting);
        break;
      }
      previous_serving_dir_ = serving_dir_;
      serving_dir_ = candidate_dir_;
      ++counters_.promotions;
      metrics.promotions.Increment();
      // Judge the new generation on fresh residuals only.
      for (const DriftKey& key : refit_keys_) {
        monitor_.Reset(key.gpu, key.cluster_id);
        reservoir_.Reset(key.gpu, key.cluster_id);
      }
      watch_abs_sum_ = 0;
      watch_count_ = 0;
      LogInfo("candidate promoted",
              {{"dir", candidate_dir_},
               {"shadow_score", Format("%.4f", candidate_score)}});
      Transition(LifecycleState::kCanary);
      break;
    }
    case LifecycleState::kCanary: {
      if (watch_count_ < static_cast<std::size_t>(options_.watch_window)) {
        break;  // keep watching
      }
      const double mean = watch_abs_sum_ / static_cast<double>(watch_count_);
      if (mean <= options_.rollback_threshold) {
        LogInfo("promotion confirmed",
                {{"dir", serving_dir_},
                 {"watch_mean_abs_log_ratio", Format("%.4f", mean)}});
        Transition(LifecycleState::kPromoted);
        break;
      }
      const Status rolled = registry_->Rollback();
      if (rolled.ok()) {
        serving_dir_ = previous_serving_dir_;
        ++counters_.rollbacks;
        metrics.rollbacks.Increment();
      }
      LogWarn("promotion rolled back: post-promotion residuals regressed",
              {{"watch_mean_abs_log_ratio", Format("%.4f", mean)},
               {"threshold", Format("%.4f", options_.rollback_threshold)},
               {"rollback", rolled.ok() ? "ok" : rolled.message()}});
      Transition(LifecycleState::kRolledBack);
      break;
    }
    case LifecycleState::kPromoted:
    case LifecycleState::kRolledBack: {
      // Both verdicts return to monitoring; a rolled-back generation's
      // drift persists, so its pairs will re-trip on fresh residuals.
      Transition(LifecycleState::kHealthy);
      break;
    }
  }
  return state_;
}

}  // namespace gpuperf::models
