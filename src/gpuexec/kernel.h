#ifndef GPUPERF_GPUEXEC_KERNEL_H_
#define GPUPERF_GPUEXEC_KERNEL_H_

/**
 * @file
 * The kernel IR that the lowering layer produces and the oracle consumes.
 *
 * A KernelLaunch is one GPU kernel invocation with its true resource
 * requirements (FLOPs, bytes, blocks) plus the *layer-level* quantities the
 * paper's models are allowed to use as regression features: input NCHW
 * product, layer theoretical FLOPs, and output NCHW product (O5).
 */

#include <cstdint>
#include <string>

#include "dnn/layer.h"

namespace gpuperf::gpuexec {

/** Broad implementation families; determine the oracle's efficiency bands. */
enum class KernelFamily {
  kGemm,              // dense matmul (FC, 1x1 conv, im2col conv, attention)
  kImplicitGemm,      // fused conv-as-gemm
  kWinogradTransform, // winograd input/output tile transforms
  kWinogradGemm,      // winograd pointwise batched gemm
  kFftTransform,      // FFT forward/inverse transforms
  kFftGemm,           // FFT pointwise complex multiply
  kDirectConv,        // direct convolution
  kDepthwiseConv,     // depthwise convolution
  kIm2col,            // explicit im2col expansion
  kElementwise,       // activations, residual adds, bias
  kBatchNorm,
  kLayerNorm,
  kPooling,
  kReduce,            // global pooling / reductions
  kSoftmax,
  kCopy,              // concat, channel shuffle, transpose
  kGather,            // embedding lookups
};

/** Human-readable family name. */
std::string KernelFamilyName(KernelFamily family);

/**
 * Which layer-level quantity truly scales this kernel's cost. The lowering
 * layer records the ground truth; the KW model must *rediscover* it via R²
 * competition (O5), and a test asserts the rediscovery rate.
 */
enum class CostDriver { kInput, kOperation, kOutput };

/** Human-readable driver name ("input" / "operation" / "output"). */
std::string CostDriverName(CostDriver driver);

/**
 * The driver's feature value for a single sample (batch 1) of `layer`:
 * input NCHW, theoretical layer FLOPs, or output NCHW. Every driver is
 * linear in batch with this as the per-sample factor — `batch * value`
 * reproduces the batch-N feature exactly (in int64) — which is what
 * lets a compiled prediction plan inline the feature at compile time
 * and serve every batch size from one plan.
 */
std::int64_t PerSampleDriverValue(const dnn::Layer& layer, CostDriver driver);

/** One GPU kernel invocation. */
struct KernelLaunch {
  std::string name;        // kernel identity, e.g. "implicit_gemm_128x64"
  KernelFamily family = KernelFamily::kElementwise;
  CostDriver driver = CostDriver::kOutput;  // ground truth

  // True per-launch resource requirements (oracle inputs).
  std::int64_t flops = 0;      // executed FLOPs (FMA = 2)
  std::int64_t bytes_in = 0;   // bytes read from device memory
  std::int64_t bytes_out = 0;  // bytes written to device memory
  std::int64_t blocks = 0;     // thread blocks (occupancy)

  // Layer-level regression features (model inputs).
  dnn::LayerKind layer_kind = dnn::LayerKind::kRelu;
  std::int64_t batch = 1;          // batch size of this launch
  std::int64_t layer_flops = 0;    // theoretical layer FLOPs at this batch
  std::int64_t input_elems = 0;    // N*C*H*W of the layer input
  std::int64_t output_elems = 0;   // N*C*H*W of the layer output

  /** Total device-memory traffic. */
  std::int64_t TotalBytes() const { return bytes_in + bytes_out; }

  /** The feature value selected by `driver`. */
  std::int64_t DriverValue(CostDriver which) const;
};

}  // namespace gpuperf::gpuexec

#endif  // GPUPERF_GPUEXEC_KERNEL_H_
