#ifndef GPUPERF_GPUEXEC_GPU_SPEC_H_
#define GPUPERF_GPUEXEC_GPU_SPEC_H_

/**
 * @file
 * GPU hardware specifications — the paper's Table 1, plus the extra
 * microarchitectural fields the synthetic hardware oracle needs (SM count,
 * CPU launch interval). The paper's models only ever consume the Table 1
 * columns (theoretical bandwidth and TFLOPS); the extra fields exist to
 * make the *ground truth* richer than the models.
 */

#include <string>
#include <vector>

namespace gpuperf::gpuexec {

/** Specification of one GPU. */
struct GpuSpec {
  std::string name;
  double bandwidth_gbps = 0;   // theoretical memory bandwidth, GB/s
  double memory_gb = 0;        // device memory capacity
  double fp32_tflops = 0;      // theoretical FP32 throughput
  int tensor_cores = 0;        // tensor core count (0 = none)
  int sm_count = 0;            // streaming multiprocessors
  double launch_interval_us = 12.0;  // CPU-side per-kernel issue gap

  /** Peak FP32 throughput in FLOP/s. */
  double PeakFlops() const { return fp32_tflops * 1e12; }

  /** Theoretical bandwidth in bytes/s. */
  double BandwidthBytesPerSec() const { return bandwidth_gbps * 1e9; }

  /** Returns a copy with a different theoretical bandwidth (case study 1). */
  GpuSpec WithBandwidth(double gbps) const;

  /**
   * A Multi-Instance GPU slice (the paper's future-work target):
   * `slices` of `total` compute/memory partitions, scaling SMs,
   * bandwidth, memory, TFLOPS, and tensor cores proportionally
   * (e.g. MigSlice(3, 7) on A100 models a 3g.20gb instance).
   */
  GpuSpec MigSlice(int slices, int total = 7) const;
};

/** All seven GPUs of the paper's Table 1. */
const std::vector<GpuSpec>& AllGpus();

/** Lookup by name ("A100", "TITAN RTX", ...); Fatal() if unknown. */
const GpuSpec& GpuByName(const std::string& name);

/** Lookup by name; nullptr if unknown (for user-supplied names). */
const GpuSpec* FindGpu(const std::string& name);

}  // namespace gpuperf::gpuexec

#endif  // GPUPERF_GPUEXEC_GPU_SPEC_H_
