#include "gpuexec/oracle.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace gpuperf::gpuexec {

const char* DriftScopeName(DriftScope scope) {
  switch (scope) {
    case DriftScope::kAll: return "all";
    case DriftScope::kMemoryBound: return "memory-bound";
    case DriftScope::kComputeBound: return "compute-bound";
  }
  GP_CHECK(false) << "unhandled DriftScope";
  return "";
}

DriftSchedule::DriftSchedule(std::size_t resources,
                             std::vector<DriftEvent> events) {
  events_.resize(resources);
  for (DriftEvent& event : events) {
    GP_CHECK_LT(event.resource, resources);
    GP_CHECK(std::isfinite(event.factor) && event.factor > 0)
        << "drift factor " << event.factor;
    GP_CHECK(std::isfinite(event.at_us) && event.at_us >= 0)
        << "drift at_us " << event.at_us;
    GP_CHECK(std::isfinite(event.ramp_us) && event.ramp_us >= 0)
        << "drift ramp_us " << event.ramp_us;
    events_[event.resource].push_back(event);
  }
  for (std::vector<DriftEvent>& per_resource : events_) {
    std::stable_sort(per_resource.begin(), per_resource.end(),
                     [](const DriftEvent& a, const DriftEvent& b) {
                       return a.at_us < b.at_us;
                     });
  }
}

DriftSchedule::DriftSchedule(std::size_t resources, double horizon_us,
                             const DriftScheduleConfig& config) {
  GP_CHECK_GE(config.rate_per_s, 0.0);
  GP_CHECK_GE(config.factor_sigma, 0.0);
  GP_CHECK_GE(config.ramp_s, 0.0);
  GP_CHECK_GE(horizon_us, 0.0);
  events_.resize(resources);
  if (config.rate_per_s <= 0) return;
  const double mean_gap_us = 1e6 / config.rate_per_s;
  for (std::size_t r = 0; r < resources; ++r) {
    // Per-resource stream keyed on (seed, index), mirroring FaultPlan.
    Rng rng(HashCombine(config.seed,
                        StableHash(Format("drift-resource-%zu", r))));
    double t = 0;
    while (true) {
      t += -std::log(1.0 - rng.NextDouble()) * mean_gap_us;
      if (t >= horizon_us) break;
      DriftEvent event;
      event.resource = r;
      event.at_us = t;
      event.ramp_us = config.ramp_s * 1e6;
      event.factor = rng.NextLogNormal(config.factor_sigma);
      const double pick = rng.NextDouble();
      event.scope = pick < 1.0 / 3 ? DriftScope::kAll
                    : pick < 2.0 / 3 ? DriftScope::kMemoryBound
                                     : DriftScope::kComputeBound;
      events_[r].push_back(event);
    }
  }
}

bool DriftSchedule::empty() const {
  for (const std::vector<DriftEvent>& per_resource : events_) {
    if (!per_resource.empty()) return false;
  }
  return true;
}

const std::vector<DriftEvent>& DriftSchedule::Events(
    std::size_t resource) const {
  GP_CHECK_LT(resource, events_.size());
  return events_[resource];
}

double DriftSchedule::FactorAt(std::size_t resource, double time_us,
                               double memory_share) const {
  GP_CHECK_LT(resource, events_.size());
  GP_CHECK(memory_share >= 0 && memory_share <= 1)
      << "memory_share " << memory_share;
  double factor = 1.0;
  for (const DriftEvent& event : events_[resource]) {
    if (time_us < event.at_us) break;  // sorted by at_us
    double progress = 1.0;
    if (event.ramp_us > 0 && time_us < event.at_us + event.ramp_us) {
      progress = (time_us - event.at_us) / event.ramp_us;
    }
    const double applied = 1.0 + (event.factor - 1.0) * progress;
    double share = 1.0;
    if (event.scope == DriftScope::kMemoryBound) share = memory_share;
    if (event.scope == DriftScope::kComputeBound) share = 1.0 - memory_share;
    factor *= 1.0 + (applied - 1.0) * share;
  }
  return factor;
}

const FamilyProfile& ProfileFor(KernelFamily family) {
  // compute_eff, memory_eff, blocks_per_sm
  static const FamilyProfile kProfiles[] = {
      /* kGemm */              {0.58, 0.75, 2},
      /* kImplicitGemm */      {0.52, 0.70, 2},
      /* kWinogradTransform */ {0.32, 0.68, 8},
      /* kWinogradGemm */      {0.48, 0.70, 2},
      /* kFftTransform */      {0.40, 0.62, 8},
      /* kFftGemm */           {0.45, 0.65, 2},
      /* kDirectConv */        {0.38, 0.62, 4},
      /* kDepthwiseConv */     {0.28, 0.68, 8},
      /* kIm2col */            {0.30, 0.66, 16},
      /* kElementwise */       {0.20, 0.85, 16},
      /* kBatchNorm */         {0.22, 0.78, 16},
      /* kLayerNorm */         {0.22, 0.72, 16},
      /* kPooling */           {0.25, 0.70, 16},
      /* kReduce */            {0.25, 0.66, 16},
      /* kSoftmax */           {0.22, 0.62, 16},
      /* kCopy */              {0.30, 0.80, 16},
      /* kGather */            {0.25, 0.60, 16},
  };
  return kProfiles[static_cast<int>(family)];
}

HardwareOracle::HardwareOracle(const OracleConfig& config) : config_(config) {}

double HardwareOracle::OccupancySlowdown(std::int64_t blocks, int sm_count,
                                         int blocks_per_sm) const {
  GP_CHECK_GT(blocks, 0);
  const double capacity =
      static_cast<double>(sm_count) * static_cast<double>(blocks_per_sm);
  const double b = static_cast<double>(blocks);
  if (b >= capacity) {
    // Wave quantization: the tail wave runs at partial occupancy. The
    // excess is damped because tail waves overlap with unbalanced SM
    // finish times (and, on real drivers, with the next kernel's ramp).
    const double waves = std::ceil(b / capacity);
    return 1.0 + 0.35 * (waves * capacity / b - 1.0);
  }
  // Partial latency hiding below full occupancy. Fat blocks (few resident
  // per SM, i.e. GEMM-style) carry enough instruction-level parallelism
  // to tolerate a shallow grid; thin-block kernels degrade faster.
  const double exponent = blocks_per_sm <= 2 ? 0.18 : 0.35;
  return std::pow(capacity / b, exponent);
}

double HardwareOracle::ExpectedKernelTimeUs(const KernelLaunch& launch,
                                            const GpuSpec& gpu) const {
  const FamilyProfile& profile = ProfileFor(launch.family);
  const std::string family_name = KernelFamilyName(launch.family);

  double compute_eff =
      profile.compute_eff *
      KeyedLogNormal(config_.seed, gpu.name + "/" + family_name + "/c",
                     config_.compute_arch_sigma);
  const bool gemm_like = launch.family == KernelFamily::kGemm ||
                         launch.family == KernelFamily::kImplicitGemm ||
                         launch.family == KernelFamily::kWinogradGemm ||
                         launch.family == KernelFamily::kFftGemm;
  if (gemm_like && gpu.tensor_cores > 0) {
    compute_eff *= config_.tensor_core_boost;
  }
  if (gemm_like || launch.family == KernelFamily::kDirectConv) {
    // Compute efficiency of matrix pipelines grows with arithmetic
    // intensity: shallow reductions (small K) re-load operands and stall
    // the MACs. This is what separates wide-channel CONVs (VGG/ResNet)
    // from narrow ones (DenseNet growth layers, MobileNet pointwise).
    const double intensity =
        static_cast<double>(launch.flops) /
        static_cast<double>(std::max<std::int64_t>(1, launch.TotalBytes()));
    compute_eff *= std::clamp(0.55 + 0.22 * std::log2(intensity / 24.0),
                              0.45, 1.20);
  }
  compute_eff = std::min(compute_eff, 0.92);

  double memory_eff =
      profile.memory_eff *
      KeyedLogNormal(config_.seed, gpu.name + "/" + family_name + "/m",
                     config_.memory_arch_sigma);
  memory_eff = std::min(memory_eff, 0.95);

  // Sustainable FLOPS: the lesser of the theoretical peak and the
  // memory-system-coupled ceiling (see OracleConfig).
  const double sustained_peak =
      std::min(gpu.PeakFlops(),
               (config_.compute_balance_base_tflops +
                config_.compute_balance_tflops_per_gbps *
                    gpu.bandwidth_gbps) *
                   1e12);
  const double compute_us = launch.flops == 0
                                ? 0.0
                                : static_cast<double>(launch.flops) /
                                      (sustained_peak * compute_eff) * 1e6;
  const double memory_us = static_cast<double>(launch.TotalBytes()) /
                           (gpu.BandwidthBytesPerSec() * memory_eff) * 1e6;
  double base_us = std::max(compute_us, memory_us);

  base_us *= OccupancySlowdown(launch.blocks, gpu.sm_count,
                               profile.blocks_per_sm);
  // Static implementation quirk of this kernel build on this GPU.
  base_us /= KeyedLogNormal(config_.seed, gpu.name + "/" + launch.name + "/q",
                            config_.kernel_quirk_sigma);
  // Per-layer-configuration quirk: cache behaviour, tile fragmentation,
  // and layout effects depend on the (per-image) problem shape in ways no
  // layer-level feature captures. Keyed on per-image quantities so the
  // same layer at different batch sizes shares the factor (O3 holds).
  const long per_image_in = static_cast<long>(launch.input_elems /
                                              std::max<std::int64_t>(
                                                  1, launch.batch));
  const long per_image_out = static_cast<long>(launch.output_elems /
                                               std::max<std::int64_t>(
                                                   1, launch.batch));
  const long per_image_flops = static_cast<long>(launch.layer_flops /
                                                 std::max<std::int64_t>(
                                                     1, launch.batch));
  char layer_key[160];
  std::snprintf(layer_key, sizeof(layer_key), "%s/%s/L%ld-%ld-%ld",
                gpu.name.c_str(), launch.name.c_str(), per_image_in,
                per_image_out, per_image_flops);
  // Shape sensitivity differs by kernel sophistication: plain dense GEMM
  // (cuBLAS-style) is the best-characterized kernel on a GPU, and simple
  // streaming kernels (activations, norms, copies) are nearly
  // shape-insensitive; the convolution algorithm zoo is the wild part.
  // This is why the paper's KW model is *more* accurate on transformers
  // (4.76%) than on CNNs (7%).
  double shape_factor = 1.0;
  if (launch.family == KernelFamily::kGemm) {
    shape_factor = 0.25;
  } else if (launch.family == KernelFamily::kElementwise ||
             launch.family == KernelFamily::kBatchNorm ||
             launch.family == KernelFamily::kLayerNorm ||
             launch.family == KernelFamily::kSoftmax ||
             launch.family == KernelFamily::kPooling ||
             launch.family == KernelFamily::kReduce ||
             launch.family == KernelFamily::kCopy ||
             launch.family == KernelFamily::kGather) {
    shape_factor = 0.45;
  }
  base_us /= KeyedLogNormal(config_.seed, layer_key,
                            shape_factor * config_.layer_quirk_sigma);
  return config_.kernel_overhead_us + base_us;
}

double HardwareOracle::MeasureKernelTimeUs(const KernelLaunch& launch,
                                           const GpuSpec& gpu,
                                           Rng* rng) const {
  GP_CHECK(rng != nullptr);
  return NoisyFromExpected(ExpectedKernelTimeUs(launch, gpu), rng);
}

double HardwareOracle::NoisyFromExpected(double expected_us, Rng* rng) const {
  GP_CHECK(rng != nullptr);
  return expected_us * rng->NextLogNormal(config_.measurement_sigma);
}

}  // namespace gpuperf::gpuexec
