#include "gpuexec/lowering_cache.h"

#include <utility>

#include "common/string_util.h"
#include "dnn/flops.h"
#include "gpuexec/lowering.h"
#include "obs/metrics_registry.h"

namespace gpuperf::gpuexec {
namespace {

/** Process-wide hit/miss counters, aggregated across every cache. */
struct LoweringCacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;

  static LoweringCacheMetrics& Get() {
    static LoweringCacheMetrics* const kMetrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return new LoweringCacheMetrics{
          registry.counter("gpuperf_lowering_cache_hits"),
          registry.counter("gpuperf_lowering_cache_misses")};
    }();
    return *kMetrics;
  }
};

std::string CacheKey(const dnn::Layer& layer, std::int64_t batch,
                     Workload workload) {
  return dnn::LayerSignature(layer) +
         Format("|w%ld|b%ld|%d", static_cast<long>(dnn::LayerWeightCount(layer)),
                static_cast<long>(batch), static_cast<int>(workload));
}

std::vector<KernelLaunch> LowerUncached(const dnn::Layer& layer,
                                        std::int64_t batch,
                                        Workload workload) {
  std::vector<KernelLaunch> launches = LowerLayer(layer, batch);
  if (workload == Workload::kTraining) {
    std::vector<KernelLaunch> backward = LowerLayerBackward(layer, batch);
    launches.insert(launches.end(),
                    std::make_move_iterator(backward.begin()),
                    std::make_move_iterator(backward.end()));
  }
  return launches;
}

}  // namespace

std::shared_ptr<const LoweringCache::LaunchList> LoweringCache::Lower(
    const dnn::Layer& layer, std::int64_t batch, Workload workload) {
  const std::string key = CacheKey(layer, batch, workload);
  {
    SharedReaderLock lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      LoweringCacheMetrics::Get().hits.Increment();
      return it->second;
    }
  }
  LoweringCacheMetrics::Get().misses.Increment();
  auto lowered = std::make_shared<const LaunchList>(
      LowerUncached(layer, batch, workload));
  SharedMutexLock lock(mu_);
  // Another thread may have inserted meanwhile; keep the first entry so
  // every caller shares one list.
  auto [it, inserted] = cache_.emplace(key, std::move(lowered));
  return it->second;
}

std::size_t LoweringCache::size() const {
  SharedReaderLock lock(mu_);
  return cache_.size();
}

void LoweringCache::Clear() {
  SharedMutexLock lock(mu_);
  cache_.clear();
}

LoweringCache& LoweringCache::Global() {
  static LoweringCache* const kCache = new LoweringCache();
  return *kCache;
}

std::vector<std::shared_ptr<const LoweringCache::LaunchList>>
CachedLowerNetworkWorkload(const dnn::Network& network, std::int64_t batch,
                           Workload workload, LoweringCache* cache) {
  LoweringCache& target = cache != nullptr ? *cache : LoweringCache::Global();
  std::vector<std::shared_ptr<const LoweringCache::LaunchList>> lowered;
  lowered.reserve(network.layers().size());
  for (const dnn::Layer& layer : network.layers()) {
    lowered.push_back(target.Lower(layer, batch, workload));
  }
  return lowered;
}

}  // namespace gpuperf::gpuexec
