#ifndef GPUPERF_GPUEXEC_LOWERING_CACHE_H_
#define GPUPERF_GPUEXEC_LOWERING_CACHE_H_

/**
 * @file
 * Memoized layer lowering.
 *
 * Lowering a layer is deterministic but not free (algorithm selection,
 * kernel-name formatting, feature attachment), and a measurement campaign
 * lowers the same layer configurations thousands of times — zoo families
 * repeat blocks within a network and share blocks across member networks.
 * The cache keys on (layer signature, weight count, batch, workload): the
 * signature is the same key the KW mapping table uses as the canonical
 * layer-configuration identity, and the weight count additionally
 * separates configurations whose parameter block is not fully encoded in
 * the signature (e.g. bias flags, embedding vocabulary) so the optimizer
 * kernels of a training-step lowering never alias.
 *
 * Lookups take a shared lock and insertions an exclusive one, so a
 * ThreadPool campaign can profile concurrently against one shared cache.
 * Entries are immutable once inserted (values are shared_ptr-to-const);
 * invalidation is only ever whole-cache Clear(), needed solely when the
 * lowering rules themselves change (there is no other input to
 * invalidate on — GPU specs and oracle noise do not affect lowering).
 */

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/synchronization.h"
#include "dnn/layer.h"
#include "dnn/network.h"
#include "gpuexec/kernel.h"
#include "gpuexec/training.h"

namespace gpuperf::gpuexec {

/** Thread-safe memo of per-layer kernel launch lists. */
class LoweringCache {
 public:
  using LaunchList = std::vector<KernelLaunch>;

  /**
   * The launch list of `layer` at `batch` under `workload` (forward
   * kernels, plus backward/optimizer kernels for kTraining), computed on
   * first use and shared afterwards.
   */
  std::shared_ptr<const LaunchList> Lower(const dnn::Layer& layer,
                                          std::int64_t batch,
                                          Workload workload);

  /** Number of distinct (layer, batch, workload) entries. */
  std::size_t size() const;

  /** Drops every entry (only needed if lowering rules change). */
  void Clear();

  /** The process-wide cache the Profiler uses by default. */
  static LoweringCache& Global();

 private:
  mutable SharedMutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const LaunchList>> cache_
      GP_GUARDED_BY(mu_);
};

/**
 * LowerNetworkWorkload through `cache` (Global() if null); entry i holds
 * layer i's launch list, aliasing cache entries instead of copying them.
 */
std::vector<std::shared_ptr<const LoweringCache::LaunchList>>
CachedLowerNetworkWorkload(const dnn::Network& network, std::int64_t batch,
                           Workload workload, LoweringCache* cache = nullptr);

}  // namespace gpuperf::gpuexec

#endif  // GPUPERF_GPUEXEC_LOWERING_CACHE_H_
