#include "gpuexec/roofline.h"

#include <algorithm>

#include "common/logging.h"
#include "gpuexec/lowering.h"

namespace gpuperf::gpuexec {

RooflineReport AnalyzeRoofline(const dnn::Network& network,
                               const GpuSpec& gpu, std::int64_t batch) {
  GP_CHECK_GT(batch, 0);
  RooflineReport report;
  report.ridge_intensity = gpu.PeakFlops() / gpu.BandwidthBytesPerSec();

  const auto lowered = LowerNetwork(network, batch);
  double total_time = 0;
  std::vector<double> layer_times;
  for (std::size_t i = 0; i < lowered.size(); ++i) {
    if (lowered[i].empty()) continue;  // view layers launch nothing
    LayerRoofline layer;
    layer.layer_index = static_cast<int>(i);
    layer.kind = network.layers()[i].kind;
    for (const KernelLaunch& launch : lowered[i]) {
      layer.flops += static_cast<double>(launch.flops);
      layer.bytes += static_cast<double>(launch.TotalBytes());
    }
    GP_CHECK_GT(layer.bytes, 0.0);
    layer.operational_intensity = layer.flops / layer.bytes;
    layer.memory_bound =
        layer.operational_intensity < report.ridge_intensity;
    layer.attainable_gflops =
        std::min(gpu.PeakFlops(),
                 layer.operational_intensity * gpu.BandwidthBytesPerSec()) /
        1e9;
    // Roofline time estimate: work at the attainable rate (for zero-FLOP
    // copy layers, fall back to pure bandwidth time).
    const double layer_time =
        layer.flops > 0
            ? layer.flops / (layer.attainable_gflops * 1e9)
            : layer.bytes / gpu.BandwidthBytesPerSec();
    layer_times.push_back(layer_time);
    total_time += layer_time;
    if (layer.memory_bound) {
      ++report.memory_bound_layers;
      report.memory_bound_time_share += layer_time;
    } else {
      ++report.compute_bound_layers;
    }
    report.layers.push_back(layer);
  }
  if (total_time > 0) report.memory_bound_time_share /= total_time;
  return report;
}

}  // namespace gpuperf::gpuexec
