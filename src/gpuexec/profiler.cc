#include "gpuexec/profiler.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"
#include "dnn/flops.h"
#include "gpuexec/lowering.h"
#include "gpuexec/lowering_cache.h"

namespace gpuperf::gpuexec {
namespace {

/** Fixed per-batch CPU-side framework overhead (dispatcher, Python). */
constexpr double kBatchOverheadUs = 150.0;

/** Stream of per-run measurement noise for a (network, gpu, batch) tuple. */
Rng MakeRunRng(std::uint64_t seed, const std::string& network,
               const std::string& gpu, std::int64_t batch) {
  std::uint64_t key = HashCombine(seed, StableHash(network));
  key = HashCombine(key, StableHash(gpu));
  key = HashCombine(key, static_cast<std::uint64_t>(batch));
  return Rng(key);
}

/**
 * Per-(network, GPU) wall-clock factor on end-to-end time: framework
 * graph handling, allocator behaviour, and stream synchronization cost a
 * few percent that depends on the network's structure but not on the
 * batch size. Kernel durations are unaffected, so no kernel-sum model can
 * learn it — this is the systematic part of the paper's residual error.
 */
double WallFactor(const HardwareOracle& oracle, const std::string& network,
                  const std::string& gpu) {
  return KeyedLogNormal(oracle.config().seed,
                        "wall/" + network + "/" + gpu,
                        oracle.config().wall_overhead_sigma);
}

}  // namespace

std::vector<double> NetworkProfile::LayerTimesUs(
    std::size_t layer_count) const {
  std::vector<double> times(layer_count, 0.0);
  for (const KernelRecord& record : kernels) {
    GP_CHECK_LT(static_cast<std::size_t>(record.layer_index), layer_count);
    times[record.layer_index] += record.time_us;
  }
  return times;
}

Profiler::Profiler(const HardwareOracle& oracle, int measured_batches)
    : oracle_(oracle), measured_batches_(measured_batches) {
  GP_CHECK_GT(measured_batches, 0);
}

NetworkProfile Profiler::Profile(const dnn::Network& network,
                                 const GpuSpec& gpu, std::int64_t batch,
                                 Workload workload) const {
  NetworkProfile profile;
  profile.network_name = network.name();
  profile.network_family = network.family();
  profile.gpu_name = gpu.name;
  profile.batch = batch;
  profile.total_flops = dnn::NetworkFlops(network, batch);

  // Lowering is memoized process-wide: zoo networks repeat layer
  // configurations heavily, and a parallel campaign profiles from many
  // threads against the same shared cache.
  const std::vector<std::shared_ptr<const LoweringCache::LaunchList>>
      lowered = CachedLowerNetworkWorkload(network, batch, workload);

  // Pay the deterministic oracle cost once per kernel; replay with noise.
  // Records stay grouped per layer (the mapping table relies on it); the
  // timeline replays them in true execution order (forward, then, for
  // training steps, backward in reverse layer order).
  std::vector<double> expected;
  std::vector<std::size_t> flat_base(lowered.size());
  for (std::size_t layer = 0; layer < lowered.size(); ++layer) {
    flat_base[layer] = profile.kernels.size();
    for (const KernelLaunch& launch : *lowered[layer]) {
      expected.push_back(oracle_.ExpectedKernelTimeUs(launch, gpu));
      KernelRecord record;
      record.kernel_name = launch.name;
      record.family = launch.family;
      record.true_driver = launch.driver;
      record.layer_index = static_cast<int>(layer);
      record.layer_kind = launch.layer_kind;
      record.time_us = 0.0;
      record.kernel_flops = launch.flops;
      record.kernel_bytes = launch.TotalBytes();
      record.layer_flops = launch.layer_flops;
      record.input_elems = launch.input_elems;
      record.output_elems = launch.output_elems;
      profile.kernels.push_back(std::move(record));
    }
  }
  std::vector<std::size_t> timeline;
  if (workload == Workload::kTraining) {
    // Forward counts come from the cached inference lowering, so the
    // order is derived without re-lowering any layer.
    std::vector<std::pair<int, int>> counts(lowered.size());
    for (std::size_t i = 0; i < lowered.size(); ++i) {
      counts[i].first = static_cast<int>(
          LoweringCache::Global()
              .Lower(network.layers()[i], batch, Workload::kInference)
              ->size());
      counts[i].second = static_cast<int>(lowered[i]->size());
    }
    for (const auto& [layer, k] : TrainingExecutionOrderFromCounts(counts)) {
      timeline.push_back(flat_base[layer] + k);
    }
  } else {
    timeline.resize(expected.size());
    for (std::size_t i = 0; i < timeline.size(); ++i) timeline[i] = i;
  }

  Rng rng = MakeRunRng(oracle_.config().seed, network.name(), gpu.name, batch);
  double e2e_sum = 0.0;
  for (int rep = 0; rep < measured_batches_; ++rep) {
    double cpu_time = kBatchOverheadUs;
    double gpu_free = 0.0;
    for (std::size_t index : timeline) {
      const double duration =
          oracle_.NoisyFromExpected(expected[index], &rng);
      cpu_time += gpu.launch_interval_us;
      const double start = std::max(cpu_time, gpu_free);
      gpu_free = start + duration;
      profile.kernels[index].time_us += duration;
      if (rep == 0) {
        profile.kernels[index].start_us = start;
        profile.kernels[index].end_us = gpu_free;
      }
    }
    e2e_sum += std::max(gpu_free, cpu_time);
  }

  const double inv_reps = 1.0 / static_cast<double>(measured_batches_);
  for (KernelRecord& record : profile.kernels) record.time_us *= inv_reps;
  profile.e2e_time_us = e2e_sum * inv_reps *
                        WallFactor(oracle_, network.name(), gpu.name);
  for (const KernelRecord& record : profile.kernels) {
    profile.gpu_busy_us += record.time_us;
  }
  return profile;
}

double Profiler::MeasureE2eUs(const dnn::Network& network, const GpuSpec& gpu,
                              std::int64_t batch, Workload workload) const {
  // Thin wrapper: the trace cost is negligible next to the replay.
  return Profile(network, gpu, batch, workload).e2e_time_us;
}

EfficiencyReport ComputeEfficiency(const dnn::Network& network,
                                   const NetworkProfile& profile,
                                   const GpuSpec& gpu) {
  // Paper (O6): bytes and FLOPs are *estimated from layer shapes*, not
  // measured on the device, so the ratios understate true utilization but
  // are consistent across GPUs.
  std::int64_t estimated_bytes = 0;
  for (const dnn::Layer& layer : network.layers()) {
    estimated_bytes += dnn::LayerInputBytes(layer, profile.batch) +
                       dnn::LayerOutputBytes(layer, profile.batch) +
                       dnn::LayerWeightBytes(layer);
  }
  const double seconds = profile.e2e_time_us * 1e-6;
  EfficiencyReport report;
  report.bandwidth_efficiency = static_cast<double>(estimated_bytes) /
                                seconds / gpu.BandwidthBytesPerSec();
  report.compute_efficiency = static_cast<double>(profile.total_flops) /
                              seconds / gpu.PeakFlops();
  return report;
}

}  // namespace gpuperf::gpuexec
