#ifndef GPUPERF_GPUEXEC_ROOFLINE_H_
#define GPUPERF_GPUEXEC_ROOFLINE_H_

/**
 * @file
 * Roofline analysis of a network on a GPU specification.
 *
 * The paper's Discussion section argues that FLOPs work as the single
 * inter-workload feature *because* kernels cluster by arithmetic
 * intensity, and that "most of the evaluated workloads are actually
 * memory intensive" (which is why bandwidth is the right inter-GPU
 * feature). This module makes that analysis a first-class API: per-layer
 * operational intensity from the lowering's kernel-level FLOPs/bytes,
 * bound-ness against the Table 1 ridge point, and the memory-bound share
 * of the total work.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/network.h"
#include "gpuexec/gpu_spec.h"

namespace gpuperf::gpuexec {

/** Roofline position of one layer. */
struct LayerRoofline {
  int layer_index = 0;
  dnn::LayerKind kind = dnn::LayerKind::kRelu;
  double flops = 0;                 // executed FLOPs across its kernels
  double bytes = 0;                 // device traffic across its kernels
  double operational_intensity = 0;  // flops / bytes
  bool memory_bound = false;        // intensity below the ridge point
  double attainable_gflops = 0;     // min(peak, intensity * bandwidth)
};

/** Whole-network roofline summary. */
struct RooflineReport {
  std::vector<LayerRoofline> layers;
  double ridge_intensity = 0;       // peak FLOPS / bandwidth (FLOP/byte)
  int memory_bound_layers = 0;
  int compute_bound_layers = 0;
  // Fraction of the roofline-estimated time spent in memory-bound layers
  // ("most of the evaluated workloads are actually memory intensive").
  double memory_bound_time_share = 0;
};

/** Analyzes `network` at `batch` against `gpu`'s Table 1 specification. */
RooflineReport AnalyzeRoofline(const dnn::Network& network,
                               const GpuSpec& gpu, std::int64_t batch);

}  // namespace gpuperf::gpuexec

#endif  // GPUPERF_GPUEXEC_ROOFLINE_H_
