#ifndef GPUPERF_GPUEXEC_LOWERING_H_
#define GPUPERF_GPUEXEC_LOWERING_H_

/**
 * @file
 * cuDNN-style lowering of layers to kernel launch sequences.
 *
 * Reproduces the structural behaviour the paper observes in Section 2.2 and
 * O5: the library picks a convolution algorithm (implicit GEMM, Winograd,
 * FFT, direct, depthwise, or explicit im2col + GEMM) from the layer's
 * problem size, each algorithm expands into pre-process / compute /
 * post-process kernels, and tile variants make the same operation map to
 * different kernel identities at different sizes.
 */

#include <cstdint>
#include <vector>

#include "dnn/layer.h"
#include "dnn/network.h"
#include "gpuexec/kernel.h"

namespace gpuperf::gpuexec {

/** Convolution algorithms the lowering can select. */
enum class ConvAlgorithm {
  kImplicitGemm,
  kWinograd,
  kFft,
  kDirect,
  kDepthwise,
  kIm2colGemm,
};

/** The algorithm the lowering would pick for a CONV layer. */
ConvAlgorithm SelectConvAlgorithm(const dnn::ConvParams& params,
                                  const dnn::TensorShape& input,
                                  const dnn::TensorShape& output);

/**
 * True if layers of `kind` launch kernels at all. Views and inference
 * no-ops (flatten, dropout) lower to nothing, so they never appear in
 * profiled traces — coverage accounting must not hold that against a
 * trained model.
 */
bool LayerLaunchesKernels(dnn::LayerKind kind);

/** Lowers one layer at batch size `batch` to its kernel launches. */
std::vector<KernelLaunch> LowerLayer(const dnn::Layer& layer,
                                     std::int64_t batch);

/** Lowers a whole network; the i-th entry is layer i's launch list. */
std::vector<std::vector<KernelLaunch>> LowerNetwork(
    const dnn::Network& network, std::int64_t batch);

}  // namespace gpuperf::gpuexec

#endif  // GPUPERF_GPUEXEC_LOWERING_H_
