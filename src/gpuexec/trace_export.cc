#include "gpuexec/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/logging.h"
#include "common/string_util.h"

namespace gpuperf::gpuexec {
namespace {

/** Escapes a string for embedding in JSON. */
std::string JsonEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/** One complete trace event (phase "X"). */
std::string Event(const std::string& name, const std::string& category,
                  int tid, double start_us, double duration_us,
                  const std::string& args_json) {
  return Format(
      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{%s}}",
      JsonEscape(name).c_str(), category.c_str(), tid, start_us,
      duration_us, args_json.c_str());
}

}  // namespace

std::string ChromeTraceJson(const dnn::Network& network,
                            const NetworkProfile& profile) {
  std::vector<std::string> events;
  events.push_back(
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"CPU (layers)\"}}");
  events.push_back(
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,"
      "\"args\":{\"name\":\"GPU (kernels)\"}}");

  // Layer spans on the CPU track: the extent of each layer's kernels,
  // exactly how the PyTorch Profiler links framework ops to GPU work.
  std::map<int, std::pair<double, double>> layer_extents;
  for (const KernelRecord& record : profile.kernels) {
    auto [it, inserted] = layer_extents.emplace(
        record.layer_index,
        std::make_pair(record.start_us, record.end_us));
    if (!inserted) {
      it->second.first = std::min(it->second.first, record.start_us);
      it->second.second = std::max(it->second.second, record.end_us);
    }
  }
  for (const auto& [layer_index, extent] : layer_extents) {
    const dnn::Layer& layer = network.layers()[layer_index];
    events.push_back(Event(
        layer.name, "layer", /*tid=*/1, extent.first,
        extent.second - extent.first,
        Format("\"signature\":\"%s\"",
               JsonEscape(dnn::LayerSignature(layer)).c_str())));
  }

  // Kernel spans on the GPU track.
  for (const KernelRecord& record : profile.kernels) {
    events.push_back(Event(
        record.kernel_name, "kernel", /*tid=*/2, record.start_us,
        record.end_us - record.start_us,
        Format("\"layer\":\"%s\",\"flops\":%ld,\"bytes\":%ld",
               JsonEscape(network.layers()[record.layer_index].name).c_str(),
               (long)record.kernel_flops, (long)record.kernel_bytes)));
  }

  std::string json = "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    json += events[i];
    if (i + 1 < events.size()) json += ",";
    json += "\n";
  }
  json += Format("],\"displayTimeUnit\":\"ms\",\"metadata\":{"
                 "\"network\":\"%s\",\"gpu\":\"%s\",\"batch\":%ld}}\n",
                 JsonEscape(profile.network_name).c_str(),
                 JsonEscape(profile.gpu_name).c_str(), (long)profile.batch);
  return json;
}

void WriteChromeTrace(const dnn::Network& network,
                      const NetworkProfile& profile,
                      const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) Fatal("cannot open trace file: " + path);
  const std::string json = ChromeTraceJson(network, profile);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

}  // namespace gpuperf::gpuexec
