#include "gpuexec/trace_export.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"
#include "obs/chrome_trace.h"

namespace gpuperf::gpuexec {
namespace {

using obs::ChromeTraceWriter;

ChromeTraceWriter BuildWriter(const dnn::Network& network,
                              const NetworkProfile& profile) {
  ChromeTraceWriter writer;
  writer.SetThreadName(/*pid=*/1, /*tid=*/1, "CPU (layers)");
  writer.SetThreadName(/*pid=*/1, /*tid=*/2, "GPU (kernels)");

  // Layer spans on the CPU track: the extent of each layer's kernels,
  // exactly how the PyTorch Profiler links framework ops to GPU work.
  std::map<int, std::pair<double, double>> layer_extents;
  for (const KernelRecord& record : profile.kernels) {
    auto [it, inserted] = layer_extents.emplace(
        record.layer_index,
        std::make_pair(record.start_us, record.end_us));
    if (!inserted) {
      it->second.first = std::min(it->second.first, record.start_us);
      it->second.second = std::max(it->second.second, record.end_us);
    }
  }
  for (const auto& [layer_index, extent] : layer_extents) {
    const dnn::Layer& layer = network.layers()[layer_index];
    writer.AddComplete(
        layer.name, "layer", /*pid=*/1, /*tid=*/1, extent.first,
        extent.second - extent.first,
        Format("\"signature\":\"%s\"",
               ChromeTraceWriter::JsonEscape(
                   dnn::LayerSignature(layer)).c_str()));
  }

  // Kernel spans on the GPU track.
  for (const KernelRecord& record : profile.kernels) {
    writer.AddComplete(
        record.kernel_name, "kernel", /*pid=*/1, /*tid=*/2, record.start_us,
        record.end_us - record.start_us,
        Format("\"layer\":\"%s\",\"flops\":%ld,\"bytes\":%ld",
               ChromeTraceWriter::JsonEscape(
                   network.layers()[record.layer_index].name).c_str(),
               (long)record.kernel_flops, (long)record.kernel_bytes));
  }

  writer.AddMetadata(
      "network",
      Format("\"%s\"",
             ChromeTraceWriter::JsonEscape(profile.network_name).c_str()));
  writer.AddMetadata(
      "gpu", Format("\"%s\"",
                    ChromeTraceWriter::JsonEscape(profile.gpu_name).c_str()));
  writer.AddMetadata("batch", Format("%ld", (long)profile.batch));
  return writer;
}

}  // namespace

std::string ChromeTraceJson(const dnn::Network& network,
                            const NetworkProfile& profile) {
  return BuildWriter(network, profile).Json();
}

Status WriteChromeTrace(const dnn::Network& network,
                        const NetworkProfile& profile,
                        const std::string& path) {
  return BuildWriter(network, profile).WriteFile(path);
}

}  // namespace gpuperf::gpuexec
