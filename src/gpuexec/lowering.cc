#include "gpuexec/lowering.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "dnn/flops.h"

namespace gpuperf::gpuexec {

using dnn::ConvParams;
using dnn::kBytesPerElement;
using dnn::Layer;
using dnn::LayerKind;
using dnn::TensorShape;

namespace {

/** GEMM tile shapes, largest first; chosen by problem size. */
struct GemmTile {
  std::int64_t m, n;
};
constexpr GemmTile kTiles[] = {
    {256, 128}, {128, 128}, {128, 64}, {64, 64}, {64, 32}, {32, 32},
};

/** Picks the largest tile that still yields a multi-block grid. */
GemmTile PickTile(std::int64_t m, std::int64_t n) {
  for (const GemmTile& tile : kTiles) {
    if (m >= tile.m * 2 && n >= tile.n * 2) return tile;
  }
  return kTiles[std::size(kTiles) - 1];
}

std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/** Fills in the layer-feature fields shared by all kernels of a layer. */
void AttachLayerFeatures(const Layer& layer, std::int64_t batch,
                         KernelLaunch* launch) {
  launch->layer_kind = layer.kind;
  launch->batch = batch;
  launch->layer_flops = dnn::LayerFlops(layer, batch);
  launch->input_elems = batch * layer.InputElements();
  launch->output_elems = batch * layer.output.Elements();
}

/** Reduction-depth specialization bucket, part of the kernel identity. */
long KBucket(std::int64_t k) {
  long bucket = 32;
  while (bucket < k && bucket < 4096) bucket *= 2;
  return bucket;
}

/** A GEMM kernel launch for an [m x k] * [k x n] product (per `batches`). */
KernelLaunch MakeGemm(const std::string& name_prefix, KernelFamily family,
                      std::int64_t batches, std::int64_t m, std::int64_t n,
                      std::int64_t k) {
  GemmTile tile = PickTile(m, n);
  KernelLaunch launch;
  launch.name = Format("%s_%ldx%ld_k%ld", name_prefix.c_str(),
                       static_cast<long>(tile.m), static_cast<long>(tile.n),
                       KBucket(k));
  launch.family = family;
  launch.driver = CostDriver::kOperation;
  launch.flops = 2 * batches * m * n * k;
  launch.bytes_in = batches * (m * k + k * n) * kBytesPerElement;
  launch.bytes_out = batches * m * n * kBytesPerElement;
  launch.blocks = batches * CeilDiv(m, tile.m) * CeilDiv(n, tile.n);
  return launch;
}

/** An elementwise kernel over `elems` elements reading `read_factor`x. */
KernelLaunch MakeElementwise(const std::string& op, std::int64_t elems,
                             double read_factor) {
  KernelLaunch launch;
  // Vectorization width depends on alignment and problem size.
  const char* variant = "plain";
  if (elems % 4 == 0 && elems >= 1 << 14) {
    variant = "vec4";
  } else if (elems % 2 == 0 && elems >= 1 << 10) {
    variant = "vec2";
  }
  launch.name = Format("elementwise_%s_%s", op.c_str(), variant);
  launch.family = KernelFamily::kElementwise;
  launch.driver = CostDriver::kOutput;
  launch.flops = elems;
  launch.bytes_in = static_cast<std::int64_t>(
      read_factor * static_cast<double>(elems) * kBytesPerElement);
  launch.bytes_out = elems * kBytesPerElement;
  launch.blocks = CeilDiv(elems, 1024);
  return launch;
}

/** Lowers a convolution with the selected algorithm. */
void LowerConv(const Layer& layer, std::int64_t batch,
               std::vector<KernelLaunch>* out) {
  const ConvParams& p = layer.conv();
  const TensorShape& in = layer.inputs[0];
  const TensorShape& output = layer.output;
  const std::int64_t in_bytes = batch * in.Elements() * kBytesPerElement;
  const std::int64_t out_bytes = batch * output.Elements() * kBytesPerElement;
  const std::int64_t weight_bytes = dnn::LayerWeightBytes(layer);
  const std::int64_t macs = dnn::LayerFlops(layer, batch);  // thop MACs
  const std::int64_t out_pixels = batch * output.h * output.w;

  switch (SelectConvAlgorithm(p, in, output)) {
    case ConvAlgorithm::kDepthwise: {
      KernelLaunch launch;
      launch.name = Format("dw_conv_%ldx%ld_s%ld",
                           static_cast<long>(p.kernel_h),
                           static_cast<long>(p.kernel_w),
                           static_cast<long>(p.stride_h));
      launch.family = KernelFamily::kDepthwiseConv;
      launch.driver = CostDriver::kOutput;
      launch.flops = 2 * macs;
      launch.bytes_in = in_bytes + weight_bytes;
      launch.bytes_out = out_bytes;
      launch.blocks = CeilDiv(batch * output.Elements(), 512);
      out->push_back(launch);
      break;
    }
    case ConvAlgorithm::kWinograd: {
      // F(2x2, 3x3): 16 transformed values per 4 outputs -> 2.25x tiles,
      // and a 2.25x reduction in multiplications.
      const std::int64_t tiled_in = static_cast<std::int64_t>(
          2.25 * static_cast<double>(in_bytes));
      const std::int64_t tiled_out = static_cast<std::int64_t>(
          2.25 * static_cast<double>(out_bytes));
      // Transform kernels specialize on channel depth.
      const char* depth_variant = p.in_channels >= 128 ? "deep" : "shallow";
      KernelLaunch in_t;
      in_t.name = Format("winograd_3x3_in_transform_%s", depth_variant);
      in_t.family = KernelFamily::kWinogradTransform;
      in_t.driver = CostDriver::kInput;
      in_t.flops = 8 * batch * in.Elements();
      in_t.bytes_in = in_bytes;
      in_t.bytes_out = tiled_in;
      in_t.blocks = CeilDiv(batch * in.Elements(), 256);
      out->push_back(in_t);

      // Batched pointwise GEMM across the 16 tile positions.
      std::int64_t tiles = CeilDiv(out_pixels, 4);
      KernelLaunch gemm = MakeGemm("winograd_3x3_gemm",
                                   KernelFamily::kWinogradGemm,
                                   /*batches=*/16, p.out_channels,
                                   tiles, p.in_channels / p.groups);
      // True executed FLOPs benefit from the 2.25x multiply reduction.
      gemm.flops = static_cast<std::int64_t>(2.0 * macs / 2.25);
      gemm.bytes_in = tiled_in + 4 * weight_bytes;
      gemm.bytes_out = tiled_out;
      out->push_back(gemm);

      KernelLaunch out_t;
      out_t.name = Format("winograd_3x3_out_transform_%s",
                          p.out_channels >= 128 ? "deep" : "shallow");
      out_t.family = KernelFamily::kWinogradTransform;
      out_t.driver = CostDriver::kOutput;
      out_t.flops = 8 * batch * output.Elements();
      out_t.bytes_in = tiled_out;
      out_t.bytes_out = out_bytes;
      out_t.blocks = CeilDiv(batch * output.Elements(), 256);
      out->push_back(out_t);
      break;
    }
    case ConvAlgorithm::kFft: {
      const double log_hw =
          std::log2(static_cast<double>(std::max<std::int64_t>(4, in.h * in.w)));
      KernelLaunch fwd;
      fwd.name = "fft2d_r2c_forward";
      fwd.family = KernelFamily::kFftTransform;
      fwd.driver = CostDriver::kInput;
      fwd.flops = static_cast<std::int64_t>(
          5.0 * static_cast<double>(batch * in.Elements()) * log_hw);
      fwd.bytes_in = in_bytes;
      fwd.bytes_out = 2 * in_bytes;  // complex spectrum
      fwd.blocks = CeilDiv(batch * in.Elements(), 256);
      out->push_back(fwd);

      KernelLaunch cgemm = MakeGemm("fft_cgemm", KernelFamily::kFftGemm,
                                    /*batches=*/1, p.out_channels,
                                    batch * in.h * in.w, p.in_channels);
      cgemm.flops = static_cast<std::int64_t>(
          8.0 * static_cast<double>(batch * in.h * in.w) *
          static_cast<double>(p.out_channels * p.in_channels));
      cgemm.bytes_in = 2 * in_bytes + 2 * weight_bytes;
      cgemm.bytes_out = 2 * out_bytes;
      out->push_back(cgemm);

      KernelLaunch inv;
      inv.name = "fft2d_c2r_inverse";
      inv.family = KernelFamily::kFftTransform;
      inv.driver = CostDriver::kOutput;
      inv.flops = static_cast<std::int64_t>(
          5.0 * static_cast<double>(batch * output.Elements()) * log_hw);
      inv.bytes_in = 2 * out_bytes;
      inv.bytes_out = out_bytes;
      inv.blocks = CeilDiv(batch * output.Elements(), 256);
      out->push_back(inv);
      break;
    }
    case ConvAlgorithm::kDirect: {
      KernelLaunch launch;
      launch.name = Format("direct_conv_%ldx%ld",
                           static_cast<long>(p.kernel_h),
                           static_cast<long>(p.kernel_w));
      launch.family = KernelFamily::kDirectConv;
      launch.driver = CostDriver::kOperation;
      launch.flops = 2 * macs;
      launch.bytes_in = in_bytes + weight_bytes;
      launch.bytes_out = out_bytes;
      launch.blocks = CeilDiv(batch * output.Elements(), 256);
      out->push_back(launch);
      break;
    }
    case ConvAlgorithm::kIm2colGemm: {
      const std::int64_t k_dim =
          (p.in_channels / p.groups) * p.kernel_h * p.kernel_w;
      const std::int64_t expanded_bytes =
          out_pixels * k_dim * kBytesPerElement;
      KernelLaunch im2col;
      im2col.name = Format("im2col_%ldx%ld", static_cast<long>(p.kernel_h),
                           static_cast<long>(p.kernel_w));
      im2col.family = KernelFamily::kIm2col;
      im2col.driver = CostDriver::kInput;
      im2col.flops = 0;
      im2col.bytes_in = in_bytes;
      im2col.bytes_out = expanded_bytes;
      im2col.blocks = CeilDiv(out_pixels * k_dim, 1024);
      out->push_back(im2col);

      KernelLaunch gemm = MakeGemm("gemm_conv", KernelFamily::kGemm,
                                   p.groups, p.out_channels / p.groups,
                                   out_pixels, k_dim);
      gemm.flops = 2 * macs;
      gemm.bytes_in = expanded_bytes + weight_bytes;
      gemm.bytes_out = out_bytes;
      out->push_back(gemm);
      break;
    }
    case ConvAlgorithm::kImplicitGemm: {
      const std::int64_t k_dim =
          (p.in_channels / p.groups) * p.kernel_h * p.kernel_w;
      GemmTile tile = PickTile(p.out_channels / p.groups, out_pixels);
      KernelLaunch launch;
      launch.name = Format("implicit_gemm_%ldx%ld_%ldx%ld_k%ld",
                           static_cast<long>(p.kernel_h),
                           static_cast<long>(p.kernel_w),
                           static_cast<long>(tile.m),
                           static_cast<long>(tile.n), KBucket(k_dim));
      launch.family = KernelFamily::kImplicitGemm;
      launch.driver = CostDriver::kOperation;
      launch.flops = 2 * macs;
      launch.bytes_in = in_bytes + weight_bytes;
      launch.bytes_out = out_bytes;
      launch.blocks = p.groups * CeilDiv(p.out_channels / p.groups, tile.m) *
                      CeilDiv(out_pixels, tile.n);
      out->push_back(launch);
      break;
    }
  }

  if (p.epilogue != dnn::ConvEpilogue::kNone) {
    // Fused bias + activation ride on the main kernel's epilogue: the
    // last kernel of the pipeline gains a variant suffix and the
    // epilogue's (register-level) FLOPs; no extra memory pass happens.
    GP_CHECK(!out->empty());
    KernelLaunch& tail = out->back();
    switch (p.epilogue) {
      case dnn::ConvEpilogue::kBias: tail.name += "_epi_bias"; break;
      case dnn::ConvEpilogue::kRelu: tail.name += "_epi_relu"; break;
      case dnn::ConvEpilogue::kRelu6: tail.name += "_epi_relu6"; break;
      case dnn::ConvEpilogue::kNone: break;
    }
    tail.flops += 2 * batch * output.Elements();
  } else if (p.has_bias) {
    out->push_back(MakeElementwise("bias", batch * output.Elements(), 1.0));
  }
}

}  // namespace

ConvAlgorithm SelectConvAlgorithm(const ConvParams& p, const TensorShape& in,
                                  const TensorShape& output) {
  (void)in;
  if (p.IsDepthwise()) return ConvAlgorithm::kDepthwise;
  if (p.kernel_h == 1 && p.kernel_w == 1) return ConvAlgorithm::kImplicitGemm;
  if (p.kernel_h == 3 && p.kernel_w == 3 && p.stride_h == 1 &&
      p.groups == 1 && p.in_channels >= 16 && p.out_channels >= 16 &&
      output.h * output.w >= 64) {
    return ConvAlgorithm::kWinograd;
  }
  if (p.kernel_h >= 7 && output.h >= 16 && p.in_channels >= 8 &&
      p.stride_h == 1) {
    return ConvAlgorithm::kFft;
  }
  if (p.kernel_h >= 5) return ConvAlgorithm::kIm2colGemm;
  if (p.in_channels < 16 || p.out_channels < 16) return ConvAlgorithm::kDirect;
  return ConvAlgorithm::kImplicitGemm;
}

bool LayerLaunchesKernels(dnn::LayerKind kind) {
  switch (kind) {
    case LayerKind::kFlatten:
    case LayerKind::kDropout:
      return false;
    default:
      return true;
  }
}

std::vector<KernelLaunch> LowerLayer(const Layer& layer, std::int64_t batch) {
  GP_CHECK_GT(batch, 0);
  std::vector<KernelLaunch> launches;
  const std::int64_t out_elems = batch * layer.output.Elements();
  const std::int64_t in_elems = batch * layer.InputElements();

  switch (layer.kind) {
    case LayerKind::kConv2d:
      LowerConv(layer, batch, &launches);
      break;
    case LayerKind::kLinear: {
      const dnn::LinearParams& p = layer.linear();
      const std::int64_t positions = batch * layer.inputs[0].h *
                                     layer.inputs[0].w;
      launches.push_back(MakeGemm("gemm_f32", KernelFamily::kGemm, 1,
                                  p.out_features, positions, p.in_features));
      launches.back().flops = 2 * dnn::LayerFlops(layer, batch);
      if (p.has_bias) {
        launches.push_back(MakeElementwise("bias", out_elems, 1.0));
      }
      break;
    }
    case LayerKind::kMatMul: {
      const dnn::MatMulParams& p = layer.matmul();
      launches.push_back(MakeGemm("batched_gemm", KernelFamily::kGemm,
                                  batch * p.batch, p.m, p.n, p.k));
      break;
    }
    case LayerKind::kBatchNorm: {
      KernelLaunch launch;
      const bool spatial = layer.output.h * layer.output.w >= 256;
      launch.name = spatial ? "bn_fwd_inference_spatial"
                            : "bn_fwd_inference_block";
      launch.family = KernelFamily::kBatchNorm;
      launch.driver = CostDriver::kInput;
      launch.flops = 2 * in_elems;
      launch.bytes_in = in_elems * kBytesPerElement;
      launch.bytes_out = out_elems * kBytesPerElement;
      launch.blocks = CeilDiv(in_elems, 512);
      launches.push_back(launch);
      break;
    }
    case LayerKind::kLayerNorm: {
      KernelLaunch launch;
      launch.name = "layer_norm_fwd";
      launch.family = KernelFamily::kLayerNorm;
      launch.driver = CostDriver::kInput;
      launch.flops = 4 * in_elems;
      launch.bytes_in = in_elems * kBytesPerElement;
      launch.bytes_out = out_elems * kBytesPerElement;
      launch.blocks = CeilDiv(in_elems, 512);
      launches.push_back(launch);
      break;
    }
    case LayerKind::kRelu:
      launches.push_back(MakeElementwise("relu", out_elems, 1.0));
      break;
    case LayerKind::kRelu6:
      launches.push_back(MakeElementwise("relu6", out_elems, 1.0));
      break;
    case LayerKind::kSigmoid:
      launches.push_back(MakeElementwise("sigmoid", out_elems, 1.0));
      break;
    case LayerKind::kGelu:
      launches.push_back(MakeElementwise("gelu", out_elems, 1.0));
      break;
    case LayerKind::kAdd:
      launches.push_back(MakeElementwise("add", out_elems, 2.0));
      break;
    case LayerKind::kMaxPool:
    case LayerKind::kAvgPool: {
      const dnn::PoolParams& p = layer.pool();
      KernelLaunch launch;
      launch.name = Format("pooling_%s_k%ld",
                           layer.kind == LayerKind::kMaxPool ? "max" : "avg",
                           static_cast<long>(p.kernel));
      launch.family = KernelFamily::kPooling;
      launch.driver = CostDriver::kInput;
      launch.flops = out_elems * p.kernel * p.kernel;
      launch.bytes_in = in_elems * kBytesPerElement;
      launch.bytes_out = out_elems * kBytesPerElement;
      launch.blocks = CeilDiv(out_elems, 256);
      launches.push_back(launch);
      break;
    }
    case LayerKind::kGlobalAvgPool: {
      KernelLaunch launch;
      launch.name = "reduce_mean_spatial";
      launch.family = KernelFamily::kReduce;
      launch.driver = CostDriver::kInput;
      launch.flops = in_elems;
      launch.bytes_in = in_elems * kBytesPerElement;
      launch.bytes_out = out_elems * kBytesPerElement;
      launch.blocks = CeilDiv(in_elems, 1024);
      launches.push_back(launch);
      break;
    }
    case LayerKind::kSoftmax: {
      KernelLaunch launch;
      // Row length decides warp- vs block-level reduction, as in cuDNN.
      const std::int64_t row = std::max<std::int64_t>(1, layer.output.w > 1
                                                             ? layer.output.w
                                                             : layer.output.c);
      launch.name = row <= 1024 ? "softmax_fwd_warp" : "softmax_fwd_block";
      launch.family = KernelFamily::kSoftmax;
      launch.driver = CostDriver::kOutput;
      launch.flops = 3 * out_elems;
      launch.bytes_in = in_elems * kBytesPerElement;
      launch.bytes_out = out_elems * kBytesPerElement;
      launch.blocks = CeilDiv(out_elems, 512);
      launches.push_back(launch);
      break;
    }
    case LayerKind::kConcat: {
      KernelLaunch launch;
      launch.name = "concat_channel_copy";
      launch.family = KernelFamily::kCopy;
      launch.driver = CostDriver::kOutput;
      launch.flops = 0;
      launch.bytes_in = in_elems * kBytesPerElement;
      launch.bytes_out = out_elems * kBytesPerElement;
      launch.blocks = CeilDiv(out_elems, 1024);
      launches.push_back(launch);
      break;
    }
    case LayerKind::kChannelShuffle: {
      KernelLaunch launch;
      launch.name = "channel_shuffle_transpose";
      launch.family = KernelFamily::kCopy;
      launch.driver = CostDriver::kInput;
      launch.flops = 0;
      launch.bytes_in = in_elems * kBytesPerElement;
      launch.bytes_out = out_elems * kBytesPerElement;
      launch.blocks = CeilDiv(out_elems, 1024);
      launches.push_back(launch);
      break;
    }
    case LayerKind::kEmbedding: {
      KernelLaunch launch;
      launch.name = "embedding_gather";
      launch.family = KernelFamily::kGather;
      launch.driver = CostDriver::kOutput;
      launch.flops = 0;
      launch.bytes_in = out_elems * kBytesPerElement;  // table rows touched
      launch.bytes_out = out_elems * kBytesPerElement;
      launch.blocks = CeilDiv(out_elems, 1024);
      launches.push_back(launch);
      break;
    }
    case LayerKind::kFlatten:
    case LayerKind::kDropout:
      // Views / inference no-ops: no kernel is launched.
      break;
  }

  GP_CHECK(LayerLaunchesKernels(layer.kind) || launches.empty())
      << "LayerLaunchesKernels out of sync with LowerLayer";

  for (KernelLaunch& launch : launches) {
    AttachLayerFeatures(layer, batch, &launch);
  }
  return launches;
}

std::vector<std::vector<KernelLaunch>> LowerNetwork(
    const dnn::Network& network, std::int64_t batch) {
  std::vector<std::vector<KernelLaunch>> lowered;
  lowered.reserve(network.layers().size());
  for (const Layer& layer : network.layers()) {
    lowered.push_back(LowerLayer(layer, batch));
  }
  return lowered;
}

}  // namespace gpuperf::gpuexec
