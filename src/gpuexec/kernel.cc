#include "gpuexec/kernel.h"

#include "common/logging.h"
#include "dnn/flops.h"

namespace gpuperf::gpuexec {

std::string KernelFamilyName(KernelFamily family) {
  switch (family) {
    case KernelFamily::kGemm: return "gemm";
    case KernelFamily::kImplicitGemm: return "implicit_gemm";
    case KernelFamily::kWinogradTransform: return "winograd_transform";
    case KernelFamily::kWinogradGemm: return "winograd_gemm";
    case KernelFamily::kFftTransform: return "fft_transform";
    case KernelFamily::kFftGemm: return "fft_gemm";
    case KernelFamily::kDirectConv: return "direct_conv";
    case KernelFamily::kDepthwiseConv: return "depthwise_conv";
    case KernelFamily::kIm2col: return "im2col";
    case KernelFamily::kElementwise: return "elementwise";
    case KernelFamily::kBatchNorm: return "batch_norm";
    case KernelFamily::kLayerNorm: return "layer_norm";
    case KernelFamily::kPooling: return "pooling";
    case KernelFamily::kReduce: return "reduce";
    case KernelFamily::kSoftmax: return "softmax";
    case KernelFamily::kCopy: return "copy";
    case KernelFamily::kGather: return "gather";
  }
  GP_CHECK(false) << "unhandled KernelFamily";
  return "";
}

std::string CostDriverName(CostDriver driver) {
  switch (driver) {
    case CostDriver::kInput: return "input";
    case CostDriver::kOperation: return "operation";
    case CostDriver::kOutput: return "output";
  }
  GP_CHECK(false) << "unhandled CostDriver";
  return "";
}

std::int64_t PerSampleDriverValue(const dnn::Layer& layer,
                                  CostDriver driver) {
  switch (driver) {
    case CostDriver::kInput: return layer.InputElements();
    case CostDriver::kOperation: return dnn::LayerFlops(layer, 1);
    case CostDriver::kOutput: return layer.output.Elements();
  }
  GP_CHECK(false) << "unhandled CostDriver";
  return 0;
}

std::int64_t KernelLaunch::DriverValue(CostDriver which) const {
  switch (which) {
    case CostDriver::kInput: return input_elems;
    case CostDriver::kOperation: return layer_flops;
    case CostDriver::kOutput: return output_elems;
  }
  GP_CHECK(false) << "unhandled CostDriver";
  return 0;
}

}  // namespace gpuperf::gpuexec
