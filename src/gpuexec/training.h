#ifndef GPUPERF_GPUEXEC_TRAINING_H_
#define GPUPERF_GPUEXEC_TRAINING_H_

/**
 * @file
 * Training-step lowering — the paper's first future-work item ("our
 * future work will focus on extending our models for more diverse
 * workloads (e.g., training)").
 *
 * One SGD training step is lowered as: the forward kernels of every
 * layer (identical to inference), then, walking the layers in reverse,
 * each layer's backward kernels (data-gradient and weight-gradient), and
 * finally one optimizer-update kernel per parameterized layer. Every
 * kernel carries the same layer-level regression features as inference,
 * so the unchanged KW machinery trains and predicts on training-step
 * datasets transparently: the layer-to-kernel mapping table simply learns
 * longer kernel lists.
 */

#include <cstdint>
#include <vector>

#include "dnn/layer.h"
#include "dnn/network.h"
#include "gpuexec/kernel.h"

namespace gpuperf::gpuexec {

/** What a profiled run executes. */
enum class Workload {
  kInference,  // forward only
  kTraining,   // forward + backward + SGD update
};

/** Backward + optimizer kernels of one layer at batch size `batch`. */
std::vector<KernelLaunch> LowerLayerBackward(const dnn::Layer& layer,
                                             std::int64_t batch);

/**
 * Lowers a full workload; entry i holds layer i's kernels. For
 * kTraining, each layer's list is its forward kernels followed by its
 * backward/optimizer kernels (grouping per layer keeps the mapping table
 * layer-keyed; the profiler still executes forward and backward in the
 * correct global order).
 */
std::vector<std::vector<KernelLaunch>> LowerNetworkWorkload(
    const dnn::Network& network, std::int64_t batch, Workload workload);

/**
 * The execution order of a training step over the per-layer kernel lists
 * produced by LowerNetworkWorkload: forward kernels of layers 0..n-1,
 * then backward kernels of layers n-1..0. Returns (layer, kernel) index
 * pairs into the lowered structure.
 */
std::vector<std::pair<int, int>> TrainingExecutionOrder(
    const dnn::Network& network,
    const std::vector<std::vector<KernelLaunch>>& lowered);

/**
 * The same order computed from per-layer (forward count, total count)
 * pairs, for callers that hold cached launch lists instead of owned
 * vectors (LoweringCache keeps both counts without re-lowering).
 */
std::vector<std::pair<int, int>> TrainingExecutionOrderFromCounts(
    const std::vector<std::pair<int, int>>& counts);

}  // namespace gpuperf::gpuexec

#endif  // GPUPERF_GPUEXEC_TRAINING_H_
