#include "gpuexec/training.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "dnn/flops.h"
#include "gpuexec/lowering.h"

namespace gpuperf::gpuexec {

using dnn::kBytesPerElement;
using dnn::Layer;
using dnn::LayerKind;

namespace {

std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/** Reduction-depth bucket (mirrors the forward lowering's identity rule). */
long KBucket(std::int64_t k) {
  long bucket = 32;
  while (bucket < k && bucket < 4096) bucket *= 2;
  return bucket;
}

void Attach(const Layer& layer, std::int64_t batch, KernelLaunch* launch) {
  launch->layer_kind = layer.kind;
  launch->batch = batch;
  launch->layer_flops = dnn::LayerFlops(layer, batch);
  launch->input_elems = batch * layer.InputElements();
  launch->output_elems = batch * layer.output.Elements();
}

/** A gradient GEMM ([m x k] * [k x n] per `batches`), operation-driven. */
KernelLaunch GradGemm(const std::string& role, std::int64_t batches,
                      std::int64_t m, std::int64_t n, std::int64_t k) {
  KernelLaunch launch;
  launch.name = Format("gemm_%s_k%ld_n%ld", role.c_str(), KBucket(k),
                       KBucket(n));
  launch.family = KernelFamily::kGemm;
  launch.driver = CostDriver::kOperation;
  launch.flops = 2 * batches * m * n * k;
  launch.bytes_in = batches * (m * k + k * n) * kBytesPerElement;
  launch.bytes_out = batches * m * n * kBytesPerElement;
  launch.blocks = batches * CeilDiv(m, 128) * CeilDiv(n, 128);
  return launch;
}

/** Streaming backward kernel over `elems` with `read_factor`x reads. */
KernelLaunch StreamBackward(const std::string& name, KernelFamily family,
                            CostDriver driver, std::int64_t elems,
                            double read_factor) {
  KernelLaunch launch;
  launch.name = name;
  launch.family = family;
  launch.driver = driver;
  launch.flops = elems;
  launch.bytes_in = static_cast<std::int64_t>(
      read_factor * static_cast<double>(elems) * kBytesPerElement);
  launch.bytes_out = elems * kBytesPerElement;
  launch.blocks = CeilDiv(elems, 1024);
  return launch;
}

/** SGD parameter update: read weight + gradient, write weight. */
KernelLaunch SgdUpdate(std::int64_t weights) {
  KernelLaunch launch;
  launch.name = "sgd_update_vec";
  launch.family = KernelFamily::kElementwise;
  launch.driver = CostDriver::kOperation;
  launch.flops = 2 * weights;
  launch.bytes_in = 2 * weights * kBytesPerElement;
  launch.bytes_out = weights * kBytesPerElement;
  launch.blocks = CeilDiv(weights, 1024);
  return launch;
}

}  // namespace

std::vector<KernelLaunch> LowerLayerBackward(const Layer& layer,
                                             std::int64_t batch) {
  GP_CHECK_GT(batch, 0);
  std::vector<KernelLaunch> launches;
  const std::int64_t in_elems = batch * layer.InputElements();
  const std::int64_t out_elems = batch * layer.output.Elements();
  const std::int64_t weights = dnn::LayerWeightCount(layer);

  switch (layer.kind) {
    case LayerKind::kConv2d: {
      const dnn::ConvParams& p = layer.conv();
      const std::int64_t k_dim =
          (p.in_channels / p.groups) * p.kernel_h * p.kernel_w;
      const std::int64_t out_pixels = batch * layer.output.h * layer.output.w;
      // Data gradient: dX = dY (*) W^T.
      launches.push_back(GradGemm("conv_dgrad", p.groups,
                                  p.in_channels / p.groups, out_pixels,
                                  (p.out_channels / p.groups) * p.kernel_h *
                                      p.kernel_w));
      // Weight gradient: dW = dY (*) X, reduced over the batch.
      launches.push_back(GradGemm("conv_wgrad", p.groups,
                                  p.out_channels / p.groups, k_dim,
                                  out_pixels));
      launches.push_back(SgdUpdate(weights));
      break;
    }
    case LayerKind::kLinear: {
      const dnn::LinearParams& p = layer.linear();
      const std::int64_t positions =
          batch * layer.inputs[0].h * layer.inputs[0].w;
      launches.push_back(GradGemm("fc_dgrad", 1, p.in_features, positions,
                                  p.out_features));
      launches.push_back(GradGemm("fc_wgrad", 1, p.out_features,
                                  p.in_features, positions));
      launches.push_back(SgdUpdate(weights));
      break;
    }
    case LayerKind::kMatMul: {
      const dnn::MatMulParams& p = layer.matmul();
      launches.push_back(
          GradGemm("bmm_dgrad_a", batch * p.batch, p.m, p.k, p.n));
      launches.push_back(
          GradGemm("bmm_dgrad_b", batch * p.batch, p.k, p.n, p.m));
      break;
    }
    case LayerKind::kBatchNorm:
      launches.push_back(StreamBackward("bn_bwd", KernelFamily::kBatchNorm,
                                        CostDriver::kInput, in_elems, 2.5));
      launches.push_back(SgdUpdate(weights));
      break;
    case LayerKind::kLayerNorm:
      launches.push_back(StreamBackward("layer_norm_bwd",
                                        KernelFamily::kLayerNorm,
                                        CostDriver::kInput, in_elems, 2.5));
      launches.push_back(SgdUpdate(weights));
      break;
    case LayerKind::kRelu:
    case LayerKind::kRelu6:
      launches.push_back(StreamBackward("elementwise_relu_bwd",
                                        KernelFamily::kElementwise,
                                        CostDriver::kOutput, out_elems, 2.0));
      break;
    case LayerKind::kSigmoid:
    case LayerKind::kGelu:
      launches.push_back(StreamBackward("elementwise_act_bwd",
                                        KernelFamily::kElementwise,
                                        CostDriver::kOutput, out_elems, 2.0));
      break;
    case LayerKind::kAdd:
      // Gradient fan-out accumulates into the shortcut branch.
      launches.push_back(StreamBackward("elementwise_grad_accum",
                                        KernelFamily::kElementwise,
                                        CostDriver::kOutput, out_elems, 2.0));
      break;
    case LayerKind::kMaxPool:
      launches.push_back(StreamBackward("pooling_max_bwd_scatter",
                                        KernelFamily::kPooling,
                                        CostDriver::kInput, in_elems, 1.5));
      break;
    case LayerKind::kAvgPool:
    case LayerKind::kGlobalAvgPool:
      launches.push_back(StreamBackward("pooling_avg_bwd_broadcast",
                                        KernelFamily::kPooling,
                                        CostDriver::kInput, in_elems, 1.2));
      break;
    case LayerKind::kSoftmax:
      launches.push_back(StreamBackward("softmax_bwd",
                                        KernelFamily::kSoftmax,
                                        CostDriver::kOutput, out_elems, 2.0));
      break;
    case LayerKind::kConcat:
      launches.push_back(StreamBackward("concat_bwd_slice",
                                        KernelFamily::kCopy,
                                        CostDriver::kOutput, out_elems, 1.0));
      break;
    case LayerKind::kChannelShuffle:
      launches.push_back(StreamBackward("channel_shuffle_bwd",
                                        KernelFamily::kCopy,
                                        CostDriver::kInput, in_elems, 1.0));
      break;
    case LayerKind::kEmbedding:
      launches.push_back(StreamBackward("embedding_bwd_scatter_add",
                                        KernelFamily::kGather,
                                        CostDriver::kOutput, out_elems, 2.0));
      launches.push_back(SgdUpdate(weights));
      break;
    case LayerKind::kFlatten:
    case LayerKind::kDropout:
      break;  // views / no-ops backward too
  }

  for (KernelLaunch& launch : launches) Attach(layer, batch, &launch);
  return launches;
}

std::vector<std::vector<KernelLaunch>> LowerNetworkWorkload(
    const dnn::Network& network, std::int64_t batch, Workload workload) {
  std::vector<std::vector<KernelLaunch>> lowered =
      LowerNetwork(network, batch);
  if (workload == Workload::kTraining) {
    for (std::size_t i = 0; i < lowered.size(); ++i) {
      std::vector<KernelLaunch> backward =
          LowerLayerBackward(network.layers()[i], batch);
      lowered[i].insert(lowered[i].end(), backward.begin(), backward.end());
    }
  }
  return lowered;
}

std::vector<std::pair<int, int>> TrainingExecutionOrder(
    const dnn::Network& network,
    const std::vector<std::vector<KernelLaunch>>& lowered) {
  GP_CHECK_EQ(lowered.size(), network.layers().size());
  std::vector<std::pair<int, int>> counts(lowered.size());
  for (std::size_t i = 0; i < lowered.size(); ++i) {
    counts[i].first = static_cast<int>(
        LowerLayer(network.layers()[i],
                   lowered[i].empty() ? 1 : lowered[i][0].batch)
            .size());
    counts[i].second = static_cast<int>(lowered[i].size());
  }
  return TrainingExecutionOrderFromCounts(counts);
}

std::vector<std::pair<int, int>> TrainingExecutionOrderFromCounts(
    const std::vector<std::pair<int, int>>& counts) {
  std::vector<std::pair<int, int>> order;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    for (int k = 0; k < counts[i].first; ++k) {
      order.push_back({static_cast<int>(i), k});
    }
  }
  for (int i = static_cast<int>(counts.size()) - 1; i >= 0; --i) {
    for (int k = counts[i].first; k < counts[i].second; ++k) {
      order.push_back({i, k});
    }
  }
  return order;
}

}  // namespace gpuperf::gpuexec
