#ifndef GPUPERF_GPUEXEC_ORACLE_H_
#define GPUPERF_GPUEXEC_ORACLE_H_

/**
 * @file
 * The synthetic hardware oracle — this repository's stand-in for the real
 * GPUs the paper measures.
 *
 * For every kernel launch the oracle computes a roofline-style time:
 *
 *   t = overhead + max(flops / (peak * ce), bytes / (bw * me)) * occupancy
 *
 * where `ce`/`me` are per-family efficiencies modulated by (a) a per-GPU
 * per-family architecture factor (wide spread for compute, narrow for
 * memory — producing Observation O6: bandwidth efficiency is stable across
 * GPUs while compute efficiency is not), (b) a static per-(GPU, kernel
 * name) "implementation quirk" factor, and (c) an occupancy model with
 * wave quantization and small-grid underutilization. Measurements add
 * multiplicative log-normal noise.
 *
 * The oracle is deliberately richer than any of the paper's regression
 * models (roofline max() switching, occupancy sawtooth, quirks), so the
 * models exhibit genuine residual error, ordered E2E > LW > KW as in the
 * paper. The models never see oracle internals — only profiler output.
 */

#include <cstdint>

#include "common/random.h"
#include "gpuexec/gpu_spec.h"
#include "gpuexec/kernel.h"

namespace gpuperf::gpuexec {

/** Tunable constants of the synthetic hardware. */
struct OracleConfig {
  std::uint64_t seed = 0x9f7e5eedULL;
  double measurement_sigma = 0.03;    // per-run log-normal noise
  double kernel_quirk_sigma = 0.15;   // per (GPU, kernel name) static factor
  double layer_quirk_sigma = 0.08;    // per (GPU, kernel, layer config)
  double wall_overhead_sigma = 0.02;  // per (GPU, network) e2e wall factor
  double compute_arch_sigma = 0.22;   // per (GPU, family) compute spread
  double memory_arch_sigma = 0.07;    // per (GPU, family) memory spread
  double kernel_overhead_us = 1.8;    // fixed GPU-side cost per kernel
  double tensor_core_boost = 1.10;    // GEMM-family boost on TC-bearing GPUs
  // Sustained-FLOPS ceiling partially coupled to the memory system:
  // ceiling = base + per_gbps * bandwidth, capped by the theoretical
  // peak. Marketing peaks (e.g. dual-issue FP32) are not sustainable when
  // the cache/DRAM system cannot feed them. This is the physical root of
  // O6 — achieved compute tracks bandwidth much more than the theoretical
  // TFLOPS column — while the bandwidth-independent base keeps
  // compute-bound kernels from scaling with bandwidth forever (the knee
  // in case study 1's DSE curves).
  double compute_balance_base_tflops = 8.0;
  double compute_balance_tflops_per_gbps = 0.006;
};

/** Per-family efficiency profile (fractions of theoretical peaks). */
struct FamilyProfile {
  double compute_eff;    // attainable fraction of peak FLOPS
  double memory_eff;     // attainable fraction of peak bandwidth
  int blocks_per_sm;     // max concurrently resident blocks per SM
};

/** Profile table lookup. */
const FamilyProfile& ProfileFor(KernelFamily family);

/** The synthetic GPU. Copyable; all state is configuration. */
class HardwareOracle {
 public:
  explicit HardwareOracle(const OracleConfig& config = OracleConfig());

  /** Noise-free expected duration of `launch` on `gpu`, microseconds. */
  double ExpectedKernelTimeUs(const KernelLaunch& launch,
                              const GpuSpec& gpu) const;

  /** One noisy measurement; `rng` supplies the measurement noise stream. */
  double MeasureKernelTimeUs(const KernelLaunch& launch, const GpuSpec& gpu,
                             Rng* rng) const;

  /**
   * One noisy measurement from a pre-computed expected duration. Lets
   * callers that replay the same kernel many times pay the deterministic
   * model cost once.
   */
  double NoisyFromExpected(double expected_us, Rng* rng) const;

  const OracleConfig& config() const { return config_; }

 private:
  /** Grid-size slowdown: wave quantization + small-grid underutilization. */
  double OccupancySlowdown(std::int64_t blocks, int sm_count,
                           int blocks_per_sm) const;

  OracleConfig config_;
};

}  // namespace gpuperf::gpuexec

#endif  // GPUPERF_GPUEXEC_ORACLE_H_
