#ifndef GPUPERF_GPUEXEC_ORACLE_H_
#define GPUPERF_GPUEXEC_ORACLE_H_

/**
 * @file
 * The synthetic hardware oracle — this repository's stand-in for the real
 * GPUs the paper measures.
 *
 * For every kernel launch the oracle computes a roofline-style time:
 *
 *   t = overhead + max(flops / (peak * ce), bytes / (bw * me)) * occupancy
 *
 * where `ce`/`me` are per-family efficiencies modulated by (a) a per-GPU
 * per-family architecture factor (wide spread for compute, narrow for
 * memory — producing Observation O6: bandwidth efficiency is stable across
 * GPUs while compute efficiency is not), (b) a static per-(GPU, kernel
 * name) "implementation quirk" factor, and (c) an occupancy model with
 * wave quantization and small-grid underutilization. Measurements add
 * multiplicative log-normal noise.
 *
 * The oracle is deliberately richer than any of the paper's regression
 * models (roofline max() switching, occupancy sawtooth, quirks), so the
 * models exhibit genuine residual error, ordered E2E > LW > KW as in the
 * paper. The models never see oracle internals — only profiler output.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "gpuexec/gpu_spec.h"
#include "gpuexec/kernel.h"

namespace gpuperf::gpuexec {

/** Tunable constants of the synthetic hardware. */
struct OracleConfig {
  std::uint64_t seed = 0x9f7e5eedULL;
  double measurement_sigma = 0.03;    // per-run log-normal noise
  double kernel_quirk_sigma = 0.15;   // per (GPU, kernel name) static factor
  double layer_quirk_sigma = 0.08;    // per (GPU, kernel, layer config)
  double wall_overhead_sigma = 0.02;  // per (GPU, network) e2e wall factor
  double compute_arch_sigma = 0.22;   // per (GPU, family) compute spread
  double memory_arch_sigma = 0.07;    // per (GPU, family) memory spread
  double kernel_overhead_us = 1.8;    // fixed GPU-side cost per kernel
  double tensor_core_boost = 1.10;    // GEMM-family boost on TC-bearing GPUs
  // Sustained-FLOPS ceiling partially coupled to the memory system:
  // ceiling = base + per_gbps * bandwidth, capped by the theoretical
  // peak. Marketing peaks (e.g. dual-issue FP32) are not sustainable when
  // the cache/DRAM system cannot feed them. This is the physical root of
  // O6 — achieved compute tracks bandwidth much more than the theoretical
  // TFLOPS column — while the bandwidth-independent base keeps
  // compute-bound kernels from scaling with bandwidth forever (the knee
  // in case study 1's DSE curves).
  double compute_balance_base_tflops = 8.0;
  double compute_balance_tflops_per_gbps = 0.006;
};

/** Per-family efficiency profile (fractions of theoretical peaks). */
struct FamilyProfile {
  double compute_eff;    // attainable fraction of peak FLOPS
  double memory_eff;     // attainable fraction of peak bandwidth
  int blocks_per_sm;     // max concurrently resident blocks per SM
};

/** Profile table lookup. */
const FamilyProfile& ProfileFor(KernelFamily family);

/**
 * Which part of a workload a drift event perturbs. Scoped events model
 * regressions that hit only one side of the roofline — "the driver
 * update made memory-bound kernels 12% slower" — and are diluted by the
 * workload's memory-bound time share when applied to end-to-end times.
 */
enum class DriftScope { kAll, kMemoryBound, kComputeBound };

/** Stable scope name: "all", "memory-bound", "compute-bound". */
const char* DriftScopeName(DriftScope scope);

/**
 * One scheduled perturbation of a GPU's service times: from `at_us` the
 * resource's kernels run `factor`x their nominal duration (factor > 1 is
 * a slowdown), stepping instantly when `ramp_us == 0` or ramping
 * linearly to full effect over [at_us, at_us + ramp_us).
 */
struct DriftEvent {
  std::size_t resource = 0;  // pool index, mirroring FaultPlan resources
  double at_us = 0;          // when the drift starts taking effect
  double ramp_us = 0;        // linear ramp-in duration (0 = step)
  double factor = 1.0;       // full-effect multiplier (1.12 = 12% slower)
  DriftScope scope = DriftScope::kAll;
};

/** Knobs for seed-driven generation; rate_per_s == 0 means no events. */
struct DriftScheduleConfig {
  double rate_per_s = 0;       // expected events per resource per sim-second
  double factor_sigma = 0.12;  // log-normal spread of generated factors
  double ramp_s = 0;           // ramp duration of generated events
  std::uint64_t seed = 1;
};

/**
 * The precomputed quirk-factor perturbation timeline of a resource pool —
 * the drift analogue of common/fault_injection's outage plans. Like a
 * FaultPlan, a schedule is generated up front from a seed (or given
 * explicitly), so a simulation's drift is bit-identical across runs,
 * platforms, and thread counts; consumers only evaluate FactorAt() and
 * never draw randomness of their own.
 */
class DriftSchedule {
 public:
  /** Empty schedule: FactorAt() == 1 everywhere. */
  DriftSchedule() = default;

  /**
   * Explicit schedule over `resources` resources. Events must name a
   * valid resource and carry a positive finite factor and non-negative
   * times (programmer-error CHECKs); they are sorted by start time.
   */
  DriftSchedule(std::size_t resources, std::vector<DriftEvent> events);

  /**
   * Seed-driven generation over [0, horizon_us): per-resource Poisson
   * event times at `config.rate_per_s`, log-normal factors, scopes
   * cycling deterministically. The per-resource stream is keyed on
   * (config.seed, resource index), so adding a resource never perturbs
   * the events of the existing ones.
   */
  DriftSchedule(std::size_t resources, double horizon_us,
                const DriftScheduleConfig& config);

  std::size_t resources() const { return events_.size(); }

  /** True when no resource has any event. */
  bool empty() const;

  /** Events of `resource`, sorted by at_us. */
  const std::vector<DriftEvent>& Events(std::size_t resource) const;

  /**
   * Compound service-time multiplier for `resource` at `time_us`.
   * `memory_share` is the fraction of the affected workload's time that
   * is memory-bound: a kMemoryBound event's effect is scaled by it, a
   * kComputeBound event's by (1 - memory_share), and kAll applies in
   * full. Events compose multiplicatively.
   */
  double FactorAt(std::size_t resource, double time_us,
                  double memory_share = 0.5) const;

 private:
  std::vector<std::vector<DriftEvent>> events_;  // per resource, by at_us
};

/** The synthetic GPU. Copyable; all state is configuration. */
class HardwareOracle {
 public:
  explicit HardwareOracle(const OracleConfig& config = OracleConfig());

  /** Noise-free expected duration of `launch` on `gpu`, microseconds. */
  double ExpectedKernelTimeUs(const KernelLaunch& launch,
                              const GpuSpec& gpu) const;

  /** One noisy measurement; `rng` supplies the measurement noise stream. */
  double MeasureKernelTimeUs(const KernelLaunch& launch, const GpuSpec& gpu,
                             Rng* rng) const;

  /**
   * One noisy measurement from a pre-computed expected duration. Lets
   * callers that replay the same kernel many times pay the deterministic
   * model cost once.
   */
  double NoisyFromExpected(double expected_us, Rng* rng) const;

  const OracleConfig& config() const { return config_; }

 private:
  /** Grid-size slowdown: wave quantization + small-grid underutilization. */
  double OccupancySlowdown(std::int64_t blocks, int sm_count,
                           int blocks_per_sm) const;

  OracleConfig config_;
};

}  // namespace gpuperf::gpuexec

#endif  // GPUPERF_GPUEXEC_ORACLE_H_
