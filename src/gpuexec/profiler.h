#ifndef GPUPERF_GPUEXEC_PROFILER_H_
#define GPUPERF_GPUEXEC_PROFILER_H_

/**
 * @file
 * The profiler — this repository's stand-in for the PyTorch Profiler.
 *
 * It runs a network on the hardware oracle with the paper's measurement
 * protocol (20 warm-up batches, then average over 30 measured batches),
 * and produces a trace that links layers to their kernels with per-kernel
 * durations, exactly the information Figure 2 shows the PyTorch Profiler
 * providing. End-to-end wall time follows a two-timeline model: the CPU
 * issues kernels at a fixed per-kernel interval, the GPU executes them in
 * order; small batches are therefore launch-bound (Figures 3 and 6).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/network.h"
#include "gpuexec/gpu_spec.h"
#include "gpuexec/kernel.h"
#include "gpuexec/oracle.h"
#include "gpuexec/training.h"

namespace gpuperf::gpuexec {

/** One averaged kernel execution within a profile. */
struct KernelRecord {
  std::string kernel_name;
  KernelFamily family = KernelFamily::kElementwise;
  CostDriver true_driver = CostDriver::kOutput;  // ground truth (validation)
  int layer_index = 0;
  dnn::LayerKind layer_kind = dnn::LayerKind::kRelu;
  double time_us = 0;            // averaged duration
  double start_us = 0;           // timeline of the first measured batch
  double end_us = 0;
  std::int64_t kernel_flops = 0;
  std::int64_t kernel_bytes = 0;
  std::int64_t layer_flops = 0;  // regression features
  std::int64_t input_elems = 0;
  std::int64_t output_elems = 0;
};

/** A profiled (network, GPU, batch) run. */
struct NetworkProfile {
  std::string network_name;
  std::string network_family;
  std::string gpu_name;
  std::int64_t batch = 0;
  double e2e_time_us = 0;       // wall time per batch, averaged
  double gpu_busy_us = 0;       // sum of kernel durations
  std::int64_t total_flops = 0; // theoretical FLOPs at this batch
  std::vector<KernelRecord> kernels;

  /** Sums kernel durations per layer index (layer-wise times, O4). */
  std::vector<double> LayerTimesUs(std::size_t layer_count) const;
};

/** Profiles networks against a HardwareOracle. */
class Profiler {
 public:
  explicit Profiler(const HardwareOracle& oracle, int measured_batches = 30);

  /** Full kernel-level profile of one (network, GPU, batch) run. */
  NetworkProfile Profile(const dnn::Network& network, const GpuSpec& gpu,
                         std::int64_t batch,
                         Workload workload = Workload::kInference) const;

  /** e2e wall time only (torch.cuda.Event equivalent), microseconds. */
  double MeasureE2eUs(const dnn::Network& network, const GpuSpec& gpu,
                      std::int64_t batch,
                      Workload workload = Workload::kInference) const;

 private:
  HardwareOracle oracle_;
  int measured_batches_;
};

/** Achieved-vs-theoretical efficiency estimated from layer shapes (Fig 9). */
struct EfficiencyReport {
  double bandwidth_efficiency = 0;  // achieved/theoretical bandwidth
  double compute_efficiency = 0;    // achieved/theoretical FLOPS
};

/** Computes Figure 9's efficiencies for one profiled run. */
EfficiencyReport ComputeEfficiency(const dnn::Network& network,
                                   const NetworkProfile& profile,
                                   const GpuSpec& gpu);

}  // namespace gpuperf::gpuexec

#endif  // GPUPERF_GPUEXEC_PROFILER_H_
