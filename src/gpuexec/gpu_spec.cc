#include "gpuexec/gpu_spec.h"

#include <algorithm>

#include "common/logging.h"

namespace gpuperf::gpuexec {

GpuSpec GpuSpec::WithBandwidth(double gbps) const {
  GpuSpec copy = *this;
  copy.bandwidth_gbps = gbps;
  return copy;
}

GpuSpec GpuSpec::MigSlice(int slices, int total) const {
  GP_CHECK_GT(slices, 0);
  GP_CHECK_LE(slices, total);
  const double fraction =
      static_cast<double>(slices) / static_cast<double>(total);
  GpuSpec slice = *this;
  slice.name = name + "-" + std::to_string(slices) + "g";
  slice.bandwidth_gbps *= fraction;
  slice.memory_gb *= fraction;
  slice.fp32_tflops *= fraction;
  slice.tensor_cores = static_cast<int>(tensor_cores * fraction);
  slice.sm_count = std::max(1, static_cast<int>(sm_count * fraction));
  return slice;
}

const std::vector<GpuSpec>& AllGpus() {
  // Table 1 of the paper; SM counts are from public NVIDIA
  // documentation; launch intervals reflect typical PyTorch eager-mode
  // per-op dispatch costs (10-30 us).
  static const std::vector<GpuSpec>* const kGpus = new std::vector<GpuSpec>{
      {"A100", 1555, 40, 19.5, 432, 108, 12.0},
      {"A40", 696, 48, 37.4, 336, 84, 12.0},
      {"GTX 1080 Ti", 484, 11, 11.3, 0, 28, 14.0},
      {"Quadro P620", 80, 2, 1.4, 0, 4, 16.0},
      {"RTX A5000", 768, 24, 27.8, 256, 64, 12.0},
      {"TITAN RTX", 672, 24, 16.3, 576, 72, 13.0},
      {"V100", 900, 16, 14.1, 640, 80, 13.0},
  };
  return *kGpus;
}

const GpuSpec* FindGpu(const std::string& name) {
  for (const GpuSpec& gpu : AllGpus()) {
    if (gpu.name == name) return &gpu;
  }
  return nullptr;
}

const GpuSpec& GpuByName(const std::string& name) {
  const GpuSpec* gpu = FindGpu(name);
  if (gpu == nullptr) Fatal("unknown GPU: " + name);
  return *gpu;
}

}  // namespace gpuperf::gpuexec
