#ifndef GPUPERF_BASELINES_DETAILED_SIM_H_
#define GPUPERF_BASELINES_DETAILED_SIM_H_

/**
 * @file
 * A detailed (block-granularity) GPU simulator standing in for
 * Accel-Sim in the Table 2 comparison.
 *
 * Two properties matter for the comparison and are reproduced here:
 *  1. Cost — the simulator walks every thread-block wave of every kernel
 *     and performs per-block work, so wall-clock time scales with the
 *     simulated workload (versus the KW model's O(#layers) prediction).
 *  2. Modeling error — a detailed model of a machine it doesn't fully
 *     know: per-(GPU, family) systematic biases are applied on top of the
 *     ground-truth oracle, yielding the 10-20% error band the paper
 *     quotes for cycle-level simulators.
 *
 * `fidelity` trades both off, emulating PKS (high fidelity, slow) vs PKA
 * (lower fidelity, faster) pipelines.
 */

#include <cstdint>

#include "gpuexec/gpu_spec.h"
#include "gpuexec/kernel.h"
#include "gpuexec/oracle.h"

namespace gpuperf::baselines {

/** Configuration of the detailed simulator. */
struct DetailedSimConfig {
  std::uint64_t seed = 0xde7a11edULL;
  double bias_sigma = 0.25;      // systematic per-(GPU, family) mis-modeling
  int work_per_block = 40;       // artificial per-block simulation work
  gpuexec::OracleConfig oracle;  // the ground truth being approximated
};

/** Block-granularity simulator with systematic modeling bias. */
class DetailedSimulator {
 public:
  explicit DetailedSimulator(const DetailedSimConfig& config =
                                 DetailedSimConfig());

  /**
   * Simulates one kernel wave-by-wave and returns its predicted duration
   * in microseconds. Consumes wall-clock time proportional to the grid.
   */
  double SimulateKernelUs(const gpuexec::KernelLaunch& launch,
                          const gpuexec::GpuSpec& gpu) const;

  /** Thread blocks walked so far (cost accounting). */
  std::int64_t simulated_blocks() const { return simulated_blocks_; }

  const DetailedSimConfig& config() const { return config_; }

 private:
  DetailedSimConfig config_;
  gpuexec::HardwareOracle oracle_;
  mutable std::int64_t simulated_blocks_ = 0;
};

}  // namespace gpuperf::baselines

#endif  // GPUPERF_BASELINES_DETAILED_SIM_H_
