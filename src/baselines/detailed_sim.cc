#include "baselines/detailed_sim.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace gpuperf::baselines {

DetailedSimulator::DetailedSimulator(const DetailedSimConfig& config)
    : config_(config), oracle_(config.oracle) {}

double DetailedSimulator::SimulateKernelUs(
    const gpuexec::KernelLaunch& launch, const gpuexec::GpuSpec& gpu) const {
  // The "true machine" duration this simulator is trying to model.
  const double truth_us = oracle_.ExpectedKernelTimeUs(launch, gpu);

  // Systematic mis-modeling: the simulator's pipeline/cache/NoC models
  // differ from silicon per kernel family and per GPU.
  const double bias = KeyedLogNormal(
      config_.seed,
      gpu.name + "/" + gpuexec::KernelFamilyName(launch.family),
      config_.bias_sigma);

  // Walk the grid wave by wave, charging per-block work. This is where the
  // wall-clock cost of detailed simulation comes from.
  const gpuexec::FamilyProfile& profile = gpuexec::ProfileFor(launch.family);
  const std::int64_t capacity =
      static_cast<std::int64_t>(gpu.sm_count) * profile.blocks_per_sm;
  const std::int64_t blocks = std::max<std::int64_t>(1, launch.blocks);
  const std::int64_t waves = (blocks + capacity - 1) / capacity;
  const double per_wave_us = truth_us * bias / static_cast<double>(waves);

  double accumulated_us = 0.0;
  volatile double sink = 0.0;  // defeat optimization of the per-block work
  for (std::int64_t wave = 0; wave < waves; ++wave) {
    const std::int64_t wave_blocks =
        std::min<std::int64_t>(capacity, blocks - wave * capacity);
    for (std::int64_t block = 0; block < wave_blocks; ++block) {
      // Per-block "microarchitectural" work: a short arithmetic chain.
      double v = static_cast<double>(block + 1);
      for (int i = 0; i < config_.work_per_block; ++i) {
        v = v * 1.0000001 + 0.5;
      }
      sink = sink + v;
    }
    simulated_blocks_ += wave_blocks;
    accumulated_us += per_wave_us;
  }
  (void)sink;
  return accumulated_us;
}

}  // namespace gpuperf::baselines
