#include "baselines/pka.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <string>

#include "common/random.h"
#include "common/string_util.h"
#include "gpuexec/lowering.h"
#include "gpuexec/oracle.h"

namespace gpuperf::baselines {
namespace {

using Clock = std::chrono::steady_clock;

/** One cluster of identical kernel launches. */
struct LaunchCluster {
  gpuexec::KernelLaunch representative;
  std::int64_t count = 0;
  double profiled_total_us = 0;  // PKS only
};

/** Groups launches by identical (name, configuration). */
std::map<std::string, LaunchCluster> ClusterLaunches(
    const std::vector<std::vector<gpuexec::KernelLaunch>>& lowered) {
  std::map<std::string, LaunchCluster> clusters;
  for (const auto& layer : lowered) {
    for (const gpuexec::KernelLaunch& launch : layer) {
      const std::string key =
          launch.name + "/" + Format("%ld/%ld/%ld", (long)launch.flops,
                                     (long)launch.TotalBytes(),
                                     (long)launch.blocks);
      LaunchCluster& cluster = clusters[key];
      if (cluster.count == 0) cluster.representative = launch;
      ++cluster.count;
    }
  }
  return clusters;
}

double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

SampledSimResult RunPka(const dnn::Network& network,
                        const gpuexec::GpuSpec& gpu, std::int64_t batch,
                        const DetailedSimConfig& config) {
  const auto start = Clock::now();
  SampledSimResult result;

  const auto lowered = gpuexec::LowerNetwork(network, batch);
  std::map<std::string, LaunchCluster> clusters = ClusterLaunches(lowered);
  for (const auto& layer : lowered) {
    result.total_launches += static_cast<std::int64_t>(layer.size());
  }

  DetailedSimulator simulator(config);
  for (const auto& [key, cluster] : clusters) {
    const double kernel_us =
        simulator.SimulateKernelUs(cluster.representative, gpu);
    result.predicted_e2e_us += kernel_us * static_cast<double>(cluster.count);
    ++result.simulated_clusters;
  }
  result.simulated_blocks = simulator.simulated_blocks();
  result.wall_seconds = Seconds(start);
  return result;
}

SampledSimResult RunPks(const dnn::Network& network,
                        const gpuexec::GpuSpec& gpu, std::int64_t batch,
                        double coverage, const DetailedSimConfig& config) {
  const auto start = Clock::now();
  SampledSimResult result;

  const auto lowered = gpuexec::LowerNetwork(network, batch);
  std::map<std::string, LaunchCluster> clusters = ClusterLaunches(lowered);

  // Hardware profiling pass: one measured duration per launch.
  const gpuexec::HardwareOracle oracle(config.oracle);
  Rng rng(HashCombine(config.seed, StableHash(network.name() + gpu.name)));
  for (auto& [key, cluster] : clusters) {
    const double measured =
        oracle.MeasureKernelTimeUs(cluster.representative, gpu, &rng);
    cluster.profiled_total_us =
        measured * static_cast<double>(cluster.count);
    result.total_launches += cluster.count;
  }

  // Select principal clusters covering `coverage` of profiled time.
  std::vector<const LaunchCluster*> order;
  double profiled_total = 0;
  for (const auto& [key, cluster] : clusters) {
    order.push_back(&cluster);
    profiled_total += cluster.profiled_total_us;
  }
  std::sort(order.begin(), order.end(),
            [](const LaunchCluster* a, const LaunchCluster* b) {
              return a->profiled_total_us > b->profiled_total_us;
            });

  // Principal kernels get high-fidelity (slow, well-calibrated)
  // simulation; the tail is projected from the profile.
  DetailedSimConfig high_fidelity = config;
  high_fidelity.bias_sigma = config.bias_sigma * 0.5;
  high_fidelity.work_per_block = config.work_per_block * 8;
  high_fidelity.seed = HashCombine(config.seed, 0x9b51ULL);
  DetailedSimulator simulator(high_fidelity);

  double covered = 0;
  for (const LaunchCluster* cluster : order) {
    if (covered >= coverage * profiled_total) {
      result.predicted_e2e_us += cluster->profiled_total_us;
      continue;
    }
    const double kernel_us =
        simulator.SimulateKernelUs(cluster->representative, gpu);
    result.predicted_e2e_us +=
        kernel_us * static_cast<double>(cluster->count);
    covered += cluster->profiled_total_us;
    ++result.simulated_clusters;
  }
  result.simulated_blocks = simulator.simulated_blocks();
  result.wall_seconds = Seconds(start);
  return result;
}

}  // namespace gpuperf::baselines
