#ifndef GPUPERF_BASELINES_PKA_H_
#define GPUPERF_BASELINES_PKA_H_

/**
 * @file
 * Principal Kernel Analysis (PKA) and Principal Kernel Selection (PKS),
 * the sampled-simulation baselines of Table 2 (Avalos Baddouh et al.,
 * MICRO'21), rebuilt on this repository's detailed simulator.
 *
 * PKA groups a workload's kernel launches into clusters of identical
 * (name, configuration), simulates one representative per cluster at
 * moderate fidelity, and scales by multiplicity — fast, with the detailed
 * simulator's full modeling error.
 *
 * PKS first profiles the workload, selects the principal clusters that
 * cover a target fraction of execution time, and spends high-fidelity
 * simulation only on those (projecting the tail from the profile) —
 * slower than PKA but more accurate, matching the paper's Table 2 where
 * PKS errors (2-6%) beat PKA errors (12-24%) at ~10x the runtime.
 */

#include <cstdint>
#include <vector>

#include "baselines/detailed_sim.h"
#include "dnn/network.h"
#include "gpuexec/gpu_spec.h"

namespace gpuperf::baselines {

/** Result of a sampled-simulation run. */
struct SampledSimResult {
  double predicted_e2e_us = 0;
  std::int64_t total_launches = 0;      // kernels in the workload
  std::int64_t simulated_clusters = 0;  // representatives simulated
  std::int64_t simulated_blocks = 0;    // detailed-sim cost proxy
  double wall_seconds = 0;              // actual wall-clock cost
};

/** PKA: simulate one representative per kernel cluster, scale by count. */
SampledSimResult RunPka(const dnn::Network& network,
                        const gpuexec::GpuSpec& gpu, std::int64_t batch,
                        const DetailedSimConfig& config = DetailedSimConfig());

/**
 * PKS: profile-guided selection of principal kernels covering
 * `coverage` of execution time; high-fidelity simulation of those only.
 */
SampledSimResult RunPks(const dnn::Network& network,
                        const gpuexec::GpuSpec& gpu, std::int64_t batch,
                        double coverage = 0.97,
                        const DetailedSimConfig& config = DetailedSimConfig());

}  // namespace gpuperf::baselines

#endif  // GPUPERF_BASELINES_PKA_H_
