#ifndef GPUPERF_COMMON_LOGGING_H_
#define GPUPERF_COMMON_LOGGING_H_

/**
 * @file
 * Structured logging and contract checking.
 *
 * Follows the gem5 fatal/panic split: `Fatal` is for user-level errors
 * (bad configuration, missing files) and exits with status 1; the CHECK
 * family is for programmer errors (broken invariants) and aborts so a
 * debugger or core dump can capture the state.
 *
 * Log lines are structured: a message plus optional `key=value` fields
 * (values with spaces/quotes are quoted), stamped with monotonic
 * seconds since process start —
 * `[gpuperf INFO 1.500s] bundle promoted generation=3`.
 * The minimum level defaults to info and is configurable via the
 * `GPUPERF_LOG_LEVEL` environment variable (debug|info|warn|error) or
 * SetMinLogLevel(). The clock and the sink are injectable function
 * pointers, so tests can pin timestamps and capture lines verbatim.
 */

#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace gpuperf {

/** Severity of a log message, in increasing order. */
enum class LogLevel { kDebug, kInfo, kWarn, kError };

/** Stable upper-case level tag: "DEBUG", "INFO", "WARN", "ERROR". */
const char* LogLevelName(LogLevel level);

/** Ordered key=value context attached to a log line. */
using LogFields = std::vector<std::pair<std::string, std::string>>;

/** Receives every emitted line (already formatted, no newline). */
using LogSink = void (*)(LogLevel level, const std::string& line);

/** Returns seconds since process start (or a test-injected time). */
using LogClockFn = double (*)();

namespace internal {

/** Formats and emits one log line (level filter already applied). */
void LogMessage(LogLevel level, const std::string& msg,
                const LogFields& fields = {});

/**
 * Parses a GPUPERF_LOG_LEVEL value ("debug"/"info"/"warn"/"error",
 * case-insensitive). Returns false (leaving `level` untouched) for
 * anything else, including null.
 */
bool ParseLogLevel(const char* name, LogLevel* level);

/** Prints `msg` with source location and aborts. Never returns. */
[[noreturn]] void PanicImpl(const char* file, int line, const std::string& msg);

/** Prints `msg` and exits with status 1. Never returns. */
[[noreturn]] void FatalImpl(const std::string& msg);

/**
 * Stream-collecting helper behind the CHECK macros. The destructor of a
 * live (failed-check) instance never runs; `Panic()` is called explicitly.
 */
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* condition);

  /** Appends user-supplied context to the failure message. */
  template <typename T>
  CheckMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  /** Aborts with the accumulated message. */
  [[noreturn]] void Panic();

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

/** Logs a debug-level message; filtered out unless the level allows. */
void LogDebug(const std::string& msg, const LogFields& fields = {});

/** Logs an informational message. */
void LogInfo(const std::string& msg, const LogFields& fields = {});

/** Logs a warning; the run continues. */
void LogWarn(const std::string& msg, const LogFields& fields = {});

/**
 * The minimum level that gets emitted: SetMinLogLevel() if called,
 * else GPUPERF_LOG_LEVEL from the environment, else kInfo.
 */
LogLevel MinLogLevel();

/** Programmatic override of the minimum level (wins over the env). */
void SetMinLogLevel(LogLevel level);

/** Replaces the output sink (nullptr = stderr). Returns the previous. */
LogSink SetLogSinkForTest(LogSink sink);

/** Replaces the timestamp clock (nullptr = monotonic). Returns the previous. */
LogClockFn SetLogClockForTest(LogClockFn clock);

/** Reports an unrecoverable user-level error and exits(1). */
[[noreturn]] void Fatal(const std::string& msg);

}  // namespace gpuperf

/**
 * Aborts with a diagnostic when `condition` is false. Additional context can
 * be streamed: `GP_CHECK(x > 0) << "x=" << x;`
 */
#define GP_CHECK(condition)                                                  \
  if (condition) {                                                           \
  } else                                                                     \
    ::gpuperf::internal::CheckFailer{} &=                                    \
        ::gpuperf::internal::CheckMessage(__FILE__, __LINE__, #condition)

#define GP_CHECK_EQ(a, b) GP_CHECK((a) == (b)) << " [" << (a) << " vs " << (b) << "] "
#define GP_CHECK_NE(a, b) GP_CHECK((a) != (b)) << " [" << (a) << " vs " << (b) << "] "
#define GP_CHECK_LT(a, b) GP_CHECK((a) < (b)) << " [" << (a) << " vs " << (b) << "] "
#define GP_CHECK_LE(a, b) GP_CHECK((a) <= (b)) << " [" << (a) << " vs " << (b) << "] "
#define GP_CHECK_GT(a, b) GP_CHECK((a) > (b)) << " [" << (a) << " vs " << (b) << "] "
#define GP_CHECK_GE(a, b) GP_CHECK((a) >= (b)) << " [" << (a) << " vs " << (b) << "] "

namespace gpuperf::internal {

/** Triggers the panic once the streaming expression is fully evaluated. */
struct CheckFailer {
  [[noreturn]] void operator&=(CheckMessage& msg) { msg.Panic(); }
  [[noreturn]] void operator&=(CheckMessage&& msg) { msg.Panic(); }
};

}  // namespace gpuperf::internal

#endif  // GPUPERF_COMMON_LOGGING_H_
