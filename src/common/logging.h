#ifndef GPUPERF_COMMON_LOGGING_H_
#define GPUPERF_COMMON_LOGGING_H_

/**
 * @file
 * Minimal logging and contract-checking facility.
 *
 * Follows the gem5 fatal/panic split: `Fatal` is for user-level errors
 * (bad configuration, missing files) and exits with status 1; the CHECK
 * family is for programmer errors (broken invariants) and aborts so a
 * debugger or core dump can capture the state.
 */

#include <sstream>
#include <string>

namespace gpuperf {

/** Severity of a log message. */
enum class LogLevel { kInfo, kWarn, kError };

namespace internal {

/** Emits a formatted log line to stderr. */
void LogMessage(LogLevel level, const std::string& msg);

/** Prints `msg` with source location and aborts. Never returns. */
[[noreturn]] void PanicImpl(const char* file, int line, const std::string& msg);

/** Prints `msg` and exits with status 1. Never returns. */
[[noreturn]] void FatalImpl(const std::string& msg);

/**
 * Stream-collecting helper behind the CHECK macros. The destructor of a
 * live (failed-check) instance never runs; `Panic()` is called explicitly.
 */
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* condition);

  /** Appends user-supplied context to the failure message. */
  template <typename T>
  CheckMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  /** Aborts with the accumulated message. */
  [[noreturn]] void Panic();

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

/** Logs an informational message. */
void LogInfo(const std::string& msg);

/** Logs a warning; the run continues. */
void LogWarn(const std::string& msg);

/** Reports an unrecoverable user-level error and exits(1). */
[[noreturn]] void Fatal(const std::string& msg);

}  // namespace gpuperf

/**
 * Aborts with a diagnostic when `condition` is false. Additional context can
 * be streamed: `GP_CHECK(x > 0) << "x=" << x;`
 */
#define GP_CHECK(condition)                                                  \
  if (condition) {                                                           \
  } else                                                                     \
    ::gpuperf::internal::CheckFailer{} &=                                    \
        ::gpuperf::internal::CheckMessage(__FILE__, __LINE__, #condition)

#define GP_CHECK_EQ(a, b) GP_CHECK((a) == (b)) << " [" << (a) << " vs " << (b) << "] "
#define GP_CHECK_NE(a, b) GP_CHECK((a) != (b)) << " [" << (a) << " vs " << (b) << "] "
#define GP_CHECK_LT(a, b) GP_CHECK((a) < (b)) << " [" << (a) << " vs " << (b) << "] "
#define GP_CHECK_LE(a, b) GP_CHECK((a) <= (b)) << " [" << (a) << " vs " << (b) << "] "
#define GP_CHECK_GT(a, b) GP_CHECK((a) > (b)) << " [" << (a) << " vs " << (b) << "] "
#define GP_CHECK_GE(a, b) GP_CHECK((a) >= (b)) << " [" << (a) << " vs " << (b) << "] "

namespace gpuperf::internal {

/** Triggers the panic once the streaming expression is fully evaluated. */
struct CheckFailer {
  [[noreturn]] void operator&=(CheckMessage& msg) { msg.Panic(); }
  [[noreturn]] void operator&=(CheckMessage&& msg) { msg.Panic(); }
};

}  // namespace gpuperf::internal

#endif  // GPUPERF_COMMON_LOGGING_H_
