#ifndef GPUPERF_COMMON_STATUS_H_
#define GPUPERF_COMMON_STATUS_H_

/**
 * @file
 * Recoverable-error plumbing: Status / StatusOr<T>.
 *
 * The repo follows the gem5 fatal/panic split (see logging.h); this file
 * adds the third leg for *recoverable* conditions: anything a caller can
 * reasonably handle — a corrupt model bundle, a truncated dataset CSV, an
 * unknown network name typed on the command line — is reported as a
 * `Status` and propagated with the GP_RETURN_IF_ERROR /
 * GP_ASSIGN_OR_RETURN macros. `Fatal` stays reserved for unrecoverable
 * user-level errors in contexts that have no error channel, and the CHECK
 * family strictly for programmer errors. No exceptions anywhere.
 */

#include <optional>
#include <string>
#include <utility>

#include "common/logging.h"

namespace gpuperf {

/** Broad category of a recoverable error (subset of the Abseil canon). */
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     // caller-supplied value is malformed
  kNotFound,            // file / column / key absent
  kDataLoss,            // file exists but is corrupt or truncated
  kFailedPrecondition,  // operation needs state the object lacks
  kOutOfRange,          // value parsed but outside the legal range
  kUnavailable,         // resource temporarily unusable
  kInternal,            // invariant violated across a module boundary
};

/** Stable upper-case name of `code`, e.g. "DATA_LOSS". */
const char* StatusCodeName(StatusCode code);

/**
 * The result of an operation that can fail recoverably.
 *
 * `[[nodiscard]]` at class level: every function returning a Status (or a
 * StatusOr below) is implicitly must-check, so a silently dropped error
 * is a compile-time diagnostic — a build error under GPUPERF_WERROR=ON.
 * The rare legitimately-ignorable result is discarded explicitly with a
 * `(void)` cast at the call site, which documents the decision.
 */
class [[nodiscard]] Status {
 public:
  /** Success. */
  Status() = default;

  /** An error; `code` must not be kOk (programmer error otherwise). */
  Status(StatusCode code, std::string message);

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /**
   * Prepends `context` to the message chain ("context: old message"),
   * returning *this so call sites can annotate while propagating:
   * `return status.Annotate("loading " + path);`. No-op on OK.
   */
  Status& Annotate(const std::string& context);

  /** "OK" or "CODE_NAME: message". */
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/** Convenience constructors, one per error code. */
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status DataLossError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnavailableError(std::string message);
Status InternalError(std::string message);

/**
 * Either a value or the Status explaining why there is none.
 *
 * Accessing value() on an error StatusOr is a programmer error (CHECK),
 * consistent with the fatal/panic split: callers must test ok() or use
 * GP_ASSIGN_OR_RETURN.
 */
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(const T& value) : value_(value) {}          // NOLINT(runtime/explicit)
  StatusOr(T&& value) : value_(std::move(value)) {}    // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    GP_CHECK(!status_.ok()) << "StatusOr constructed from OK without a value";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    GP_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    GP_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    GP_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/** StatusOr-returning numeric parsing (std::stoll throws; these do not). */
[[nodiscard]] StatusOr<long long> ParseInt64(const std::string& text);
[[nodiscard]] StatusOr<int> ParseInt(const std::string& text);
/** Accepts any strtod-parseable value, including inf/nan. */
[[nodiscard]] StatusOr<double> ParseDouble(const std::string& text);
/** Like ParseDouble but rejects non-finite values. */
[[nodiscard]] StatusOr<double> ParseFiniteDouble(const std::string& text);

}  // namespace gpuperf

/** Propagates a non-OK Status to the caller. */
#define GP_RETURN_IF_ERROR(expr)                   \
  do {                                             \
    ::gpuperf::Status gp_status_tmp_ = (expr);     \
    if (!gp_status_tmp_.ok()) return gp_status_tmp_; \
  } while (0)

#define GP_STATUS_CONCAT_INNER_(a, b) a##b
#define GP_STATUS_CONCAT_(a, b) GP_STATUS_CONCAT_INNER_(a, b)

/**
 * Evaluates a StatusOr expression; on error returns its Status, otherwise
 * moves the value into `lhs` (which may be a declaration):
 * `GP_ASSIGN_OR_RETURN(CsvTable table, TryReadCsv(path));`
 */
#define GP_ASSIGN_OR_RETURN(lhs, expr) \
  GP_ASSIGN_OR_RETURN_IMPL_(GP_STATUS_CONCAT_(gp_statusor_, __LINE__), lhs, expr)

#define GP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#endif  // GPUPERF_COMMON_STATUS_H_
