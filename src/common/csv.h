#ifndef GPUPERF_COMMON_CSV_H_
#define GPUPERF_COMMON_CSV_H_

/**
 * @file
 * Minimal CSV reader/writer used by the open performance database.
 *
 * Fields are comma-separated; a field containing a comma, quote, or newline
 * is quoted and internal quotes doubled (RFC 4180 subset, no embedded
 * newlines on read).
 *
 * Loading ship-it data (model bundles, datasets) goes through the
 * StatusOr-returning entry points; every error they report is prefixed
 * `path:line:` so a user can fix the offending file directly.
 */

#include <string>
#include <vector>

#include "common/status.h"

namespace gpuperf {

/** Writes rows of string fields to a CSV file. */
class CsvWriter {
 public:
  /** Opens `path` for writing; Fatal() on failure. */
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /** Writes one row. */
  void WriteRow(const std::vector<std::string>& fields);

 private:
  void* file_;  // std::FILE*, kept opaque to avoid <cstdio> in the header.
};

/** Parsed CSV contents: a header row plus data rows. */
struct CsvTable {
  std::string path;  // source file, "" when parsed from a string
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  std::vector<int> row_lines;  // 1-based source line of each data row

  /** Index of `column` in the header; Fatal() if absent. */
  std::size_t ColumnIndex(const std::string& column) const;

  /** Index of `column`, or NotFound ("path:1: missing column 'x'"). */
  [[nodiscard]] StatusOr<std::size_t> FindColumn(const std::string& column) const;

  /** "path:line" of data row `row` (for error messages). */
  std::string RowLocation(std::size_t row) const;
};

/** Reads an entire CSV file; Fatal() on any failure (legacy callers). */
CsvTable ReadCsv(const std::string& path);

/**
 * Reads and parses `path`, validating that every data row has exactly as
 * many fields as the header and that every quoted field is terminated.
 */
[[nodiscard]] StatusOr<CsvTable> TryReadCsv(const std::string& path);

/** Parses in-memory CSV `content`; `path` labels error messages only. */
[[nodiscard]] StatusOr<CsvTable> ParseCsv(const std::string& content,
                            const std::string& path);

/** Reads a whole file into a string (checksumming, then ParseCsv). */
[[nodiscard]] StatusOr<std::string> ReadFileToString(const std::string& path);

/** Escapes a single field per the subset above. */
std::string CsvEscape(const std::string& field);

/** Splits one CSV line honoring quotes. */
std::vector<std::string> CsvParseLine(const std::string& line);

/** As above; additionally reports whether every quote was terminated. */
std::vector<std::string> CsvParseLine(const std::string& line,
                                      bool* balanced);

}  // namespace gpuperf

#endif  // GPUPERF_COMMON_CSV_H_
