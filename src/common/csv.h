#ifndef GPUPERF_COMMON_CSV_H_
#define GPUPERF_COMMON_CSV_H_

/**
 * @file
 * Minimal CSV reader/writer used by the open performance database.
 *
 * Fields are comma-separated; a field containing a comma, quote, or newline
 * is quoted and internal quotes doubled (RFC 4180 subset, no embedded
 * newlines on read).
 */

#include <string>
#include <vector>

namespace gpuperf {

/** Writes rows of string fields to a CSV file. */
class CsvWriter {
 public:
  /** Opens `path` for writing; Fatal() on failure. */
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /** Writes one row. */
  void WriteRow(const std::vector<std::string>& fields);

 private:
  void* file_;  // std::FILE*, kept opaque to avoid <cstdio> in the header.
};

/** Parsed CSV contents: a header row plus data rows. */
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /** Index of `column` in the header; Fatal() if absent. */
  std::size_t ColumnIndex(const std::string& column) const;
};

/** Reads an entire CSV file; Fatal() on open failure. */
CsvTable ReadCsv(const std::string& path);

/** Escapes a single field per the subset above. */
std::string CsvEscape(const std::string& field);

/** Splits one CSV line honoring quotes. */
std::vector<std::string> CsvParseLine(const std::string& line);

}  // namespace gpuperf

#endif  // GPUPERF_COMMON_CSV_H_
