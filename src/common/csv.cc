#include "common/csv.h"

#include <cstdio>
#include <fstream>

#include "common/logging.h"

namespace gpuperf {

CsvWriter::CsvWriter(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) Fatal("cannot open CSV for writing: " + path);
  file_ = f;
}

CsvWriter::~CsvWriter() { std::fclose(static_cast<std::FILE*>(file_)); }

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  std::FILE* f = static_cast<std::FILE*>(file_);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) std::fputc(',', f);
    std::string escaped = CsvEscape(fields[i]);
    std::fwrite(escaped.data(), 1, escaped.size(), f);
  }
  std::fputc('\n', f);
}

std::size_t CsvTable::ColumnIndex(const std::string& column) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == column) return i;
  }
  Fatal("CSV column not found: " + column);
}

CsvTable ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) Fatal("cannot open CSV for reading: " + path);
  CsvTable table;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() && !first) continue;
    std::vector<std::string> fields = CsvParseLine(line);
    if (first) {
      table.header = std::move(fields);
      first = false;
    } else {
      table.rows.push_back(std::move(fields));
    }
  }
  return table;
}

std::string CsvEscape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> CsvParseLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace gpuperf
