#include "common/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace gpuperf {

CsvWriter::CsvWriter(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) Fatal("cannot open CSV for writing: " + path);
  file_ = f;
}

CsvWriter::~CsvWriter() { std::fclose(static_cast<std::FILE*>(file_)); }

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  std::FILE* f = static_cast<std::FILE*>(file_);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) std::fputc(',', f);
    std::string escaped = CsvEscape(fields[i]);
    std::fwrite(escaped.data(), 1, escaped.size(), f);
  }
  std::fputc('\n', f);
}

std::size_t CsvTable::ColumnIndex(const std::string& column) const {
  StatusOr<std::size_t> index = FindColumn(column);
  if (!index.ok()) Fatal("CSV column not found: " + index.status().message());
  return *index;
}

StatusOr<std::size_t> CsvTable::FindColumn(const std::string& column) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == column) return i;
  }
  return NotFoundError((path.empty() ? std::string("<memory>") : path) +
                       ":1: missing column '" + column + "'");
}

std::string CsvTable::RowLocation(std::size_t row) const {
  const std::string label = path.empty() ? std::string("<memory>") : path;
  if (row < row_lines.size()) {
    return label + ":" + Format("%d", row_lines[row]);
  }
  return label;
}

CsvTable ReadCsv(const std::string& path) {
  StatusOr<CsvTable> table = TryReadCsv(path);
  if (!table.ok()) Fatal(table.status().message());
  return std::move(table).value();
}

StatusOr<CsvTable> TryReadCsv(const std::string& path) {
  GP_ASSIGN_OR_RETURN(const std::string content, ReadFileToString(path));
  return ParseCsv(content, path);
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open CSV for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return DataLossError(path + ": read error");
  return std::move(buffer).str();
}

StatusOr<CsvTable> ParseCsv(const std::string& content,
                            const std::string& path) {
  const std::string label = path.empty() ? std::string("<memory>") : path;
  CsvTable table;
  table.path = path;
  std::istringstream in(content);
  std::string line;
  bool first = true;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() && !first) continue;
    bool balanced = true;
    std::vector<std::string> fields = CsvParseLine(line, &balanced);
    if (!balanced) {
      return DataLossError(label + ":" + Format("%d", line_number) +
                           ": unterminated quoted field");
    }
    if (first) {
      table.header = std::move(fields);
      first = false;
    } else {
      if (fields.size() != table.header.size()) {
        return DataLossError(
            label + ":" + Format("%d", line_number) +
            Format(": expected %zu fields, got %zu", table.header.size(),
                   fields.size()));
      }
      table.rows.push_back(std::move(fields));
      table.row_lines.push_back(line_number);
    }
  }
  if (first) return DataLossError(label + ":1: empty file (no header row)");
  return table;
}

std::string CsvEscape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> CsvParseLine(const std::string& line) {
  bool balanced = true;
  return CsvParseLine(line, &balanced);
}

std::vector<std::string> CsvParseLine(const std::string& line,
                                      bool* balanced) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  *balanced = !in_quotes;
  return fields;
}

}  // namespace gpuperf
