#ifndef GPUPERF_COMMON_STATS_H_
#define GPUPERF_COMMON_STATS_H_

/**
 * @file
 * Summary statistics and the error metrics used throughout the paper.
 *
 * The paper reports "average error" as the mean absolute percentage error
 * (MAPE) of predicted vs measured times, and visualizes model quality as an
 * "S-curve": predicted/measured ratios sorted ascending (Figures 11-14).
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gpuperf {

/** Arithmetic mean; 0 for empty input. */
double Mean(const std::vector<double>& values);

/** Sample standard deviation (n-1 denominator); 0 for n < 2. */
double StdDev(const std::vector<double>& values);

/** Geometric mean; requires strictly positive values. */
double GeoMean(const std::vector<double>& values);

/**
 * Linear-interpolated percentile, p in [0, 100]. Requires a non-empty
 * input with no NaNs (both are programmer-error CHECKs).
 */
double Percentile(std::vector<double> values, double p);

/**
 * Interpolated quantile of a fixed-bucket histogram, p in [0, 100] —
 * the estimator behind obs::MetricsRegistry's CSV p50/p95/p99 rows
 * (same linear-within-bucket scheme as Prometheus histogram_quantile).
 *
 * `upper_bounds` are the finite, strictly ascending bucket bounds;
 * `counts` are per-bucket counts with one extra overflow entry, so
 * counts.size() == upper_bounds.size() + 1. The first bucket's lower
 * bound is 0 (the histograms here hold non-negative times). A quantile
 * landing in the overflow bucket clamps to the last finite bound; an
 * empty histogram returns 0.
 */
double HistogramQuantile(const std::vector<double>& upper_bounds,
                         const std::vector<std::uint64_t>& counts, double p);

/** |pred - actual| / actual for a single pair. Requires actual != 0. */
double RelativeError(double predicted, double actual);

/** Mean absolute percentage error over paired vectors. */
double Mape(const std::vector<double>& predicted,
            const std::vector<double>& actual);

/** Pearson correlation coefficient; 0 if either side is constant. */
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/**
 * One point of an S-curve (Figures 11-14): the percentage through the
 * sorted test set and the predicted/measured ratio at that position.
 */
struct SCurvePoint {
  double percent;  // 0..100 position within the sorted test set
  double ratio;    // predicted / measured
};

/** Builds the sorted predicted/measured S-curve. */
std::vector<SCurvePoint> SCurve(const std::vector<double>& predicted,
                                const std::vector<double>& actual);

/** Fraction of pairs whose relative error is below `threshold`. */
double FractionWithin(const std::vector<double>& predicted,
                      const std::vector<double>& actual, double threshold);

}  // namespace gpuperf

#endif  // GPUPERF_COMMON_STATS_H_
