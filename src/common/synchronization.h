#ifndef GPUPERF_COMMON_SYNCHRONIZATION_H_
#define GPUPERF_COMMON_SYNCHRONIZATION_H_

/**
 * @file
 * Annotated mutex wrappers for Clang Thread Safety Analysis.
 *
 * PR 1 established the project's concurrency invariant — bit-identical
 * results under any `--jobs` value — and enforced it at runtime with TSan
 * and determinism tests. This header moves the lock discipline to compile
 * time: every mutex in the tree is one of the wrappers below, every
 * guarded member is tagged `GP_GUARDED_BY(mu_)`, and a Clang build with
 * `-Wthread-safety` (promoted to an error under `GPUPERF_WERROR=ON`)
 * rejects any access that does not hold the right lock. Under non-Clang
 * compilers the attributes expand to nothing and the wrappers are
 * zero-cost forwarding shims over the std primitives.
 *
 * Usage rules (enforced by `tools/gpuperf_lint` rule `raw-mutex`):
 *  - No raw `std::mutex` / `std::shared_mutex` / lock guards outside this
 *    header; library code declares `Mutex` / `SharedMutex` members and
 *    scopes critical sections with `MutexLock`, `SharedMutexLock`
 *    (exclusive) or `SharedReaderLock` (shared).
 *  - Every member a lock protects carries `GP_GUARDED_BY(mu_)`; every
 *    private method that expects the lock held carries `GP_REQUIRES(mu_)`.
 *  - Condition waits use `CondVar::Wait(lock)` in a `while` loop so the
 *    predicate is checked in the annotated scope (no lambda predicate —
 *    the analysis cannot see through one).
 */

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// Attribute plumbing: real Clang TSA attributes when available, no-ops
// otherwise (GCC, MSVC). Mirrors abseil's thread_annotations.h shape.
#if defined(__clang__) && defined(__has_attribute)
#define GP_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define GP_THREAD_ANNOTATION_(x)
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define GP_CAPABILITY(x) GP_THREAD_ANNOTATION_(capability(x))
/** Marks an RAII type that acquires in its ctor and releases in its dtor. */
#define GP_SCOPED_CAPABILITY GP_THREAD_ANNOTATION_(scoped_lockable)
/** Data member readable/writable only while holding `x`. */
#define GP_GUARDED_BY(x) GP_THREAD_ANNOTATION_(guarded_by(x))
/** Pointed-to data readable/writable only while holding `x`. */
#define GP_PT_GUARDED_BY(x) GP_THREAD_ANNOTATION_(pt_guarded_by(x))
/** Function requires the listed capabilities held exclusively on entry. */
#define GP_REQUIRES(...) \
  GP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/** Function requires the listed capabilities held at least shared. */
#define GP_REQUIRES_SHARED(...) \
  GP_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
/** Function acquires the capability exclusively and does not release it. */
#define GP_ACQUIRE(...) \
  GP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
/** Function acquires the capability shared and does not release it. */
#define GP_ACQUIRE_SHARED(...) \
  GP_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
/** Function releases the capability (exclusive or shared). */
#define GP_RELEASE(...) \
  GP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define GP_RELEASE_SHARED(...) \
  GP_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
/** Function tries to acquire; first argument is the success return value. */
#define GP_TRY_ACQUIRE(...) \
  GP_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
/** Function must NOT be called while holding the listed capabilities. */
#define GP_EXCLUDES(...) GP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/** Returns a reference to the mutex guarding the annotated data. */
#define GP_RETURN_CAPABILITY(x) GP_THREAD_ANNOTATION_(lock_returned(x))
/** Escape hatch — disables the analysis for one function. Use sparingly. */
#define GP_NO_THREAD_SAFETY_ANALYSIS \
  GP_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace gpuperf {

class CondVar;

/** An annotated exclusive mutex (wraps std::mutex). */
class GP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GP_ACQUIRE() { mu_.lock(); }
  void Unlock() GP_RELEASE() { mu_.unlock(); }
  bool TryLock() GP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/** An annotated reader/writer mutex (wraps std::shared_mutex). */
class GP_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() GP_ACQUIRE() { mu_.lock(); }
  void Unlock() GP_RELEASE() { mu_.unlock(); }
  void LockShared() GP_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() GP_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/**
 * RAII exclusive lock on a Mutex. Holds a std::unique_lock internally so
 * CondVar::Wait can release/reacquire it.
 */
class GP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GP_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() GP_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/** RAII exclusive (writer) lock on a SharedMutex. */
class GP_SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mu) GP_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~SharedMutexLock() GP_RELEASE() { mu_.Unlock(); }

  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/** RAII shared (reader) lock on a SharedMutex. */
class GP_SCOPED_CAPABILITY SharedReaderLock {
 public:
  explicit SharedReaderLock(SharedMutex& mu) GP_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~SharedReaderLock() GP_RELEASE() { mu_.UnlockShared(); }

  SharedReaderLock(const SharedReaderLock&) = delete;
  SharedReaderLock& operator=(const SharedReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/**
 * Condition variable working with Mutex/MutexLock. Deliberately offers
 * only the predicate-free Wait: callers loop `while (!cond) cv.Wait(lock)`
 * inside the annotated scope, so the condition itself is checked where
 * the analysis can prove the lock is held (a lambda predicate would be an
 * opaque function to the analysis).
 */
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /** Atomically releases `lock`, waits, reacquires before returning. */
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gpuperf

#endif  // GPUPERF_COMMON_SYNCHRONIZATION_H_
