#ifndef GPUPERF_COMMON_THREAD_POOL_H_
#define GPUPERF_COMMON_THREAD_POOL_H_

/**
 * @file
 * A fixed-size worker pool with a ParallelFor helper, shared by the
 * measurement campaign (dataset::AppendProfiles) and any other
 * embarrassingly parallel sweep.
 *
 * Design rules:
 *  - The calling thread participates in ParallelFor, so a nested
 *    ParallelFor issued from inside a worker always makes progress even
 *    when every worker is busy (the inner call degenerates to a serial
 *    loop on that worker).
 *  - Iterations are claimed from an atomic counter, so the set of
 *    iterations each thread runs is nondeterministic — callers that need
 *    a deterministic result must write into pre-sized per-index slots
 *    and merge single-threaded afterwards (see dataset::AppendProfiles).
 *  - The first exception thrown by an iteration is rethrown on the
 *    calling thread after the loop drains; remaining unclaimed
 *    iterations are skipped.
 */

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/synchronization.h"

namespace gpuperf {

/** A fixed set of worker threads executing queued tasks. */
class ThreadPool {
 public:
  /**
   * Starts `jobs - 1` worker threads (the caller is the remaining job);
   * `jobs <= 0` selects DefaultJobs(). jobs == 1 runs everything on the
   * calling thread and starts no workers at all.
   */
  explicit ThreadPool(int jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /** The configured parallelism (worker threads + the calling thread). */
  int jobs() const { return jobs_; }

  /** std::thread::hardware_concurrency(), at least 1. */
  static int DefaultJobs();

  /**
   * Runs fn(0) .. fn(n - 1), distributing iterations over the workers
   * and the calling thread; returns when all n have finished. Safe to
   * call from inside another ParallelFor body.
   */
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /**
   * Observer of task-queue depth changes across every pool in the
   * process: called with +k when k helper tasks enqueue and -1 per
   * dequeue. A plain function pointer (not std::function) so common/
   * stays independent of the obs/ layer that feeds the registry gauge —
   * obs::InstallProcessMetrics() binds it at process start. nullptr
   * (the default) disables the hook. The +k call happens while the
   * pool's queue lock is held (so depth can never be observed
   * negative); the observer must therefore be non-blocking — an atomic
   * gauge update, not something that takes locks.
   */
  using QueueDepthObserver = void (*)(long long delta);
  static void SetQueueDepthObserver(QueueDepthObserver observer);

 private:
  struct ForState;

  void WorkerLoop();
  static void RunLoop(const std::shared_ptr<ForState>& state);

  int jobs_;
  std::vector<std::thread> workers_;
  Mutex queue_mu_;
  CondVar queue_cv_;
  std::deque<std::function<void()>> queue_ GP_GUARDED_BY(queue_mu_);
  bool stop_ GP_GUARDED_BY(queue_mu_) = false;
};

}  // namespace gpuperf

#endif  // GPUPERF_COMMON_THREAD_POOL_H_
