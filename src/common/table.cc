#include "common/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace gpuperf {
namespace {

bool LooksNumeric(const std::string& cell) {
  if (cell.empty()) return false;
  for (char c : cell) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != 'e' && c != 'E' && c != '%' && c != 'x') {
      return false;
    }
  }
  return true;
}

}  // namespace

void TextTable::SetHeader(const std::vector<std::string>& cells) {
  header_ = cells;
}

void TextTable::AddRow(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

std::string TextTable::Render() const {
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  std::vector<std::size_t> widths(columns, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < columns; ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      bool right = LooksNumeric(cell);
      std::size_t pad = widths[i] - cell.size();
      if (i > 0) out += "  ";
      if (right) out.append(pad, ' ');
      out += cell;
      if (!right) out.append(pad, ' ');
    }
    // Trim trailing spaces for clean diffs.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < columns; ++i) {
      total += widths[i] + (i > 0 ? 2 : 0);
    }
    out.append(total, '-');
    out += '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out;
}

void TextTable::Print() const {
  std::string rendered = Render();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
}

}  // namespace gpuperf
