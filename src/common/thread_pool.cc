#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

namespace gpuperf {

namespace {

// Loop-claiming state below is algorithm state, not a metric; the
// queue-depth hook is what feeds the observability layer.
std::atomic<ThreadPool::QueueDepthObserver> queue_depth_observer{nullptr};

// Release/acquire pairing: whatever state the installer wrote before
// SetQueueDepthObserver (e.g. the gauge pointer the observer
// dereferences) is visible to any worker that loads the observer.
void NotifyQueueDepth(long long delta) {
  const ThreadPool::QueueDepthObserver observer =
      queue_depth_observer.load(std::memory_order_acquire);
  if (observer != nullptr) observer(delta);
}

}  // namespace

void ThreadPool::SetQueueDepthObserver(QueueDepthObserver observer) {
  queue_depth_observer.store(observer, std::memory_order_release);
}

/** Shared state of one ParallelFor call. */
struct ThreadPool::ForState {
  std::function<void(std::size_t)> fn;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};   // gpuperf-lint: allow(raw-counter)
  std::atomic<std::size_t> done{0};   // gpuperf-lint: allow(raw-counter)
  std::atomic<bool> failed{false};
  Mutex mu;
  CondVar cv;
  std::exception_ptr error GP_GUARDED_BY(mu);
};

int ThreadPool::DefaultJobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int jobs) : jobs_(jobs <= 0 ? DefaultJobs() : jobs) {
  workers_.reserve(jobs_ - 1);
  for (int i = 0; i < jobs_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(queue_mu_);
    stop_ = true;
  }
  queue_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(queue_mu_);
      while (!stop_ && queue_.empty()) queue_cv_.Wait(lock);
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    NotifyQueueDepth(-1);
    task();
  }
}

void ThreadPool::RunLoop(const std::shared_ptr<ForState>& state) {
  for (;;) {
    const std::size_t i = state->next.fetch_add(1);
    if (i >= state->n) return;
    if (!state->failed.load()) {
      try {
        state->fn(i);
      } catch (...) {
        state->failed.store(true);
        MutexLock lock(state->mu);
        if (!state->error) state->error = std::current_exception();
      }
    }
    if (state->done.fetch_add(1) + 1 == state->n) {
      // The caller may already be waiting; wake it under the lock so the
      // notify cannot race with its predicate check.
      MutexLock lock(state->mu);
      state->cv.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs_ == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->fn = fn;
  state->n = n;

  // One helper task per worker that could usefully participate. Helpers
  // arriving after the loop drained exit immediately, so queueing more
  // than needed only costs a queue pop.
  const std::size_t helpers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs_ - 1), n - 1);
  {
    MutexLock lock(queue_mu_);
    for (std::size_t i = 0; i < helpers; ++i) {
      queue_.emplace_back([state] { RunLoop(state); });
    }
    // Report the enqueue before releasing the queue lock: a worker can
    // only pop (and report -1) once the lock is dropped, so the
    // observed depth never transiently goes negative.
    NotifyQueueDepth(static_cast<long long>(helpers));
  }
  queue_cv_.NotifyAll();

  // The calling thread works too; nested calls therefore never deadlock.
  RunLoop(state);

  MutexLock lock(state->mu);
  while (state->done.load() != n) state->cv.Wait(lock);
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace gpuperf
