#include "common/circuit_breaker.h"

#include <atomic>

#include "common/logging.h"

namespace gpuperf {

namespace {

// Not a counter: an install-once observer pointer read on every
// transition, possibly from many grid threads at once.
std::atomic<BreakerTransitionHook> g_transition_hook{nullptr};

void NotifyTransition(BreakerState from, BreakerState to) {
  const BreakerTransitionHook hook =
      g_transition_hook.load(std::memory_order_acquire);
  if (hook != nullptr) hook(from, to);
}

}  // namespace

void SetBreakerTransitionHook(BreakerTransitionHook hook) {
  g_transition_hook.store(hook, std::memory_order_release);
}

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  GP_CHECK(false) << "unhandled BreakerState";
  return "";
}

CircuitBreaker::CircuitBreaker(const BreakerPolicy& policy)
    : policy_(policy) {}

void CircuitBreaker::Advance(double now_us) {
  if (state_ == BreakerState::kOpen &&
      now_us >= open_since_us_ + policy_.cooldown_ms * 1e3) {
    state_ = BreakerState::kHalfOpen;
    probes_in_flight_ = 0;
    NotifyTransition(BreakerState::kOpen, BreakerState::kHalfOpen);
  }
}

void CircuitBreaker::TripOpen(double now_us) {
  const BreakerState from = state_;
  state_ = BreakerState::kOpen;
  open_since_us_ = now_us;
  consecutive_failures_ = 0;
  probes_in_flight_ = 0;
  ++opens_;
  NotifyTransition(from, BreakerState::kOpen);
}

bool CircuitBreaker::AllowsAt(double now_us) {
  if (!enabled()) return true;
  Advance(now_us);
  switch (state_) {
    case BreakerState::kClosed: return true;
    case BreakerState::kOpen: return false;
    case BreakerState::kHalfOpen:
      return probes_in_flight_ < policy_.half_open_probes;
  }
  GP_CHECK(false) << "unhandled BreakerState";
  return false;
}

void CircuitBreaker::OnDispatch(double now_us) {
  if (!enabled()) return;
  Advance(now_us);
  if (state_ == BreakerState::kHalfOpen) ++probes_in_flight_;
}

void CircuitBreaker::OnSuccess(double now_us) {
  if (!enabled()) return;
  Advance(now_us);
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      // The probe came back healthy: full traffic resumes.
      state_ = BreakerState::kClosed;
      consecutive_failures_ = 0;
      probes_in_flight_ = 0;
      NotifyTransition(BreakerState::kHalfOpen, BreakerState::kClosed);
      break;
    case BreakerState::kOpen:
      // A job dispatched before the trip finished while open; the
      // breaker waits for its cooldown regardless.
      break;
  }
}

void CircuitBreaker::OnFailure(double now_us) {
  if (!enabled()) return;
  Advance(now_us);
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= policy_.failure_threshold) {
        TripOpen(now_us);
      }
      break;
    case BreakerState::kHalfOpen:
      // The probe failed: back to open for another full cooldown.
      TripOpen(now_us);
      break;
    case BreakerState::kOpen:
      // Stragglers failing while open do not extend the cooldown.
      break;
  }
}

void CircuitBreaker::OnCancel(double now_us) {
  if (!enabled()) return;
  Advance(now_us);
  if (state_ == BreakerState::kHalfOpen && probes_in_flight_ > 0) {
    --probes_in_flight_;
  }
}

BreakerState CircuitBreaker::StateAt(double now_us) {
  Advance(now_us);
  return state_;
}

}  // namespace gpuperf
