#ifndef GPUPERF_COMMON_TABLE_H_
#define GPUPERF_COMMON_TABLE_H_

/**
 * @file
 * Fixed-width text tables for bench output (paper-style rows).
 */

#include <string>
#include <vector>

namespace gpuperf {

/**
 * Accumulates rows of string cells and renders them with aligned columns.
 *
 * Numeric-looking cells are right-aligned, text cells left-aligned. A
 * separator line is drawn under the header.
 */
class TextTable {
 public:
  /** Sets the header row. */
  void SetHeader(const std::vector<std::string>& cells);

  /** Appends a data row. */
  void AddRow(const std::vector<std::string>& cells);

  /** Renders the table to a string (trailing newline included). */
  std::string Render() const;

  /** Renders and writes to stdout. */
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gpuperf

#endif  // GPUPERF_COMMON_TABLE_H_
