#ifndef GPUPERF_COMMON_RANDOM_H_
#define GPUPERF_COMMON_RANDOM_H_

/**
 * @file
 * Deterministic randomness for the whole project.
 *
 * Every stochastic component (oracle quirk factors, measurement noise,
 * train/test splits) derives its stream from named 64-bit seeds via
 * SplitMix64 so that all experiments are reproducible bit-for-bit across
 * runs and platforms, independent of the standard library's distributions.
 */

#include <cstdint>
#include <string_view>

namespace gpuperf {

/** FNV-1a 64-bit hash of a string; stable across platforms. */
std::uint64_t StableHash(std::string_view text);

/** Combines two 64-bit values into one hash (order-sensitive). */
std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b);

/**
 * SplitMix64 pseudo-random generator.
 *
 * Small state, excellent statistical quality for non-cryptographic use, and
 * trivially seedable from hashes — ideal for keyed deterministic streams
 * such as "noise for kernel K on GPU G".
 */
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /** Next raw 64-bit value. */
  std::uint64_t NextU64();

  /** Uniform double in [0, 1). */
  double NextDouble();

  /** Uniform double in [lo, hi). */
  double NextRange(double lo, double hi);

  /** Uniform integer in [0, n). Requires n > 0. */
  std::uint64_t NextBelow(std::uint64_t n);

  /** Standard normal deviate (Box–Muller, one value per call). */
  double NextGaussian();

  /** Log-normal deviate with log-space mean 0 and std dev `sigma`. */
  double NextLogNormal(double sigma);

 private:
  std::uint64_t state_;
};

/**
 * Deterministic per-key factor in log-normal distribution around 1.0.
 *
 * Used for static "implementation quirk" multipliers: the same
 * (seed, key) pair always yields the same factor.
 */
double KeyedLogNormal(std::uint64_t seed, std::string_view key, double sigma);

/** Deterministic per-key uniform value in [lo, hi]. */
double KeyedUniform(std::uint64_t seed, std::string_view key, double lo,
                    double hi);

}  // namespace gpuperf

#endif  // GPUPERF_COMMON_RANDOM_H_
