#ifndef GPUPERF_COMMON_FAULT_INJECTION_H_
#define GPUPERF_COMMON_FAULT_INJECTION_H_

/**
 * @file
 * Deterministic seed-driven fault plans for fault-tolerance simulations.
 *
 * A fault plan is the complete failure/recovery timeline of a resource
 * pool, generated up front from (seed, MTBF, MTTR) so that a simulation's
 * faults are bit-identical across runs, platforms, and thread counts —
 * the same property the measurement campaign guarantees for profiling.
 * Consumers (simsys/serving) only query the precomputed intervals; they
 * never draw randomness of their own for faults.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gpuperf {

/** Knobs of a fault plan; mtbf_s == 0 disables fault injection. */
struct FaultPlanConfig {
  double mtbf_s = 0;   // mean time between failures per resource (0 = none)
  double mttr_s = 2;   // mean time to repair (0 = instant repair)
  std::uint64_t seed = 1;
};

/** One outage: the resource is down in [down_us, up_us). */
struct DownInterval {
  double down_us = 0;
  double up_us = 0;
};

/** One gray-failure episode: service on the resource runs `factor`
 *  times slower in [start_us, end_us). Factors from overlapping
 *  episodes (e.g. a slow GPU inside a slow rack) multiply. */
struct SlowInterval {
  double start_us = 0;
  double end_us = 0;
  double factor = 1;  // > 1
};

/** The precomputed failure/recovery timeline of a resource pool. */
class FaultPlan {
 public:
  /**
   * Builds the plan for `resources` resources over [0, horizon_us).
   * Failure inter-arrival and repair times are exponential with means
   * MTBF/MTTR, drawn from a per-resource stream keyed on
   * (config.seed, resource index); intervals are disjoint and sorted.
   */
  FaultPlan(std::size_t resources, double horizon_us,
            const FaultPlanConfig& config);

  /** Fault-free plan (no outages, everything available). */
  FaultPlan() = default;

  /**
   * Explicit plan from per-resource outage lists (tests and replay).
   * Each resource's intervals must be non-negative, non-overlapping,
   * and sorted by down_us; zero-length intervals (down_us == up_us,
   * instant repair) are allowed. The first outage may start at t=0.
   */
  FaultPlan(std::vector<std::vector<DownInterval>> outages,
            double horizon_us);

  std::size_t resources() const { return down_.size(); }
  double horizon_us() const { return horizon_us_; }

  /** Outages of `resource`, sorted by down_us. */
  const std::vector<DownInterval>& Outages(std::size_t resource) const;

  /** True if `resource` is down at `time_us`. */
  bool IsDownAt(std::size_t resource, double time_us) const;

  /**
   * The first outage of `resource` overlapping [start_us, end_us), or
   * nullptr if the resource stays up for the whole window.
   */
  const DownInterval* FirstOutageIn(std::size_t resource, double start_us,
                                    double end_us) const;

  /** Fraction of [0, horizon) the resource is up (1.0 when fault-free). */
  double Availability(std::size_t resource) const;

 private:
  std::vector<std::vector<DownInterval>> down_;
  double horizon_us_ = 0;
};

/**
 * One level of the failure hierarchy (host or rack). A domain event
 * hits every member GPU at once: with factor == 0 it fells them (a
 * correlated outage), with factor > 1 it slows them (a correlated gray
 * failure). `size` members per domain; 0 disables the level.
 */
struct ChaosDomainConfig {
  std::size_t size = 0;        // members per domain (0 = level disabled)
  double mtbf_s = 0;           // mean time between domain events (0 = none)
  double mttr_s = 2;           // mean event duration (0 = zero-length blip)
  double factor = 0;           // 0 = outage; > 1 = slowdown multiplier
  double first_event_at_s = -1;  // >= 0 pins the first event (tests, replay)
};

/** Knobs of a chaos plan; every channel defaults to off. */
struct ChaosPlanConfig {
  std::uint64_t seed = 1;
  // Gray failures: per-GPU multiplicative slowdown episodes.
  double gray_mtbf_s = 0;    // mean time between episodes per GPU (0 = none)
  double gray_mttr_s = 5;    // mean episode duration
  double gray_factor = 3;    // service-time multiplier while gray (> 1)
  // Flapping: bursts of short outage blips on a single GPU.
  double flap_mtbf_s = 0;    // mean time between bursts per GPU (0 = none)
  int flap_count = 5;        // blips per burst
  double flap_period_s = 0.2;  // start-to-start spacing inside a burst
  double flap_down_s = 0.05;   // length of each blip
  // Hierarchical fault domains: `host.size` GPUs per host,
  // `rack.size` hosts per rack.
  ChaosDomainConfig host;
  ChaosDomainConfig rack;
};

/** True when any chaos channel (gray, flap, host, rack) is active. */
bool ChaosConfigEnabled(const ChaosPlanConfig& config);

/**
 * A composed, fully precomputed chaos timeline for a GPU pool: binary
 * outages (base FaultPlan + flap blips + outage-domain events, merged
 * per GPU) plus multiplicative gray slowdowns (per-GPU episodes and
 * slowdown-domain events, overlaps multiply). Like FaultPlan, every
 * draw comes from a per-channel stream keyed on (seed, channel, index),
 * so the timeline is bit-identical across runs, platforms, and thread
 * counts, and adding a channel never perturbs the others. Consumers
 * query `outage_plan()` wherever they used a FaultPlan and scale
 * service times by `SlowdownAt(gpu, dispatch_time)`.
 */
class ChaosPlan {
 public:
  /** Empty plan: no outages, SlowdownAt() == 1 everywhere. */
  ChaosPlan() = default;

  /**
   * Builds the composed timeline for `gpus` GPUs over [0, horizon_us).
   * `base` contributes pre-existing outages (e.g. the serving layer's
   * uncorrelated MTBF/MTTR plan); pass nullptr for none.
   */
  ChaosPlan(std::size_t gpus, double horizon_us,
            const ChaosPlanConfig& config, const FaultPlan* base);

  std::size_t resources() const { return outage_plan_.resources(); }
  double horizon_us() const { return outage_plan_.horizon_us(); }

  /** The merged binary-outage timeline (always `gpus` resources). */
  const FaultPlan& outage_plan() const { return outage_plan_; }

  /** Gray episodes of `gpu`, sorted by start_us (may overlap). */
  const std::vector<SlowInterval>& Slowdowns(std::size_t gpu) const;

  /** Product of the factors of every episode containing `time_us`. */
  double SlowdownAt(std::size_t gpu, double time_us) const;

  /** True if no channel produced any outage or slowdown. */
  bool empty() const;

 private:
  FaultPlan outage_plan_;
  std::vector<std::vector<SlowInterval>> slow_;
};

}  // namespace gpuperf

#endif  // GPUPERF_COMMON_FAULT_INJECTION_H_
