#ifndef GPUPERF_COMMON_FAULT_INJECTION_H_
#define GPUPERF_COMMON_FAULT_INJECTION_H_

/**
 * @file
 * Deterministic seed-driven fault plans for fault-tolerance simulations.
 *
 * A fault plan is the complete failure/recovery timeline of a resource
 * pool, generated up front from (seed, MTBF, MTTR) so that a simulation's
 * faults are bit-identical across runs, platforms, and thread counts —
 * the same property the measurement campaign guarantees for profiling.
 * Consumers (simsys/serving) only query the precomputed intervals; they
 * never draw randomness of their own for faults.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gpuperf {

/** Knobs of a fault plan; mtbf_s == 0 disables fault injection. */
struct FaultPlanConfig {
  double mtbf_s = 0;   // mean time between failures per resource (0 = none)
  double mttr_s = 2;   // mean time to repair (0 = instant repair)
  std::uint64_t seed = 1;
};

/** One outage: the resource is down in [down_us, up_us). */
struct DownInterval {
  double down_us = 0;
  double up_us = 0;
};

/** The precomputed failure/recovery timeline of a resource pool. */
class FaultPlan {
 public:
  /**
   * Builds the plan for `resources` resources over [0, horizon_us).
   * Failure inter-arrival and repair times are exponential with means
   * MTBF/MTTR, drawn from a per-resource stream keyed on
   * (config.seed, resource index); intervals are disjoint and sorted.
   */
  FaultPlan(std::size_t resources, double horizon_us,
            const FaultPlanConfig& config);

  /** Fault-free plan (no outages, everything available). */
  FaultPlan() = default;

  /**
   * Explicit plan from per-resource outage lists (tests and replay).
   * Each resource's intervals must be non-negative, non-overlapping,
   * and sorted by down_us; zero-length intervals (down_us == up_us,
   * instant repair) are allowed. The first outage may start at t=0.
   */
  FaultPlan(std::vector<std::vector<DownInterval>> outages,
            double horizon_us);

  std::size_t resources() const { return down_.size(); }
  double horizon_us() const { return horizon_us_; }

  /** Outages of `resource`, sorted by down_us. */
  const std::vector<DownInterval>& Outages(std::size_t resource) const;

  /** True if `resource` is down at `time_us`. */
  bool IsDownAt(std::size_t resource, double time_us) const;

  /**
   * The first outage of `resource` overlapping [start_us, end_us), or
   * nullptr if the resource stays up for the whole window.
   */
  const DownInterval* FirstOutageIn(std::size_t resource, double start_us,
                                    double end_us) const;

  /** Fraction of [0, horizon) the resource is up (1.0 when fault-free). */
  double Availability(std::size_t resource) const;

 private:
  std::vector<std::vector<DownInterval>> down_;
  double horizon_us_ = 0;
};

}  // namespace gpuperf

#endif  // GPUPERF_COMMON_FAULT_INJECTION_H_
