#ifndef GPUPERF_COMMON_ASCII_PLOT_H_
#define GPUPERF_COMMON_ASCII_PLOT_H_

/**
 * @file
 * Terminal scatter/line plots so bench binaries can render the paper's
 * figures directly in their stdout, alongside the numeric series.
 */

#include <string>
#include <vector>

namespace gpuperf {

/** One named point series on a plot. Series are drawn with distinct glyphs. */
struct PlotSeries {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
};

/** Axis scaling options for AsciiPlot. */
struct PlotOptions {
  int width = 72;        // plot area columns
  int height = 20;       // plot area rows
  bool log_x = false;    // log10 x axis (requires positive x)
  bool log_y = false;    // log10 y axis (requires positive y)
  std::string x_label;
  std::string y_label;
  std::string title;
};

/**
 * Renders a scatter plot of the series into a multi-line string.
 *
 * Points that fall on the same cell show the glyph of the last series
 * drawn; glyphs cycle through "*+o#@%".
 */
std::string AsciiPlot(const std::vector<PlotSeries>& series,
                      const PlotOptions& options);

}  // namespace gpuperf

#endif  // GPUPERF_COMMON_ASCII_PLOT_H_
