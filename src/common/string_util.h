#ifndef GPUPERF_COMMON_STRING_UTIL_H_
#define GPUPERF_COMMON_STRING_UTIL_H_

/**
 * @file
 * Small string helpers shared across modules.
 */

#include <string>
#include <string_view>
#include <vector>

namespace gpuperf {

/** Splits `text` on `sep`, keeping empty fields. */
std::vector<std::string> Split(std::string_view text, char sep);

/** Joins `parts` with `sep`. */
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/** Removes leading and trailing ASCII whitespace. */
std::string_view Trim(std::string_view text);

/** True if `text` begins with `prefix`. */
bool StartsWith(std::string_view text, std::string_view prefix);

/** printf-style formatting into a std::string. */
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Renders a double with `digits` significant digits, trimming zeros. */
std::string Pretty(double value, int digits = 4);

/** Human-readable engineering form, e.g. 1.23G, 45.6M, 789k. */
std::string Engineering(double value);

}  // namespace gpuperf

#endif  // GPUPERF_COMMON_STRING_UTIL_H_
