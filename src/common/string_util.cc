#include "common/string_util.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace gpuperf {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
  if (needed > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Pretty(double value, int digits) {
  std::string out = Format("%.*g", digits, value);
  return out;
}

std::string Engineering(double value) {
  const char* suffixes[] = {"", "k", "M", "G", "T", "P"};
  double magnitude = std::fabs(value);
  int tier = 0;
  while (magnitude >= 1000.0 && tier < 5) {
    magnitude /= 1000.0;
    value /= 1000.0;
    ++tier;
  }
  return Format("%.3g%s", value, suffixes[tier]);
}

}  // namespace gpuperf
