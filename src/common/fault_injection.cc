#include "common/fault_injection.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"

namespace gpuperf {

FaultPlan::FaultPlan(std::size_t resources, double horizon_us,
                     const FaultPlanConfig& config)
    : horizon_us_(horizon_us) {
  GP_CHECK_GE(config.mtbf_s, 0.0);
  GP_CHECK_GE(horizon_us, 0.0);
  down_.resize(resources);
  if (config.mtbf_s <= 0) return;
  // MTTR 0 is instant repair: every outage is a zero-length blip that
  // still fails jobs in flight across it.
  GP_CHECK_GE(config.mttr_s, 0.0);
  const double mtbf_us = config.mtbf_s * 1e6;
  const double mttr_us = config.mttr_s * 1e6;
  for (std::size_t r = 0; r < resources; ++r) {
    // Per-resource stream keyed on (seed, index) so adding a resource
    // never perturbs the outages of the existing ones.
    Rng rng(HashCombine(config.seed,
                        StableHash(Format("fault-resource-%zu", r))));
    double t = 0;
    while (true) {
      const double ttf = -std::log(1.0 - rng.NextDouble()) * mtbf_us;
      const double ttr = -std::log(1.0 - rng.NextDouble()) * mttr_us;
      const double down = t + ttf;
      if (down >= horizon_us) break;
      down_[r].push_back({down, down + ttr});
      t = down + ttr;
    }
  }
}

FaultPlan::FaultPlan(std::vector<std::vector<DownInterval>> outages,
                     double horizon_us)
    : down_(std::move(outages)), horizon_us_(horizon_us) {
  GP_CHECK_GE(horizon_us, 0.0);
  for (const std::vector<DownInterval>& intervals : down_) {
    double previous_up = 0;
    for (const DownInterval& o : intervals) {
      GP_CHECK_GE(o.down_us, 0.0);
      GP_CHECK_GE(o.up_us, o.down_us);
      GP_CHECK_GE(o.down_us, previous_up)
          << "outage intervals must be sorted and disjoint";
      previous_up = o.up_us;
    }
  }
}

const std::vector<DownInterval>& FaultPlan::Outages(
    std::size_t resource) const {
  GP_CHECK_LT(resource, down_.size());
  return down_[resource];
}

bool FaultPlan::IsDownAt(std::size_t resource, double time_us) const {
  const DownInterval* outage =
      FirstOutageIn(resource, time_us, time_us + 1e-9);
  return outage != nullptr && outage->down_us <= time_us;
}

const DownInterval* FaultPlan::FirstOutageIn(std::size_t resource,
                                             double start_us,
                                             double end_us) const {
  GP_CHECK_LT(resource, down_.size());
  const std::vector<DownInterval>& outages = down_[resource];
  // First outage ending after start; it overlaps iff it begins before end.
  auto it = std::upper_bound(
      outages.begin(), outages.end(), start_us,
      [](double t, const DownInterval& o) { return t < o.up_us; });
  if (it == outages.end() || it->down_us >= end_us) return nullptr;
  return &*it;
}

double FaultPlan::Availability(std::size_t resource) const {
  GP_CHECK_LT(resource, down_.size());
  if (horizon_us_ <= 0) return 1.0;
  double down_total = 0;
  for (const DownInterval& o : down_[resource]) {
    down_total += std::min(o.up_us, horizon_us_) - o.down_us;
  }
  return std::max(0.0, 1.0 - down_total / horizon_us_);
}

namespace {

/**
 * Event starts/durations for one chaos channel, exponential with means
 * MTBF/MTTR from the channel's own stream. A pinned first event
 * (first_at_s >= 0) replaces the first inter-arrival draw — including
 * t=0 — and with MTTR 0 yields a zero-length blip, never an event that
 * outlives the horizon.
 */
std::vector<DownInterval> DrawEvents(Rng& rng, double horizon_us,
                                     double mtbf_s, double mttr_s,
                                     double first_at_s) {
  std::vector<DownInterval> events;
  const double mtbf_us = mtbf_s * 1e6;
  const double mttr_us = mttr_s * 1e6;
  double t = 0;
  bool first = true;
  while (true) {
    double down;
    if (first && first_at_s >= 0) {
      down = first_at_s * 1e6;
    } else {
      if (mtbf_us <= 0) break;
      down = t - std::log(1.0 - rng.NextDouble()) * mtbf_us;
    }
    first = false;
    const double ttr = -std::log(1.0 - rng.NextDouble()) * mttr_us;
    if (down >= horizon_us) break;
    events.push_back({down, down + ttr});
    t = down + ttr;
  }
  return events;
}

/** Coalesces possibly-overlapping intervals into sorted disjoint ones. */
std::vector<DownInterval> MergeOutages(std::vector<DownInterval> raw) {
  std::sort(raw.begin(), raw.end(),
            [](const DownInterval& a, const DownInterval& b) {
              if (a.down_us != b.down_us) return a.down_us < b.down_us;
              return a.up_us < b.up_us;
            });
  std::vector<DownInterval> merged;
  for (const DownInterval& o : raw) {
    // Touching intervals coalesce too; an isolated zero-length blip
    // (down == up, the MTTR=0 case) survives as its own entry.
    if (!merged.empty() && o.down_us <= merged.back().up_us) {
      merged.back().up_us = std::max(merged.back().up_us, o.up_us);
    } else {
      merged.push_back(o);
    }
  }
  return merged;
}

bool DomainEnabled(const ChaosDomainConfig& domain) {
  return domain.size > 0 &&
         (domain.mtbf_s > 0 || domain.first_event_at_s >= 0);
}

}  // namespace

bool ChaosConfigEnabled(const ChaosPlanConfig& config) {
  return config.gray_mtbf_s > 0 || config.flap_mtbf_s > 0 ||
         DomainEnabled(config.host) || DomainEnabled(config.rack);
}

ChaosPlan::ChaosPlan(std::size_t gpus, double horizon_us,
                     const ChaosPlanConfig& config, const FaultPlan* base) {
  GP_CHECK_GE(horizon_us, 0.0);
  std::vector<std::vector<DownInterval>> outages(gpus);
  slow_.resize(gpus);
  if (base != nullptr && base->resources() > 0) {
    GP_CHECK_EQ(base->resources(), gpus);
    for (std::size_t g = 0; g < gpus; ++g) {
      outages[g] = base->Outages(g);
    }
  }

  // Gray episodes: per-GPU multiplicative slowdowns.
  if (config.gray_mtbf_s > 0) {
    GP_CHECK_GT(config.gray_factor, 1.0);
    GP_CHECK_GE(config.gray_mttr_s, 0.0);
    for (std::size_t g = 0; g < gpus; ++g) {
      Rng rng(HashCombine(config.seed,
                          StableHash(Format("chaos-gray-%zu", g))));
      for (const DownInterval& e :
           DrawEvents(rng, horizon_us, config.gray_mtbf_s,
                      config.gray_mttr_s, /*first_at_s=*/-1)) {
        slow_[g].push_back({e.down_us, e.up_us, config.gray_factor});
      }
    }
  }

  // Flap bursts: trains of short blips on a single GPU.
  if (config.flap_mtbf_s > 0) {
    GP_CHECK_GE(config.flap_count, 1);
    GP_CHECK_GT(config.flap_period_s, 0.0);
    GP_CHECK_GE(config.flap_down_s, 0.0);
    const double period_us = config.flap_period_s * 1e6;
    const double down_us = config.flap_down_s * 1e6;
    for (std::size_t g = 0; g < gpus; ++g) {
      Rng rng(HashCombine(config.seed,
                          StableHash(Format("chaos-flap-%zu", g))));
      double t = 0;
      while (true) {
        const double start =
            t - std::log(1.0 - rng.NextDouble()) * config.flap_mtbf_s * 1e6;
        if (start >= horizon_us) break;
        for (int i = 0; i < config.flap_count; ++i) {
          const double blip = start + i * period_us;
          if (blip >= horizon_us) break;
          outages[g].push_back({blip, blip + down_us});
        }
        t = start + config.flap_count * period_us + down_us;
      }
    }
  }

  // Correlated domain events: host level, then rack level. One drawn
  // event fells (factor 0) or slows (factor > 1) every member GPU.
  struct Level {
    const char* channel;
    const ChaosDomainConfig* domain;
    std::size_t span;  // GPUs per domain
  };
  const std::size_t host_span = std::max<std::size_t>(config.host.size, 1);
  const Level levels[] = {
      {"chaos-host", &config.host, config.host.size},
      // Rack size counts hosts; with hosts disabled it counts GPUs.
      {"chaos-rack", &config.rack, config.rack.size * host_span},
  };
  for (const Level& level : levels) {
    if (!DomainEnabled(*level.domain)) continue;
    GP_CHECK(level.domain->factor == 0 || level.domain->factor > 1)
        << "domain factor must be 0 (outage) or > 1 (slowdown)";
    GP_CHECK_GE(level.domain->mttr_s, 0.0);
    const std::size_t domains = (gpus + level.span - 1) / level.span;
    for (std::size_t d = 0; d < domains; ++d) {
      Rng rng(HashCombine(config.seed, StableHash(Format(
                                           "%s-%zu", level.channel, d))));
      const std::vector<DownInterval> events =
          DrawEvents(rng, horizon_us, level.domain->mtbf_s,
                     level.domain->mttr_s, level.domain->first_event_at_s);
      const std::size_t begin = d * level.span;
      const std::size_t end = std::min(gpus, begin + level.span);
      for (std::size_t g = begin; g < end; ++g) {
        for (const DownInterval& e : events) {
          if (level.domain->factor == 0) {
            outages[g].push_back(e);
          } else {
            slow_[g].push_back({e.down_us, e.up_us, level.domain->factor});
          }
        }
      }
    }
  }

  for (std::size_t g = 0; g < gpus; ++g) {
    outages[g] = MergeOutages(std::move(outages[g]));
    std::sort(slow_[g].begin(), slow_[g].end(),
              [](const SlowInterval& a, const SlowInterval& b) {
                if (a.start_us != b.start_us) return a.start_us < b.start_us;
                if (a.end_us != b.end_us) return a.end_us < b.end_us;
                return a.factor < b.factor;
              });
  }
  outage_plan_ = FaultPlan(std::move(outages), horizon_us);
}

const std::vector<SlowInterval>& ChaosPlan::Slowdowns(std::size_t gpu) const {
  GP_CHECK_LT(gpu, slow_.size());
  return slow_[gpu];
}

double ChaosPlan::SlowdownAt(std::size_t gpu, double time_us) const {
  GP_CHECK_LT(gpu, slow_.size());
  double factor = 1;
  for (const SlowInterval& s : slow_[gpu]) {
    if (s.start_us > time_us) break;
    if (time_us < s.end_us) factor *= s.factor;
  }
  return factor;
}

bool ChaosPlan::empty() const {
  for (std::size_t g = 0; g < resources(); ++g) {
    if (!outage_plan_.Outages(g).empty()) return false;
  }
  for (const std::vector<SlowInterval>& s : slow_) {
    if (!s.empty()) return false;
  }
  return true;
}

}  // namespace gpuperf
