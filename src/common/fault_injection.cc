#include "common/fault_injection.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"

namespace gpuperf {

FaultPlan::FaultPlan(std::size_t resources, double horizon_us,
                     const FaultPlanConfig& config)
    : horizon_us_(horizon_us) {
  GP_CHECK_GE(config.mtbf_s, 0.0);
  GP_CHECK_GE(horizon_us, 0.0);
  down_.resize(resources);
  if (config.mtbf_s <= 0) return;
  // MTTR 0 is instant repair: every outage is a zero-length blip that
  // still fails jobs in flight across it.
  GP_CHECK_GE(config.mttr_s, 0.0);
  const double mtbf_us = config.mtbf_s * 1e6;
  const double mttr_us = config.mttr_s * 1e6;
  for (std::size_t r = 0; r < resources; ++r) {
    // Per-resource stream keyed on (seed, index) so adding a resource
    // never perturbs the outages of the existing ones.
    Rng rng(HashCombine(config.seed,
                        StableHash(Format("fault-resource-%zu", r))));
    double t = 0;
    while (true) {
      const double ttf = -std::log(1.0 - rng.NextDouble()) * mtbf_us;
      const double ttr = -std::log(1.0 - rng.NextDouble()) * mttr_us;
      const double down = t + ttf;
      if (down >= horizon_us) break;
      down_[r].push_back({down, down + ttr});
      t = down + ttr;
    }
  }
}

FaultPlan::FaultPlan(std::vector<std::vector<DownInterval>> outages,
                     double horizon_us)
    : down_(std::move(outages)), horizon_us_(horizon_us) {
  GP_CHECK_GE(horizon_us, 0.0);
  for (const std::vector<DownInterval>& intervals : down_) {
    double previous_up = 0;
    for (const DownInterval& o : intervals) {
      GP_CHECK_GE(o.down_us, 0.0);
      GP_CHECK_GE(o.up_us, o.down_us);
      GP_CHECK_GE(o.down_us, previous_up)
          << "outage intervals must be sorted and disjoint";
      previous_up = o.up_us;
    }
  }
}

const std::vector<DownInterval>& FaultPlan::Outages(
    std::size_t resource) const {
  GP_CHECK_LT(resource, down_.size());
  return down_[resource];
}

bool FaultPlan::IsDownAt(std::size_t resource, double time_us) const {
  const DownInterval* outage =
      FirstOutageIn(resource, time_us, time_us + 1e-9);
  return outage != nullptr && outage->down_us <= time_us;
}

const DownInterval* FaultPlan::FirstOutageIn(std::size_t resource,
                                             double start_us,
                                             double end_us) const {
  GP_CHECK_LT(resource, down_.size());
  const std::vector<DownInterval>& outages = down_[resource];
  // First outage ending after start; it overlaps iff it begins before end.
  auto it = std::upper_bound(
      outages.begin(), outages.end(), start_us,
      [](double t, const DownInterval& o) { return t < o.up_us; });
  if (it == outages.end() || it->down_us >= end_us) return nullptr;
  return &*it;
}

double FaultPlan::Availability(std::size_t resource) const {
  GP_CHECK_LT(resource, down_.size());
  if (horizon_us_ <= 0) return 1.0;
  double down_total = 0;
  for (const DownInterval& o : down_[resource]) {
    down_total += std::min(o.up_us, horizon_us_) - o.down_us;
  }
  return std::max(0.0, 1.0 - down_total / horizon_us_);
}

}  // namespace gpuperf
