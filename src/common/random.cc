#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace gpuperf {

std::uint64_t StableHash(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b) {
  // SplitMix64 finalizer over the xor-rotated pair.
  std::uint64_t x = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t Rng::NextU64() {
  state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextRange(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

std::uint64_t Rng::NextBelow(std::uint64_t n) {
  GP_CHECK_GT(n, 0u);
  // Modulo bias is negligible for n << 2^64 (all our uses).
  return NextU64() % n;
}

double Rng::NextGaussian() {
  // Box-Muller; avoid log(0) by nudging u1 away from zero.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::NextLogNormal(double sigma) {
  return std::exp(sigma * NextGaussian());
}

double KeyedLogNormal(std::uint64_t seed, std::string_view key, double sigma) {
  Rng rng(HashCombine(seed, StableHash(key)));
  return rng.NextLogNormal(sigma);
}

double KeyedUniform(std::uint64_t seed, std::string_view key, double lo,
                    double hi) {
  Rng rng(HashCombine(seed, StableHash(key)));
  return rng.NextRange(lo, hi);
}

}  // namespace gpuperf
