#include "common/status.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace gpuperf {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
  }
  GP_CHECK(false) << "unhandled StatusCode";
  return "";
}

Status::Status(StatusCode code, std::string message)
    : code_(code), message_(std::move(message)) {
  GP_CHECK(code != StatusCode::kOk) << "error Status with kOk code";
}

Status& Status::Annotate(const std::string& context) {
  if (!ok()) message_ = context + ": " + message_;
  return *this;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  return std::string(StatusCodeName(code_)) + ": " + message_;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

StatusOr<long long> ParseInt64(const std::string& text) {
  if (text.empty()) return InvalidArgumentError("empty string, expected integer");
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return InvalidArgumentError("'" + text + "' is not an integer");
  }
  if (errno == ERANGE) {
    return OutOfRangeError("'" + text + "' overflows a 64-bit integer");
  }
  return value;
}

StatusOr<int> ParseInt(const std::string& text) {
  GP_ASSIGN_OR_RETURN(const long long value, ParseInt64(text));
  if (value < std::numeric_limits<int>::min() ||
      value > std::numeric_limits<int>::max()) {
    return OutOfRangeError("'" + text + "' overflows a 32-bit integer");
  }
  return static_cast<int>(value);
}

StatusOr<double> ParseDouble(const std::string& text) {
  if (text.empty()) return InvalidArgumentError("empty string, expected number");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return InvalidArgumentError("'" + text + "' is not a number");
  }
  if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL)) {
    return OutOfRangeError("'" + text + "' overflows a double");
  }
  return value;
}

StatusOr<double> ParseFiniteDouble(const std::string& text) {
  GP_ASSIGN_OR_RETURN(const double value, ParseDouble(text));
  if (!std::isfinite(value)) {
    return OutOfRangeError("'" + text + "' is not finite");
  }
  return value;
}

}  // namespace gpuperf
