#ifndef GPUPERF_COMMON_CIRCUIT_BREAKER_H_
#define GPUPERF_COMMON_CIRCUIT_BREAKER_H_

/**
 * @file
 * Deterministic sim-time circuit breaker (closed / open / half-open).
 *
 * A resource that keeps failing (a flapping GPU in the serving pool)
 * should stop receiving traffic instead of burning every job's retry
 * budget. The breaker trips open after `failure_threshold` consecutive
 * failures, rejects work for `cooldown_ms` of *simulated* time, then
 * admits a bounded number of probe jobs (half-open); one probe success
 * closes it, one probe failure re-opens it for another cooldown.
 *
 * All transitions are driven by caller-supplied timestamps — never a
 * wall clock — so a simulation using breakers stays bit-identical
 * across runs, platforms, and thread counts, exactly like the fault
 * plans in common/fault_injection.h. The class is not thread-safe by
 * itself; each simulation owns its breakers.
 */

#include <cstdint>

namespace gpuperf {

/** Breaker knobs; failure_threshold == 0 disables the breaker. */
struct BreakerPolicy {
  int failure_threshold = 0;   // consecutive failures to trip (0 = off)
  double cooldown_ms = 1000;   // open -> half-open after this sim-time
  int half_open_probes = 1;    // probe jobs admitted while half-open
};

/** The three classic breaker states. */
enum class BreakerState { kClosed, kOpen, kHalfOpen };

/** Stable state name: "closed", "open", "half-open". */
const char* BreakerStateName(BreakerState state);

/**
 * Process-wide observer of breaker state transitions, called as
 * (from, to) on every trip/half-open/close across all breakers. The
 * sanctioned installer is obs::InstallBreakerMetrics(), which exports
 * the transitions as `gpuperf_breaker_*` counters; the indirection
 * exists because common/ cannot depend on obs/. Install once before
 * breakers run (the pointer is atomic, the hook must be thread-safe,
 * and it must never throw or influence breaker behaviour).
 */
using BreakerTransitionHook = void (*)(BreakerState from, BreakerState to);
void SetBreakerTransitionHook(BreakerTransitionHook hook);

/** One resource's breaker, advanced by simulated-time events. */
class CircuitBreaker {
 public:
  /** A default-constructed breaker is disabled (always allows). */
  CircuitBreaker() = default;
  explicit CircuitBreaker(const BreakerPolicy& policy);

  bool enabled() const { return policy_.failure_threshold > 0; }

  /**
   * Whether a new job may be sent to the resource at `now_us`. Advances
   * the time-based open -> half-open transition, so the call is not
   * const; callers that merely inspect use StateAt().
   */
  bool AllowsAt(double now_us);

  /** Commits a dispatch decision (claims a probe slot when half-open). */
  void OnDispatch(double now_us);

  /** A job on the resource succeeded at `now_us`. */
  void OnSuccess(double now_us);

  /** A job on the resource failed at `now_us`. */
  void OnFailure(double now_us);

  /**
   * A dispatched job was cancelled before finishing (a hedge loser):
   * releases the half-open probe slot the dispatch claimed without
   * voting success or failure, so a cancelled probe can never wedge a
   * half-open breaker.
   */
  void OnCancel(double now_us);

  /** The state after applying any due cooldown expiry at `now_us`. */
  BreakerState StateAt(double now_us);

  /** How many times the breaker tripped open. */
  std::int64_t opens() const { return opens_; }

 private:
  void Advance(double now_us);  // open -> half-open when cooldown elapsed
  void TripOpen(double now_us);

  BreakerPolicy policy_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int probes_in_flight_ = 0;   // half-open probe slots claimed
  double open_since_us_ = 0;
  std::int64_t opens_ = 0;
};

}  // namespace gpuperf

#endif  // GPUPERF_COMMON_CIRCUIT_BREAKER_H_
