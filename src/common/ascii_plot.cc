#include "common/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/string_util.h"

namespace gpuperf {
namespace {

constexpr char kGlyphs[] = "*+o#@%";

double Transform(double v, bool log_scale) {
  if (!log_scale) return v;
  GP_CHECK_GT(v, 0.0) << "log axis requires positive values";
  return std::log10(v);
}

}  // namespace

std::string AsciiPlot(const std::vector<PlotSeries>& series,
                      const PlotOptions& options) {
  double min_x = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (const auto& s : series) {
    GP_CHECK_EQ(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      double tx = Transform(s.x[i], options.log_x);
      double ty = Transform(s.y[i], options.log_y);
      min_x = std::min(min_x, tx);
      max_x = std::max(max_x, tx);
      min_y = std::min(min_y, ty);
      max_y = std::max(max_y, ty);
      any = true;
    }
  }
  if (!any) return "(empty plot)\n";
  if (max_x == min_x) max_x = min_x + 1.0;
  if (max_y == min_y) max_y = min_y + 1.0;

  const int width = options.width;
  const int height = options.height;
  std::vector<std::string> grid(height, std::string(width, ' '));

  for (std::size_t si = 0; si < series.size(); ++si) {
    char glyph = kGlyphs[si % (sizeof(kGlyphs) - 1)];
    const auto& s = series[si];
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      double tx = Transform(s.x[i], options.log_x);
      double ty = Transform(s.y[i], options.log_y);
      int col = static_cast<int>(
          std::lround((tx - min_x) / (max_x - min_x) * (width - 1)));
      int row = static_cast<int>(
          std::lround((ty - min_y) / (max_y - min_y) * (height - 1)));
      col = std::clamp(col, 0, width - 1);
      row = std::clamp(row, 0, height - 1);
      grid[height - 1 - row][col] = glyph;
    }
  }

  std::string out;
  if (!options.title.empty()) out += options.title + "\n";
  auto axis_value = [&](double t, bool log_scale) {
    return log_scale ? std::pow(10.0, t) : t;
  };
  for (int r = 0; r < height; ++r) {
    double ty = max_y - (max_y - min_y) * r / (height - 1);
    std::string label;
    if (r == 0 || r == height - 1 || r == height / 2) {
      label = Pretty(axis_value(ty, options.log_y), 3);
    }
    out += Format("%10s |", label.c_str());
    out += grid[r];
    out += '\n';
  }
  out += Format("%10s +", "");
  out.append(options.width, '-');
  out += '\n';
  std::string x_axis(options.width + 12, ' ');
  auto put_label = [&](int col, const std::string& text) {
    int pos = 12 + col;
    for (std::size_t i = 0; i < text.size() &&
                            pos + static_cast<int>(i) <
                                static_cast<int>(x_axis.size());
         ++i) {
      x_axis[pos + i] = text[i];
    }
  };
  put_label(0, Pretty(axis_value(min_x, options.log_x), 3));
  put_label(options.width / 2,
            Pretty(axis_value((min_x + max_x) / 2, options.log_x), 3));
  put_label(options.width - 6,
            Pretty(axis_value(max_x, options.log_x), 3));
  out += x_axis + '\n';
  if (!options.x_label.empty() || !options.y_label.empty()) {
    out += Format("%10s  x: %s   y: %s\n", "", options.x_label.c_str(),
                  options.y_label.c_str());
  }
  std::string legend;
  for (std::size_t si = 0; si < series.size(); ++si) {
    if (series[si].label.empty()) continue;
    legend += Format("  %c %s", kGlyphs[si % (sizeof(kGlyphs) - 1)],
                     series[si].label.c_str());
  }
  if (!legend.empty()) out += "  legend:" + legend + "\n";
  return out;
}

}  // namespace gpuperf
