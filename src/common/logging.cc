#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace gpuperf {
namespace {

double MonotonicSeconds() {
  static const std::chrono::steady_clock::time_point kStart =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       kStart)
      .count();
}

// Mutable process-wide logging configuration. Plain function pointers
// and a level override, all relaxed atomics so concurrent loggers and
// a test installing a sink never race. -1 = no programmatic override.
std::atomic<LogSink> log_sink{nullptr};
std::atomic<LogClockFn> log_clock{nullptr};
std::atomic<int> min_level_override{-1};  // gpuperf-lint: allow(raw-counter)

LogLevel EnvMinLevel() {
  LogLevel level = LogLevel::kInfo;
  internal::ParseLogLevel(std::getenv("GPUPERF_LOG_LEVEL"), &level);
  return level;
}

/** Quotes a field value when the bare form would be ambiguous. */
std::string RenderFieldValue(const std::string& value) {
  bool needs_quoting = value.empty();
  for (char c : value) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\') needs_quoting = true;
  }
  if (!needs_quoting) return value;
  std::string quoted = "\"";
  for (char c : value) {
    if (c == '"' || c == '\\') quoted += '\\';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "INFO";
}

LogLevel MinLogLevel() {
  const int override_level =
      min_level_override.load(std::memory_order_relaxed);
  if (override_level >= 0) return static_cast<LogLevel>(override_level);
  static const LogLevel kEnvLevel = EnvMinLevel();
  return kEnvLevel;
}

void SetMinLogLevel(LogLevel level) {
  min_level_override.store(static_cast<int>(level),
                           std::memory_order_relaxed);
}

LogSink SetLogSinkForTest(LogSink sink) {
  return log_sink.exchange(sink, std::memory_order_relaxed);
}

LogClockFn SetLogClockForTest(LogClockFn clock) {
  return log_clock.exchange(clock, std::memory_order_relaxed);
}

namespace internal {

bool ParseLogLevel(const char* name, LogLevel* level) {
  if (name == nullptr) return false;
  std::string lower;
  for (const char* p = name; *p != '\0'; ++p) {
    lower += static_cast<char>(
        std::tolower(static_cast<unsigned char>(*p)));
  }
  if (lower == "debug") *level = LogLevel::kDebug;
  else if (lower == "info") *level = LogLevel::kInfo;
  else if (lower == "warn") *level = LogLevel::kWarn;
  else if (lower == "error") *level = LogLevel::kError;
  else return false;
  return true;
}

void LogMessage(LogLevel level, const std::string& msg,
                const LogFields& fields) {
  const LogClockFn clock_fn = log_clock.load(std::memory_order_relaxed);
  const double seconds =
      clock_fn != nullptr ? clock_fn() : MonotonicSeconds();
  char stamp[64];
  std::snprintf(stamp, sizeof(stamp), "[gpuperf %s %.3fs] ",
                LogLevelName(level), seconds);
  std::string line = stamp;
  line += msg;
  for (const auto& [key, value] : fields) {
    line += ' ';
    line += key;
    line += '=';
    line += RenderFieldValue(value);
  }
  const LogSink sink = log_sink.load(std::memory_order_relaxed);
  if (sink != nullptr) {
    sink(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

void PanicImpl(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[gpuperf PANIC] %s:%d: %s\n", file, line, msg.c_str());
  std::abort();
}

void FatalImpl(const std::string& msg) {
  LogMessage(LogLevel::kError, msg);
  std::exit(1);
}

CheckMessage::CheckMessage(const char* file, int line, const char* condition)
    : file_(file), line_(line) {
  stream_ << "check failed: " << condition << " ";
}

void CheckMessage::Panic() { PanicImpl(file_, line_, stream_.str()); }

}  // namespace internal

void LogDebug(const std::string& msg, const LogFields& fields) {
  if (MinLogLevel() > LogLevel::kDebug) return;
  internal::LogMessage(LogLevel::kDebug, msg, fields);
}

void LogInfo(const std::string& msg, const LogFields& fields) {
  if (MinLogLevel() > LogLevel::kInfo) return;
  internal::LogMessage(LogLevel::kInfo, msg, fields);
}

void LogWarn(const std::string& msg, const LogFields& fields) {
  if (MinLogLevel() > LogLevel::kWarn) return;
  internal::LogMessage(LogLevel::kWarn, msg, fields);
}

void Fatal(const std::string& msg) { internal::FatalImpl(msg); }

}  // namespace gpuperf
