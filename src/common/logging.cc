#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace gpuperf {
namespace internal {

void LogMessage(LogLevel level, const std::string& msg) {
  const char* tag = "INFO";
  if (level == LogLevel::kWarn) tag = "WARN";
  if (level == LogLevel::kError) tag = "ERROR";
  std::fprintf(stderr, "[gpuperf %s] %s\n", tag, msg.c_str());
}

void PanicImpl(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[gpuperf PANIC] %s:%d: %s\n", file, line, msg.c_str());
  std::abort();
}

void FatalImpl(const std::string& msg) {
  LogMessage(LogLevel::kError, msg);
  std::exit(1);
}

CheckMessage::CheckMessage(const char* file, int line, const char* condition)
    : file_(file), line_(line) {
  stream_ << "check failed: " << condition << " ";
}

void CheckMessage::Panic() { PanicImpl(file_, line_, stream_.str()); }

}  // namespace internal

void LogInfo(const std::string& msg) {
  internal::LogMessage(LogLevel::kInfo, msg);
}

void LogWarn(const std::string& msg) {
  internal::LogMessage(LogLevel::kWarn, msg);
}

void Fatal(const std::string& msg) { internal::FatalImpl(msg); }

}  // namespace gpuperf
