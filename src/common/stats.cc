#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace gpuperf {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - mean) * (v - mean);
  return std::sqrt(sum_sq / static_cast<double>(values.size() - 1));
}

double GeoMean(const std::vector<double>& values) {
  GP_CHECK(!values.empty());
  double log_sum = 0.0;
  for (double v : values) {
    GP_CHECK_GT(v, 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double Percentile(std::vector<double> values, double p) {
  GP_CHECK(!values.empty());
  GP_CHECK_GE(p, 0.0);
  GP_CHECK_LE(p, 100.0);
  for (double v : values) {
    GP_CHECK(!std::isnan(v)) << "Percentile input contains NaN";
  }
  std::sort(values.begin(), values.end());
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double HistogramQuantile(const std::vector<double>& upper_bounds,
                         const std::vector<std::uint64_t>& counts, double p) {
  GP_CHECK(!upper_bounds.empty());
  GP_CHECK_EQ(counts.size(), upper_bounds.size() + 1);
  GP_CHECK_GE(p, 0.0);
  GP_CHECK_LE(p, 100.0);
  for (std::size_t i = 0; i < upper_bounds.size(); ++i) {
    GP_CHECK(std::isfinite(upper_bounds[i]));
    if (i > 0) {
      GP_CHECK_LT(upper_bounds[i - 1], upper_bounds[i]);
    }
  }
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;

  // The p-quantile sits at rank p/100 * total observations; walk the
  // cumulative counts to its bucket and interpolate linearly inside.
  const double rank = p / 100.0 * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double in_bucket = static_cast<double>(counts[i]);
    if (cumulative + in_bucket >= rank && in_bucket > 0) {
      if (i == upper_bounds.size()) {
        // Overflow bucket: no finite upper edge to interpolate toward.
        return upper_bounds.back();
      }
      const double lower = i == 0 ? 0.0 : upper_bounds[i - 1];
      const double upper = upper_bounds[i];
      const double within = (rank - cumulative) / in_bucket;
      return lower + (upper - lower) * within;
    }
    cumulative += in_bucket;
  }
  // rank == total but trailing buckets are empty: the largest
  // observation lives in the last non-empty bucket, already handled
  // above; reaching here means every count was zero after `total > 0`,
  // which cannot happen.
  GP_CHECK(false);
  return 0.0;
}

double RelativeError(double predicted, double actual) {
  GP_CHECK_NE(actual, 0.0);
  return std::fabs(predicted - actual) / std::fabs(actual);
}

double Mape(const std::vector<double>& predicted,
            const std::vector<double>& actual) {
  GP_CHECK_EQ(predicted.size(), actual.size());
  GP_CHECK(!predicted.empty());
  double sum = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    sum += RelativeError(predicted[i], actual[i]);
  }
  return sum / static_cast<double>(predicted.size());
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  GP_CHECK_EQ(x.size(), y.size());
  if (x.size() < 2) return 0.0;
  double mx = Mean(x);
  double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<SCurvePoint> SCurve(const std::vector<double>& predicted,
                                const std::vector<double>& actual) {
  GP_CHECK_EQ(predicted.size(), actual.size());
  std::vector<double> ratios;
  ratios.reserve(predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    GP_CHECK_GT(actual[i], 0.0);
    ratios.push_back(predicted[i] / actual[i]);
  }
  std::sort(ratios.begin(), ratios.end());
  std::vector<SCurvePoint> curve;
  curve.reserve(ratios.size());
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    double percent =
        ratios.size() == 1
            ? 100.0
            : 100.0 * static_cast<double>(i) /
                  static_cast<double>(ratios.size() - 1);
    curve.push_back({percent, ratios[i]});
  }
  return curve;
}

double FractionWithin(const std::vector<double>& predicted,
                      const std::vector<double>& actual, double threshold) {
  GP_CHECK_EQ(predicted.size(), actual.size());
  if (predicted.empty()) return 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (RelativeError(predicted[i], actual[i]) < threshold) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(predicted.size());
}

}  // namespace gpuperf
