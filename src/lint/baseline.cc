#include "lint/baseline.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace gpuperf::lint {

bool ParseBaseline(const std::string& content, Baseline* baseline,
                   std::string* error) {
  std::istringstream in(content);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string rule, path;
    long long count = 0;
    if (!(fields >> rule)) continue;  // blank line
    std::string extra;
    if (!(fields >> path >> count) || count <= 0 || (fields >> extra)) {
      *error = "baseline line " + std::to_string(line_number) +
               ": expected `<rule> <path> <count>` with count > 0";
      return false;
    }
    const auto key = std::make_pair(rule, path);
    if (baseline->entries.count(key) > 0) {
      *error = "baseline line " + std::to_string(line_number) +
               ": duplicate entry for " + rule + " " + path;
      return false;
    }
    baseline->entries[key] = static_cast<int>(count);
  }
  return true;
}

bool LoadBaseline(const std::string& path, Baseline* baseline,
                  std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot read baseline file " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!ParseBaseline(buffer.str(), baseline, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

std::string WriteBaseline(const std::vector<Violation>& violations) {
  std::map<std::pair<std::string, std::string>, int> counts;
  for (const Violation& violation : violations) {
    ++counts[{violation.rule, violation.file}];
  }
  std::ostringstream out;
  out << "# gpuperf_lint baseline — pinned debt, may only shrink.\n"
      << "# Regenerate (after fixing, never to admit new debt) with:\n"
      << "#   gpuperf_lint --write-baseline=<this file> <paths>\n"
      << "# Format: <rule> <path> <count>\n";
  for (const auto& [key, count] : counts) {
    out << key.first << " " << key.second << " " << count << "\n";
  }
  return out.str();
}

std::vector<Violation> ApplyBaseline(const std::vector<Violation>& violations,
                                     const Baseline& baseline,
                                     const std::string& baseline_path) {
  std::map<std::pair<std::string, std::string>, int> used;
  std::vector<Violation> remaining;
  for (const Violation& violation : violations) {
    const auto key = std::make_pair(violation.rule, violation.file);
    const auto it = baseline.entries.find(key);
    if (it != baseline.entries.end() && used[key] < it->second) {
      ++used[key];  // suppressed: pinned debt
      continue;
    }
    remaining.push_back(violation);
  }
  for (const auto& [key, count] : baseline.entries) {
    const int actual = used.count(key) > 0 ? used.at(key) : 0;
    if (actual < count) {
      remaining.push_back(
          {baseline_path, 1, "baseline-stale",
           "entry `" + key.first + " " + key.second + " " +
               std::to_string(count) + "` pins more debt than exists (" +
               std::to_string(actual) +
               " remaining); shrink the entry — the ratchet only turns "
               "one way"});
    }
  }
  std::sort(remaining.begin(), remaining.end(), ViolationLess);
  return remaining;
}

}  // namespace gpuperf::lint
