#ifndef GPUPERF_LINT_SARIF_H_
#define GPUPERF_LINT_SARIF_H_

/**
 * @file
 * SARIF 2.1.0 emission for gpuperf_lint, the interchange format GitHub
 * code scanning ingests. One run, one `gpuperf_lint` tool entry; rule
 * metadata (shortDescription, help) comes straight from the Rules()
 * catalog so `--explain` and the code-scanning UI always agree.
 */

#include <string>
#include <vector>

#include "lint/lint.h"

namespace gpuperf::lint {

/** Serializes `violations` as a SARIF 2.1.0 log (pretty-printed JSON). */
std::string ToSarif(const std::vector<Violation>& violations);

}  // namespace gpuperf::lint

#endif  // GPUPERF_LINT_SARIF_H_
