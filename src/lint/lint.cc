#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "lint/internal.h"
#include "lint/scanner.h"

namespace gpuperf::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule implementations. Each returns (line, message) pairs; the caller
// applies the allow-map and formats.

struct Finding {
  int line = 0;
  std::string message;
};

constexpr char kRuleRawRandom[] = "raw-random";
constexpr char kRuleFatalInLib[] = "fatal-in-lib";
constexpr char kRuleUnorderedOrder[] = "unordered-order";
constexpr char kRuleRawMutex[] = "raw-mutex";
constexpr char kRuleRawCounter[] = "raw-counter";
constexpr char kRuleBundleLifecycle[] = "bundle-lifecycle";
constexpr char kRuleWallClock[] = "wall-clock";
constexpr char kRuleMetricName[] = "metric-name";

/**
 * The audited wall-clock readers. Each entry is a file whose clock use
 * was reviewed and cannot influence results: logging stamps lines with
 * real time, the linter times its own passes for --timings, and the PKA
 * baseline measures its own fitting latency. This list may only shrink.
 */
const char* const kWallClockAllowlist[] = {
    "src/common/logging.cc",
    "src/lint/program.cc",
    "src/baselines/pka.cc",
};

/**
 * Files where `Fatal(` is sanctioned: the legacy convenience APIs that
 * predate PR 2's Status plumbing and are documented "Fatal() on failure",
 * plus logging itself. Shrinking this list is progress; growing it needs
 * a review justification (or a `gpuperf-lint: allow(fatal-in-lib)` with a
 * comment explaining why no error channel exists at that call site).
 */
const char* const kFatalAllowlist[] = {
    "common/logging.h",     "common/logging.cc",
    "common/csv.h",         "common/csv.cc",
    "dataset/dataset.cc",
    "gpuexec/gpu_spec.cc",
    "models/e2e_model.cc",  "models/kw_model.cc",
    "zoo/densenet.cc",      "zoo/resnet.cc",
    "zoo/shufflenet.cc",    "zoo/transformer.cc",
    "zoo/vgg.cc",           "zoo/zoo.cc",
};

bool OnFatalAllowlist(const std::string& path) {
  for (const char* entry : kFatalAllowlist) {
    if (EndsWith(path, entry)) return true;
  }
  return false;
}

std::vector<Finding> CheckRawRandom(
    const std::string& joined, const std::vector<std::size_t>& line_starts) {
  std::vector<Finding> findings;
  struct Pattern {
    const char* token;
    bool call_only;  // require '(' so plain identifiers don't trip it
  };
  const Pattern patterns[] = {
      {"rand", true},         {"srand", true},
      {"random_device", false}, {"system_clock", false},
      {"time", true},         {"clock", true},
  };
  for (const Pattern& pattern : patterns) {
    for (std::size_t pos : FindToken(joined, pattern.token)) {
      const std::size_t end = pos + std::string(pattern.token).size();
      if (pattern.call_only && !NextNonSpaceIs(joined, end, '(')) continue;
      // Member access (x.time(), p->clock()) is some other API, not the
      // C library; qualified std::rand / ::time still match.
      if (pos > 0 && (joined[pos - 1] == '.' ||
                      (pos > 1 && joined[pos - 2] == '-' &&
                       joined[pos - 1] == '>'))) {
        continue;
      }
      findings.push_back(
          {LineAt(line_starts, pos),
           std::string("nondeterministic source '") + pattern.token +
               "' in a deterministic module; seed a common/random Rng "
               "instead"});
    }
  }
  return findings;
}

std::vector<Finding> CheckFatalInLib(
    const std::string& path, const std::string& joined,
    const std::vector<std::size_t>& line_starts) {
  std::vector<Finding> findings;
  if (OnFatalAllowlist(path)) return findings;
  for (std::size_t pos : FindToken(joined, "Fatal")) {
    if (!NextNonSpaceIs(joined, pos + 5, '(')) continue;
    findings.push_back(
        {LineAt(line_starts, pos),
         "Fatal() in library code: recoverable conditions return Status "
         "(common/status.h); if this site truly has no error channel, add "
         "it to the linter allowlist with a review justification"});
  }
  return findings;
}

std::vector<Finding> CheckRawMutex(const std::string& path,
                                   const std::string& joined,
                                   const std::vector<std::size_t>& line_starts) {
  std::vector<Finding> findings;
  if (EndsWith(path, "common/synchronization.h")) return findings;
  const char* const tokens[] = {
      "std::mutex",          "std::shared_mutex",
      "std::recursive_mutex", "std::timed_mutex",
      "std::condition_variable", "std::condition_variable_any",
      "std::lock_guard",     "std::unique_lock",
      "std::shared_lock",    "std::scoped_lock",
  };
  for (const char* token : tokens) {
    // TokenAt's boundary check only guards the last identifier; anchor
    // the "std" side by hand.
    std::size_t pos = joined.find(token);
    const std::size_t len = std::string(token).size();
    while (pos != std::string::npos) {
      const bool start_ok = pos == 0 || !IsIdentChar(joined[pos - 1]);
      const bool end_ok =
          pos + len >= joined.size() || !IsIdentChar(joined[pos + len]);
      if (start_ok && end_ok) {
        findings.push_back(
            {LineAt(line_starts, pos),
             std::string("raw '") + token +
                 "': use the annotated wrappers in common/synchronization.h "
                 "(Mutex, SharedMutex, MutexLock, CondVar) so Clang "
                 "thread-safety analysis sees the lock discipline"});
      }
      pos = joined.find(token, pos + 1);
    }
  }
  return findings;
}

/**
 * True when `arg` (the template argument of a std::atomic<...>, spaces
 * removed, `std::` prefixes stripped) is an integral counter-ish type.
 * bool, pointers, and function-pointer types are not counters and stay
 * legal raw atomics.
 */
bool IsIntegralAtomicArg(const std::string& arg) {
  static const std::set<std::string>* const kIntegral =
      new std::set<std::string>{
          "int",      "unsigned",  "unsignedint",  "long",
          "unsignedlong", "longlong", "unsignedlonglong",
          "short",    "unsignedshort", "size_t",   "ptrdiff_t",
          "int8_t",   "int16_t",   "int32_t",      "int64_t",
          "uint8_t",  "uint16_t",  "uint32_t",     "uint64_t",
          "intptr_t", "uintptr_t",
      };
  return kIntegral->count(arg) > 0;
}

std::vector<Finding> CheckRawCounter(
    const std::string& path, const std::string& joined,
    const std::vector<std::size_t>& line_starts) {
  std::vector<Finding> findings;
  // The registry's own cells are the one sanctioned implementation.
  if (HasDirComponent(path, "obs")) return findings;
  const std::string token = "std::atomic";
  std::size_t pos = joined.find(token);
  while (pos != std::string::npos) {
    const bool start_ok = pos == 0 || !IsIdentChar(joined[pos - 1]);
    std::size_t at = pos + token.size();
    if (!start_ok || at >= joined.size() || joined[at] != '<') {
      pos = joined.find(token, pos + 1);
      continue;
    }
    // Extract the balanced <...> argument and normalize it.
    int depth = 0;
    std::string arg;
    while (at < joined.size()) {
      const char c = joined[at];
      if (c == '<') {
        ++depth;
        if (depth == 1) {
          ++at;
          continue;
        }
      }
      if (c == '>') {
        --depth;
        if (depth == 0) break;
      }
      arg += c;
      ++at;
    }
    if (at < joined.size() && depth == 0) {
      std::string normalized;
      for (char c : arg) {
        if (!std::isspace(static_cast<unsigned char>(c))) normalized += c;
      }
      std::size_t std_prefix = normalized.find("std::");
      while (std_prefix != std::string::npos) {
        normalized.erase(std_prefix, 5);
        std_prefix = normalized.find("std::");
      }
      if (IsIntegralAtomicArg(normalized)) {
        findings.push_back(
            {LineAt(line_starts, pos),
             "raw 'std::atomic<" + normalized +
                 ">' counter: route it through obs::MetricsRegistry "
                 "(obs/metrics_registry.h) so it appears in --metrics-out "
                 "snapshots; a deliberate non-metric atomic takes a "
                 "gpuperf-lint: allow(raw-counter) comment"});
      }
    }
    pos = joined.find(token, pos + 1);
  }
  return findings;
}

/**
 * Bundle promotion and rollback are lifecycle decisions: they belong to
 * models::LifecycleController (which shadows, canaries, and rolls back
 * with counters and structured logs) plus the gpuperf_cli entry points
 * that seed the initial generation. A bare registry->TryPromote() /
 * Rollback() anywhere else bypasses that audit trail, so flag member or
 * qualified calls outside models/ and tools/gpuperf_cli.cc.
 */
std::vector<Finding> CheckBundleLifecycle(
    const std::string& path, const std::string& joined,
    const std::vector<std::size_t>& line_starts) {
  std::vector<Finding> findings;
  if (HasDirComponent(path, "models") ||
      EndsWith(path, "tools/gpuperf_cli.cc")) {
    return findings;
  }
  for (const char* token : {"TryPromote", "Rollback"}) {
    for (std::size_t pos : FindToken(joined, token)) {
      // Only member / qualified calls: x.TryPromote(, p->Rollback(,
      // BundleRegistry::Rollback(. An unrelated free function that
      // happens to share the name stays legal.
      const bool member_access =
          (pos > 0 && joined[pos - 1] == '.') ||
          (pos > 1 && joined[pos - 2] == '-' && joined[pos - 1] == '>') ||
          (pos > 1 && joined[pos - 2] == ':' && joined[pos - 1] == ':');
      if (!member_access) continue;
      if (!NextNonSpaceIs(joined, pos + std::string(token).size(), '(')) {
        continue;
      }
      findings.push_back(
          {LineAt(line_starts, pos),
           std::string("direct '") + token +
               "()' call outside models/: promotion and rollback must go "
               "through models::LifecycleController (models/refit.h) or "
               "the gpuperf_cli entry points so every generation change "
               "is counted and logged; a deliberate exception takes a "
               "gpuperf-lint: allow(bundle-lifecycle) comment"});
    }
  }
  return findings;
}

/**
 * Names declared (anywhere in `joined`) with an unordered container
 * type: `std::unordered_map<K, V> name` records `name`. Template
 * arguments may span lines; `unordered_map<...>::iterator` chains are
 * skipped.
 */
std::set<std::string> CollectUnorderedNames(const std::string& joined) {
  std::set<std::string> names;
  for (const char* container : {"unordered_map", "unordered_set",
                                "unordered_multimap", "unordered_multiset"}) {
    for (std::size_t pos : FindToken(joined, container)) {
      std::size_t at = SkipSpaces(joined, pos + std::string(container).size());
      if (at >= joined.size() || joined[at] != '<') continue;
      int depth = 0;
      while (at < joined.size()) {
        if (joined[at] == '<') ++depth;
        if (joined[at] == '>') {
          --depth;
          if (depth == 0) break;
        }
        ++at;
      }
      if (at >= joined.size()) continue;
      at = SkipSpaces(joined, at + 1);
      if (at + 1 < joined.size() && joined[at] == ':' &&
          joined[at + 1] == ':') {
        continue;  // ::iterator / ::value_type — a usage, not a declaration
      }
      while (at < joined.size() &&
             (joined[at] == '&' || joined[at] == '*' ||
              std::isspace(static_cast<unsigned char>(joined[at])))) {
        ++at;
      }
      std::string name;
      while (at < joined.size() && IsIdentChar(joined[at])) {
        name += joined[at++];
      }
      if (!name.empty() && name != "const") names.insert(name);
    }
  }
  return names;
}

/**
 * Results must not depend on when or how fast the host ran: a
 * system_clock/steady_clock ::now() read in src/ is the time-shaped
 * twin of the randomness raw-random bans. Timeouts and pacing belong to
 * sim time; real measurement loops live on the audited allowlist.
 */
std::vector<Finding> CheckWallClock(const std::string& path,
                                    const std::string& joined,
                                    const std::vector<std::size_t>&
                                        line_starts) {
  std::vector<Finding> findings;
  if (WallClockExempt(path)) return findings;
  for (const auto& [line, clock] :
       WallClockReadSites(joined, 0, joined.size(), line_starts)) {
    findings.push_back(
        {line,
         "wall-clock read '" + clock +
             "::now()' in deterministic library code: results must not "
             "depend on real time; use sim time or a caller-supplied "
             "timestamp, or add the file to the audited allowlist in "
             "src/lint/lint.cc"});
  }
  return findings;
}

/** True when the file produces ordered output (CSV, stdout, files). */
bool HasOutputContext(const std::string& joined) {
  for (const char* token : {"printf", "fprintf", "cout", "ofstream",
                            "WriteCsv", "SaveCsv"}) {
    if (!FindToken(joined, token).empty()) return true;
  }
  return false;
}

std::vector<Finding> CheckUnorderedOrder(const std::string& joined,
                                         const std::string& header_joined,
                                         const std::vector<std::size_t>&
                                             line_starts) {
  std::vector<Finding> findings;
  if (!HasOutputContext(joined)) return findings;
  std::set<std::string> names = CollectUnorderedNames(joined);
  const std::set<std::string> header_names =
      CollectUnorderedNames(header_joined);
  names.insert(header_names.begin(), header_names.end());
  if (names.empty()) return findings;

  for (const auto& [line, name] :
       UnorderedIterationSites(joined, names, 0, joined.size(),
                               line_starts)) {
    findings.push_back(
        {line,
         "range-for over unordered container '" + name +
             "' in a file that writes CSV/stdout: hash-iteration order is "
             "unspecified; iterate a sorted view (or annotate allow() with "
             "a why-order-independent comment)"});
  }
  return findings;
}

/** True when `name` matches gpuperf_<area>_<name> (lowercase + digits). */
bool IsValidMetricName(const std::string& name) {
  const std::string prefix = "gpuperf_";
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  // <area>: one or more [a-z0-9], then '_', then a nonempty tail of
  // [a-z0-9_] that does not start with '_' (no empty area or name).
  std::size_t i = prefix.size();
  std::size_t area_len = 0;
  while (i < name.size() &&
         ((name[i] >= 'a' && name[i] <= 'z') ||
          (name[i] >= '0' && name[i] <= '9'))) {
    ++i;
    ++area_len;
  }
  if (area_len == 0 || i >= name.size() || name[i] != '_') return false;
  ++i;  // the area/name separator
  if (i >= name.size()) return false;
  for (std::size_t j = i; j < name.size(); ++j) {
    const char c = name[j];
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) {
      return false;
    }
  }
  return name.back() != '_';
}

std::vector<Finding> CheckMetricName(const FileScan& scan) {
  std::vector<Finding> findings;
  const std::string& joined = scan.joined;
  // Registration is always a member call on a MetricsRegistry:
  // registry.counter("name", ...) / ->gauge(...) / .histogram(...).
  for (const char* method : {"counter", "gauge", "histogram"}) {
    for (std::size_t pos : FindToken(joined, method)) {
      const bool member =
          (pos > 0 && joined[pos - 1] == '.') ||
          (pos > 1 && joined[pos - 2] == '-' && joined[pos - 1] == '>');
      if (!member) continue;
      std::size_t at = SkipSpaces(joined, pos + std::string(method).size());
      if (at >= joined.size() || joined[at] != '(') continue;
      // Blanking preserves offsets, so the first argument sits at the
      // same position in the raw text; only literal first arguments are
      // checkable (a variable may hold any name).
      std::size_t quote = SkipSpaces(scan.raw, at + 1);
      if (quote >= scan.raw.size() || scan.raw[quote] != '"') continue;
      std::string literal;
      std::size_t i = quote + 1;
      while (i < scan.raw.size() && scan.raw[i] != '"' &&
             scan.raw[i] != '\n') {
        if (scan.raw[i] == '\\' && i + 1 < scan.raw.size()) ++i;
        literal += scan.raw[i];
        ++i;
      }
      if (i >= scan.raw.size() || scan.raw[i] != '"') continue;
      if (IsValidMetricName(literal)) continue;
      findings.push_back(
          {LineAt(scan.line_starts, pos),
           "metric name '" + literal + "' does not match gpuperf_<area>_"
           "<name> (lowercase letters, digits, underscores); snapshots "
           "sort and dashboards group by that convention"});
    }
  }
  return findings;
}

}  // namespace

// Shared with the determinism-taint pass (program.cc), which applies the
// same range-for detection inside individual function bodies.
std::vector<std::pair<int, std::string>> UnorderedIterationSites(
    const std::string& joined, const std::set<std::string>& names,
    std::size_t begin, std::size_t end,
    const std::vector<std::size_t>& line_starts) {
  std::vector<std::pair<int, std::string>> sites;
  if (names.empty()) return sites;
  for (std::size_t pos : FindToken(joined, "for")) {
    if (pos < begin || pos >= end) continue;
    std::size_t at = SkipSpaces(joined, pos + 3);
    if (at >= joined.size() || joined[at] != '(') continue;
    // Find the matching close paren (the header may span lines).
    int depth = 0;
    std::size_t close = at;
    while (close < joined.size()) {
      if (joined[close] == '(') ++depth;
      if (joined[close] == ')') {
        --depth;
        if (depth == 0) break;
      }
      ++close;
    }
    if (close >= joined.size()) continue;
    // A range-for has a top-level ':' that is not part of '::'.
    std::size_t colon = std::string::npos;
    int inner = 0;
    for (std::size_t i = at + 1; i < close; ++i) {
      const char c = joined[i];
      if (c == '(' || c == '[' || c == '{') ++inner;
      if (c == ')' || c == ']' || c == '}') --inner;
      if (inner != 0 || c != ':') continue;
      if (i > 0 && joined[i - 1] == ':') continue;
      if (i + 1 < close && joined[i + 1] == ':') {
        ++i;  // skip the '::' pair entirely
        continue;
      }
      colon = i;
      break;
    }
    if (colon == std::string::npos) continue;
    // Any identifier in the range expression that names an unordered
    // container is a hash-order iteration.
    const std::string range = joined.substr(colon + 1, close - colon - 1);
    std::string ident;
    std::string hit;
    for (std::size_t i = 0; i <= range.size(); ++i) {
      const char c = i < range.size() ? range[i] : ' ';
      if (IsIdentChar(c)) {
        ident += c;
      } else {
        if (names.count(ident) > 0) hit = ident;
        ident.clear();
      }
    }
    if (hit.empty()) continue;
    sites.emplace_back(LineAt(line_starts, pos), hit);
  }
  return sites;
}

std::set<std::string> UnorderedNamesIn(const std::string& joined) {
  return CollectUnorderedNames(joined);
}

bool WallClockExempt(const std::string& path) {
  if (!HasDirComponent(path, "src")) return true;
  for (const char* entry : kWallClockAllowlist) {
    if (EndsWith(path, entry)) return true;
  }
  return false;
}

// Shared with the determinism-taint pass (program.cc), which applies the
// same ::now() detection inside individual function bodies.
std::vector<std::pair<int, std::string>> WallClockReadSites(
    const std::string& joined, std::size_t begin, std::size_t end,
    const std::vector<std::size_t>& line_starts) {
  std::vector<std::pair<int, std::string>> sites;
  for (const char* clock : {"steady_clock", "system_clock"}) {
    for (std::size_t pos : FindToken(joined, clock)) {
      if (pos < begin || pos >= end) continue;
      std::size_t at =
          SkipSpaces(joined, pos + std::string(clock).size());
      if (at + 1 >= joined.size() || joined[at] != ':' ||
          joined[at + 1] != ':') {
        continue;
      }
      at = SkipSpaces(joined, at + 2);
      if (joined.compare(at, 3, "now") != 0) continue;
      if (at + 3 < joined.size() && IsIdentChar(joined[at + 3])) continue;
      if (!NextNonSpaceIs(joined, at + 3, '(')) continue;
      sites.emplace_back(LineAt(line_starts, pos), clock);
    }
  }
  std::sort(sites.begin(), sites.end());
  return sites;
}

std::string FormatViolation(const Violation& violation) {
  std::ostringstream out;
  out << violation.file << ":" << violation.line << ": " << violation.rule
      << ": " << violation.message;
  return out.str();
}

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo>* const kRules = new std::vector<RuleInfo>{
      {kRuleRawRandom,
       "nondeterminism sources are banned in deterministic modules",
       "The project invariant is bit-identical results for any --jobs "
       "value and any run; rand(), std::random_device, wall-clock time() "
       "/ clock(), and system_clock all break that silently. Seeded "
       "common/random Rng instances keep every sample reproducible.",
       "// gpuperf-lint: allow(raw-random) on the offending line, with a "
       "comment explaining why the value never influences results."},
      {kRuleFatalInLib,
       "library code reports Status instead of calling Fatal()",
       "PR 2 split errors gem5-style: Fatal is for unrecoverable "
       "programmer errors in leaf tools, Status for everything a caller "
       "could handle. A Fatal in library code turns a corrupt input file "
       "into a process abort for every embedder. The audited allowlist "
       "in src/lint/lint.cc covers the legacy convenience APIs and may "
       "only shrink.",
       "Return Status/StatusOr (common/status.h); if no error channel "
       "exists, add the file to the allowlist with a review "
       "justification or annotate gpuperf-lint: allow(fatal-in-lib)."},
      {kRuleUnorderedOrder,
       "no range-for over unordered containers in files that write output",
       "Hash-iteration order is unspecified and varies across libstdc++ "
       "versions and ASLR seeds; iterating an unordered container while "
       "producing CSV/stdout output leaks that order into bytes the "
       "project promises are deterministic. Iterate a sorted view.",
       "// gpuperf-lint: allow(unordered-order) with a comment proving "
       "the loop's effect is order-independent (e.g. a sum)."},
      {kRuleRawMutex,
       "raw std synchronization primitives are banned outside the wrappers",
       "Clang Thread Safety Analysis only checks lock discipline it can "
       "see; a raw std::mutex or lock_guard is invisible to it. Every "
       "mutex must be a common/synchronization.h wrapper (Mutex, "
       "SharedMutex, MutexLock, CondVar) so -Wthread-safety verifies "
       "every acquisition at compile time.",
       "Use the annotated wrappers; gpuperf-lint: allow(raw-mutex) only "
       "for code that genuinely cannot include common/ headers."},
      {kRuleRawCounter,
       "integral std::atomic counters are banned outside src/obs/",
       "Ad-hoc atomic counters are invisible to --metrics-out snapshots "
       "and drift out of the observability story. Counters route through "
       "obs::MetricsRegistry; atomics of bool, pointers, and function "
       "pointers are algorithm state, not metrics, and stay legal.",
       "// gpuperf-lint: allow(raw-counter) for a deliberate non-metric "
       "atomic, with a comment saying what it synchronizes."},
      {kRuleBundleLifecycle,
       "bundle promotion/rollback only via the lifecycle controller",
       "models::LifecycleController shadows, canaries, counts, and logs "
       "every generation change; a bare registry->TryPromote() or "
       "Rollback() elsewhere bypasses that audit trail and the canary "
       "gate. Only models/ and the gpuperf_cli entry points may call "
       "them directly.",
       "Route through models::LifecycleController (models/refit.h), or "
       "annotate gpuperf-lint: allow(bundle-lifecycle) with the reason."},
      {kRuleWallClock,
       "wall-clock ::now() reads are banned in src/ outside the allowlist",
       "system_clock::now() and steady_clock::now() make results depend "
       "on when and how fast the host ran — the time-shaped twin of the "
       "nondeterminism raw-random bans. Simulation, serving, and models "
       "advance sim time only; the audited allowlist in src/lint/lint.cc "
       "covers logging timestamps, the linter's own --timings pass, and "
       "the PKA baseline's latency measurement, and may only shrink.",
       "Thread sim time or a caller-supplied timestamp through instead; "
       "a genuine new measurement loop adds its file to the allowlist "
       "with a review justification, or annotates gpuperf-lint: "
       "allow(wall-clock)."},
      {kRuleMetricName,
       "registered metric names must match gpuperf_<area>_<name>",
       "Every instrument registered in obs::MetricsRegistry lands in "
       "--metrics-out snapshots, Prometheus exposition, and flight-"
       "recorder timelines; snapshots sort by name and dashboards group "
       "by the gpuperf_<area>_ prefix. A literal that breaks the "
       "convention (uppercase, dashes, a missing area segment) scatters "
       "its family across the sort order and escapes prefix-based "
       "scrape configs. Only literal first arguments are checked — a "
       "variable may legitimately hold any name.",
       "Rename to gpuperf_<area>_<name> (lowercase letters, digits, "
       "underscores), or gpuperf-lint: allow(metric-name) on a line "
       "that deliberately registers a bad name (e.g. a test of the "
       "validation itself)."},
      {"layering",
       "the include graph must match the declared module DAG",
       "src/lint/layers.txt declares which modules each module may "
       "include (common -> dnn/gpuexec/obs -> dataset/regression -> "
       "models -> sched/simsys -> lint/tools). An upward or undeclared "
       "include edge couples layers that must stay independent, and a "
       "cycle makes the system untestable in isolation. The pass builds "
       "the full include graph of src/, tools/, tests/, and bench/ and "
       "reports any edge the DAG does not allow, with the cycle it would "
       "close.",
       "Add the edge to src/lint/layers.txt in the same change, with a "
       "CONTRIBUTING-reviewed justification; there is no allow-comment "
       "for architecture."},
      {"lock-order",
       "all lock nestings must follow one global acquisition order",
       "Two locks taken in opposite orders by two threads deadlock. The "
       "pass tracks MutexLock/SharedMutexLock/SharedReaderLock scopes in "
       "every TU, keys locks by member name, assembles the global "
       "acquisition graph, and reports any cycle with a witness path for "
       "each direction — including two instances of the same lock "
       "acquired in data-dependent order.",
       "Restructure so locks are taken in one order (copy out under the "
       "first lock, then take the second), or gpuperf-lint: "
       "allow(lock-order) on the inner acquisition with a proof of why "
       "the order is fixed."},
      {"determinism-taint",
       "nondeterminism must not reach output writers, even indirectly",
       "unordered-order catches hash-order iteration next to output in "
       "the same file; this pass follows the taint one call further: a "
       "function that iterates an unordered container (or consumes "
       "unseeded randomness) and calls a function anywhere in the tree "
       "that writes CSV/stdout/trace output leaks unspecified order into "
       "bytes the project promises are deterministic.",
       "Iterate a sorted view before calling the writer, or gpuperf-"
       "lint: allow(determinism-taint) on the iteration line with a "
       "why-order-independent comment."},
  };
  return *kRules;
}

const std::vector<std::string>& RuleNames() {
  static const std::vector<std::string>* const kNames = [] {
    auto* names = new std::vector<std::string>;
    for (const RuleInfo& rule : Rules()) names->push_back(rule.id);
    return names;
  }();
  return *kNames;
}

const RuleInfo* FindRule(const std::string& rule_id) {
  for (const RuleInfo& rule : Rules()) {
    if (rule_id == rule.id) return &rule;
  }
  return nullptr;
}

bool ViolationLess(const Violation& a, const Violation& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  if (a.rule != b.rule) return a.rule < b.rule;
  return a.message < b.message;
}

std::vector<Violation> CheckPerFileRules(const FileScan& scan) {
  const std::string& joined = scan.joined;
  const std::vector<std::size_t>& line_starts = scan.line_starts;

  std::vector<std::pair<std::string, Finding>> all;
  for (Finding& f : CheckRawRandom(joined, line_starts)) {
    all.emplace_back(kRuleRawRandom, std::move(f));
  }
  for (Finding& f : CheckFatalInLib(scan.path, joined, line_starts)) {
    all.emplace_back(kRuleFatalInLib, std::move(f));
  }
  for (Finding& f :
       CheckUnorderedOrder(joined, scan.header_joined, line_starts)) {
    all.emplace_back(kRuleUnorderedOrder, std::move(f));
  }
  for (Finding& f : CheckRawMutex(scan.path, joined, line_starts)) {
    all.emplace_back(kRuleRawMutex, std::move(f));
  }
  for (Finding& f : CheckRawCounter(scan.path, joined, line_starts)) {
    all.emplace_back(kRuleRawCounter, std::move(f));
  }
  for (Finding& f : CheckBundleLifecycle(scan.path, joined, line_starts)) {
    all.emplace_back(kRuleBundleLifecycle, std::move(f));
  }
  for (Finding& f : CheckWallClock(scan.path, joined, line_starts)) {
    all.emplace_back(kRuleWallClock, std::move(f));
  }
  for (Finding& f : CheckMetricName(scan)) {
    all.emplace_back(kRuleMetricName, std::move(f));
  }

  std::vector<Violation> violations;
  for (auto& [rule, finding] : all) {
    const auto it = scan.allow.find(finding.line);
    if (it != scan.allow.end() && it->second.count(rule) > 0) continue;
    violations.push_back(
        Violation{scan.path, finding.line, rule, std::move(finding.message)});
  }
  std::sort(violations.begin(), violations.end(), ViolationLess);
  return violations;
}

std::vector<Violation> LintContent(const std::string& path,
                                   const std::string& content,
                                   const std::string& header_content) {
  return CheckPerFileRules(ScanFile(path, content, header_content));
}

namespace {

bool IsSourceFile(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

bool LintOneFile(const std::filesystem::path& path,
                 std::vector<Violation>* violations, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot read " + path.string();
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  // The paired header of a .cc extends unordered-order across the
  // interface/implementation split (members declared there, iterated
  // here).
  std::string header_content;
  if (path.extension() == ".cc" || path.extension() == ".cpp") {
    std::filesystem::path header = path;
    header.replace_extension(".h");
    std::ifstream header_in(header, std::ios::binary);
    if (header_in) {
      std::ostringstream header_buffer;
      header_buffer << header_in.rdbuf();
      header_content = header_buffer.str();
    }
  }

  std::vector<Violation> found =
      LintContent(path.generic_string(), buffer.str(), header_content);
  violations->insert(violations->end(),
                     std::make_move_iterator(found.begin()),
                     std::make_move_iterator(found.end()));
  return true;
}

}  // namespace

bool ListSourceFiles(const std::vector<std::string>& paths,
                     std::vector<std::string>* files, std::string* error) {
  std::set<std::string> seen;
  for (const std::string& arg : paths) {
    const std::filesystem::path path(arg);
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::vector<std::string> walked;
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path, ec)) {
        if (entry.is_regular_file() && IsSourceFile(entry.path())) {
          walked.push_back(entry.path().generic_string());
        }
      }
      if (ec) {
        *error = "cannot walk " + arg + ": " + ec.message();
        return false;
      }
      for (std::string& file : walked) seen.insert(std::move(file));
    } else if (std::filesystem::is_regular_file(path, ec)) {
      seen.insert(path.generic_string());
    } else {
      *error = "no such file or directory: " + arg;
      return false;
    }
  }
  files->assign(seen.begin(), seen.end());
  return true;
}

bool LintPaths(const std::vector<std::string>& paths,
               std::vector<Violation>* violations, std::string* error) {
  std::vector<std::string> files;
  if (!ListSourceFiles(paths, &files, error)) return false;
  std::vector<Violation> found;
  for (const std::string& file : files) {
    if (!LintOneFile(file, &found, error)) return false;
  }
  std::sort(found.begin(), found.end(), ViolationLess);
  violations->insert(violations->end(),
                     std::make_move_iterator(found.begin()),
                     std::make_move_iterator(found.end()));
  return true;
}

}  // namespace gpuperf::lint
