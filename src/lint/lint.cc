#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace gpuperf::lint {
namespace {

// ---------------------------------------------------------------------------
// Lexing: blank out comments, string literals, and char literals so the
// rules only ever see code, and collect `gpuperf-lint: allow(...)`
// directives from line comments. Line structure is preserved (every
// blanked character becomes a space), so reported line numbers match the
// original file.

struct ScanResult {
  std::vector<std::string> code;               // blanked, split by line
  std::map<int, std::set<std::string>> allow;  // 1-based line -> rule ids
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/** Parses "... gpuperf-lint: allow(a, b) ..." out of one comment. */
std::set<std::string> ParseAllowDirective(const std::string& comment) {
  std::set<std::string> rules;
  const std::string marker = "gpuperf-lint:";
  std::size_t at = comment.find(marker);
  if (at == std::string::npos) return rules;
  at = comment.find("allow(", at + marker.size());
  if (at == std::string::npos) return rules;
  const std::size_t open = at + 5;  // index of '('
  const std::size_t close = comment.find(')', open);
  if (close == std::string::npos) return rules;
  std::string rule;
  for (std::size_t i = open + 1; i <= close; ++i) {
    const char c = comment[i];
    if (c == ',' || c == ')' || c == ' ') {
      if (!rule.empty()) rules.insert(rule);
      rule.clear();
    } else {
      rule += c;
    }
  }
  return rules;
}

ScanResult ScanSource(const std::string& content) {
  ScanResult result;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  State state = State::kCode;
  std::string line;             // blanked current line
  std::string comment;          // text of the current line comment
  std::string raw_delimiter;    // of the active R"delim( ... )delim"
  bool line_has_code = false;   // non-space code before any comment
  int line_number = 1;

  auto flush_line = [&] {
    if (state == State::kLineComment) {
      const std::set<std::string> rules = ParseAllowDirective(comment);
      if (!rules.empty()) {
        // A trailing comment guards its own line; a standalone comment
        // line guards the next line.
        const int target = line_has_code ? line_number : line_number + 1;
        result.allow[target].insert(rules.begin(), rules.end());
      }
      comment.clear();
      state = State::kCode;
    }
    // Strings never span lines (raw strings and block comments do).
    if (state == State::kString || state == State::kChar) state = State::kCode;
    result.code.push_back(line);
    line.clear();
    line_has_code = false;
    ++line_number;
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      flush_line();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          line += "  ";
          ++i;
        } else if (c == '"' && i > 0 && content[i - 1] == 'R' &&
                   (i < 2 || !IsIdentChar(content[i - 2]))) {
          // R"delim( — capture the delimiter up to the '('.
          raw_delimiter.clear();
          std::size_t j = i + 1;
          while (j < content.size() && content[j] != '(') {
            raw_delimiter += content[j++];
          }
          line += std::string(j - i + 1, ' ');
          i = j;
          state = State::kRawString;
        } else if (c == '"') {
          state = State::kString;
          line += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          line += ' ';
        } else {
          line += c;
          if (!std::isspace(static_cast<unsigned char>(c))) {
            line_has_code = true;
          }
        }
        break;
      case State::kLineComment:
        comment += c;
        line += ' ';
        break;
      case State::kBlockComment:
        line += ' ';
        if (c == '*' && next == '/') {
          state = State::kCode;
          line += ' ';
          ++i;
        }
        break;
      case State::kString:
        line += ' ';
        if (c == '\\') {
          line += ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        line += ' ';
        if (c == '\\') {
          line += ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString: {
        // Close only on )delim" — compare in place.
        const std::string close = ")" + raw_delimiter + "\"";
        if (content.compare(i, close.size(), close) == 0) {
          line += std::string(close.size(), ' ');
          i += close.size() - 1;
          state = State::kCode;
        } else {
          line += ' ';
        }
        break;
      }
    }
  }
  if (!line.empty() || state == State::kLineComment) flush_line();
  return result;
}

// ---------------------------------------------------------------------------
// Token helpers over the blanked code.

/** True when code[pos..] starts the whole-word `token`. */
bool TokenAt(const std::string& code, std::size_t pos,
             const std::string& token) {
  if (code.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && IsIdentChar(code[pos - 1])) return false;
  const std::size_t end = pos + token.size();
  if (end < code.size() && IsIdentChar(code[end])) return false;
  return true;
}

/** All whole-word occurrences of `token` in `code`. */
std::vector<std::size_t> FindToken(const std::string& code,
                                   const std::string& token) {
  std::vector<std::size_t> hits;
  std::size_t pos = code.find(token);
  while (pos != std::string::npos) {
    if (TokenAt(code, pos, token)) hits.push_back(pos);
    pos = code.find(token, pos + 1);
  }
  return hits;
}

std::size_t SkipSpaces(const std::string& code, std::size_t pos) {
  while (pos < code.size() &&
         std::isspace(static_cast<unsigned char>(code[pos]))) {
    ++pos;
  }
  return pos;
}

/** True when the next non-space character after `pos` is `want`. */
bool NextNonSpaceIs(const std::string& code, std::size_t pos, char want) {
  pos = SkipSpaces(code, pos);
  return pos < code.size() && code[pos] == want;
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/** The 1-based line of offset `pos` in the joined blanked text. */
int LineAt(const std::vector<std::size_t>& line_starts, std::size_t pos) {
  const auto it =
      std::upper_bound(line_starts.begin(), line_starts.end(), pos);
  return static_cast<int>(it - line_starts.begin());
}

// ---------------------------------------------------------------------------
// Rule implementations. Each returns (line, message) pairs; the caller
// applies the allow-map and formats.

struct Finding {
  int line = 0;
  std::string message;
};

constexpr char kRuleRawRandom[] = "raw-random";
constexpr char kRuleFatalInLib[] = "fatal-in-lib";
constexpr char kRuleUnorderedOrder[] = "unordered-order";
constexpr char kRuleRawMutex[] = "raw-mutex";
constexpr char kRuleRawCounter[] = "raw-counter";
constexpr char kRuleBundleLifecycle[] = "bundle-lifecycle";

/**
 * Files where `Fatal(` is sanctioned: the legacy convenience APIs that
 * predate PR 2's Status plumbing and are documented "Fatal() on failure",
 * plus logging itself. Shrinking this list is progress; growing it needs
 * a review justification (or a `gpuperf-lint: allow(fatal-in-lib)` with a
 * comment explaining why no error channel exists at that call site).
 */
const char* const kFatalAllowlist[] = {
    "common/logging.h",     "common/logging.cc",
    "common/csv.h",         "common/csv.cc",
    "dataset/dataset.cc",   "dnn/layer.cc",
    "gpuexec/gpu_spec.cc",  "gpuexec/trace_export.cc",
    "models/e2e_model.cc",  "models/kw_model.cc",
    "zoo/densenet.cc",      "zoo/resnet.cc",
    "zoo/shufflenet.cc",    "zoo/transformer.cc",
    "zoo/vgg.cc",           "zoo/zoo.cc",
};

bool OnFatalAllowlist(const std::string& path) {
  for (const char* entry : kFatalAllowlist) {
    if (EndsWith(path, entry)) return true;
  }
  return false;
}

std::vector<Finding> CheckRawRandom(
    const std::string& joined, const std::vector<std::size_t>& line_starts) {
  std::vector<Finding> findings;
  struct Pattern {
    const char* token;
    bool call_only;  // require '(' so plain identifiers don't trip it
  };
  const Pattern patterns[] = {
      {"rand", true},         {"srand", true},
      {"random_device", false}, {"system_clock", false},
      {"time", true},         {"clock", true},
  };
  for (const Pattern& pattern : patterns) {
    for (std::size_t pos : FindToken(joined, pattern.token)) {
      const std::size_t end = pos + std::string(pattern.token).size();
      if (pattern.call_only && !NextNonSpaceIs(joined, end, '(')) continue;
      // Member access (x.time(), p->clock()) is some other API, not the
      // C library; qualified std::rand / ::time still match.
      if (pos > 0 && (joined[pos - 1] == '.' ||
                      (pos > 1 && joined[pos - 2] == '-' &&
                       joined[pos - 1] == '>'))) {
        continue;
      }
      findings.push_back(
          {LineAt(line_starts, pos),
           std::string("nondeterministic source '") + pattern.token +
               "' in a deterministic module; seed a common/random Rng "
               "instead"});
    }
  }
  return findings;
}

std::vector<Finding> CheckFatalInLib(
    const std::string& path, const std::string& joined,
    const std::vector<std::size_t>& line_starts) {
  std::vector<Finding> findings;
  if (OnFatalAllowlist(path)) return findings;
  for (std::size_t pos : FindToken(joined, "Fatal")) {
    if (!NextNonSpaceIs(joined, pos + 5, '(')) continue;
    findings.push_back(
        {LineAt(line_starts, pos),
         "Fatal() in library code: recoverable conditions return Status "
         "(common/status.h); if this site truly has no error channel, add "
         "it to the linter allowlist with a review justification"});
  }
  return findings;
}

std::vector<Finding> CheckRawMutex(const std::string& path,
                                   const std::string& joined,
                                   const std::vector<std::size_t>& line_starts) {
  std::vector<Finding> findings;
  if (EndsWith(path, "common/synchronization.h")) return findings;
  const char* const tokens[] = {
      "std::mutex",          "std::shared_mutex",
      "std::recursive_mutex", "std::timed_mutex",
      "std::condition_variable", "std::condition_variable_any",
      "std::lock_guard",     "std::unique_lock",
      "std::shared_lock",    "std::scoped_lock",
  };
  for (const char* token : tokens) {
    // TokenAt's boundary check only guards the last identifier; anchor
    // the "std" side by hand.
    std::size_t pos = joined.find(token);
    const std::size_t len = std::string(token).size();
    while (pos != std::string::npos) {
      const bool start_ok = pos == 0 || !IsIdentChar(joined[pos - 1]);
      const bool end_ok =
          pos + len >= joined.size() || !IsIdentChar(joined[pos + len]);
      if (start_ok && end_ok) {
        findings.push_back(
            {LineAt(line_starts, pos),
             std::string("raw '") + token +
                 "': use the annotated wrappers in common/synchronization.h "
                 "(Mutex, SharedMutex, MutexLock, CondVar) so Clang "
                 "thread-safety analysis sees the lock discipline"});
      }
      pos = joined.find(token, pos + 1);
    }
  }
  return findings;
}

/**
 * True when `arg` (the template argument of a std::atomic<...>, spaces
 * removed, `std::` prefixes stripped) is an integral counter-ish type.
 * bool, pointers, and function-pointer types are not counters and stay
 * legal raw atomics.
 */
bool IsIntegralAtomicArg(const std::string& arg) {
  static const std::set<std::string>* const kIntegral =
      new std::set<std::string>{
          "int",      "unsigned",  "unsignedint",  "long",
          "unsignedlong", "longlong", "unsignedlonglong",
          "short",    "unsignedshort", "size_t",   "ptrdiff_t",
          "int8_t",   "int16_t",   "int32_t",      "int64_t",
          "uint8_t",  "uint16_t",  "uint32_t",     "uint64_t",
          "intptr_t", "uintptr_t",
      };
  return kIntegral->count(arg) > 0;
}

/**
 * True when a directory component of `path` is exactly `component`.
 * Component comparison, not substring: "src/jobs/x.cc" must not match
 * "obs".
 */
bool HasDirComponent(const std::string& path, const std::string& component) {
  std::size_t start = 0;
  while (start < path.size()) {
    std::size_t slash = path.find('/', start);
    if (slash == std::string::npos) break;  // final component is the file
    if (path.compare(start, slash - start, component) == 0) return true;
    start = slash + 1;
  }
  return false;
}

std::vector<Finding> CheckRawCounter(
    const std::string& path, const std::string& joined,
    const std::vector<std::size_t>& line_starts) {
  std::vector<Finding> findings;
  // The registry's own cells are the one sanctioned implementation.
  if (HasDirComponent(path, "obs")) return findings;
  const std::string token = "std::atomic";
  std::size_t pos = joined.find(token);
  while (pos != std::string::npos) {
    const bool start_ok = pos == 0 || !IsIdentChar(joined[pos - 1]);
    std::size_t at = pos + token.size();
    if (!start_ok || at >= joined.size() || joined[at] != '<') {
      pos = joined.find(token, pos + 1);
      continue;
    }
    // Extract the balanced <...> argument and normalize it.
    int depth = 0;
    std::string arg;
    while (at < joined.size()) {
      const char c = joined[at];
      if (c == '<') {
        ++depth;
        if (depth == 1) {
          ++at;
          continue;
        }
      }
      if (c == '>') {
        --depth;
        if (depth == 0) break;
      }
      arg += c;
      ++at;
    }
    if (at < joined.size() && depth == 0) {
      std::string normalized;
      for (char c : arg) {
        if (!std::isspace(static_cast<unsigned char>(c))) normalized += c;
      }
      std::size_t std_prefix = normalized.find("std::");
      while (std_prefix != std::string::npos) {
        normalized.erase(std_prefix, 5);
        std_prefix = normalized.find("std::");
      }
      if (IsIntegralAtomicArg(normalized)) {
        findings.push_back(
            {LineAt(line_starts, pos),
             "raw 'std::atomic<" + normalized +
                 ">' counter: route it through obs::MetricsRegistry "
                 "(obs/metrics_registry.h) so it appears in --metrics-out "
                 "snapshots; a deliberate non-metric atomic takes a "
                 "gpuperf-lint: allow(raw-counter) comment"});
      }
    }
    pos = joined.find(token, pos + 1);
  }
  return findings;
}

/**
 * Bundle promotion and rollback are lifecycle decisions: they belong to
 * models::LifecycleController (which shadows, canaries, and rolls back
 * with counters and structured logs) plus the gpuperf_cli entry points
 * that seed the initial generation. A bare registry->TryPromote() /
 * Rollback() anywhere else bypasses that audit trail, so flag member or
 * qualified calls outside models/ and tools/gpuperf_cli.cc.
 */
std::vector<Finding> CheckBundleLifecycle(
    const std::string& path, const std::string& joined,
    const std::vector<std::size_t>& line_starts) {
  std::vector<Finding> findings;
  if (HasDirComponent(path, "models") ||
      EndsWith(path, "tools/gpuperf_cli.cc")) {
    return findings;
  }
  for (const char* token : {"TryPromote", "Rollback"}) {
    for (std::size_t pos : FindToken(joined, token)) {
      // Only member / qualified calls: x.TryPromote(, p->Rollback(,
      // BundleRegistry::Rollback(. An unrelated free function that
      // happens to share the name stays legal.
      const bool member_access =
          (pos > 0 && joined[pos - 1] == '.') ||
          (pos > 1 && joined[pos - 2] == '-' && joined[pos - 1] == '>') ||
          (pos > 1 && joined[pos - 2] == ':' && joined[pos - 1] == ':');
      if (!member_access) continue;
      if (!NextNonSpaceIs(joined, pos + std::string(token).size(), '(')) {
        continue;
      }
      findings.push_back(
          {LineAt(line_starts, pos),
           std::string("direct '") + token +
               "()' call outside models/: promotion and rollback must go "
               "through models::LifecycleController (models/refit.h) or "
               "the gpuperf_cli entry points so every generation change "
               "is counted and logged; a deliberate exception takes a "
               "gpuperf-lint: allow(bundle-lifecycle) comment"});
    }
  }
  return findings;
}

/**
 * Names declared (anywhere in `joined`) with an unordered container
 * type: `std::unordered_map<K, V> name` records `name`. Template
 * arguments may span lines; `unordered_map<...>::iterator` chains are
 * skipped.
 */
std::set<std::string> UnorderedNames(const std::string& joined) {
  std::set<std::string> names;
  for (const char* container : {"unordered_map", "unordered_set",
                                "unordered_multimap", "unordered_multiset"}) {
    for (std::size_t pos : FindToken(joined, container)) {
      std::size_t at = SkipSpaces(joined, pos + std::string(container).size());
      if (at >= joined.size() || joined[at] != '<') continue;
      int depth = 0;
      while (at < joined.size()) {
        if (joined[at] == '<') ++depth;
        if (joined[at] == '>') {
          --depth;
          if (depth == 0) break;
        }
        ++at;
      }
      if (at >= joined.size()) continue;
      at = SkipSpaces(joined, at + 1);
      if (at + 1 < joined.size() && joined[at] == ':' &&
          joined[at + 1] == ':') {
        continue;  // ::iterator / ::value_type — a usage, not a declaration
      }
      while (at < joined.size() &&
             (joined[at] == '&' || joined[at] == '*' ||
              std::isspace(static_cast<unsigned char>(joined[at])))) {
        ++at;
      }
      std::string name;
      while (at < joined.size() && IsIdentChar(joined[at])) {
        name += joined[at++];
      }
      if (!name.empty() && name != "const") names.insert(name);
    }
  }
  return names;
}

/** True when the file produces ordered output (CSV, stdout, files). */
bool HasOutputContext(const std::string& joined) {
  for (const char* token : {"printf", "fprintf", "cout", "ofstream",
                            "WriteCsv", "SaveCsv"}) {
    if (!FindToken(joined, token).empty()) return true;
  }
  return false;
}

std::vector<Finding> CheckUnorderedOrder(const std::string& joined,
                                         const std::string& header_joined,
                                         const std::vector<std::size_t>&
                                             line_starts) {
  std::vector<Finding> findings;
  if (!HasOutputContext(joined)) return findings;
  std::set<std::string> names = UnorderedNames(joined);
  const std::set<std::string> header_names = UnorderedNames(header_joined);
  names.insert(header_names.begin(), header_names.end());
  if (names.empty()) return findings;

  for (std::size_t pos : FindToken(joined, "for")) {
    std::size_t at = SkipSpaces(joined, pos + 3);
    if (at >= joined.size() || joined[at] != '(') continue;
    // Find the matching close paren (the header may span lines).
    int depth = 0;
    std::size_t close = at;
    while (close < joined.size()) {
      if (joined[close] == '(') ++depth;
      if (joined[close] == ')') {
        --depth;
        if (depth == 0) break;
      }
      ++close;
    }
    if (close >= joined.size()) continue;
    // A range-for has a top-level ':' that is not part of '::'.
    std::size_t colon = std::string::npos;
    int inner = 0;
    for (std::size_t i = at + 1; i < close; ++i) {
      const char c = joined[i];
      if (c == '(' || c == '[' || c == '{') ++inner;
      if (c == ')' || c == ']' || c == '}') --inner;
      if (inner != 0 || c != ':') continue;
      if (i > 0 && joined[i - 1] == ':') continue;
      if (i + 1 < close && joined[i + 1] == ':') {
        ++i;  // skip the '::' pair entirely
        continue;
      }
      colon = i;
      break;
    }
    if (colon == std::string::npos) continue;
    // Any identifier in the range expression that names an unordered
    // container is a hash-order iteration.
    const std::string range = joined.substr(colon + 1, close - colon - 1);
    std::string ident;
    std::string hit;
    for (std::size_t i = 0; i <= range.size(); ++i) {
      const char c = i < range.size() ? range[i] : ' ';
      if (IsIdentChar(c)) {
        ident += c;
      } else {
        if (names.count(ident) > 0) hit = ident;
        ident.clear();
      }
    }
    if (hit.empty()) continue;
    findings.push_back(
        {LineAt(line_starts, pos),
         "range-for over unordered container '" + hit +
             "' in a file that writes CSV/stdout: hash-iteration order is "
             "unspecified; iterate a sorted view (or annotate allow() with "
             "a why-order-independent comment)"});
  }
  return findings;
}

/** Joins blanked lines and records each line's start offset (1-based). */
std::string JoinLines(const std::vector<std::string>& lines,
                      std::vector<std::size_t>* line_starts) {
  std::string joined;
  for (const std::string& line : lines) {
    line_starts->push_back(joined.size());
    joined += line;
    joined += '\n';
  }
  return joined;
}

}  // namespace

std::string FormatViolation(const Violation& violation) {
  std::ostringstream out;
  out << violation.file << ":" << violation.line << ": " << violation.rule
      << ": " << violation.message;
  return out.str();
}

const std::vector<std::string>& RuleNames() {
  static const std::vector<std::string>* const kNames =
      new std::vector<std::string>{kRuleRawRandom,  kRuleFatalInLib,
                                   kRuleUnorderedOrder, kRuleRawMutex,
                                   kRuleRawCounter, kRuleBundleLifecycle};
  return *kNames;
}

std::vector<Violation> LintContent(const std::string& path,
                                   const std::string& content,
                                   const std::string& header_content) {
  const ScanResult scan = ScanSource(content);
  std::vector<std::size_t> line_starts;
  const std::string joined = JoinLines(scan.code, &line_starts);

  std::vector<std::size_t> header_starts;
  const std::string header_joined =
      JoinLines(ScanSource(header_content).code, &header_starts);

  std::vector<std::pair<std::string, Finding>> all;
  for (Finding& f : CheckRawRandom(joined, line_starts)) {
    all.emplace_back(kRuleRawRandom, std::move(f));
  }
  for (Finding& f : CheckFatalInLib(path, joined, line_starts)) {
    all.emplace_back(kRuleFatalInLib, std::move(f));
  }
  for (Finding& f :
       CheckUnorderedOrder(joined, header_joined, line_starts)) {
    all.emplace_back(kRuleUnorderedOrder, std::move(f));
  }
  for (Finding& f : CheckRawMutex(path, joined, line_starts)) {
    all.emplace_back(kRuleRawMutex, std::move(f));
  }
  for (Finding& f : CheckRawCounter(path, joined, line_starts)) {
    all.emplace_back(kRuleRawCounter, std::move(f));
  }
  for (Finding& f : CheckBundleLifecycle(path, joined, line_starts)) {
    all.emplace_back(kRuleBundleLifecycle, std::move(f));
  }

  std::vector<Violation> violations;
  for (auto& [rule, finding] : all) {
    const auto it = scan.allow.find(finding.line);
    if (it != scan.allow.end() && it->second.count(rule) > 0) continue;
    violations.push_back(
        Violation{path, finding.line, rule, std::move(finding.message)});
  }
  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;  // same line+rule: stable report
            });
  return violations;
}

namespace {

bool IsSourceFile(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

bool LintOneFile(const std::filesystem::path& path,
                 std::vector<Violation>* violations, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot read " + path.string();
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  // The paired header of a .cc extends unordered-order across the
  // interface/implementation split (members declared there, iterated
  // here).
  std::string header_content;
  if (path.extension() == ".cc" || path.extension() == ".cpp") {
    std::filesystem::path header = path;
    header.replace_extension(".h");
    std::ifstream header_in(header, std::ios::binary);
    if (header_in) {
      std::ostringstream header_buffer;
      header_buffer << header_in.rdbuf();
      header_content = header_buffer.str();
    }
  }

  std::vector<Violation> found =
      LintContent(path.generic_string(), buffer.str(), header_content);
  violations->insert(violations->end(),
                     std::make_move_iterator(found.begin()),
                     std::make_move_iterator(found.end()));
  return true;
}

}  // namespace

bool LintPaths(const std::vector<std::string>& paths,
               std::vector<Violation>* violations, std::string* error) {
  for (const std::string& arg : paths) {
    const std::filesystem::path path(arg);
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path, ec)) {
        if (entry.is_regular_file() && IsSourceFile(entry.path())) {
          files.push_back(entry.path());
        }
      }
      if (ec) {
        *error = "cannot walk " + arg + ": " + ec.message();
        return false;
      }
      std::sort(files.begin(), files.end());
      for (const std::filesystem::path& file : files) {
        if (!LintOneFile(file, violations, error)) return false;
      }
    } else if (std::filesystem::is_regular_file(path, ec)) {
      if (!LintOneFile(path, violations, error)) return false;
    } else {
      *error = "no such file or directory: " + arg;
      return false;
    }
  }
  return true;
}

}  // namespace gpuperf::lint
