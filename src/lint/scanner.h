#ifndef GPUPERF_LINT_SCANNER_H_
#define GPUPERF_LINT_SCANNER_H_

/**
 * @file
 * The shared lexical layer under every gpuperf_lint pass.
 *
 * One scan per file feeds both the per-file rules (lint.h) and the
 * whole-program passes (program.h): comments, string literals (including
 * raw strings with encoding prefixes), and char literals are blanked to
 * spaces so rules only ever see code, line structure is preserved so
 * reported line numbers match the original file, `gpuperf-lint:
 * allow(...)` directives are collected, and `#include "..."` targets are
 * recorded from the raw text (they live inside string literals, so the
 * blanked view cannot see them).
 */

#include <map>
#include <set>
#include <string>
#include <vector>

namespace gpuperf::lint {

/** Blanked view of one file plus its allow-directives. */
struct ScanResult {
  std::vector<std::string> code;               // blanked, split by line
  std::map<int, std::set<std::string>> allow;  // 1-based line -> rule ids
};

/** Blanks comments/strings/chars; collects allow directives. */
ScanResult ScanSource(const std::string& content);

/**
 * Everything every pass needs from one file, computed in a single scan:
 * the blanked code (joined, with per-line start offsets), the allow map,
 * the paired header's blanked code (for rules that span the
 * interface/implementation split), and the quoted include targets.
 */
struct FileScan {
  std::string path;  // as given by the caller (generic separators)
  std::string joined;
  // The original unblanked text. Blanking is length-preserving within
  // lines, so an offset into `joined` addresses the same character in
  // `raw` — rules that must read a string literal's contents (e.g.
  // metric-name) locate it in the blanked view and read it here.
  std::string raw;
  std::vector<std::size_t> line_starts;
  std::map<int, std::set<std::string>> allow;
  std::string header_joined;

  struct Include {
    std::string target;  // the text between the quotes
    int line = 0;        // 1-based
  };
  std::vector<Include> includes;
};

/** Scans `content` (and the paired `header_content`, may be empty). */
FileScan ScanFile(const std::string& path, const std::string& content,
                  const std::string& header_content);

// --- Token helpers over blanked code ---------------------------------------

bool IsIdentChar(char c);

/** True when code[pos..] starts the whole-word `token`. */
bool TokenAt(const std::string& code, std::size_t pos,
             const std::string& token);

/** All whole-word occurrences of `token` in `code`. */
std::vector<std::size_t> FindToken(const std::string& code,
                                   const std::string& token);

std::size_t SkipSpaces(const std::string& code, std::size_t pos);

/** True when the next non-space character after `pos` is `want`. */
bool NextNonSpaceIs(const std::string& code, std::size_t pos, char want);

bool EndsWith(const std::string& text, const std::string& suffix);

/**
 * True when a directory component of `path` is exactly `component`.
 * Component comparison, not substring: "src/jobs/x.cc" must not match
 * "obs".
 */
bool HasDirComponent(const std::string& path, const std::string& component);

/** The 1-based line of offset `pos` in the joined blanked text. */
int LineAt(const std::vector<std::size_t>& line_starts, std::size_t pos);

/** Joins blanked lines and records each line's start offset. */
std::string JoinLines(const std::vector<std::string>& lines,
                      std::vector<std::size_t>* line_starts);

}  // namespace gpuperf::lint

#endif  // GPUPERF_LINT_SCANNER_H_
