#ifndef GPUPERF_LINT_PROGRAM_H_
#define GPUPERF_LINT_PROGRAM_H_

/**
 * @file
 * Whole-program analysis passes for gpuperf_lint.
 *
 * The per-file rules (lint.h) catch local policy violations; the passes
 * here enforce the structural invariants that only exist across
 * translation units. All passes share one tree scan — every file is
 * read and lexed exactly once — so the whole tree stays under the one
 * second budget.
 *
 *  - `layering`          the module `#include` graph must match the DAG
 *                        declared in src/lint/layers.txt: no undeclared
 *                        module, no undeclared edge, no cycle. Reported
 *                        with the include chain (and the dependency
 *                        cycle the edge would close, when there is one).
 *  - `lock-order`        scope-tracks MutexLock / SharedMutexLock /
 *                        SharedReaderLock nesting in every TU, keys
 *                        locks by member name, and assembles one global
 *                        lock-acquisition graph; a cycle is a potential
 *                        deadlock and is reported with a witness path
 *                        for every direction. Two instances of the same
 *                        lock acquired in data-dependent order (the
 *                        `a.mu_` / `b.mu_` swap deadlock) report too.
 *  - `determinism-taint` functions that iterate unordered containers or
 *                        consume unseeded randomness (sources) must not
 *                        call functions that write CSV/stdout/trace
 *                        output (sinks), across files, through one
 *                        level of call indirection.
 */

#include <string>
#include <vector>

#include "lint/lint.h"

namespace gpuperf::lint {

/** Wall-clock of one pass, for the --timings report. */
struct PassTiming {
  std::string pass;
  double ms = 0;
  std::size_t files = 0;  // files the pass looked at (0 if not per-file)
};

struct ProgramOptions {
  /** Path of the declared layer DAG; empty skips the layering pass. */
  std::string layers_file;
  /**
   * Directory components to skip entirely (e.g. "lint_fixtures", so the
   * known-bad fixture corpus can live inside a linted tree).
   */
  std::vector<std::string> exclude_components;
};

/**
 * Runs the per-file rules and every whole-program pass over all C++
 * sources under `paths` (files or directories, deduplicated, visited in
 * sorted order — output is byte-identical for any argument ordering).
 * `timings` (optional) receives per-pass wall-clock. Fails (with
 * `error`) on unreadable paths or a malformed layers file.
 */
bool LintProgram(const std::vector<std::string>& paths,
                 const ProgramOptions& options,
                 std::vector<Violation>* violations,
                 std::vector<PassTiming>* timings, std::string* error);

/**
 * The module a path belongs to for layering purposes: the component
 * after the last `src` component ("src/models/kw_model.cc" -> "models"),
 * or a top-level consumer root ("tools", "tests", "bench", "examples").
 * Empty when the path fits neither shape.
 */
std::string ModuleOfPath(const std::string& path);

}  // namespace gpuperf::lint

#endif  // GPUPERF_LINT_PROGRAM_H_
