#include "lint/sarif.h"

#include <cstdio>
#include <map>
#include <set>
#include <sstream>

namespace gpuperf::lint {
namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ToSarif(const std::vector<Violation>& violations) {
  // Rules actually present in this run, catalog entries first (in
  // catalog order), then any synthetic rules (e.g. baseline-stale).
  std::vector<std::string> rule_ids;
  std::set<std::string> present;
  for (const Violation& violation : violations) {
    present.insert(violation.rule);
  }
  for (const RuleInfo& rule : Rules()) {
    if (present.count(rule.id) > 0) {
      rule_ids.push_back(rule.id);
      present.erase(rule.id);
    }
  }
  rule_ids.insert(rule_ids.end(), present.begin(), present.end());
  std::map<std::string, std::size_t> rule_index;
  for (std::size_t i = 0; i < rule_ids.size(); ++i) {
    rule_index[rule_ids[i]] = i;
  }

  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"gpuperf_lint\",\n"
      << "          \"informationUri\": "
         "\"https://example.invalid/gpuperf/lint\",\n"
      << "          \"rules\": [\n";
  for (std::size_t i = 0; i < rule_ids.size(); ++i) {
    const RuleInfo* info = FindRule(rule_ids[i]);
    out << "            {\n"
        << "              \"id\": \"" << JsonEscape(rule_ids[i]) << "\"";
    if (info != nullptr) {
      out << ",\n"
          << "              \"shortDescription\": { \"text\": \""
          << JsonEscape(info->summary) << "\" },\n"
          << "              \"help\": { \"text\": \""
          << JsonEscape(std::string(info->rationale) +
                        " Escape hatch: " + info->escape)
          << "\" }";
    }
    out << "\n            }" << (i + 1 < rule_ids.size() ? "," : "")
        << "\n";
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& violation = violations[i];
    out << "        {\n"
        << "          \"ruleId\": \"" << JsonEscape(violation.rule)
        << "\",\n"
        << "          \"ruleIndex\": " << rule_index.at(violation.rule)
        << ",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": { \"text\": \""
        << JsonEscape(violation.message) << "\" },\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": { \"uri\": \""
        << JsonEscape(violation.file)
        << "\", \"uriBaseId\": \"%SRCROOT%\" },\n"
        << "                \"region\": { \"startLine\": "
        << (violation.line > 0 ? violation.line : 1) << " }\n"
        << "              }\n"
        << "            }\n"
        << "          ]\n"
        << "        }" << (i + 1 < violations.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace gpuperf::lint
