#ifndef GPUPERF_LINT_LINT_H_
#define GPUPERF_LINT_LINT_H_

/**
 * @file
 * gpuperf_lint — a project-invariant linter.
 *
 * Enforces the invariants Clang cannot know about because they are
 * project policy, not language rules (the compile-time layer in
 * common/synchronization.h and the `[[nodiscard]]` Status catch the
 * rest). Token/line-level on purpose: no libclang dependency, runs in
 * milliseconds over the whole tree, and the rules are simple enough that
 * a lexer that strips comments and string literals is sufficient.
 *
 * Per-file rules (kebab-case ids, used in reports and allow-comments):
 *  - `raw-random`    nondeterminism sources (`rand`, `srand`,
 *                    `std::random_device`, wall-clock `time()`/`clock()`,
 *                    `system_clock`) are banned in deterministic modules;
 *                    use common/random's seeded Rng.
 *  - `fatal-in-lib`  `Fatal(` outside the audited allowlist: PR 2 made
 *                    errors recoverable, so library code reports Status;
 *                    Fatal is reserved for the legacy convenience APIs
 *                    already on the list. The list may shrink, growing it
 *                    needs a justification in review.
 *  - `unordered-order` range-for over an `unordered_map`/`unordered_set`
 *                    in a file that writes CSV or stdout: hash-iteration
 *                    order is unspecified and would leak into output
 *                    ordering. Iterate a sorted view instead.
 *  - `raw-mutex`     raw `std::mutex` / `std::shared_mutex` / lock guards
 *                    outside common/synchronization.h: use the annotated
 *                    wrappers so Clang thread-safety analysis sees every
 *                    lock acquisition.
 *  - `raw-counter`   `std::atomic<integral>` outside src/obs/: ad-hoc
 *                    counters are invisible to --metrics-out snapshots;
 *                    route them through obs::MetricsRegistry. Atomics of
 *                    bool, pointers, or function pointers are fine.
 *  - `bundle-lifecycle` member `TryPromote()`/`Rollback()` calls outside
 *                    models/ and the CLI bypass the lifecycle audit trail.
 *  - `wall-clock`    `system_clock::now()` / `steady_clock::now()` reads
 *                    in src/ outside the audited allowlist (logging
 *                    timestamps, the linter's own --timings, the PKA
 *                    baseline): results must not depend on when or how
 *                    fast the host ran; use sim time instead.
 *  - `metric-name`   string literals registered via a MetricsRegistry
 *                    `counter(`/`gauge(`/`histogram(` member call must
 *                    match `gpuperf_<area>_<name>` (lowercase letters,
 *                    digits, underscores) so snapshots sort into families
 *                    and prefix-based scrape configs see every metric.
 *
 * Whole-program passes (program.h; the same ids appear in reports):
 *  - `layering`      the `#include` graph must match the module DAG
 *                    declared in src/lint/layers.txt — no upward edges,
 *                    no cycles, no undeclared modules.
 *  - `lock-order`    MutexLock/SharedMutexLock/SharedReaderLock nestings
 *                    across all TUs must form an acyclic global
 *                    acquisition order (cycles are potential deadlocks).
 *  - `determinism-taint` unordered-container iteration, unseeded
 *                    randomness, and wall-clock reads must not reach a
 *                    CSV/stdout/trace writer, even through one level of
 *                    call indirection.
 *
 * Escape hatch: `// gpuperf-lint: allow(rule-a, rule-b)` suppresses the
 * listed rules on its own line, or on the next line when the comment
 * stands alone. Every report line is machine-readable:
 * `file:line: rule: message`.
 */

#include <string>
#include <vector>

#include "lint/scanner.h"

namespace gpuperf::lint {

/** One rule violation at a specific source location. */
struct Violation {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;
};

/** `file:line: rule: message` (the stable report format). */
std::string FormatViolation(const Violation& violation);

/**
 * One rule's catalog entry. `--list-rules`, `--explain`, and the SARIF
 * rule metadata all read this table, so the three can never drift.
 */
struct RuleInfo {
  const char* id;         // kebab-case rule id
  const char* summary;    // one line, used by SARIF shortDescription
  const char* rationale;  // why the rule exists (for --explain)
  const char* escape;     // the sanctioned way around it
};

/** Every implemented rule, in report order. */
const std::vector<RuleInfo>& Rules();

/** The ids of every implemented rule, in report order. */
const std::vector<std::string>& RuleNames();

/** The catalog entry for `rule_id`, or nullptr if unknown. */
const RuleInfo* FindRule(const std::string& rule_id);

/** Orders by (file, line, rule, message) — the stable report order. */
bool ViolationLess(const Violation& a, const Violation& b);

/**
 * Runs the per-file rules over one scanned file and applies its allow
 * directives. The building block shared by LintContent, LintPaths, and
 * the whole-program driver in program.h (which adds the cross-file
 * passes on top of the same scan).
 */
std::vector<Violation> CheckPerFileRules(const FileScan& scan);

/**
 * Lints one file's `content`. `header_content` is the paired header of a
 * `.cc` (empty if none): container declarations found there extend the
 * `unordered-order` rule across the interface/implementation split.
 */
std::vector<Violation> LintContent(const std::string& path,
                                   const std::string& content,
                                   const std::string& header_content = "");

/**
 * Lints every C++ source under `paths` (files or directories, walked
 * recursively) with the per-file rules. Files reached through more than
 * one argument are linted once, and the report is globally sorted, so
 * the output is byte-identical for any argument ordering. An unreadable
 * path is reported in `error` and makes the call fail (returns false).
 * Violations append to `violations`.
 */
bool LintPaths(const std::vector<std::string>& paths,
               std::vector<Violation>* violations, std::string* error);

}  // namespace gpuperf::lint

#endif  // GPUPERF_LINT_LINT_H_
