#ifndef GPUPERF_LINT_INTERNAL_H_
#define GPUPERF_LINT_INTERNAL_H_

/**
 * @file
 * Helpers shared between the per-file rules (lint.cc) and the
 * whole-program passes (program.cc). Not part of the public lint API.
 */

#include <set>
#include <string>
#include <utility>
#include <vector>

namespace gpuperf::lint {

/**
 * Every range-for in joined[begin, end) whose range expression names a
 * container in `names`: (1-based line, container name) pairs. The
 * building block of both `unordered-order` (whole file) and
 * `determinism-taint` (one function body).
 */
std::vector<std::pair<int, std::string>> UnorderedIterationSites(
    const std::string& joined, const std::set<std::string>& names,
    std::size_t begin, std::size_t end,
    const std::vector<std::size_t>& line_starts);

/** Names declared with an unordered container type anywhere in `joined`. */
std::set<std::string> UnorderedNamesIn(const std::string& joined);

/**
 * True when `path` is outside the wall-clock rule's scope: not under a
 * src/ directory component, or on the audited allowlist in lint.cc
 * (logging timestamps, the linter's own pass timings, the PKA
 * baseline's latency measurement).
 */
bool WallClockExempt(const std::string& path);

/**
 * Every `system_clock::now()` / `steady_clock::now()` read in
 * joined[begin, end): (1-based line, clock name) pairs. The building
 * block of both `wall-clock` (whole file) and `determinism-taint` (one
 * function body).
 */
std::vector<std::pair<int, std::string>> WallClockReadSites(
    const std::string& joined, std::size_t begin, std::size_t end,
    const std::vector<std::size_t>& line_starts);

/**
 * Expands `paths` (files or directories, walked recursively) into the
 * deduplicated, sorted list of C++ sources underneath — the one tree
 * walk every caller shares. Fails (with `error`) on an unreadable path.
 */
bool ListSourceFiles(const std::vector<std::string>& paths,
                     std::vector<std::string>* files, std::string* error);

}  // namespace gpuperf::lint

#endif  // GPUPERF_LINT_INTERNAL_H_
