#include "lint/program.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "lint/internal.h"
#include "lint/scanner.h"

namespace gpuperf::lint {
namespace {

constexpr char kRuleLayering[] = "layering";
constexpr char kRuleLockOrder[] = "lock-order";
constexpr char kRuleDeterminismTaint[] = "determinism-taint";

std::vector<std::string> SplitComponents(const std::string& path) {
  std::vector<std::string> components;
  std::string current;
  for (char c : path) {
    if (c == '/') {
      if (!current.empty()) components.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) components.push_back(current);
  return components;
}

// ---------------------------------------------------------------------------
// layering

struct LayerGraph {
  struct Entry {
    std::set<std::string> deps;
    bool wildcard = false;  // "*": a top-level consumer, may include all
    int line = 0;
  };
  std::string path;
  std::map<std::string, Entry> modules;
};

bool LoadLayerGraph(const std::string& path, LayerGraph* graph,
                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot read layers file " + path;
    return false;
  }
  graph->path = path;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::size_t at = SkipSpaces(line, 0);
    if (at >= line.size()) continue;
    const std::size_t colon = line.find(':', at);
    if (colon == std::string::npos) {
      *error = path + ":" + std::to_string(line_number) +
               ": expected `module: dep dep ...`";
      return false;
    }
    std::string module;
    for (std::size_t i = at; i < colon; ++i) {
      if (!std::isspace(static_cast<unsigned char>(line[i]))) {
        module += line[i];
      }
    }
    if (module.empty()) {
      *error = path + ":" + std::to_string(line_number) + ": empty module";
      return false;
    }
    if (graph->modules.count(module) > 0) {
      *error = path + ":" + std::to_string(line_number) +
               ": duplicate module '" + module + "'";
      return false;
    }
    LayerGraph::Entry entry;
    entry.line = line_number;
    std::istringstream deps(line.substr(colon + 1));
    std::string dep;
    while (deps >> dep) {
      if (dep == "*") {
        entry.wildcard = true;
      } else {
        entry.deps.insert(dep);
      }
    }
    graph->modules.emplace(std::move(module), std::move(entry));
  }
  // Every named dep must itself be declared, so typos cannot silently
  // open an edge.
  for (const auto& [module, entry] : graph->modules) {
    for (const std::string& dep : entry.deps) {
      if (graph->modules.count(dep) == 0) {
        *error = path + ":" + std::to_string(entry.line) + ": module '" +
                 module + "' names undeclared dep '" + dep + "'";
        return false;
      }
    }
  }
  return true;
}

/**
 * The shortest declared dependency path from `from` to `to` (BFS over
 * declared deps, neighbors visited in sorted order so the witness is
 * deterministic). Empty when unreachable.
 */
std::vector<std::string> DeclaredPath(const LayerGraph& graph,
                                      const std::string& from,
                                      const std::string& to) {
  std::map<std::string, std::string> parent;
  std::vector<std::string> frontier{from};
  parent[from] = from;
  while (!frontier.empty()) {
    std::vector<std::string> next;
    for (const std::string& node : frontier) {
      if (node == to) {
        std::vector<std::string> chain{to};
        std::string walk = to;
        while (parent[walk] != walk) {
          walk = parent[walk];
          chain.push_back(walk);
        }
        std::reverse(chain.begin(), chain.end());
        return chain;
      }
      const auto it = graph.modules.find(node);
      if (it == graph.modules.end()) continue;
      for (const std::string& dep : it->second.deps) {
        if (parent.emplace(dep, node).second) next.push_back(dep);
      }
    }
    frontier = std::move(next);
  }
  return {};
}

/** Violations for a cycle in the *declared* graph itself (a config bug). */
std::vector<Violation> CheckDeclaredDag(const LayerGraph& graph) {
  std::vector<Violation> violations;
  // Colors: 0 unvisited, 1 on stack, 2 done. Deterministic DFS order.
  std::map<std::string, int> color;
  std::vector<std::string> stack;
  std::function<bool(const std::string&)> visit =
      [&](const std::string& node) -> bool {
    color[node] = 1;
    stack.push_back(node);
    const auto it = graph.modules.find(node);
    if (it != graph.modules.end()) {
      for (const std::string& dep : it->second.deps) {
        if (color[dep] == 1) {
          std::string chain = dep;
          for (auto walk = std::find(stack.begin(), stack.end(), dep);
               walk != stack.end(); ++walk) {
            if (*walk != dep) chain += " -> " + *walk;
          }
          chain += " -> " + dep;
          violations.push_back(
              {graph.path, it->second.line, kRuleLayering,
               "declared layer graph is not a DAG: " + chain +
                   "; break the cycle before any include can be checked"});
          return false;
        }
        if (color[dep] == 0 && !visit(dep)) return false;
      }
    }
    stack.pop_back();
    color[node] = 2;
    return true;
  };
  for (const auto& [module, entry] : graph.modules) {
    (void)entry;
    if (color[module] == 0 && !visit(module)) break;
  }
  return violations;
}

std::vector<Violation> CheckLayering(const std::vector<FileScan>& files,
                                     const LayerGraph& graph) {
  std::vector<Violation> violations = CheckDeclaredDag(graph);
  if (!violations.empty()) return violations;  // graph unusable

  for (const FileScan& file : files) {
    const std::string module = ModuleOfPath(file.path);
    if (module.empty()) continue;  // not in a recognized tree shape
    const auto entry_it = graph.modules.find(module);
    if (entry_it == graph.modules.end()) {
      violations.push_back(
          {file.path, 1, kRuleLayering,
           "module '" + module + "' is not declared in " + graph.path +
               "; add a `" + module +
               ": <deps>` line placing it in the layer DAG"});
      continue;
    }
    const LayerGraph::Entry& entry = entry_it->second;
    if (entry.wildcard) continue;
    for (const FileScan::Include& include : file.includes) {
      const std::vector<std::string> components =
          SplitComponents(include.target);
      if (components.size() < 2) continue;  // local include, same module
      const std::string& target = components.front();
      if (target == module) continue;
      if (graph.modules.count(target) == 0) continue;  // external header
      if (entry.deps.count(target) > 0) continue;
      std::string message =
          "include of \"" + include.target + "\" makes module '" + module +
          "' depend on '" + target + "', which " + graph.path +
          " does not allow";
      const std::vector<std::string> cycle =
          DeclaredPath(graph, target, module);
      if (!cycle.empty()) {
        std::string chain = module;
        for (const std::string& node : cycle) chain += " -> " + node;
        message += "; this upward edge closes the dependency cycle " + chain;
      }
      message +=
          " (declare the edge in layers.txt with a review justification, "
          "or invert the dependency)";
      violations.push_back(
          {file.path, include.line, kRuleLayering, std::move(message)});
    }
  }
  return violations;
}

// ---------------------------------------------------------------------------
// lock-order

/** One RAII lock acquisition site. */
struct Acquisition {
  std::size_t pos = 0;   // offset of the lock-type token
  int line = 0;
  std::string expr;      // the constructor argument, spaces stripped
  std::string canonical; // expr without the object prefix ("other.mu_"->"mu_")
};

std::string CanonicalLockName(const std::string& expr) {
  std::string stripped;
  for (char c : expr) {
    if (!std::isspace(static_cast<unsigned char>(c))) stripped += c;
  }
  while (!stripped.empty() && (stripped.front() == '&' ||
                               stripped.front() == '*')) {
    stripped.erase(stripped.begin());
  }
  const std::size_t arrow = stripped.rfind("->");
  const std::size_t dot = stripped.rfind('.');
  std::size_t cut = std::string::npos;
  if (arrow != std::string::npos) cut = arrow + 2;
  if (dot != std::string::npos && (cut == std::string::npos || dot + 1 > cut)) {
    cut = dot + 1;
  }
  return cut == std::string::npos ? stripped : stripped.substr(cut);
}

std::vector<Acquisition> FindAcquisitions(const FileScan& file) {
  std::vector<Acquisition> acquisitions;
  for (const char* token :
       {"MutexLock", "SharedMutexLock", "SharedReaderLock"}) {
    const std::size_t token_len = std::string(token).size();
    for (std::size_t pos : FindToken(file.joined, token)) {
      // `MutexLock name(expr)` — a declaration of the RAII guard. The
      // wrapper definitions themselves (`MutexLock(Mutex& mu)`,
      // `~MutexLock()`, `friend class MutexLock;`) have no variable
      // name before the paren and fall through.
      std::size_t at = SkipSpaces(file.joined, pos + token_len);
      if (at >= file.joined.size() || !IsIdentChar(file.joined[at])) continue;
      while (at < file.joined.size() && IsIdentChar(file.joined[at])) ++at;
      at = SkipSpaces(file.joined, at);
      if (at >= file.joined.size() || file.joined[at] != '(') continue;
      int depth = 0;
      std::size_t close = at;
      while (close < file.joined.size()) {
        if (file.joined[close] == '(') ++depth;
        if (file.joined[close] == ')') {
          --depth;
          if (depth == 0) break;
        }
        ++close;
      }
      if (close >= file.joined.size()) continue;
      std::string expr;
      for (std::size_t i = at + 1; i < close; ++i) {
        if (!std::isspace(static_cast<unsigned char>(file.joined[i]))) {
          expr += file.joined[i];
        }
      }
      if (expr.empty()) continue;
      Acquisition acquisition;
      acquisition.pos = pos;
      acquisition.line = LineAt(file.line_starts, pos);
      acquisition.expr = expr;
      acquisition.canonical = CanonicalLockName(expr);
      acquisitions.push_back(std::move(acquisition));
    }
  }
  std::sort(acquisitions.begin(), acquisitions.end(),
            [](const Acquisition& a, const Acquisition& b) {
              return a.pos < b.pos;
            });
  return acquisitions;
}

/** One observed `held -> acquired` nesting, with its source location. */
struct LockEdge {
  std::string file;
  int line = 0;        // the inner acquisition
  std::string held_expr;
  int held_line = 0;
  std::string acquired_expr;
};

bool IsAllowed(const FileScan& file, int line, const char* rule) {
  const auto it = file.allow.find(line);
  return it != file.allow.end() && it->second.count(rule) > 0;
}

std::vector<Violation> CheckLockOrder(const std::vector<FileScan>& files) {
  std::vector<Violation> violations;
  // canonical held -> canonical acquired -> first witness
  std::map<std::string, std::map<std::string, LockEdge>> edges;

  for (const FileScan& file : files) {
    const std::vector<Acquisition> acquisitions = FindAcquisitions(file);
    if (acquisitions.empty()) continue;

    struct Held {
      const Acquisition* acquisition;
      int depth;
    };
    std::vector<Held> held;
    int depth = 0;
    std::size_t next = 0;
    for (std::size_t i = 0; i < file.joined.size(); ++i) {
      while (next < acquisitions.size() && acquisitions[next].pos == i) {
        const Acquisition& acquired = acquisitions[next];
        if (!IsAllowed(file, acquired.line, kRuleLockOrder)) {
          for (const Held& h : held) {
            const Acquisition& holding = *h.acquisition;
            if (holding.canonical == acquired.canonical) {
              const std::string detail =
                  holding.expr == acquired.expr
                      ? "re-entrant acquisition of lock '" + acquired.expr +
                            "' (line " + std::to_string(holding.line) +
                            " still holds it): a non-recursive mutex "
                            "self-deadlocks here"
                      : "two instances of lock '" + acquired.canonical +
                            "' acquired in data-dependent order ('" +
                            holding.expr + "' held since line " +
                            std::to_string(holding.line) + ", now '" +
                            acquired.expr +
                            "'): concurrent opposite-direction calls "
                            "deadlock";
              violations.push_back(
                  {file.path, acquired.line, kRuleLockOrder,
                   detail +
                       "; impose a fixed order (or copy out under the "
                       "first lock before taking the second)"});
            } else {
              auto& slot = edges[holding.canonical];
              if (slot.count(acquired.canonical) == 0) {
                slot.emplace(acquired.canonical,
                             LockEdge{file.path, acquired.line, holding.expr,
                                      holding.line, acquired.expr});
              }
            }
          }
        }
        held.push_back({&acquired, depth});
        ++next;
      }
      const char c = file.joined[i];
      if (c == '{') ++depth;
      if (c == '}') {
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
        if (depth < 0) depth = 0;  // unbalanced input; stay sane
      }
    }
  }

  // Any cycle in the assembled graph is a potential deadlock. The graphs
  // are tiny, so a per-node DFS that only reports cycles at their
  // lexicographically-smallest node keeps each cycle to one report.
  std::vector<std::string> nodes;
  for (const auto& [from, targets] : edges) {
    nodes.push_back(from);
    for (const auto& [to, witness] : targets) {
      (void)witness;
      nodes.push_back(to);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  for (const std::string& origin : nodes) {
    // DFS from `origin` looking for a path back to it using nodes that
    // are not smaller than origin (the canonical rotation of a cycle).
    std::vector<std::string> path{origin};
    std::set<std::string> on_path{origin};
    std::function<bool()> dfs = [&]() -> bool {
      const auto it = edges.find(path.back());
      if (it == edges.end()) return false;
      for (const auto& [to, witness] : it->second) {
        (void)witness;
        if (to == origin) {
          path.push_back(origin);
          return true;
        }
        if (to < origin || on_path.count(to) > 0) continue;
        path.push_back(to);
        on_path.insert(to);
        if (dfs()) return true;
        on_path.erase(to);
        path.pop_back();
      }
      return false;
    };
    if (!dfs()) continue;

    // path = origin -> ... -> origin; report with every edge's witness.
    std::string description = "lock-order cycle ";
    const LockEdge* first_witness = nullptr;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const LockEdge& witness = edges[path[i]][path[i + 1]];
      if (i > 0) description += "; ";
      description += "'" + path[i] + "' -> '" + path[i + 1] + "' (" +
                     witness.file + ":" + std::to_string(witness.line) +
                     " acquires '" + witness.acquired_expr + "' while '" +
                     witness.held_expr + "' is held)";
      if (first_witness == nullptr ||
          witness.file < first_witness->file ||
          (witness.file == first_witness->file &&
           witness.line < first_witness->line)) {
        first_witness = &witness;
      }
    }
    violations.push_back(
        {first_witness->file, first_witness->line, kRuleLockOrder,
         description +
             " — threads taking these locks in different orders can "
             "deadlock; pick one global acquisition order"});
  }
  return violations;
}

// ---------------------------------------------------------------------------
// determinism-taint

/** One function definition found in a file's blanked code. */
struct FunctionDef {
  std::string name;       // the last identifier before the parameter list
  int line = 0;           // of the name
  std::size_t body_begin = 0;  // just after the '{'
  std::size_t body_end = 0;    // at the matching '}'
};

bool IsControlKeyword(const std::string& ident) {
  static const std::set<std::string>* const kKeywords =
      new std::set<std::string>{
          "if",     "for",      "while",   "switch",     "catch",
          "return", "sizeof",   "alignof", "decltype",   "constexpr",
          "else",   "do",       "new",     "delete",     "assert",
          "static_assert",      "defined", "noexcept",
      };
  return kKeywords->count(ident) > 0;
}

/** Reads the identifier ending just before `end` (exclusive); "" if none. */
std::string IdentBefore(const std::string& code, std::size_t end) {
  std::size_t at = end;
  while (at > 0 &&
         std::isspace(static_cast<unsigned char>(code[at - 1]))) {
    --at;
  }
  std::size_t begin = at;
  while (begin > 0 && IsIdentChar(code[begin - 1])) --begin;
  return code.substr(begin, at - begin);
}

std::size_t MatchingParen(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '(') ++depth;
    if (code[i] == ')') {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

std::size_t MatchingBrace(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '{') ++depth;
    if (code[i] == '}') {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

/**
 * Consumes one balanced `(...)` or `{...}` group starting at or after
 * `at`; returns the index just past it, or npos when the shape differs.
 */
std::size_t ConsumeBalanced(const std::string& code, std::size_t at) {
  at = SkipSpaces(code, at);
  if (at >= code.size()) return std::string::npos;
  if (code[at] == '(') {
    const std::size_t close = MatchingParen(code, at);
    return close == std::string::npos ? close : close + 1;
  }
  if (code[at] == '{') {
    const std::size_t close = MatchingBrace(code, at);
    return close == std::string::npos ? close : close + 1;
  }
  return std::string::npos;
}

/**
 * Heuristic function-definition finder over blanked code: an identifier,
 * a balanced parameter list, optional qualifiers (`const`, `noexcept`,
 * `override`, TSA macros, a constructor init list, a trailing return
 * type), then `{`. Lambdas never match (the char before their paren is
 * `]`), so their bodies stay attributed to the enclosing function.
 */
std::vector<FunctionDef> ExtractFunctions(
    const std::string& joined, const std::vector<std::size_t>& line_starts) {
  std::vector<FunctionDef> functions;
  for (std::size_t i = 0; i < joined.size(); ++i) {
    if (joined[i] != '(') continue;
    const std::string name = IdentBefore(joined, i);
    if (name.empty() || IsControlKeyword(name)) continue;
    const std::size_t close = MatchingParen(joined, i);
    if (close == std::string::npos) continue;

    std::size_t at = close + 1;
    bool is_function = false;
    for (;;) {
      at = SkipSpaces(joined, at);
      if (at >= joined.size()) break;
      const char c = joined[at];
      if (c == '{') {
        is_function = true;
        break;
      }
      if (c == ':' && at + 1 < joined.size() && joined[at + 1] != ':') {
        // Constructor init list: `name(args), other{args}, ... {`.
        at = SkipSpaces(joined, at + 1);
        bool ok = true;
        while (ok) {
          while (at < joined.size() &&
                 (IsIdentChar(joined[at]) || joined[at] == ':')) {
            ++at;
          }
          if (NextNonSpaceIs(joined, at, '<')) {
            // Templated base: skip the balanced <...>.
            at = SkipSpaces(joined, at);
            int angle = 0;
            while (at < joined.size()) {
              if (joined[at] == '<') ++angle;
              if (joined[at] == '>') {
                --angle;
                if (angle == 0) {
                  ++at;
                  break;
                }
              }
              ++at;
            }
          }
          const std::size_t past = ConsumeBalanced(joined, at);
          if (past == std::string::npos) {
            ok = false;
            break;
          }
          at = SkipSpaces(joined, past);
          if (at < joined.size() && joined[at] == ',') {
            at = SkipSpaces(joined, at + 1);
            continue;
          }
          break;
        }
        if (ok && at < joined.size() && joined[at] == '{') {
          is_function = true;
        }
        break;
      }
      if (c == '-' && at + 1 < joined.size() && joined[at + 1] == '>') {
        // Trailing return type: scan to the body or a declaration end.
        at += 2;
        while (at < joined.size() && joined[at] != '{' &&
               joined[at] != ';') {
          ++at;
        }
        if (at < joined.size() && joined[at] == '{') is_function = true;
        break;
      }
      if (IsIdentChar(c)) {
        std::string qualifier;
        while (at < joined.size() && IsIdentChar(joined[at])) {
          qualifier += joined[at++];
        }
        if (qualifier == "const" || qualifier == "override" ||
            qualifier == "final" || qualifier == "mutable" ||
            qualifier == "try") {
          continue;
        }
        if (qualifier == "noexcept" ||
            qualifier.compare(0, 3, "GP_") == 0) {
          if (NextNonSpaceIs(joined, at, '(')) {
            const std::size_t past = ConsumeBalanced(joined, at);
            if (past == std::string::npos) break;
            at = past;
          }
          continue;
        }
        break;  // a declaration list or expression, not a definition
      }
      break;  // ';', ',', '=', ... — not a function body
    }
    if (!is_function) continue;
    const std::size_t brace = at;  // every accepting path stops on '{'
    const std::size_t end = MatchingBrace(joined, brace);
    if (end == std::string::npos) continue;
    FunctionDef def;
    def.name = name;
    def.line = LineAt(line_starts, i);
    def.body_begin = brace + 1;
    def.body_end = end;
    functions.push_back(std::move(def));
  }
  return functions;
}

/** Tokens whose presence makes a function body a direct output writer. */
bool HasDirectOutput(const std::string& joined, std::size_t begin,
                     std::size_t end) {
  for (const char* token : {"printf", "fprintf", "cout", "ofstream",
                            "WriteCsv", "SaveCsv"}) {
    for (std::size_t pos : FindToken(joined, token)) {
      if (pos >= begin && pos < end) return true;
    }
  }
  return false;
}

/** Called-function names within joined[begin, end). */
std::set<std::string> CalledNames(const std::string& joined,
                                  std::size_t begin, std::size_t end) {
  std::set<std::string> names;
  for (std::size_t i = begin; i < end && i < joined.size(); ++i) {
    if (joined[i] != '(') continue;
    const std::string name = IdentBefore(joined, i);
    if (!name.empty() && !IsControlKeyword(name)) names.insert(name);
  }
  return names;
}

/** Unseeded-randomness source sites within joined[begin, end). */
std::vector<std::pair<int, std::string>> RandomnessSites(
    const std::string& joined, std::size_t begin, std::size_t end,
    const std::vector<std::size_t>& line_starts) {
  std::vector<std::pair<int, std::string>> sites;
  struct Pattern {
    const char* token;
    bool call_only;
  };
  const Pattern patterns[] = {
      {"rand", true}, {"srand", true}, {"random_device", false}};
  for (const Pattern& pattern : patterns) {
    for (std::size_t pos : FindToken(joined, pattern.token)) {
      if (pos < begin || pos >= end) continue;
      const std::size_t after = pos + std::string(pattern.token).size();
      if (pattern.call_only && !NextNonSpaceIs(joined, after, '(')) continue;
      if (pos > 0 && (joined[pos - 1] == '.' ||
                      (pos > 1 && joined[pos - 2] == '-' &&
                       joined[pos - 1] == '>'))) {
        continue;
      }
      sites.emplace_back(LineAt(line_starts, pos), pattern.token);
    }
  }
  std::sort(sites.begin(), sites.end());
  return sites;
}

struct SinkDef {
  std::string file;
  int line = 0;
};

std::vector<Violation> CheckDeterminismTaint(
    const std::vector<FileScan>& files,
    const std::set<std::pair<std::string, int>>& per_file_flagged) {
  // One scan of every file's functions, reused for both the sink table
  // and the source walk.
  struct FileFunctions {
    const FileScan* file;
    std::vector<FunctionDef> functions;
  };
  std::vector<FileFunctions> all;
  all.reserve(files.size());
  std::map<std::string, SinkDef> sinks;  // name -> smallest definition site
  for (const FileScan& file : files) {
    FileFunctions entry{&file,
                        ExtractFunctions(file.joined, file.line_starts)};
    for (const FunctionDef& def : entry.functions) {
      if (!HasDirectOutput(file.joined, def.body_begin, def.body_end)) {
        continue;
      }
      const auto it = sinks.find(def.name);
      if (it == sinks.end() || file.path < it->second.file ||
          (file.path == it->second.file && def.line < it->second.line)) {
        sinks[def.name] = {file.path, def.line};
      }
    }
    all.push_back(std::move(entry));
  }

  std::vector<Violation> violations;
  for (const FileFunctions& entry : all) {
    const FileScan& file = *entry.file;
    std::set<std::string> unordered = UnorderedNamesIn(file.joined);
    const std::set<std::string> header_names =
        UnorderedNamesIn(file.header_joined);
    unordered.insert(header_names.begin(), header_names.end());

    for (const FunctionDef& def : entry.functions) {
      // Direct output next to a source in one function is
      // unordered-order / raw-random territory; this pass owns the
      // cross-function step.
      if (HasDirectOutput(file.joined, def.body_begin, def.body_end)) {
        continue;
      }
      const std::set<std::string> calls =
          CalledNames(file.joined, def.body_begin, def.body_end);
      std::string sink_name;
      for (const std::string& call : calls) {
        if (call != def.name && sinks.count(call) > 0) {
          sink_name = call;
          break;  // calls is sorted; first hit is the canonical witness
        }
      }
      if (sink_name.empty()) continue;
      const SinkDef& sink = sinks.at(sink_name);
      const std::string sink_location =
          sink_name + "()' (defined at " + sink.file + ":" +
          std::to_string(sink.line) + ")";

      std::vector<std::pair<int, std::string>> sources =
          UnorderedIterationSites(file.joined, unordered, def.body_begin,
                                  def.body_end, file.line_starts);
      for (const auto& [line, container] : sources) {
        if (per_file_flagged.count({file.path, line}) > 0) continue;
        if (IsAllowed(file, line, kRuleDeterminismTaint)) continue;
        violations.push_back(
            {file.path, line, kRuleDeterminismTaint,
             "hash-order iteration over unordered container '" + container +
                 "' taints output sink '" + sink_location +
                 " reached from this function; iterate a sorted view "
                 "before calling the writer"});
      }
      for (const auto& [line, token] :
           RandomnessSites(file.joined, def.body_begin, def.body_end,
                           file.line_starts)) {
        if (per_file_flagged.count({file.path, line}) > 0) continue;
        if (IsAllowed(file, line, kRuleDeterminismTaint)) continue;
        violations.push_back(
            {file.path, line, kRuleDeterminismTaint,
             "nondeterministic source '" + token +
                 "' taints output sink '" + sink_location +
                 " reached from this function; thread a seeded Rng "
                 "through instead"});
      }
      if (!WallClockExempt(file.path)) {
        for (const auto& [line, clock] :
             WallClockReadSites(file.joined, def.body_begin, def.body_end,
                                file.line_starts)) {
          if (per_file_flagged.count({file.path, line}) > 0) continue;
          if (IsAllowed(file, line, kRuleDeterminismTaint)) continue;
          violations.push_back(
              {file.path, line, kRuleDeterminismTaint,
               "wall-clock read '" + clock + "::now()' taints output sink '" +
                   sink_location +
                   " reached from this function; use sim time or a "
                   "caller-supplied timestamp instead"});
        }
      }
    }
  }
  return violations;
}

// ---------------------------------------------------------------------------
// driver

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

std::string ModuleOfPath(const std::string& path) {
  const std::vector<std::string> components = SplitComponents(path);
  std::string module;
  for (std::size_t i = 0; i + 1 < components.size(); ++i) {
    // `src/<dir>/...` — the dir after the last `src` component is the
    // module (it must be a directory, i.e. not the final file itself).
    if (components[i] == "src" && i + 2 < components.size()) {
      module = components[i + 1];
    } else if (components[i] == "tools" || components[i] == "tests" ||
               components[i] == "bench" || components[i] == "examples") {
      module = components[i];
    }
  }
  return module;
}

bool LintProgram(const std::vector<std::string>& paths,
                 const ProgramOptions& options,
                 std::vector<Violation>* violations,
                 std::vector<PassTiming>* timings, std::string* error) {
  auto start = std::chrono::steady_clock::now();

  std::vector<std::string> files;
  if (!ListSourceFiles(paths, &files, error)) return false;

  std::vector<FileScan> scans;
  scans.reserve(files.size());
  for (const std::string& path : files) {
    bool excluded = false;
    for (const std::string& component : options.exclude_components) {
      if (HasDirComponent(path, component)) {
        excluded = true;
        break;
      }
    }
    if (excluded) continue;

    std::ifstream in(path, std::ios::binary);
    if (!in) {
      *error = "cannot read " + path;
      return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    std::string header_content;
    if (EndsWith(path, ".cc") || EndsWith(path, ".cpp")) {
      std::string header = path.substr(0, path.rfind('.')) + ".h";
      std::ifstream header_in(header, std::ios::binary);
      if (header_in) {
        std::ostringstream header_buffer;
        header_buffer << header_in.rdbuf();
        header_content = header_buffer.str();
      }
    }
    scans.push_back(ScanFile(path, buffer.str(), header_content));
  }
  if (timings != nullptr) {
    timings->push_back({"scan", MsSince(start), scans.size()});
  }

  std::vector<Violation> found;

  start = std::chrono::steady_clock::now();
  std::set<std::pair<std::string, int>> per_file_flagged;
  for (const FileScan& scan : scans) {
    for (Violation& violation : CheckPerFileRules(scan)) {
      if (violation.rule == "raw-random" ||
          violation.rule == "unordered-order" ||
          violation.rule == "wall-clock") {
        per_file_flagged.emplace(violation.file, violation.line);
      }
      found.push_back(std::move(violation));
    }
  }
  if (timings != nullptr) {
    timings->push_back({"per-file", MsSince(start), scans.size()});
  }

  if (!options.layers_file.empty()) {
    start = std::chrono::steady_clock::now();
    LayerGraph graph;
    if (!LoadLayerGraph(options.layers_file, &graph, error)) return false;
    std::vector<Violation> layering = CheckLayering(scans, graph);
    found.insert(found.end(),
                 std::make_move_iterator(layering.begin()),
                 std::make_move_iterator(layering.end()));
    if (timings != nullptr) {
      timings->push_back({"layering", MsSince(start), scans.size()});
    }
  }

  start = std::chrono::steady_clock::now();
  std::vector<Violation> lock_order = CheckLockOrder(scans);
  found.insert(found.end(), std::make_move_iterator(lock_order.begin()),
               std::make_move_iterator(lock_order.end()));
  if (timings != nullptr) {
    timings->push_back({"lock-order", MsSince(start), scans.size()});
  }

  start = std::chrono::steady_clock::now();
  std::vector<Violation> taint =
      CheckDeterminismTaint(scans, per_file_flagged);
  found.insert(found.end(), std::make_move_iterator(taint.begin()),
               std::make_move_iterator(taint.end()));
  if (timings != nullptr) {
    timings->push_back({"determinism-taint", MsSince(start), scans.size()});
  }

  std::sort(found.begin(), found.end(), ViolationLess);
  violations->insert(violations->end(),
                     std::make_move_iterator(found.begin()),
                     std::make_move_iterator(found.end()));
  return true;
}

}  // namespace gpuperf::lint
