#ifndef GPUPERF_LINT_BASELINE_H_
#define GPUPERF_LINT_BASELINE_H_

/**
 * @file
 * The baseline ratchet: a checked-in file pinning the known lint debt so
 * the tree can adopt a new pass without a flag day, while guaranteeing
 * the debt only ever shrinks.
 *
 * Format (one entry per line, sorted, `#` comments allowed):
 *
 *     <rule> <path> <count>
 *
 * Applying a baseline suppresses up to `count` violations of `rule` in
 * `path` (in line order, so newly introduced violations later in the
 * file surface first). The ratchet is enforced both ways:
 *
 *  - a violation beyond its entry's count is reported normally;
 *  - an entry whose debt has been repaid (actual < count) is itself an
 *    error — the fixer must shrink the baseline in the same change, so
 *    counts are monotonically non-increasing in history.
 */

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "lint/lint.h"

namespace gpuperf::lint {

/** Parsed baseline: (rule, path) -> pinned violation count. */
struct Baseline {
  std::map<std::pair<std::string, std::string>, int> entries;
};

/** Parses `content`; fails (with `error`) on a malformed line. */
bool ParseBaseline(const std::string& content, Baseline* baseline,
                   std::string* error);

/** Reads and parses the file at `path`. */
bool LoadBaseline(const std::string& path, Baseline* baseline,
                  std::string* error);

/** Serializes sorted violation counts as baseline file content. */
std::string WriteBaseline(const std::vector<Violation>& violations);

/**
 * Applies `baseline` to sorted `violations`: returns the violations that
 * exceed their pinned counts, plus one synthetic `baseline-stale`
 * violation (against the baseline file itself) for every entry whose
 * debt has shrunk — forcing the ratchet to turn.
 */
std::vector<Violation> ApplyBaseline(const std::vector<Violation>& violations,
                                     const Baseline& baseline,
                                     const std::string& baseline_path);

}  // namespace gpuperf::lint

#endif  // GPUPERF_LINT_BASELINE_H_
