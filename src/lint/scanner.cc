#include "lint/scanner.h"

#include <algorithm>
#include <cctype>

namespace gpuperf::lint {
namespace {

/** Parses "... gpuperf-lint: allow(a, b) ..." out of one comment. */
std::set<std::string> ParseAllowDirective(const std::string& comment) {
  std::set<std::string> rules;
  const std::string marker = "gpuperf-lint:";
  std::size_t at = comment.find(marker);
  if (at == std::string::npos) return rules;
  at = comment.find("allow(", at + marker.size());
  if (at == std::string::npos) return rules;
  const std::size_t open = at + 5;  // index of '('
  const std::size_t close = comment.find(')', open);
  if (close == std::string::npos) return rules;
  std::string rule;
  for (std::size_t i = open + 1; i <= close; ++i) {
    const char c = comment[i];
    if (c == ',' || c == ')' || c == ' ') {
      if (!rule.empty()) rules.insert(rule);
      rule.clear();
    } else {
      rule += c;
    }
  }
  return rules;
}

/**
 * When content[i] is a '"' that opens a raw string, returns the index of
 * the 'R' (which may carry an encoding prefix: R, LR, uR, UR, u8R);
 * otherwise npos. The character before the full prefix must not be an
 * identifier character, so `FooR"(x)"` stays an ordinary string.
 */
std::size_t RawStringPrefixStart(const std::string& content, std::size_t i) {
  if (i == 0 || content[i - 1] != 'R') return std::string::npos;
  std::size_t start = i - 1;  // the 'R'
  if (start > 0) {
    const char before = content[start - 1];
    if (before == 'L' || before == 'u' || before == 'U') {
      start -= 1;
    } else if (before == '8' && start > 1 && content[start - 2] == 'u') {
      start -= 2;
    }
  }
  if (start > 0 && IsIdentChar(content[start - 1])) return std::string::npos;
  return start;
}

}  // namespace

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

ScanResult ScanSource(const std::string& content) {
  ScanResult result;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  State state = State::kCode;
  std::string line;             // blanked current line
  std::string comment;          // text of the current line comment
  std::string raw_delimiter;    // of the active R"delim( ... )delim"
  bool line_has_code = false;   // non-space code before any comment
  int line_number = 1;

  auto flush_line = [&] {
    if (state == State::kLineComment) {
      const std::set<std::string> rules = ParseAllowDirective(comment);
      if (!rules.empty()) {
        // A trailing comment guards its own line; a standalone comment
        // line guards the next line.
        const int target = line_has_code ? line_number : line_number + 1;
        result.allow[target].insert(rules.begin(), rules.end());
      }
      comment.clear();
      state = State::kCode;
    }
    // Strings never span lines (raw strings and block comments do).
    if (state == State::kString || state == State::kChar) state = State::kCode;
    result.code.push_back(line);
    line.clear();
    line_has_code = false;
    ++line_number;
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      flush_line();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          line += "  ";
          ++i;
        } else if (c == '"' &&
                   RawStringPrefixStart(content, i) != std::string::npos) {
          // R"delim( — capture the delimiter up to the '('. A delimiter
          // is at most 16 characters and never contains parentheses,
          // backslashes, or whitespace; bail to an ordinary string on
          // malformed input so a stray R" cannot swallow the file.
          raw_delimiter.clear();
          std::size_t j = i + 1;
          bool malformed = false;
          while (j < content.size() && content[j] != '(') {
            const char d = content[j];
            if (d == ')' || d == '\\' || d == '"' ||
                std::isspace(static_cast<unsigned char>(d)) != 0 ||
                raw_delimiter.size() >= 16) {
              malformed = true;
              break;
            }
            raw_delimiter += d;
            ++j;
          }
          if (malformed || j >= content.size()) {
            state = State::kString;
            line += ' ';
          } else {
            line += std::string(j - i + 1, ' ');
            i = j;
            state = State::kRawString;
          }
        } else if (c == '"') {
          state = State::kString;
          line += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          line += ' ';
        } else {
          line += c;
          if (!std::isspace(static_cast<unsigned char>(c))) {
            line_has_code = true;
          }
        }
        break;
      case State::kLineComment:
        comment += c;
        line += ' ';
        break;
      case State::kBlockComment:
        line += ' ';
        if (c == '*' && next == '/') {
          state = State::kCode;
          line += ' ';
          ++i;
        }
        break;
      case State::kString:
        line += ' ';
        if (c == '\\') {
          line += ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        line += ' ';
        if (c == '\\') {
          line += ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString: {
        // Close only on )delim" — compare in place.
        const std::string close = ")" + raw_delimiter + "\"";
        if (content.compare(i, close.size(), close) == 0) {
          line += std::string(close.size(), ' ');
          i += close.size() - 1;
          state = State::kCode;
        } else {
          line += ' ';
        }
        break;
      }
    }
  }
  if (!line.empty() || state == State::kLineComment) flush_line();
  return result;
}

FileScan ScanFile(const std::string& path, const std::string& content,
                  const std::string& header_content) {
  FileScan scan;
  scan.path = path;
  scan.raw = content;

  ScanResult result = ScanSource(content);
  scan.allow = std::move(result.allow);
  scan.joined = JoinLines(result.code, &scan.line_starts);

  std::vector<std::size_t> header_starts;
  scan.header_joined =
      JoinLines(ScanSource(header_content).code, &header_starts);

  // Includes come from the raw text: the target lives inside a string
  // literal, which the blanked view erased.
  int line_number = 1;
  std::size_t begin = 0;
  while (begin <= content.size()) {
    std::size_t end = content.find('\n', begin);
    if (end == std::string::npos) end = content.size();
    std::size_t at = begin;
    while (at < end && std::isspace(static_cast<unsigned char>(content[at]))) {
      ++at;
    }
    if (at < end && content[at] == '#') {
      at = SkipSpaces(content, at + 1);
      const std::string kInclude = "include";
      if (content.compare(at, kInclude.size(), kInclude) == 0) {
        at = SkipSpaces(content, at + kInclude.size());
        if (at < end && content[at] == '"') {
          const std::size_t close = content.find('"', at + 1);
          if (close != std::string::npos && close < end) {
            scan.includes.push_back(
                {content.substr(at + 1, close - at - 1), line_number});
          }
        }
      }
    }
    begin = end + 1;
    ++line_number;
  }
  return scan;
}

bool TokenAt(const std::string& code, std::size_t pos,
             const std::string& token) {
  if (code.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && IsIdentChar(code[pos - 1])) return false;
  const std::size_t end = pos + token.size();
  if (end < code.size() && IsIdentChar(code[end])) return false;
  return true;
}

std::vector<std::size_t> FindToken(const std::string& code,
                                   const std::string& token) {
  std::vector<std::size_t> hits;
  std::size_t pos = code.find(token);
  while (pos != std::string::npos) {
    if (TokenAt(code, pos, token)) hits.push_back(pos);
    pos = code.find(token, pos + 1);
  }
  return hits;
}

std::size_t SkipSpaces(const std::string& code, std::size_t pos) {
  while (pos < code.size() &&
         std::isspace(static_cast<unsigned char>(code[pos]))) {
    ++pos;
  }
  return pos;
}

bool NextNonSpaceIs(const std::string& code, std::size_t pos, char want) {
  pos = SkipSpaces(code, pos);
  return pos < code.size() && code[pos] == want;
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool HasDirComponent(const std::string& path, const std::string& component) {
  std::size_t start = 0;
  while (start < path.size()) {
    std::size_t slash = path.find('/', start);
    if (slash == std::string::npos) break;  // final component is the file
    if (path.compare(start, slash - start, component) == 0) return true;
    start = slash + 1;
  }
  return false;
}

int LineAt(const std::vector<std::size_t>& line_starts, std::size_t pos) {
  const auto it =
      std::upper_bound(line_starts.begin(), line_starts.end(), pos);
  return static_cast<int>(it - line_starts.begin());
}

std::string JoinLines(const std::vector<std::string>& lines,
                      std::vector<std::size_t>* line_starts) {
  std::string joined;
  for (const std::string& line : lines) {
    line_starts->push_back(joined.size());
    joined += line;
    joined += '\n';
  }
  return joined;
}

}  // namespace gpuperf::lint
