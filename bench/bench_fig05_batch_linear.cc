// Figure 5: execution time vs batch size for ResNet-50, MobileNetV2, and
// VGG-16 on A100 — linear in batch size, with per-network slopes.

#include <cstdio>
#include <vector>

#include "common/ascii_plot.h"
#include "common/string_util.h"
#include "common/table.h"
#include "exp_common.h"
#include "gpuexec/profiler.h"
#include "regression/linreg.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main() {
  const gpuexec::HardwareOracle oracle{gpuexec::OracleConfig()};
  const gpuexec::Profiler profiler(oracle);
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");

  std::vector<PlotSeries> series;
  TextTable table;
  table.SetHeader({"network", "slope (ms/image)", "R2 vs batch size"});
  for (const char* name : {"resnet50", "mobilenet_v2", "vgg16_bn"}) {
    dnn::Network network = zoo::BuildByName(name);
    PlotSeries s{name, {}, {}};
    std::vector<double> batches, times;
    for (std::int64_t batch = 2; batch <= 82; batch += 8) {
      const double ms = profiler.MeasureE2eUs(network, a100, batch) / 1e3;
      s.x.push_back(static_cast<double>(batch));
      s.y.push_back(ms);
      batches.push_back(static_cast<double>(batch));
      times.push_back(ms);
    }
    series.push_back(std::move(s));
    const regression::LinearFit fit = regression::FitLinear(batches, times);
    table.AddRow({name, Format("%.4f", fit.slope), Format("%.4f", fit.r2)});
  }

  PlotOptions options;
  options.title = "Figure 5: exec time vs batch size (A100)";
  options.x_label = "batch size";
  options.y_label = "exec time (ms)";
  std::fputs(AsciiPlot(series, options).c_str(), stdout);
  table.Print();
  std::printf("(paper: linear in batch size; slope differs per network)\n");
  return 0;
}
