// Figure 9: memory-bandwidth efficiency vs compute efficiency of
// ResNet-18 across GPUs. Bytes and FLOPs are estimated from layer shapes
// (not measured), so the absolute numbers understate utilization; the
// paper's point is that BANDWIDTH efficiency is stable across GPUs while
// compute efficiency is not — which motivates the IGKW model (O6).

#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "common/string_util.h"
#include "common/table.h"
#include "exp_common.h"
#include "gpuexec/profiler.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main() {
  const gpuexec::HardwareOracle oracle{gpuexec::OracleConfig()};
  const gpuexec::Profiler profiler(oracle);
  dnn::Network resnet18 = zoo::BuildByName("resnet18");

  TextTable table;
  table.SetHeader({"GPU", "BW efficiency", "Compute efficiency"});
  std::vector<double> bw_eff, compute_eff;
  for (const char* name :
       {"A40", "A100", "GTX 1080 Ti", "TITAN RTX", "RTX A5000",
        "Quadro P620"}) {
    const gpuexec::GpuSpec& gpu = gpuexec::GpuByName(name);
    gpuexec::NetworkProfile profile = profiler.Profile(resnet18, gpu, 256);
    gpuexec::EfficiencyReport report =
        gpuexec::ComputeEfficiency(resnet18, profile, gpu);
    table.AddRow({name, Format("%.1f%%", 100 * report.bandwidth_efficiency),
                  Format("%.1f%%", 100 * report.compute_efficiency)});
    bw_eff.push_back(report.bandwidth_efficiency);
    compute_eff.push_back(report.compute_efficiency);
  }
  table.Print();

  const double bw_cv = StdDev(bw_eff) / Mean(bw_eff);
  const double compute_cv = StdDev(compute_eff) / Mean(compute_eff);
  std::printf("\ncoefficient of variation across GPUs: bandwidth %.2f, "
              "compute %.2f\n",
              bw_cv, compute_cv);
  std::printf("(paper: BW efficiency relatively stable (~10%%) across GPUs; "
              "compute efficiency is not)\n");
  return 0;
}
