// Ablation: the KW model's kernel-clustering tolerance. The paper merges
// 182 kernels into 83 regression models on A100; this sweep shows how the
// model count and test error move with the merge tolerance, including
// clustering disabled entirely.

#include <cstdio>

#include "common/string_util.h"
#include "common/table.h"
#include "exp_common.h"
#include "models/kw_model.h"

using namespace gpuperf;

int main() {
  const bench::Experiment& experiment = bench::Experiment::Full();

  TextTable table;
  table.SetHeader({"slope tolerance", "models (A100)", "kernels", "KW error"});
  for (double tolerance : {-1.0, 0.05, 0.15, 0.3, 0.6, 1.5}) {
    models::KwOptions options;
    if (tolerance < 0) {
      options.cluster = false;
    } else {
      options.cluster_slope_tol = tolerance;
    }
    models::KwModel model(options);
    model.Train(experiment.data(), experiment.split());
    bench::EvalResult result =
        bench::EvaluateOnTestSet(experiment, model, "A100");
    table.AddRow({tolerance < 0 ? "off" : Format("%.2f", tolerance),
                  Format("%d", model.ClusterCount("A100")),
                  Format("%d", model.KernelCount("A100")),
                  Format("%.2f%%", 100 * result.mape)});
  }
  table.Print();
  std::printf("\n(clustering shrinks the model count at nearly no accuracy "
              "cost until the tolerance gets aggressive — the paper's "
              "182 -> 83 reduction relies on this)\n");
  return 0;
}
