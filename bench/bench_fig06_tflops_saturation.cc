// Figure 6: achieved TFLOPS vs batch size on A100 — throughput climbs
// until the batch saturates the GPU, then plateaus.

#include <cstdio>
#include <vector>

#include "common/ascii_plot.h"
#include "common/string_util.h"
#include "common/table.h"
#include "dnn/flops.h"
#include "exp_common.h"
#include "gpuexec/profiler.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main() {
  const gpuexec::HardwareOracle oracle{gpuexec::OracleConfig()};
  const gpuexec::Profiler profiler(oracle);
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");

  std::vector<PlotSeries> series;
  TextTable table;
  table.SetHeader({"network", "TFLOPS @BS8", "TFLOPS @BS64", "TFLOPS @BS512",
                   "saturation"});
  for (const char* name : {"resnet50", "mobilenet_v2", "vgg16_bn"}) {
    dnn::Network network = zoo::BuildByName(name);
    PlotSeries s{name, {}, {}};
    double at8 = 0, at64 = 0, at512 = 0;
    for (std::int64_t batch : {8, 16, 32, 64, 128, 192, 256, 320, 384, 448,
                               512}) {
      const double us = profiler.MeasureE2eUs(network, a100, batch);
      const double tflops =
          static_cast<double>(dnn::NetworkFlops(network, batch)) /
          (us * 1e-6) / 1e12;
      s.x.push_back(static_cast<double>(batch));
      s.y.push_back(tflops);
      if (batch == 8) at8 = tflops;
      if (batch == 64) at64 = tflops;
      if (batch == 512) at512 = tflops;
    }
    series.push_back(std::move(s));
    table.AddRow({name, Format("%.2f", at8), Format("%.2f", at64),
                  Format("%.2f", at512),
                  Format("%.0f%% of peak by BS64", 100 * at64 / at512)});
  }

  PlotOptions options;
  options.title = "Figure 6: achieved TFLOPS vs batch size (A100)";
  options.x_label = "batch size";
  options.y_label = "TFLOPS";
  std::fputs(AsciiPlot(series, options).c_str(), stdout);
  table.Print();
  std::printf("(paper: steady throughput once batch size is large enough)\n");
  return 0;
}
