#ifndef GPUPERF_BENCH_EXP_COMMON_H_
#define GPUPERF_BENCH_EXP_COMMON_H_

/**
 * @file
 * Shared experiment plumbing for the bench binaries: one full measurement
 * campaign (the 646-network zoo on all seven GPUs at BS = 512) built once
 * per process, plus evaluation and S-curve rendering helpers shared by the
 * Figure 11-14 reproductions.
 *
 * Set GPUPERF_FAST=1 to run on a 1/8 zoo (CI-speed smoke runs).
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dataset/dataset.h"
#include "dnn/network.h"
#include "gpuexec/oracle.h"
#include "gpuexec/profiler.h"
#include "models/predictor.h"

namespace gpuperf::bench {

/** Split/measurement constants shared by every experiment. */
inline constexpr std::uint64_t kSplitSeed = 0x5eedf00dULL;
inline constexpr double kTestFraction = 0.15;
inline constexpr std::int64_t kTrainBatch = 512;

/** The full measurement campaign, built lazily once per process. */
class Experiment {
 public:
  /** The singleton campaign (full zoo x all GPUs at BS 512). */
  static const Experiment& Full();

  const std::vector<dnn::Network>& networks() const { return networks_; }
  const dataset::Dataset& data() const { return data_; }
  const dataset::NetworkSplit& split() const { return split_; }
  const gpuexec::HardwareOracle& oracle() const { return oracle_; }
  const gpuexec::Profiler& profiler() const { return profiler_; }

  /** The network object with dataset id `network_id`. */
  const dnn::Network& NetworkById(int network_id) const;

  /** Measured e2e time of (gpu, network) at BS 512 from the dataset. */
  double MeasuredE2eUs(const std::string& gpu_name,
                       const std::string& network_name) const;

  /** False if the combo was skipped (e.g. out-of-memory cleaning). */
  bool HasMeasurement(const std::string& gpu_name,
                      const std::string& network_name) const;

 private:
  Experiment();

  std::vector<dnn::Network> networks_;
  dataset::Dataset data_;
  dataset::NetworkSplit split_;
  gpuexec::HardwareOracle oracle_;
  gpuexec::Profiler profiler_;
  std::map<std::pair<std::string, std::string>, double> measured_;
  std::map<int, int> id_to_index_;
};

/** Predictions vs measurements over the held-out networks of one GPU. */
struct EvalResult {
  std::vector<std::string> names;
  std::vector<double> predicted;
  std::vector<double> measured;
  double mape = 0;
};

/** Runs `predictor` on every test-set network for `gpu_name` at BS 512. */
EvalResult EvaluateOnTestSet(const Experiment& experiment,
                             const models::Predictor& predictor,
                             const std::string& gpu_name);

/** Prints the paper's S-curve (pred/measured sorted) plus summary rows. */
void PrintSCurve(const EvalResult& result, const std::string& title);

}  // namespace gpuperf::bench

#endif  // GPUPERF_BENCH_EXP_COMMON_H_
