// Figure 3: end-to-end execution time of all networks against their
// theoretical FLOPs, batch size 4 and higher, on A100.
//
// The paper's two observations to reproduce: (1) the trend is linear,
// (2) the band is constantly about 10x wide, and the linear trend breaks
// down for small-FLOP workloads (CPU scheduling dominates).

#include <cstdio>
#include <vector>

#include <cmath>

#include "common/ascii_plot.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/table.h"
#include "dnn/flops.h"
#include "exp_common.h"
#include "gpuexec/profiler.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main() {
  const gpuexec::HardwareOracle oracle{gpuexec::OracleConfig()};
  const gpuexec::Profiler profiler(oracle);
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");

  std::vector<dnn::Network> networks = zoo::SmallZoo(/*stride=*/4);
  PlotSeries series;
  series.label = "network execution";
  std::vector<double> log_flops, log_time;
  for (const dnn::Network& network : networks) {
    for (std::int64_t batch : {4, 16, 64, 256}) {
      const double gflops =
          static_cast<double>(dnn::NetworkFlops(network, batch)) / 1e9;
      const double ms = profiler.MeasureE2eUs(network, a100, batch) / 1e3;
      series.x.push_back(gflops);
      series.y.push_back(ms);
      log_flops.push_back(std::log10(gflops));
      log_time.push_back(std::log10(ms));
    }
  }

  PlotOptions options;
  options.title = "Figure 3: exec time vs FLOPs, all networks, BS >= 4 (A100)";
  options.x_label = "GFLOPs";
  options.y_label = "exec time (ms)";
  options.log_x = true;
  options.log_y = true;
  std::fputs(AsciiPlot({series}, options).c_str(), stdout);

  // Quantify the two claims.
  std::printf("log-log correlation: %.4f (paper: 'the trend is linear')\n",
              PearsonCorrelation(log_flops, log_time));
  // Band width: spread of time at fixed work, i.e. of time/FLOPs.
  std::vector<double> us_per_gflop;
  for (std::size_t i = 0; i < series.x.size(); ++i) {
    us_per_gflop.push_back(series.y[i] * 1e3 / series.x[i]);
  }
  const double band = Percentile(us_per_gflop, 97.5) /
                      Percentile(us_per_gflop, 2.5);
  std::printf("efficiency band (p97.5/p2.5 of time-per-FLOP): %.1fx "
              "(paper: 'constantly about 10 times wide')\n",
              band);
  return 0;
}
