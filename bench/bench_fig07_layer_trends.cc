// Figure 7: layer execution time vs layer FLOPs by layer type on A100 —
// each type falls on its own linear trend line; Pooling and BN are less
// efficient (upper-left), FC and CONV more efficient; CONV is the least
// perfectly linear (multiple cuDNN algorithms).

#include <cstdio>
#include <map>
#include <vector>

#include "common/ascii_plot.h"
#include "common/string_util.h"
#include "common/table.h"
#include "exp_common.h"
#include "regression/linreg.h"

using namespace gpuperf;

int main() {
  const bench::Experiment& experiment = bench::Experiment::Full();
  const dataset::Dataset& data = experiment.data();
  const int a100 = data.gpus().Find("A100");

  // Aggregate kernel times into layer times, bucketed by layer kind.
  std::map<std::tuple<int, int>, std::pair<double, double>> layers;
  std::map<std::tuple<int, int>, dnn::LayerKind> kinds;
  for (const dataset::KernelRow& row : data.kernel_rows()) {
    if (row.gpu_id != a100) continue;
    auto key = std::make_tuple(row.network_id, row.layer_index);
    layers[key].first += row.time_us;
    layers[key].second = static_cast<double>(row.layer_flops);
    kinds[key] = row.layer_kind;
  }

  std::map<dnn::LayerKind, std::pair<std::vector<double>,
                                     std::vector<double>>> by_kind;
  for (const auto& [key, time_flops] : layers) {
    if (time_flops.second <= 0) continue;  // log axes need positive FLOPs
    auto& [x, y] = by_kind[kinds[key]];
    x.push_back(time_flops.second / 1e9);
    y.push_back(time_flops.first / 1e3);
  }

  std::vector<PlotSeries> series;
  TextTable table;
  table.SetHeader({"layer type", "points", "us per GFLOP", "R2 (linear)"});
  for (dnn::LayerKind kind :
       {dnn::LayerKind::kBatchNorm, dnn::LayerKind::kConv2d,
        dnn::LayerKind::kLinear, dnn::LayerKind::kMaxPool}) {
    auto it = by_kind.find(kind);
    if (it == by_kind.end()) continue;
    auto& [x, y] = it->second;
    PlotSeries s{dnn::LayerKindName(kind), {}, {}};
    // Subsample for the plot; fit on everything.
    for (std::size_t i = 0; i < x.size(); i += std::max<std::size_t>(
             1, x.size() / 400)) {
      s.x.push_back(x[i]);
      s.y.push_back(y[i]);
    }
    series.push_back(std::move(s));
    const regression::LinearFit fit = regression::FitLinear(x, y);
    table.AddRow({dnn::LayerKindName(kind), Format("%zu", x.size()),
                  Format("%.2f", fit.slope * 1e3), Format("%.4f", fit.r2)});
  }

  PlotOptions options;
  options.title = "Figure 7: layer time vs layer FLOPs by type (A100)";
  options.x_label = "layer GFLOPs";
  options.y_label = "layer time (ms)";
  options.log_x = true;
  options.log_y = true;
  std::fputs(AsciiPlot(series, options).c_str(), stdout);
  table.Print();
  std::printf("(paper: BN/Pooling upper-left and near-perfectly linear; "
              "CONV efficient but least linear)\n");
  return 0;
}
