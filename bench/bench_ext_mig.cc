// Extension (paper future work): Multi-Instance GPU. A MIG slice is a
// proportional cut of a GPU's SMs, bandwidth, and memory — i.e. exactly
// the kind of hypothetical GPU the Inter-GPU model predicts from Table 1
// specs. We predict ResNet-50 on A100 MIG slices with an IGKW model that
// never saw the A100 at all, and compare against ground truth.

#include <cstdio>

#include "common/stats.h"
#include "common/string_util.h"
#include "common/table.h"
#include "exp_common.h"
#include "gpuexec/profiler.h"
#include "models/igkw_model.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main() {
  const bench::Experiment& experiment = bench::Experiment::Full();
  // Train WITHOUT the A100: the MIG slices must be genuinely unseen.
  models::IgkwModel igkw;
  igkw.Train(experiment.data(), experiment.split(),
             {"A40", "V100", "GTX 1080 Ti"});

  gpuexec::Profiler profiler(experiment.oracle());
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  dnn::Network resnet50 = zoo::BuildByName("resnet50");
  constexpr std::int64_t kBatch = 64;  // slices serve smaller batches

  TextTable table;
  table.SetHeader({"instance", "BW (GB/s)", "SMs", "measured (ms)",
                   "predicted (ms)", "error"});
  std::vector<double> predicted, measured;
  for (int slices : {1, 2, 3, 4, 7}) {
    const gpuexec::GpuSpec slice = a100.MigSlice(slices);
    const double truth = profiler.MeasureE2eUs(resnet50, slice, kBatch);
    const double pred = igkw.PredictUs(resnet50, slice, kBatch);
    predicted.push_back(pred);
    measured.push_back(truth);
    table.AddRow({Format("%dg (%s)", slices, slice.name.c_str()),
                  Format("%.0f", slice.bandwidth_gbps),
                  Format("%d", slice.sm_count), Format("%.1f", truth / 1e3),
                  Format("%.1f", pred / 1e3),
                  Format("%.1f%%", 100 * RelativeError(pred, truth))});
  }
  table.Print();
  std::printf("\naverage error across MIG slices: %.1f%%. Mid slices track "
              "the spec scaling; the extreme slices expose the linear "
              "extrapolation limits the paper's Limitations section "
              "anticipates for corner-case configurations.\n",
              100 * Mape(predicted, measured));

  // The practical question: how many 1g instances beat one 7g instance?
  const double full = profiler.MeasureE2eUs(resnet50, a100, kBatch);
  const double one_g =
      profiler.MeasureE2eUs(resnet50, a100.MigSlice(1), kBatch);
  std::printf("throughput check: 7 x 1g slices deliver %.2fx the images/s "
              "of one full A100 at BS %ld\n",
              7.0 * full / one_g, (long)kBatch);
  return 0;
}
