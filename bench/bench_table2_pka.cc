// Table 2: modeling ResNet-50 inference on V100 at batch sizes 64, 128,
// and 256 — the KW model vs the Principal Kernel Selection / Analysis
// (PKS/PKA) sampled simulators. The paper's numbers: KW errors
// 2.6/0.4/0.8% in seconds of runtime; PKS 6.4/3.5/2.2% in 10/8/18 hours;
// PKA 18/12/24% in 1.3/1.5/1.6 hours. Absolute runtimes differ on our
// substrate, but the ordering — KW orders of magnitude faster and at
// least as accurate — is the result under reproduction.

#include <chrono>
#include <cstdio>

#include "baselines/pka.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/table.h"
#include "dataset/builder.h"
#include "exp_common.h"
#include "gpuexec/profiler.h"
#include "models/kw_model.h"
#include "zoo/transformer.h"
#include "zoo/zoo.h"

using namespace gpuperf;
using Clock = std::chrono::steady_clock;

int main() {
  const bench::Experiment& experiment = bench::Experiment::Full();
  models::KwModel kw;
  kw.Train(experiment.data(), experiment.split());

  const gpuexec::GpuSpec& v100 = gpuexec::GpuByName("V100");
  const gpuexec::Profiler profiler(experiment.oracle());
  dnn::Network resnet50 = zoo::BuildByName("resnet50");

  TextTable table;
  table.SetHeader({"Batch", "KW err", "PKS err", "PKA err", "KW time",
                   "PKS time", "PKA time"});
  for (std::int64_t batch : {64, 128, 256}) {
    const double measured = profiler.MeasureE2eUs(resnet50, v100, batch);

    const auto kw_start = Clock::now();
    const double kw_pred = kw.PredictUs(resnet50, v100, batch);
    const double kw_seconds =
        std::chrono::duration<double>(Clock::now() - kw_start).count();

    baselines::SampledSimResult pks =
        baselines::RunPks(resnet50, v100, batch);
    baselines::SampledSimResult pka =
        baselines::RunPka(resnet50, v100, batch);

    table.AddRow({Format("%ld", (long)batch),
                  Format("%.1f%%", 100 * RelativeError(kw_pred, measured)),
                  Format("%.1f%%",
                         100 * RelativeError(pks.predicted_e2e_us, measured)),
                  Format("%.1f%%",
                         100 * RelativeError(pka.predicted_e2e_us, measured)),
                  Format("%.2g s", kw_seconds),
                  Format("%.2f s", pks.wall_seconds),
                  Format("%.2f s", pka.wall_seconds)});
  }
  table.Print();
  std::printf("\n(paper Table 2: KW 2.6/0.4/0.8%% in seconds; PKS "
              "6.4/3.5/2.2%% in 10/8/18 h; PKA 18/12/24%% in 1.3-1.6 h.\n"
              " Reproduced shape: KW most accurate and orders of magnitude "
              "faster; PKS beats PKA on error but costs more time.)\n");

  // The paper's closing claim for this table: "the KW model is expected
  // to demonstrate even more speed advantages over PKA/PKS for complex
  // networks such as GPT-4." Demonstrate on a GPT-2-class decoder: train
  // KW on an affordable transformer campaign, then compare prediction
  // cost and accuracy on gpt2_large at full context.
  std::printf("\nGPT-class extrapolation:\n");
  std::vector<dnn::Network> transformer_zoo = zoo::TransformerZoo();
  for (const char* preset : {"gpt2", "gpt2_medium"}) {
    for (std::int64_t seq : {256, 512, 1024}) {
      transformer_zoo.push_back(zoo::BuildGpt2(preset, seq));
    }
  }
  dataset::BuildOptions options;
  options.gpu_names = {"V100"};
  options.batch = 8;
  dataset::Dataset tf_data =
      dataset::BuildDataset(transformer_zoo, options);
  models::KwModel tf_kw;
  tf_kw.Train(tf_data,
              dataset::SplitByNetwork(tf_data, 0.15, bench::kSplitSeed));

  dnn::Network gpt2_large = zoo::BuildGpt2("gpt2_large");
  const double truth = profiler.MeasureE2eUs(gpt2_large, v100, 8);
  const auto kw_start = Clock::now();
  const double kw_pred = tf_kw.PredictUs(gpt2_large, v100, 8);
  const double kw_seconds =
      std::chrono::duration<double>(Clock::now() - kw_start).count();
  baselines::SampledSimResult pka = baselines::RunPka(gpt2_large, v100, 8);
  std::printf("gpt2_large @seq1024: KW %.1f%% error in %.2g s; PKA %.1f%% "
              "error in %.2f s (%.0fx slower, %s blocks walked)\n",
              100 * RelativeError(kw_pred, truth), kw_seconds,
              100 * RelativeError(pka.predicted_e2e_us, truth),
              pka.wall_seconds, pka.wall_seconds / kw_seconds,
              Engineering(static_cast<double>(pka.simulated_blocks))
                  .c_str());
  return 0;
}
