// Table 1: the GPUs used in the experiments.

#include "common/string_util.h"
#include "common/table.h"
#include "gpuexec/gpu_spec.h"

using namespace gpuperf;

int main() {
  TextTable table;
  table.SetHeader({"GPU", "Bandwidth (GB/s)", "Memory (GB)",
                   "TFLOPS (FP32)", "Tensor Core", "SMs"});
  for (const gpuexec::GpuSpec& gpu : gpuexec::AllGpus()) {
    table.AddRow({gpu.name, Format("%.0f", gpu.bandwidth_gbps),
                  Format("%.0f", gpu.memory_gb),
                  Format("%.1f", gpu.fp32_tflops),
                  Format("%d", gpu.tensor_cores), Format("%d", gpu.sm_count)});
  }
  table.Print();
  return 0;
}
