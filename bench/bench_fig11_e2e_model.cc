// Figure 11: End-to-End model predictions on A100, normalized to measured
// time and sorted ascending. Paper: average error 0.35.

#include <cstdio>

#include "exp_common.h"
#include "models/e2e_model.h"

using namespace gpuperf;

int main() {
  const bench::Experiment& experiment = bench::Experiment::Full();
  models::E2eModel model;
  model.Train(experiment.data(), experiment.split());

  const auto& fit = model.FitFor("A100");
  std::printf("E2E regression on A100: time_us = %.4g * FLOPs + %.4g "
              "(R2=%.4f over %zu training networks)\n",
              fit.slope, fit.intercept, fit.r2, fit.n);

  bench::EvalResult result =
      bench::EvaluateOnTestSet(experiment, model, "A100");
  bench::PrintSCurve(result,
                     "Figure 11: E2E model, A100 (paper: 35% avg error)");
  return 0;
}
