// Extension (case study 3 taken online): latency-aware dispatch in an
// inference-serving pool. A Poisson stream of mixed jobs hits an
// {A40, TITAN RTX, V100} pool; the dispatcher either ignores the model
// (round-robin / least-outstanding) or uses KW-predicted service times to
// send each job to the GPU with the earliest predicted finish.
//
// A second sweep injects GPU failures (deterministic fault plan) and
// reports availability, p99, and drop rate as MTBF shrinks at a fixed
// MTTR — the fault-tolerance story: predicted dispatch keeps its latency
// edge while failures are absorbed by retries.
//
// A third sweep drives the pool deep into overload (arrival rates past
// saturation) with admission control on — bounded queues, a per-job SLO,
// and circuit breakers — and reports goodput, shed fraction, and SLO
// attainment per policy: the "degrade, don't die" story, where the
// predictor doubles as a load-shedder that refuses jobs it already knows
// will miss their deadline.

#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "common/table.h"
#include "exp_common.h"
#include "gpuexec/profiler.h"
#include "models/kw_model.h"
#include "simsys/serving.h"
#include "simsys/serving_matrix.h"
#include "zoo/zoo.h"

using namespace gpuperf;

namespace {

constexpr simsys::DispatchPolicy kPolicies[] = {
    simsys::DispatchPolicy::kRoundRobin,
    simsys::DispatchPolicy::kLeastOutstanding,
    simsys::DispatchPolicy::kPredictedLeastLoad,
};

}  // namespace

int main() {
  const bench::Experiment& experiment = bench::Experiment::Full();
  models::KwModel kw;
  kw.Train(experiment.data(), experiment.split());

  const char* kJobs[] = {"resnet18", "resnet50", "densenet121",
                         "mobilenet_v2", "vgg16_bn"};
  const char* kPool[] = {"A40", "TITAN RTX", "V100"};
  constexpr std::int64_t kBatch = 16;  // online micro-batches

  gpuexec::Profiler profiler(experiment.oracle());
  std::vector<dnn::Network> networks;
  std::vector<const gpuexec::GpuSpec*> pool;
  for (const char* job : kJobs) networks.push_back(zoo::BuildByName(job));
  for (const char* gpu_name : kPool) pool.push_back(&gpuexec::GpuByName(gpu_name));

  std::vector<std::vector<double>> truth, predicted;
  for (const dnn::Network& network : networks) {
    std::vector<double> t;
    for (const gpuexec::GpuSpec* gpu : pool) {
      t.push_back(profiler.MeasureE2eUs(network, *gpu, kBatch));
    }
    truth.push_back(std::move(t));
  }
  // The predicted matrix comes from one batched PredictMany sweep over
  // compiled plans (the serving hot path), bit-identical to per-cell
  // PredictUs calls.
  simsys::ServingMatrixBuffer matrix_buffer;
  simsys::FillPredictedServingMatrix(kw, networks, pool, kBatch,
                                     matrix_buffer, predicted);
  const std::vector<double> mix = {4, 2, 1, 4, 1};  // request popularity

  TextTable table;
  table.SetHeader({"policy", "arrival/s", "p50 (ms)", "p95 (ms)",
                   "p99 (ms)", "completed"});
  for (double rate : {30.0, 60.0, 90.0}) {
    for (simsys::DispatchPolicy policy : kPolicies) {
      simsys::ServingConfig config;
      config.arrival_rate_per_s = rate;
      config.duration_s = 30;
      config.policy = policy;
      simsys::ServingResult result =
          simsys::SimulateServing(truth, predicted, mix, config).value();
      table.AddRow({simsys::DispatchPolicyName(policy),
                    Format("%.0f", rate), Format("%.1f", result.p50_ms),
                    Format("%.1f", result.p95_ms),
                    Format("%.1f", result.p99_ms),
                    Format("%d", result.completed)});
    }
  }
  table.Print();
  std::printf("\n(the KW-driven dispatcher needs only microseconds per "
              "decision — 'performance models that do not incur major "
              "performance overhead', as case study 3 demands)\n");

  // --- Fault sweep: availability / p99 / drop rate vs MTBF at MTTR 2 s.
  std::printf("\nfault injection at 60 req/s, MTTR 2 s, 3 retries:\n\n");
  TextTable faults;
  faults.SetHeader({"policy", "MTBF (s)", "avail", "p99 (ms)", "drop rate",
                    "retries"});
  for (simsys::DispatchPolicy policy : kPolicies) {
    for (double mtbf : {40.0, 20.0, 10.0, 5.0}) {
      simsys::ServingConfig config;
      config.arrival_rate_per_s = 60;
      config.duration_s = 30;
      config.policy = policy;
      config.faults.mtbf_s = mtbf;
      config.faults.mttr_s = 2;
      simsys::ServingResult result =
          simsys::SimulateServing(truth, predicted, mix, config).value();
      double avail = 0;
      for (double a : result.gpu_availability) avail += a;
      avail /= static_cast<double>(result.gpu_availability.size());
      const int arrivals = result.completed + result.dropped;
      faults.AddRow(
          {simsys::DispatchPolicyName(policy), Format("%.0f", mtbf),
           Format("%.1f%%", 100 * avail), Format("%.1f", result.p99_ms),
           Format("%.2f%%", arrivals > 0 ? 100.0 * result.dropped / arrivals
                                         : 0.0),
           Format("%d", result.retries)});
    }
  }
  faults.Print();
  std::printf("\n(jobs interrupted by a failure are re-dispatched with "
              "capped exponential backoff; a fixed seed makes every row "
              "bit-reproducible)\n");

  // --- Overload sweep: goodput / shed fraction / SLO attainment vs
  // arrival rate with admission control, a 150 ms SLO, and breakers on.
  std::printf("\noverload at queue cap 8/GPU, SLO 150 ms, MTBF 20 s, "
              "breakers (3 failures, 500 ms cooldown):\n\n");
  TextTable overload;
  overload.SetHeader({"policy", "arrival/s", "goodput/s", "shed", "SLO",
                      "p99 (ms)", "trips"});
  for (simsys::DispatchPolicy policy : kPolicies) {
    for (double rate : {60.0, 120.0, 240.0, 480.0}) {
      simsys::ServingConfig config;
      config.arrival_rate_per_s = rate;
      config.duration_s = 30;
      config.policy = policy;
      config.faults.mtbf_s = 20;
      config.faults.mttr_s = 2;
      config.queue_cap = 8;
      config.slo_ms = 150;
      config.breaker.failure_threshold = 3;
      config.breaker.cooldown_ms = 500;
      simsys::ServingResult result =
          simsys::SimulateServing(truth, predicted, mix, config).value();
      const int arrivals =
          result.completed + result.dropped + result.shed_on_admission;
      const int good = result.completed - result.deadline_misses;
      overload.AddRow(
          {simsys::DispatchPolicyName(policy), Format("%.0f", rate),
           Format("%.1f", good / config.duration_s),
           Format("%.1f%%", arrivals > 0
                                ? 100.0 * result.shed_on_admission / arrivals
                                : 0.0),
           Format("%.1f%%", 100 * result.slo_attainment),
           Format("%.1f", result.p99_ms),
           Format("%d", result.breaker_opens)});
    }
  }
  overload.Print();
  std::printf("\n(goodput counts only completions inside the SLO; shedding "
              "on admission keeps p99 bounded where an unbounded queue "
              "would grow without limit)\n");
  return 0;
}
