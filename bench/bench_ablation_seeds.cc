// Ablation: seed robustness. Every stochastic element of the substrate
// (quirk factors, measurement noise, splits) flows from one 64-bit seed;
// this sweep rebuilds the campaign under different seeds and shows that
// the paper's conclusions — the E2E > LW > KW error ordering and the
// KW/IGKW magnitudes — are properties of the system, not of one draw.

#include <cstdio>

#include "common/stats.h"
#include "common/string_util.h"
#include "common/table.h"
#include "dataset/builder.h"
#include "gpuexec/profiler.h"
#include "models/e2e_model.h"
#include "models/igkw_model.h"
#include "models/kw_model.h"
#include "models/lw_model.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main() {
  std::vector<dnn::Network> networks = zoo::SmallZoo(4);
  TextTable table;
  table.SetHeader({"oracle seed", "E2E", "LW", "KW", "IGKW (TITAN unseen)"});

  for (std::uint64_t seed : {0x9f7e5eedULL, 0x1111ULL, 0xabcdef99ULL}) {
    dataset::BuildOptions options;
    options.gpu_names = {"A100", "A40", "GTX 1080 Ti", "TITAN RTX"};
    options.oracle.seed = seed;
    dataset::Dataset data = dataset::BuildDataset(networks, options);
    dataset::NetworkSplit split = dataset::SplitByNetwork(data, 0.15, seed);

    models::E2eModel e2e;
    models::LwModel lw;
    models::KwModel kw;
    models::IgkwModel igkw;
    e2e.Train(data, split);
    lw.Train(data, split);
    kw.Train(data, split);
    igkw.Train(data, split, {"A100", "A40", "GTX 1080 Ti"});

    gpuexec::HardwareOracle oracle(options.oracle);
    gpuexec::Profiler profiler(oracle);
    const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
    const gpuexec::GpuSpec& titan = gpuexec::GpuByName("TITAN RTX");

    std::vector<double> e2e_p, lw_p, kw_p, igkw_p, m_a100, m_titan;
    for (const dnn::Network& network : networks) {
      const int id = data.networks().Find(network.name());
      if (id < 0 || !split.IsTest(id)) continue;
      m_a100.push_back(profiler.MeasureE2eUs(network, a100, 512));
      m_titan.push_back(profiler.MeasureE2eUs(network, titan, 512));
      e2e_p.push_back(e2e.PredictUs(network, a100, 512));
      lw_p.push_back(lw.PredictUs(network, a100, 512));
      kw_p.push_back(kw.PredictUs(network, a100, 512));
      igkw_p.push_back(igkw.PredictUs(network, titan, 512));
    }
    table.AddRow({Format("0x%llx", (unsigned long long)seed),
                  Format("%.1f%%", 100 * Mape(e2e_p, m_a100)),
                  Format("%.1f%%", 100 * Mape(lw_p, m_a100)),
                  Format("%.1f%%", 100 * Mape(kw_p, m_a100)),
                  Format("%.1f%%", 100 * Mape(igkw_p, m_titan))});
  }
  table.Print();
  std::printf("\n(the ordering E2E > LW > KW and the KW/IGKW magnitudes "
              "hold under every substrate seed)\n");
  return 0;
}
