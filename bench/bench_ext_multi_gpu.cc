// Extension (case-study domain: multi-GPU training architecture): weak
// scaling of data-parallel training with gradient-bucket overlap. Layer
// forward/backward times come from KW models trained on inference and
// training campaigns; the ring all-reduce and bucket overlap come from
// the event-driven simulator.

#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "common/table.h"
#include "dataset/builder.h"
#include "dnn/flops.h"
#include "exp_common.h"
#include "models/kw_model.h"
#include "simsys/data_parallel.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main() {
  // Per-layer forward times (inference campaign) and forward+backward
  // times (training campaign), both at BS 16 per replica on A100.
  constexpr std::int64_t kBatch = 16;
  dataset::BuildOptions options;
  options.gpu_names = {"A100"};
  options.batch = kBatch;
  dataset::Dataset fwd_data = dataset::BuildDataset(zoo::SmallZoo(8), options);
  options.workload = gpuexec::Workload::kTraining;
  dataset::Dataset step_data =
      dataset::BuildDataset(zoo::SmallZoo(8), options);
  models::KwModel fwd_model, step_model;
  fwd_model.Train(fwd_data,
                  dataset::SplitByNetwork(fwd_data, 0.15, bench::kSplitSeed));
  step_model.Train(
      step_data, dataset::SplitByNetwork(step_data, 0.15, bench::kSplitSeed));

  for (const char* name : {"resnet50", "bert_base"}) {
    dnn::Network network = zoo::BuildByName(name);
    std::vector<double> forward_us, backward_us;
    std::vector<std::int64_t> gradient_bytes;
    for (const dnn::Layer& layer : network.layers()) {
      const double fwd = fwd_model.PredictLayerUs(layer, "A100", kBatch);
      const double step = step_model.PredictLayerUs(layer, "A100", kBatch);
      forward_us.push_back(fwd);
      backward_us.push_back(std::max(0.0, step - fwd));
      gradient_bytes.push_back(dnn::LayerWeightBytes(layer));
    }

    std::printf("=== %s, BS %ld per replica (weights %s)\n", name,
                (long)kBatch,
                Engineering(static_cast<double>(
                                dnn::NetworkWeightBytes(network)))
                    .c_str());
    TextTable table;
    table.SetHeader({"GPUs", "fabric (GB/s)", "step (ms)", "exposed comm",
                     "scaling eff", "no-overlap eff"});
    for (int gpus : {1, 2, 4, 8}) {
      for (double fabric : {4.0, 16.0, 64.0}) {
        if (gpus == 1 && fabric != 16.0) continue;
        simsys::DataParallelConfig config;
        config.num_gpus = gpus;
        config.link_bandwidth_gbps = fabric;
        simsys::DataParallelResult overlap = simsys::SimulateDataParallelStep(
            forward_us, backward_us, gradient_bytes, config);
        config.overlap = false;
        simsys::DataParallelResult blocking =
            simsys::SimulateDataParallelStep(forward_us, backward_us,
                                             gradient_bytes, config);
        table.AddRow({Format("%d", gpus), Format("%.0f", fabric),
                      Format("%.1f", overlap.step_time_us / 1e3),
                      Format("%.1f ms", overlap.exposed_comm_us / 1e3),
                      Format("%.0f%%", 100 * overlap.scaling_efficiency),
                      Format("%.0f%%", 100 * blocking.scaling_efficiency)});
      }
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("(bucketed overlap hides most gradient traffic on fast "
              "fabrics; slow fabrics expose it — and the whole sweep runs "
              "in milliseconds thanks to the performance model)\n");
  return 0;
}
