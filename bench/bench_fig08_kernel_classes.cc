// Figure 8: kernel classification. For every kernel, linear regressions
// against the three candidate drivers — input NCHW, layer FLOPs (the
// operation count), output NCHW — separate kernels into input-driven,
// operation-driven, and output-driven groups: the matching driver shows
// high R², the others low (off-diagonal).
//
// The ground-truth class comes from the lowering layer; the classifier
// must rediscover it from R² competition alone.

#include <cstdio>
#include <map>
#include <vector>

#include "common/string_util.h"
#include "common/table.h"
#include "exp_common.h"
#include "regression/linreg.h"

using namespace gpuperf;
using gpuexec::CostDriver;

int main() {
  const bench::Experiment& experiment = bench::Experiment::Full();
  const dataset::Dataset& data = experiment.data();
  const int a100 = data.gpus().Find("A100");

  struct Samples {
    std::vector<double> x[3];  // input, operation, output
    std::vector<double> y;
    CostDriver truth = CostDriver::kOutput;
  };
  std::map<int, Samples> kernels;
  for (const dataset::KernelRow& row : data.kernel_rows()) {
    if (row.gpu_id != a100) continue;
    Samples& s = kernels[row.kernel_id];
    s.x[0].push_back(static_cast<double>(row.input_elems));
    s.x[1].push_back(static_cast<double>(row.layer_flops));
    s.x[2].push_back(static_cast<double>(row.output_elems));
    s.y.push_back(row.time_us);
    s.truth = row.true_driver;
  }

  // Mean R² per (true class, candidate driver) plus the rediscovery rate.
  double r2_sum[3][3] = {};
  int count[3] = {};
  int correct = 0, equivalent = 0, total = 0;
  for (const auto& [kernel_id, s] : kernels) {
    double r2[3];
    for (int d = 0; d < 3; ++d) {
      r2[d] = regression::FitLinear(s.x[d], s.y).r2;
    }
    const int truth = static_cast<int>(s.truth);
    for (int d = 0; d < 3; ++d) r2_sum[truth][d] += r2[d];
    ++count[truth];
    int best = 0;
    for (int d = 1; d < 3; ++d) {
      if (r2[d] > r2[best]) best = d;
    }
    ++total;
    if (best == truth) {
      ++correct;
    } else if (std::abs(r2[best] - r2[truth]) < 1e-6) {
      // Tie: the drivers are numerically interchangeable for this kernel
      // (e.g. elementwise kernels where input size == output size).
      ++equivalent;
    }
  }

  TextTable table;
  table.SetHeader({"true class", "kernels", "R2 vs input NCHW",
                   "R2 vs operation", "R2 vs output NCHW"});
  const char* names[3] = {"input-driven", "operation-driven",
                          "output-driven"};
  for (int truth = 0; truth < 3; ++truth) {
    if (count[truth] == 0) continue;
    std::vector<std::string> row{names[truth], Format("%d", count[truth])};
    for (int d = 0; d < 3; ++d) {
      row.push_back(Format("%.3f", r2_sum[truth][d] / count[truth]));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nclassification rediscovers the true driver for %d/%d "
              "kernels (+%d numerically-equivalent ties)\n",
              correct, total, equivalent);
  std::printf("(paper: high correlation on the diagonal, low off-diagonal; "
              "classification is automatic via best R2)\n");
  return 0;
}
