#include "exp_common.h"

#include <cstdio>
#include <cstdlib>

#include "common/ascii_plot.h"
#include "common/logging.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/table.h"
#include "dataset/builder.h"
#include "zoo/zoo.h"

namespace gpuperf::bench {

const Experiment& Experiment::Full() {
  static const Experiment* const kExperiment = new Experiment();
  return *kExperiment;
}

Experiment::Experiment()
    : oracle_(gpuexec::OracleConfig()), profiler_(oracle_) {
  const char* fast = std::getenv("GPUPERF_FAST");
  networks_ = (fast != nullptr && fast[0] == '1') ? zoo::SmallZoo(8)
                                                  : zoo::ImageClassificationZoo();
  LogInfo(Format("profiling %zu networks on %zu GPUs at BS=%ld ...",
                 networks_.size(), gpuexec::AllGpus().size(),
                 (long)kTrainBatch));
  dataset::BuildOptions options;
  options.batch = kTrainBatch;
  data_ = dataset::BuildDataset(networks_, options);
  split_ = dataset::SplitByNetwork(data_, kTestFraction, kSplitSeed);
  for (const dataset::NetworkRow& row : data_.network_rows()) {
    measured_[{data_.gpus().Get(row.gpu_id),
               data_.networks().Get(row.network_id)}] = row.e2e_us;
  }
  for (std::size_t i = 0; i < networks_.size(); ++i) {
    id_to_index_[data_.networks().Find(networks_[i].name())] =
        static_cast<int>(i);
  }
  LogInfo(Format("dataset ready: %zu kernel rows, %d distinct kernels, "
                 "%zu/%zu train/test networks",
                 data_.kernel_rows().size(), data_.kernels().size(),
                 split_.train_ids.size(), split_.test_ids.size()));
}

const dnn::Network& Experiment::NetworkById(int network_id) const {
  auto it = id_to_index_.find(network_id);
  if (it == id_to_index_.end()) {
    // Bench harness: a bad id is a bug in the experiment table, not a
    // recoverable condition. gpuperf-lint: allow(fatal-in-lib)
    Fatal("unknown network id in experiment");
  }
  return networks_[it->second];
}

bool Experiment::HasMeasurement(const std::string& gpu_name,
                                const std::string& network_name) const {
  return measured_.count({gpu_name, network_name}) > 0;
}

double Experiment::MeasuredE2eUs(const std::string& gpu_name,
                                 const std::string& network_name) const {
  auto it = measured_.find({gpu_name, network_name});
  if (it == measured_.end()) {
    // Bench harness: missing measurements mean a broken campaign setup.
    // gpuperf-lint: allow(fatal-in-lib)
    Fatal("no measurement for " + network_name + " on " + gpu_name);
  }
  return it->second;
}

EvalResult EvaluateOnTestSet(const Experiment& experiment,
                             const models::Predictor& predictor,
                             const std::string& gpu_name) {
  EvalResult result;
  const gpuexec::GpuSpec& gpu = gpuexec::GpuByName(gpu_name);
  for (int network_id : experiment.split().test_ids) {
    const dnn::Network& network = experiment.NetworkById(network_id);
    if (!experiment.HasMeasurement(gpu_name, network.name())) {
      continue;  // cleaned from the dataset (e.g. out-of-memory)
    }
    result.names.push_back(network.name());
    result.predicted.push_back(
        predictor.PredictUs(network, gpu, kTrainBatch));
    result.measured.push_back(
        experiment.MeasuredE2eUs(gpu_name, network.name()));
  }
  result.mape = Mape(result.predicted, result.measured);
  return result;
}

void PrintSCurve(const EvalResult& result, const std::string& title) {
  std::vector<SCurvePoint> curve = SCurve(result.predicted, result.measured);
  PlotSeries series;
  series.label = "pred/measured";
  for (const SCurvePoint& point : curve) {
    series.x.push_back(point.percent);
    series.y.push_back(point.ratio);
  }
  PlotOptions options;
  options.title = title;
  options.x_label = "percentage of test set";
  options.y_label = "predicted / measured";
  options.log_y = true;
  options.height = 16;
  std::fputs(AsciiPlot({series}, options).c_str(), stdout);

  TextTable table;
  table.SetHeader({"percentile", "pred/measured"});
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0}) {
    std::vector<double> ratios;
    for (const SCurvePoint& point : curve) ratios.push_back(point.ratio);
    table.AddRow({Format("%.0f%%", p),
                  Format("%.3f", Percentile(ratios, p))});
  }
  table.Print();
  std::printf("average error: %.3f (%zu test networks)\n\n", result.mape,
              result.names.size());
}

}  // namespace gpuperf::bench
