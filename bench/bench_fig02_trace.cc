// Figure 2: the profiler's trace links layers on the CPU side to kernels
// on the GPU stream. This bench prints the first few layers' spans the
// way the paper's figure draws them, and exports the full trace as
// Chrome-trace JSON (load it in chrome://tracing or ui.perfetto.dev).

#include <cstdio>

#include "common/string_util.h"
#include "gpuexec/profiler.h"
#include "gpuexec/trace_export.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main() {
  gpuexec::HardwareOracle oracle{gpuexec::OracleConfig()};
  gpuexec::Profiler profiler(oracle);
  dnn::Network network = zoo::BuildByName("resnet18");
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  gpuexec::NetworkProfile profile = profiler.Profile(network, a100, 64);

  std::printf("Figure 2: layer <-> kernel trace (first 6 layers, "
              "resnet18 @BS64 on A100)\n\n");
  int layers_shown = 0;
  int last_layer = -1;
  for (const gpuexec::KernelRecord& record : profile.kernels) {
    if (record.layer_index != last_layer) {
      if (++layers_shown > 6) break;
      last_layer = record.layer_index;
      std::printf("CPU  %-12s\n",
                  network.layers()[record.layer_index].name.c_str());
    }
    std::printf("  GPU  [%9.1f .. %9.1f us]  %s\n", record.start_us,
                record.end_us, record.kernel_name.c_str());
  }

  const std::string path = "/tmp/gpuperf_resnet18_trace.json";
  const Status status = gpuexec::WriteChromeTrace(network, profile, path);
  if (!status.ok()) {
    std::fprintf(stderr, "trace export failed: %s\n",
                 status.message().c_str());
    return 1;
  }
  std::printf("\nfull trace (%zu kernels) written to %s — open it in "
              "chrome://tracing\n",
              profile.kernels.size(), path.c_str());
  return 0;
}
