// Figure 14: Inter-GPU Kernel-Wise model predicting TITAN RTX from a
// training set measured on A100, A40, and GTX 1080 Ti only.
// Paper: average error 0.152, about half the networks within 10%.

#include <cstdio>

#include "common/stats.h"
#include "exp_common.h"
#include "models/igkw_model.h"

using namespace gpuperf;

int main() {
  const bench::Experiment& experiment = bench::Experiment::Full();
  models::IgkwModel model;
  model.Train(experiment.data(), experiment.split(),
              {"A100", "A40", "GTX 1080 Ti"});

  bench::EvalResult result =
      bench::EvaluateOnTestSet(experiment, model, "TITAN RTX");
  bench::PrintSCurve(
      result,
      "Figure 14: IGKW model, TITAN RTX unseen (paper: 15.2% avg error)");
  std::printf("networks within 10%% error: %.0f%% (paper: ~50%%)\n",
              100 * FractionWithin(result.predicted, result.measured, 0.10));
  return 0;
}
