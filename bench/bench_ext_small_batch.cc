// Extension (paper limitation fix): small workloads. The KW model sums
// GPU kernel times, so at tiny batch sizes — where the CPU launch
// pipeline sets the pace — it misses the wall time badly. The CPU-aware
// extension fits a per-GPU launch-pipeline law on a small-batch campaign
// and predicts max(GPU time, CPU time).

#include <cstdio>

#include "common/stats.h"
#include "common/string_util.h"
#include "common/table.h"
#include "dataset/builder.h"
#include "exp_common.h"
#include "models/cpu_aware_model.h"
#include "models/kw_model.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main() {
  // Base KW model from the standard BS 512 campaign.
  const bench::Experiment& experiment = bench::Experiment::Full();
  models::KwModel kw;
  kw.Train(experiment.data(), experiment.split());

  // Small-batch campaign exposing the launch pipeline (BS 2, A100).
  std::vector<dnn::Network> networks = zoo::SmallZoo(4);
  dataset::BuildOptions options;
  options.gpu_names = {"A100"};
  options.batch = 2;
  dataset::Dataset small = dataset::BuildDataset(networks, options);
  dataset::NetworkSplit split =
      dataset::SplitByNetwork(small, bench::kTestFraction, bench::kSplitSeed);
  models::CpuAwareModel cpu_aware;
  cpu_aware.Train(kw, small, split);

  const models::CpuPipelineFit& fit = cpu_aware.FitFor("A100");
  std::printf("fitted CPU pipeline on A100: %.1f us overhead + %.2f us per "
              "kernel (from %zu launch-bound runs)\n\n",
              fit.overhead_us, fit.per_kernel_us, fit.samples);

  // Evaluate both models on held-out networks across small batch sizes.
  gpuexec::Profiler profiler(experiment.oracle());
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  TextTable table;
  table.SetHeader({"batch", "KW error", "KW+CPU error", "test nets"});
  for (std::int64_t batch : {1, 2, 4, 8, 64, 512}) {
    std::vector<double> kw_pred, cpu_pred, measured;
    for (const dnn::Network& network : networks) {
      if (!split.IsTest(small.networks().Find(network.name()))) continue;
      kw_pred.push_back(kw.PredictUs(network, a100, batch));
      cpu_pred.push_back(cpu_aware.PredictUs(network, a100, batch));
      measured.push_back(profiler.MeasureE2eUs(network, a100, batch));
    }
    table.AddRow({Format("%ld", (long)batch),
                  Format("%.1f%%", 100 * Mape(kw_pred, measured)),
                  Format("%.1f%%", 100 * Mape(cpu_pred, measured)),
                  Format("%zu", measured.size())});
  }
  table.Print();
  std::printf("\n(paper Limitations: 'when the batch size or the network is "
              "small ... the CPU and the CPU-GPU communication can be the "
              "major performance bottleneck'; the extension closes exactly "
              "that gap while matching KW at large batch)\n");
  return 0;
}
