// Figure 16 (case study 1): predicted DenseNet-169 execution time on a
// TITAN RTX with modified memory bandwidth. Paper: DenseNet-169 is less
// bandwidth-sensitive than ResNet-50; its optimal range is 500-700 GB/s,
// so a customer could order a cheaper, lower-bandwidth part.

#include <cstdio>

#include "common/ascii_plot.h"
#include "common/string_util.h"
#include "common/table.h"
#include "exp_common.h"
#include "models/igkw_model.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main() {
  const bench::Experiment& experiment = bench::Experiment::Full();
  models::IgkwModel igkw;
  igkw.Train(experiment.data(), experiment.split(),
             {"A100", "A40", "GTX 1080 Ti"});

  const gpuexec::GpuSpec& titan = gpuexec::GpuByName("TITAN RTX");
  dnn::Network densenet169 = zoo::BuildByName("densenet169");
  dnn::Network resnet50 = zoo::BuildByName("resnet50");

  PlotSeries series{"DenseNet-169 predicted time", {}, {}};
  TextTable table;
  table.SetHeader({"bandwidth (GB/s)", "predicted time (ms)",
                   "gain per +100 GB/s"});
  double previous = 0;
  for (int bw = 200; bw <= 1400; bw += 100) {
    const double ms =
        igkw.PredictUs(densenet169, titan.WithBandwidth(bw), 512) / 1e3;
    series.x.push_back(bw);
    series.y.push_back(ms);
    table.AddRow({Format("%d", bw), Format("%.1f", ms),
                  previous > 0
                      ? Format("%.1f%%", 100 * (previous - ms) / previous)
                      : "-"});
    previous = ms;
  }

  PlotOptions options;
  options.title =
      "Figure 16: predicted DenseNet-169 time vs TITAN RTX bandwidth";
  options.x_label = "bandwidth (GB/s); stock TITAN RTX = 672";
  options.y_label = "predicted time (ms)";
  std::fputs(AsciiPlot({series}, options).c_str(), stdout);
  table.Print();

  // Bandwidth sensitivity comparison with ResNet-50 (Figure 15).
  auto sensitivity = [&](const dnn::Network& network) {
    const double low =
        igkw.PredictUs(network, titan.WithBandwidth(500), 512);
    const double high =
        igkw.PredictUs(network, titan.WithBandwidth(1000), 512);
    return low / high;
  };
  std::printf("\nspeedup from 500 -> 1000 GB/s: DenseNet-169 %.2fx, "
              "ResNet-50 %.2fx\n",
              sensitivity(densenet169), sensitivity(resnet50));
  std::printf("(paper: DenseNet-169 is less sensitive to high bandwidth; "
              "500 GB/s loses little)\n");
  return 0;
}
