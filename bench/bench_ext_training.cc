// Extension (paper future work): training workloads. A training step is
// lowered as forward + backward (data/weight gradients) + SGD updates; a
// campaign of training steps trains the unchanged KW machinery, whose
// mapping table simply learns the longer per-layer kernel lists.

#include <cstdio>

#include "common/stats.h"
#include "common/string_util.h"
#include "common/table.h"
#include "dataset/builder.h"
#include "exp_common.h"
#include "models/kw_model.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main() {
  // Training campaign at BS 128 on A100 (training batches are smaller
  // than the inference BS 512, and backward roughly triples the work).
  std::vector<dnn::Network> networks = zoo::SmallZoo(4);
  dataset::BuildOptions options;
  options.gpu_names = {"A100"};
  options.batch = 128;
  options.workload = gpuexec::Workload::kTraining;
  dataset::Dataset data = dataset::BuildDataset(networks, options);
  dataset::NetworkSplit split =
      dataset::SplitByNetwork(data, bench::kTestFraction, bench::kSplitSeed);

  models::KwModel kw;
  kw.Train(data, split);
  std::printf("training-step campaign: %zu kernel rows, %d distinct "
              "kernels (inference had ~82)\n",
              data.kernel_rows().size(), data.kernels().size());

  gpuexec::HardwareOracle oracle{options.oracle};
  gpuexec::Profiler profiler(oracle);
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");

  std::vector<double> predicted, measured;
  for (const dnn::Network& network : networks) {
    if (!split.IsTest(data.networks().Find(network.name()))) continue;
    predicted.push_back(kw.PredictUs(network, a100, 128));
    measured.push_back(profiler.MeasureE2eUs(network, a100, 128,
                                             gpuexec::Workload::kTraining));
  }
  std::printf("KW error on held-out training steps (A100): %.2f%% over %zu "
              "networks\n\n",
              100 * Mape(predicted, measured), predicted.size());

  // Sanity: a training step costs roughly 3x the inference pass.
  TextTable table;
  table.SetHeader({"network", "inference (ms)", "training step (ms)",
                   "ratio"});
  for (const char* name : {"resnet50", "vgg16_bn", "mobilenet_v2"}) {
    dnn::Network network = zoo::BuildByName(name);
    const double infer = profiler.MeasureE2eUs(network, a100, 128);
    const double train = profiler.MeasureE2eUs(
        network, a100, 128, gpuexec::Workload::kTraining);
    table.AddRow({name, Format("%.1f", infer / 1e3),
                  Format("%.1f", train / 1e3),
                  Format("%.2fx", train / infer)});
  }
  table.Print();
  std::printf("(rule of thumb on real GPUs: an unfused SGD step costs "
              "3-4.5x the forward pass)\n");
  return 0;
}
