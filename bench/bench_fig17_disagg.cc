// Figure 17 (case study 2): memory-disaggregated GPU systems. Layer
// weights live in a network-attached memory pool; a prefetcher streams
// them over a link while the GPU computes (compute times from the KW
// model, link from the event-driven simulator). Reported: speedup over a
// 16 GB/s link for each network and link bandwidth. Paper: ResNets need
// ~128 GB/s to keep the GPU fed, DenseNet-121 ~256 GB/s; the whole
// experiment runs in seconds on a laptop.

#include <chrono>
#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "common/table.h"
#include "dataset/builder.h"
#include "dnn/flops.h"
#include "exp_common.h"
#include "models/kw_model.h"
#include "simsys/disagg.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main() {
  const auto wall_start = std::chrono::steady_clock::now();

  // Latency-critical serving runs at batch size 1, far from the BS 512
  // training regime, so do what a user of the library would: collect a
  // small BS 1 campaign on the serving GPU and train the KW model on it.
  dataset::BuildOptions options;
  options.gpu_names = {"A100"};
  options.batch = 1;
  dataset::Dataset data =
      dataset::BuildDataset(zoo::SmallZoo(/*stride=*/4), options);
  dataset::NetworkSplit split =
      dataset::SplitByNetwork(data, bench::kTestFraction, bench::kSplitSeed);
  models::KwModel kw;
  kw.Train(data, split);

  const char* kNetworks[] = {"resnet50", "resnet77", "densenet121",
                             "densenet161", "shufflenet_v1"};
  const double kBandwidths[] = {16, 32, 64, 128, 256, 512};
  // The paper also ran 8 GB/s and 1/4/16 TB/s ("similar insights").
  const double kExtraBandwidths[] = {8, 1024, 4096, 16384};

  TextTable table;
  table.SetHeader({"network", "16 GB/s", "32 GB/s", "64 GB/s", "128 GB/s",
                   "256 GB/s", "512 GB/s", "saturating at"});
  for (const char* name : kNetworks) {
    dnn::Network network = zoo::BuildByName(name);
    // Per-layer compute times (KW model, A100, BS 1 latency-critical serving)
    // and per-layer weight bytes to stream.
    std::vector<double> compute_us;
    std::vector<std::int64_t> weight_bytes;
    for (const dnn::Layer& layer : network.layers()) {
      compute_us.push_back(kw.PredictLayerUs(layer, "A100", 1));
      weight_bytes.push_back(dnn::LayerWeightBytes(layer));
    }

    auto run = [&](double bw) {
      simsys::DisaggConfig config;
      config.link_bandwidth_gbps = bw;
      return simsys::SimulateDisaggregated(compute_us, weight_bytes, config)
          .total_time_us;
    };
    const double baseline = run(16);
    std::vector<std::string> row{name};
    double saturating_at = kBandwidths[std::size(kBandwidths) - 1];
    double prev_speedup = 0;
    for (double bw : kBandwidths) {
      const double speedup = baseline / run(bw);
      row.push_back(Format("%.2fx", speedup));
      if (prev_speedup > 0 && speedup / prev_speedup < 1.02 &&
          saturating_at == kBandwidths[std::size(kBandwidths) - 1]) {
        saturating_at = bw / 2;
      }
      prev_speedup = speedup;
    }
    row.push_back(Format("%.0f GB/s", saturating_at));
    table.AddRow(row);

    // Silently-extra bandwidths (paper: "not shown due to similar
    // insights") — verify they indeed add nothing.
    for (double bw : kExtraBandwidths) {
      (void)run(bw);
    }
  }
  table.Print();

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  std::printf("\nwhole experiment (incl. 8 GB/s and 1/4/16 TB/s runs): "
              "%.2f s wall clock (paper: < 5 s on a laptop)\n",
              wall_seconds);
  std::printf("(paper: ResNet needs ~128 GB/s, DenseNet-121 ~256 GB/s to "
              "keep the GPU fully utilized)\n");
  return 0;
}
