// Figure 18 (case study 3a): measured and predicted execution time for
// six networks on A40 and TITAN RTX. The model must pick the faster GPU
// for every network (the paper's yellow crosses).

#include <cstdio>

#include "common/string_util.h"
#include "common/table.h"
#include "exp_common.h"
#include "gpuexec/profiler.h"
#include "models/kw_model.h"
#include "sched/scheduler.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main() {
  const bench::Experiment& experiment = bench::Experiment::Full();
  models::KwModel kw;
  kw.Train(experiment.data(), experiment.split());

  const gpuexec::GpuSpec& a40 = gpuexec::GpuByName("A40");
  const gpuexec::GpuSpec& titan = gpuexec::GpuByName("TITAN RTX");
  const gpuexec::Profiler profiler(experiment.oracle());

  const char* kNetworks[] = {"resnet50",    "resnet77",    "densenet161",
                             "densenet169", "densenet121", "shufflenet_v1"};
  constexpr std::int64_t kBatch = 256;

  TextTable table;
  table.SetHeader({"network", "A40 meas (ms)", "A40 pred (ms)",
                   "TITAN meas (ms)", "TITAN pred (ms)", "choice",
                   "correct"});
  int correct = 0, total = 0;
  std::vector<std::vector<double>> predicted_times, measured_times;
  for (const char* name : kNetworks) {
    dnn::Network network = zoo::BuildByName(name);
    const double a40_meas = profiler.MeasureE2eUs(network, a40, kBatch);
    const double titan_meas = profiler.MeasureE2eUs(network, titan, kBatch);
    const double a40_pred = kw.PredictUs(network, a40, kBatch);
    const double titan_pred = kw.PredictUs(network, titan, kBatch);
    predicted_times.push_back({a40_pred, titan_pred});
    measured_times.push_back({a40_meas, titan_meas});
    const bool choose_a40 = a40_pred < titan_pred;
    const bool truth_a40 = a40_meas < titan_meas;
    ++total;
    if (choose_a40 == truth_a40) ++correct;
    table.AddRow({name, Format("%.1f", a40_meas / 1e3),
                  Format("%.1f", a40_pred / 1e3),
                  Format("%.1f", titan_meas / 1e3),
                  Format("%.1f", titan_pred / 1e3),
                  choose_a40 ? "A40" : "TITAN",
                  choose_a40 == truth_a40 ? "yes" : "NO"});
  }
  table.Print();
  std::printf("\nmodel selects the faster GPU for %d/%d networks "
              "(paper: all correct)\n",
              correct, total);
  return 0;
}
