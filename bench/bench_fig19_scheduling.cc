// Figure 19 (case study 3b): scheduling a queue of nine networks on an
// A40 + TITAN RTX pair to minimize the overall makespan, brute-forcing
// the assignment with predicted times. Paper: the model's dispatching
// scheme is identical to the oracle (measured-time) solution and gives a
// near-perfect load balance.

#include <cstdio>

#include "common/string_util.h"
#include "common/table.h"
#include "exp_common.h"
#include "gpuexec/profiler.h"
#include "models/kw_model.h"
#include "sched/scheduler.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main() {
  const bench::Experiment& experiment = bench::Experiment::Full();
  models::KwModel kw;
  kw.Train(experiment.data(), experiment.split());

  const gpuexec::GpuSpec& a40 = gpuexec::GpuByName("A40");
  const gpuexec::GpuSpec& titan = gpuexec::GpuByName("TITAN RTX");
  const gpuexec::Profiler profiler(experiment.oracle());

  const char* kQueue[] = {"resnet44",    "resnet50",    "resnet62",
                          "resnet77",    "densenet121", "densenet161",
                          "densenet169", "densenet201", "shufflenet_v1"};
  constexpr std::int64_t kBatch = 256;

  std::vector<std::vector<double>> predicted, measured;
  for (const char* name : kQueue) {
    dnn::Network network = zoo::BuildByName(name);
    predicted.push_back({kw.PredictUs(network, a40, kBatch),
                         kw.PredictUs(network, titan, kBatch)});
    measured.push_back({profiler.MeasureE2eUs(network, a40, kBatch),
                        profiler.MeasureE2eUs(network, titan, kBatch)});
  }

  const sched::Schedule model_schedule = sched::BruteForceSchedule(predicted);
  const sched::Schedule oracle_schedule = sched::BruteForceSchedule(measured);

  // The model's schedule, *executed* with real (measured) times.
  const double model_real_makespan =
      sched::Makespan(measured, model_schedule.assignment);

  TextTable table;
  table.SetHeader({"network", "model assigns", "oracle assigns",
                   "time there (ms)"});
  int agreements = 0;
  for (std::size_t job = 0; job < std::size(kQueue); ++job) {
    const int gpu = model_schedule.assignment[job];
    if (gpu == oracle_schedule.assignment[job]) ++agreements;
    table.AddRow({kQueue[job], gpu == 0 ? "A40" : "TITAN",
                  oracle_schedule.assignment[job] == 0 ? "A40" : "TITAN",
                  Format("%.1f", measured[job][gpu] / 1e3)});
  }
  table.Print();

  std::printf("\nGantt (model schedule, measured times):\n");
  for (int gpu = 0; gpu < 2; ++gpu) {
    std::string lane = gpu == 0 ? "A40   |" : "TITAN |";
    double load = 0;
    for (std::size_t job = 0; job < std::size(kQueue); ++job) {
      if (model_schedule.assignment[job] != gpu) continue;
      lane += Format(" %s (%.0fms) |", kQueue[job],
                     measured[job][gpu] / 1e3);
      load += measured[job][gpu];
    }
    lane += Format("  total %.1f ms", load / 1e3);
    std::printf("%s\n", lane.c_str());
  }

  std::printf("\nmakespan: model schedule %.1f ms, oracle schedule %.1f ms "
              "(gap %.2f%%), per-job agreement %d/%zu\n",
              model_real_makespan / 1e3, oracle_schedule.makespan_us / 1e3,
              100 * (model_real_makespan - oracle_schedule.makespan_us) /
                  oracle_schedule.makespan_us,
              agreements, std::size(kQueue));
  std::printf("(paper: the model's dispatching scheme is identical to the "
              "oracle execution solution)\n");
  return 0;
}
