// Ablation: the kernel driver classification of O5. With classification
// disabled, every kernel regresses on layer FLOPs — which is useless for
// zero-FLOP kernels (copies, im2col, gathers) and mismatched for
// input-/output-driven pre/post-processing kernels. This quantifies how
// much of the KW model's accuracy the classification contributes.

#include <cstdio>

#include "common/string_util.h"
#include "common/table.h"
#include "exp_common.h"
#include "models/kw_model.h"

using namespace gpuperf;

int main() {
  const bench::Experiment& experiment = bench::Experiment::Full();

  TextTable table;
  table.SetHeader({"configuration", "KW error A100", "KW error TITAN RTX"});
  for (bool classify : {true, false}) {
    models::KwOptions options;
    options.classify_drivers = classify;
    models::KwModel model(options);
    model.Train(experiment.data(), experiment.split());
    bench::EvalResult a100 =
        bench::EvaluateOnTestSet(experiment, model, "A100");
    bench::EvalResult titan =
        bench::EvaluateOnTestSet(experiment, model, "TITAN RTX");
    table.AddRow({classify ? "classified drivers (paper)"
                           : "FLOPs-only (ablation)",
                  Format("%.2f%%", 100 * a100.mape),
                  Format("%.2f%%", 100 * titan.mape)});
  }
  table.Print();
  std::printf("\n(O5: no single parameter is linearly correlated with every "
              "kernel's time; classification amplifies the linearity)\n");
  return 0;
}
