// google-benchmark microbenchmarks of the prediction pipeline: the
// paper's core speed claim is that a trained KW model predicts in
// microseconds-to-milliseconds where simulators need hours.

#include <benchmark/benchmark.h>

#include "dataset/builder.h"
#include "dnn/flops.h"
#include "gpuexec/lowering.h"
#include "gpuexec/profiler.h"
#include "models/e2e_model.h"
#include "models/kw_model.h"
#include "models/lw_model.h"
#include "models/predictor_stack.h"
#include "simsys/serving_matrix.h"
#include "zoo/zoo.h"

using namespace gpuperf;

namespace {

/** Small shared fixture: one dataset + trained models. */
struct Fixture {
  std::vector<dnn::Network> networks = zoo::SmallZoo(/*stride=*/16);
  dataset::Dataset data;
  dataset::NetworkSplit split;
  models::KwModel kw;
  models::E2eModel e2e;
  dnn::Network resnet50 = zoo::BuildByName("resnet50");

  Fixture() {
    dataset::BuildOptions options;
    options.gpu_names = {"A100"};
    data = dataset::BuildDataset(networks, options);
    split = dataset::SplitByNetwork(data, 0.15, 7);
    kw.Train(data, split);
    e2e.Train(data, split);
  }

  static const Fixture& Get() {
    static const Fixture* const kFixture = new Fixture();
    return *kFixture;
  }
};

void BM_KwPredictResnet50(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.kw.PredictUs(fixture.resnet50, a100, 256));
  }
}
BENCHMARK(BM_KwPredictResnet50);

// Steady-state prediction: the per-network signature-id vector is
// already memoized, so the loop exercises only the dense arithmetic
// path (no string hashing, no map lookups).
void BM_KwPredictResnet50Cached(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  benchmark::DoNotOptimize(fixture.kw.PredictUs(fixture.resnet50, a100, 256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.kw.PredictUs(fixture.resnet50, a100, 256));
  }
}
BENCHMARK(BM_KwPredictResnet50Cached);

// The compiled-plan batched hot path (perf_gate.sh gates on this): 512
// queries per sweep cycling the online batch sizes, answered by one
// PredictMany call over the cached resnet50/A100 plan. items_per_second
// is queries/s, so the gate's ns/query is 1e9 / items_per_second.
void BM_PredictManyResnet50(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  constexpr std::int64_t kBatches[] = {1, 4, 16, 64};
  std::vector<models::PredictQuery> queries(512);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    queries[i] = {&fixture.resnet50, &a100, kBatches[i % 4]};
  }
  std::vector<double> out(queries.size());
  fixture.kw.PredictMany(queries, out);  // warm the plan cache
  for (auto _ : state) {
    fixture.kw.PredictMany(queries, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(queries.size()));
}
BENCHMARK(BM_PredictManyResnet50);

// A full serving-matrix refresh (the zoo x pool grid the dispatcher
// consumes): coverage pass + one PredictMany sweep + scatter.
void BM_ServingMatrixFill(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  std::vector<const gpuexec::GpuSpec*> pool = {&gpuexec::GpuByName("A100")};
  simsys::ServingMatrixBuffer buffer;
  std::vector<std::vector<double>> predicted;
  simsys::FillPredictedServingMatrix(fixture.kw, fixture.networks, pool, 16,
                                     buffer, predicted);  // warm caches
  for (auto _ : state) {
    simsys::FillPredictedServingMatrix(fixture.kw, fixture.networks, pool,
                                       16, buffer, predicted);
    benchmark::DoNotOptimize(predicted.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(fixture.networks.size() * pool.size()));
}
BENCHMARK(BM_ServingMatrixFill);

void BM_E2ePredictResnet50(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.e2e.PredictUs(fixture.resnet50, a100, 256));
  }
}
BENCHMARK(BM_E2ePredictResnet50);

// The graceful-degradation path: a stack without a KW tier answers from
// LW, so this measures the cost of a fallback decision (coverage check +
// LW predict) relative to the direct KW path above.
void BM_PredictorStackFallback(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  models::PredictorStack stack;
  models::LwModel lw;
  lw.Train(fixture.data, fixture.split);
  stack.SetLw(std::move(lw));
  models::E2eModel e2e;
  e2e.Train(fixture.data, fixture.split);
  stack.SetE2e(std::move(e2e));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stack.TryPredictUs(fixture.resnet50, a100, 256).value());
  }
}
BENCHMARK(BM_PredictorStackFallback);

void BM_KwTrain(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  for (auto _ : state) {
    models::KwModel model;
    model.Train(fixture.data, fixture.split);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_KwTrain)->Unit(benchmark::kMillisecond);

void BM_LowerResnet50(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpuexec::LowerNetwork(fixture.resnet50, 256));
  }
}
BENCHMARK(BM_LowerResnet50);

void BM_ProfileResnet50(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  const gpuexec::HardwareOracle oracle{gpuexec::OracleConfig()};
  const gpuexec::Profiler profiler(oracle);
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        profiler.MeasureE2eUs(fixture.resnet50, a100, 256));
  }
}
BENCHMARK(BM_ProfileResnet50)->Unit(benchmark::kMillisecond);

void BM_BuildDatasetSerial(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  dataset::BuildOptions options;
  options.gpu_names = {"A100"};
  options.jobs = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dataset::BuildDataset(fixture.networks, options));
  }
}
BENCHMARK(BM_BuildDatasetSerial)->Unit(benchmark::kMillisecond);

void BM_BuildDatasetParallel(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  dataset::BuildOptions options;
  options.gpu_names = {"A100"};
  options.jobs = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dataset::BuildDataset(fixture.networks, options));
  }
}
BENCHMARK(BM_BuildDatasetParallel)->Unit(benchmark::kMillisecond);

void BM_NetworkFlops(benchmark::State& state) {
  const Fixture& fixture = Fixture::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dnn::NetworkFlops(fixture.resnet50, 256));
  }
}
BENCHMARK(BM_NetworkFlops);

}  // namespace

BENCHMARK_MAIN();
