// google-benchmark microbenchmarks of the simulation subsystem: the case
// studies' value rests on whole design sweeps costing milliseconds, so
// the event engine and system models must be fast.

#include <benchmark/benchmark.h>

#include "simsys/data_parallel.h"
#include "simsys/disagg.h"
#include "simsys/event_queue.h"
#include "simsys/pipeline_parallel.h"
#include "simsys/serving.h"

using namespace gpuperf;

namespace {

void BM_EventQueueThroughput(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    simsys::EventQueue queue;
    int fired = 0;
    for (int i = 0; i < events; ++i) {
      queue.Schedule(static_cast<double>((i * 7919) % events),
                     [&fired] { ++fired; });
    }
    queue.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(100000);

void BM_DisaggSweep(benchmark::State& state) {
  // One full Figure 17 row: a 200-layer network across 6 bandwidths.
  std::vector<double> compute(200, 50.0);
  std::vector<std::int64_t> weights(200, 2'000'000);
  for (auto _ : state) {
    double total = 0;
    for (double bw : {16.0, 32.0, 64.0, 128.0, 256.0, 512.0}) {
      simsys::DisaggConfig config;
      config.link_bandwidth_gbps = bw;
      total += simsys::SimulateDisaggregated(compute, weights, config)
                   .total_time_us;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_DisaggSweep)->Unit(benchmark::kMicrosecond);

void BM_DataParallelStep(benchmark::State& state) {
  std::vector<double> fwd(300, 30.0), bwd(300, 60.0);
  std::vector<std::int64_t> grads(300, 1'500'000);
  simsys::DataParallelConfig config;
  config.num_gpus = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simsys::SimulateDataParallelStep(fwd, bwd, grads, config));
  }
}
BENCHMARK(BM_DataParallelStep)->Unit(benchmark::kMicrosecond);

void BM_PipelinePartitionAndStep(benchmark::State& state) {
  std::vector<double> fwd(400, 20.0), bwd(400, 40.0);
  std::vector<std::int64_t> acts(400, 4'000'000);
  simsys::PipelineConfig config;
  config.num_stages = 8;
  config.micro_batches = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simsys::SimulatePipeline(fwd, bwd, acts, config));
  }
}
BENCHMARK(BM_PipelinePartitionAndStep)->Unit(benchmark::kMillisecond);

void BM_ServingSimulation(benchmark::State& state) {
  std::vector<std::vector<double>> times{{1000, 4000}, {5000, 1200}};
  std::vector<double> mix{1, 1};
  simsys::ServingConfig config;
  config.arrival_rate_per_s = 200;
  config.duration_s = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simsys::SimulateServing(times, times, mix, config).value());
  }
}
BENCHMARK(BM_ServingSimulation)->Unit(benchmark::kMillisecond);

void BM_ServingSimulationFaulty(benchmark::State& state) {
  // Same pool under fault injection: measures the overhead of the fault
  // plan queries plus retry re-dispatch on the event path.
  std::vector<std::vector<double>> times{{1000, 4000}, {5000, 1200}};
  std::vector<double> mix{1, 1};
  simsys::ServingConfig config;
  config.arrival_rate_per_s = 200;
  config.duration_s = 10;
  config.faults.mtbf_s = 2;
  config.faults.mttr_s = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simsys::SimulateServing(times, times, mix, config).value());
  }
}
BENCHMARK(BM_ServingSimulationFaulty)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
