// Extension (related-work context, nn-Meter): operator fusion. Deployment
// stacks fold BN into convolutions and fuse activations into kernel
// epilogues, which is exactly what breaks naive per-operator latency
// models. The KW model handles it naturally: retrain on traces of the
// fused executables and the mapping table learns the fused kernel lists.

#include <cstdio>

#include "common/stats.h"
#include "common/string_util.h"
#include "common/table.h"
#include "dataset/builder.h"
#include "dnn/fusion.h"
#include "gpuexec/lowering.h"
#include "gpuexec/profiler.h"
#include "exp_common.h"
#include "models/kw_model.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main() {
  // A campaign over fused executables.
  std::vector<dnn::Network> fused_zoo;
  dnn::FusionReport total;
  for (const dnn::Network& network : zoo::SmallZoo(4)) {
    dnn::FusionReport report;
    fused_zoo.push_back(dnn::FuseConvBnAct(network, &report));
    total.folded_batchnorms += report.folded_batchnorms;
    total.fused_activations += report.fused_activations;
  }
  std::printf("fusion pass: %d BatchNorms folded, %d activations fused "
              "across %zu networks\n",
              total.folded_batchnorms, total.fused_activations,
              fused_zoo.size());

  dataset::BuildOptions options;
  options.gpu_names = {"A100"};
  dataset::Dataset data = dataset::BuildDataset(fused_zoo, options);
  dataset::NetworkSplit split =
      dataset::SplitByNetwork(data, bench::kTestFraction, bench::kSplitSeed);
  models::KwModel kw;
  kw.Train(data, split);

  gpuexec::HardwareOracle oracle{options.oracle};
  gpuexec::Profiler profiler(oracle);
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");

  // Accuracy on held-out fused networks.
  std::vector<double> predicted, measured;
  for (const dnn::Network& network : fused_zoo) {
    if (!split.IsTest(data.networks().Find(network.name()))) continue;
    predicted.push_back(kw.PredictUs(network, a100, 512));
    measured.push_back(profiler.MeasureE2eUs(network, a100, 512));
  }
  std::printf("KW error on held-out FUSED networks (A100): %.2f%%\n\n",
              100 * Mape(predicted, measured));

  // The fusion speedup itself, per network family.
  TextTable table;
  table.SetHeader({"network", "kernels before", "kernels after",
                   "unfused (ms)", "fused (ms)", "speedup"});
  for (const char* name :
       {"resnet50", "vgg16_bn", "mobilenet_v2", "densenet121"}) {
    dnn::Network original = zoo::BuildByName(name);
    dnn::Network fused = dnn::FuseConvBnAct(original);
    auto count = [](const dnn::Network& network) {
      std::size_t kernels = 0;
      for (const auto& launches : gpuexec::LowerNetwork(network, 512)) {
        kernels += launches.size();
      }
      return kernels;
    };
    const double before = profiler.MeasureE2eUs(original, a100, 512);
    const double after = profiler.MeasureE2eUs(fused, a100, 512);
    table.AddRow({name, Format("%zu", count(original)),
                  Format("%zu", count(fused)), Format("%.1f", before / 1e3),
                  Format("%.1f", after / 1e3),
                  Format("%.2fx", before / after)});
  }
  table.Print();
  std::printf("\n(the KW model needs no architectural change to absorb "
              "fusion: kernel identities and the mapping table adapt)\n");
  return 0;
}
