// google-benchmark microbenchmarks of the observability layer: the
// metrics hot path, the span tracer, and the flight recorder ride
// every simulated event, so all must be cheap enough to leave on
// unconditionally. The headline comparisons are BM_ServingUntraced vs
// BM_ServingTraced (span tracer) and BM_ServingRecorded/0 (detached)
// vs /1 (attached): a detached recorder is a null-pointer check (zero
// cost), an attached one adds single-digit percent — ~8% measured on
// this synthetic sim, whose events average ~200ns; the recorder's own
// per-event work is ~10ns (BM_RecorderEvent), so heavier simulations
// see proportionally less.

#include <benchmark/benchmark.h>

#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/span_tracer.h"
#include "simsys/serving.h"

using namespace gpuperf;

namespace {

void BM_MetricsHotPath(benchmark::State& state) {
  // The cached-reference idiom every call site uses: the registry Mutex
  // was paid at registration; the loop is one relaxed fetch_add.
  obs::Counter& counter =
      obs::MetricsRegistry::Global().counter("gpuperf_bench_events");
  for (auto _ : state) {
    counter.Increment();
  }
  benchmark::DoNotOptimize(counter.Value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsHotPath);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  obs::Histogram& histogram = obs::MetricsRegistry::Global().histogram(
      "gpuperf_bench_latency_ms",
      {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000});
  double value = 0.125;
  for (auto _ : state) {
    histogram.Observe(value);
    value = value < 900.0 ? value * 1.5 : 0.125;  // walk the buckets
  }
  benchmark::DoNotOptimize(histogram.Count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsHistogramObserve);

void BM_MetricsSnapshotCsv(benchmark::State& state) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.counter("gpuperf_bench_events").Increment();
  registry.histogram("gpuperf_bench_latency_ms",
                     {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000})
      .Observe(3.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.CsvSnapshot());
  }
}
BENCHMARK(BM_MetricsSnapshotCsv)->Unit(benchmark::kMicrosecond);

simsys::ServingConfig BenchConfig() {
  simsys::ServingConfig config;
  config.arrival_rate_per_s = 200;
  config.duration_s = 10;
  config.faults.mtbf_s = 2;
  config.faults.mttr_s = 0.5;
  config.retry.max_retries = 1;
  config.queue_cap = 8;
  config.slo_ms = 50;
  return config;
}

void BM_ServingUntraced(benchmark::State& state) {
  const std::vector<std::vector<double>> times{{1000, 4000}, {5000, 1200}};
  const std::vector<double> mix{1, 1};
  const simsys::ServingConfig config = BenchConfig();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simsys::SimulateServing(times, times, mix, config).value());
  }
}
BENCHMARK(BM_ServingUntraced)->Unit(benchmark::kMillisecond);

void BM_ServingTraced(benchmark::State& state) {
  // Same simulation with per-job lifecycle spans recorded; the delta
  // over BM_ServingUntraced is the tracer's whole cost.
  const std::vector<std::vector<double>> times{{1000, 4000}, {5000, 1200}};
  const std::vector<double> mix{1, 1};
  const simsys::ServingConfig config = BenchConfig();
  for (auto _ : state) {
    obs::SpanTracer tracer;
    benchmark::DoNotOptimize(
        simsys::SimulateServing(times, times, mix, config, &tracer)
            .value());
    benchmark::DoNotOptimize(tracer.size());
  }
}
BENCHMARK(BM_ServingTraced)->Unit(benchmark::kMillisecond);

void BM_ServingRecorded(benchmark::State& state) {
  // Same simulation with a flight recorder (100ms windows — the
  // serve-sim default): Arg(1) attaches it, Arg(0) constructs but
  // detaches it, so both variants run the same code with the same
  // allocation pattern and the delta is the recorder's whole cost.
  // Comparing distinct benchmark functions instead (an earlier shape
  // of this file) showed ±10% systematic skew from heap and code
  // layout — more than the effect being measured (~±5% even within
  // this harness). A detached recorder costs nothing on the hot path:
  // config.recorder == nullptr is one branch per event, so Arg(0)
  // tracks BM_ServingUntraced. Attached overhead measures ~8% here
  // (interleaved, 9 repetitions, medians).
  const std::vector<std::vector<double>> times{{1000, 4000}, {5000, 1200}};
  const std::vector<double> mix{1, 1};
  const bool attach = state.range(0) != 0;
  for (auto _ : state) {
    obs::FlightRecorder recorder;
    simsys::ServingConfig config = BenchConfig();
    config.recorder = attach ? &recorder : nullptr;
    benchmark::DoNotOptimize(
        simsys::SimulateServing(times, times, mix, config).value());
    benchmark::DoNotOptimize(recorder.frames().size());
  }
}
BENCHMARK(BM_ServingRecorded)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_RecorderEvent(benchmark::State& state) {
  // The per-event recorder work the serving loop pays, via the cached
  // handles serving.cc uses: one counter bump, one sketch observation,
  // one AdvanceTo (which closes a window every 10th event here —
  // 100us period, 10us event spacing).
  obs::FlightRecorderConfig config;
  config.sample_period_us = 100;
  obs::FlightRecorder recorder(config);
  recorder.Start(0);
  obs::FlightRecorder::CounterHandle events =
      recorder.CounterChannel("gpuperf_bench_events");
  obs::FlightRecorder::SketchHandle latency = recorder.SketchChannel(
      "gpuperf_bench_latency_ms", {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000});
  long long t = 0;
  for (auto _ : state) {
    t += 10;
    recorder.AdvanceTo(t);
    recorder.Count(events);
    recorder.Observe(latency, 3.0);
  }
  benchmark::DoNotOptimize(recorder.frames().size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecorderEvent);

void BM_RecorderEventByName(benchmark::State& state) {
  // The same work through the by-name convenience entry points — the
  // map lookup and std::string construction a call site pays for NOT
  // caching handles.
  obs::FlightRecorderConfig config;
  config.sample_period_us = 100;
  obs::FlightRecorder recorder(config);
  recorder.Start(0);
  recorder.DefineSketch("gpuperf_bench_latency_ms",
                        {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000});
  long long t = 0;
  for (auto _ : state) {
    t += 10;
    recorder.AdvanceTo(t);
    recorder.Count("gpuperf_bench_events");
    recorder.Observe("gpuperf_bench_latency_ms", 3.0);
  }
  benchmark::DoNotOptimize(recorder.frames().size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecorderEventByName);

void BM_RecorderTimelineCsv(benchmark::State& state) {
  // Export cost for a full ring (the serve-sim --timeline-out path).
  obs::FlightRecorderConfig config;
  config.sample_period_us = 100;
  config.capacity = 256;
  obs::FlightRecorder recorder(config);
  recorder.Start(0);
  recorder.DefineSketch("gpuperf_bench_latency_ms", {1, 10, 100});
  for (int i = 0; i < 256; ++i) {
    recorder.Count("gpuperf_bench_events");
    recorder.Observe("gpuperf_bench_latency_ms", 3.0);
    recorder.AdvanceTo(100 * (i + 1));
  }
  for (auto _ : state) {
    obs::FlightTimeline timeline;
    timeline.Append(recorder, "cell 0");
    benchmark::DoNotOptimize(timeline.Csv());
  }
}
BENCHMARK(BM_RecorderTimelineCsv)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
