// google-benchmark microbenchmarks of the observability layer: the
// metrics hot path and the span tracer ride every simulated event, so
// both must be cheap enough to leave on unconditionally. The headline
// comparison is BM_ServingUntraced vs BM_ServingTraced — the full
// serving simulator with and without a SpanTracer attached.

#include <benchmark/benchmark.h>

#include "obs/metrics_registry.h"
#include "obs/span_tracer.h"
#include "simsys/serving.h"

using namespace gpuperf;

namespace {

void BM_MetricsHotPath(benchmark::State& state) {
  // The cached-reference idiom every call site uses: the registry Mutex
  // was paid at registration; the loop is one relaxed fetch_add.
  obs::Counter& counter =
      obs::MetricsRegistry::Global().counter("gpuperf_bench_events");
  for (auto _ : state) {
    counter.Increment();
  }
  benchmark::DoNotOptimize(counter.Value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsHotPath);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  obs::Histogram& histogram = obs::MetricsRegistry::Global().histogram(
      "gpuperf_bench_latency_ms",
      {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000});
  double value = 0.125;
  for (auto _ : state) {
    histogram.Observe(value);
    value = value < 900.0 ? value * 1.5 : 0.125;  // walk the buckets
  }
  benchmark::DoNotOptimize(histogram.Count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsHistogramObserve);

void BM_MetricsSnapshotCsv(benchmark::State& state) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.counter("gpuperf_bench_events").Increment();
  registry.histogram("gpuperf_bench_latency_ms",
                     {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000})
      .Observe(3.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.CsvSnapshot());
  }
}
BENCHMARK(BM_MetricsSnapshotCsv)->Unit(benchmark::kMicrosecond);

simsys::ServingConfig BenchConfig() {
  simsys::ServingConfig config;
  config.arrival_rate_per_s = 200;
  config.duration_s = 10;
  config.faults.mtbf_s = 2;
  config.faults.mttr_s = 0.5;
  config.retry.max_retries = 1;
  config.queue_cap = 8;
  config.slo_ms = 50;
  return config;
}

void BM_ServingUntraced(benchmark::State& state) {
  const std::vector<std::vector<double>> times{{1000, 4000}, {5000, 1200}};
  const std::vector<double> mix{1, 1};
  const simsys::ServingConfig config = BenchConfig();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simsys::SimulateServing(times, times, mix, config).value());
  }
}
BENCHMARK(BM_ServingUntraced)->Unit(benchmark::kMillisecond);

void BM_ServingTraced(benchmark::State& state) {
  // Same simulation with per-job lifecycle spans recorded; the delta
  // over BM_ServingUntraced is the tracer's whole cost.
  const std::vector<std::vector<double>> times{{1000, 4000}, {5000, 1200}};
  const std::vector<double> mix{1, 1};
  const simsys::ServingConfig config = BenchConfig();
  for (auto _ : state) {
    obs::SpanTracer tracer;
    benchmark::DoNotOptimize(
        simsys::SimulateServing(times, times, mix, config, &tracer)
            .value());
    benchmark::DoNotOptimize(tracer.size());
  }
}
BENCHMARK(BM_ServingTraced)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
