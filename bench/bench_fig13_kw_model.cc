// Figure 13 (+ Section 5.4 text): Kernel-Wise model on A100 — S-curve,
// per-GPU error table (paper: A40 6%, A100 7%, 1080 Ti 7.8%, TITAN 9.2%,
// V100 9.4%), kernel/cluster counts (paper: 182 kernels -> 83 models),
// and the transformer extension (paper: 4.76% on A100).

#include <cstdio>
#include <map>

#include "common/stats.h"
#include "common/string_util.h"
#include "common/table.h"
#include "dataset/builder.h"
#include "exp_common.h"
#include "models/kw_model.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main() {
  const bench::Experiment& experiment = bench::Experiment::Full();
  models::KwModel model;
  model.Train(experiment.data(), experiment.split());

  std::printf("KW on A100: %d kernels -> %d regression models "
              "(paper: 182 -> 83)\n\n",
              model.KernelCount("A100"), model.ClusterCount("A100"));

  bench::EvalResult result =
      bench::EvaluateOnTestSet(experiment, model, "A100");
  bench::PrintSCurve(result,
                     "Figure 13: KW model, A100 (paper: 7% avg error)");

  // Per-family error breakdown of the test set.
  {
    std::map<std::string, std::pair<std::vector<double>,
                                    std::vector<double>>> by_family;
    for (std::size_t i = 0; i < result.names.size(); ++i) {
      const dnn::Network net = zoo::BuildByName(result.names[i]);
      auto& [pred, meas] = by_family[net.family()];
      pred.push_back(result.predicted[i]);
      meas.push_back(result.measured[i]);
    }
    TextTable family_table;
    family_table.SetHeader({"family", "test nets", "KW error"});
    for (const auto& [family, pm] : by_family) {
      family_table.AddRow({family, Format("%zu", pm.first.size()),
                           Format("%.1f%%",
                                  100 * Mape(pm.first, pm.second))});
    }
    family_table.Print();
    std::printf("\n");
  }

  // Per-GPU validation (Section 5.4).
  TextTable per_gpu;
  per_gpu.SetHeader({"GPU", "KW error", "paper"});
  const std::pair<const char*, const char*> kPaperErrors[] = {
      {"A40", "6%"},     {"A100", "7%"},      {"GTX 1080 Ti", "7.8%"},
      {"TITAN RTX", "9.2%"}, {"V100", "9.4%"},
  };
  for (const auto& [gpu, paper] : kPaperErrors) {
    bench::EvalResult r = bench::EvaluateOnTestSet(experiment, model, gpu);
    per_gpu.AddRow({gpu, Format("%.1f%%", 100 * r.mape), paper});
  }
  per_gpu.Print();

  // Transformer extension: add the text-classification group, retrain,
  // evaluate on held-out transformers only (paper: 4.76% on A100).
  std::printf("\nKW model extension for Transformers:\n");
  std::vector<dnn::Network> transformers = zoo::TransformerZoo();
  dataset::Dataset data = experiment.data();  // copy, then extend
  dataset::BuildOptions options;
  options.gpu_names = {"A100"};
  options.batch = 128;  // enough to saturate the GPU at seq len 64-256
  dataset::AppendProfiles(transformers, options, &data);
  // Cross-validate over three split seeds: the transformer group is small
  // (28 networks), so a single 15% split would leave a noisy test set.
  gpuexec::Profiler profiler(experiment.oracle());
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  std::vector<double> predicted, measured;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    dataset::NetworkSplit split =
        dataset::SplitByNetwork(data, bench::kTestFraction, seed);
    models::KwModel extended;
    extended.Train(data, split);
    for (const dnn::Network& network : transformers) {
      if (!split.IsTest(data.networks().Find(network.name()))) continue;
      predicted.push_back(extended.PredictUs(network, a100, 128));
      measured.push_back(profiler.MeasureE2eUs(network, a100, 128));
    }
  }
  std::printf("transformer test-set error on A100: %.2f%% over %zu "
              "(network, fold) pairs (paper: 4.76%%)\n",
              100 * Mape(predicted, measured), predicted.size());
  return 0;
}
