// Figure 12: Layer-Wise model predictions on A100, normalized to measured
// time and sorted ascending. Paper: average error 0.28.

#include <cstdio>

#include "common/table.h"
#include "common/string_util.h"
#include "exp_common.h"
#include "models/lw_model.h"

using namespace gpuperf;

int main() {
  const bench::Experiment& experiment = bench::Experiment::Full();
  models::LwModel model;
  model.Train(experiment.data(), experiment.split());

  // The per-layer-type regressions the model learned for A100.
  TextTable table;
  table.SetHeader({"layer type", "slope (us/GFLOP)", "intercept (us)"});
  for (dnn::LayerKind kind :
       {dnn::LayerKind::kConv2d, dnn::LayerKind::kLinear,
        dnn::LayerKind::kBatchNorm, dnn::LayerKind::kMaxPool,
        dnn::LayerKind::kRelu, dnn::LayerKind::kAdd}) {
    const regression::LinearFit* fit = model.FitFor("A100", kind);
    if (fit == nullptr) continue;
    table.AddRow({dnn::LayerKindName(kind), Format("%.4f", fit->slope * 1e9),
                  Format("%.3f", fit->intercept)});
  }
  table.Print();
  std::printf("\n");

  bench::EvalResult result =
      bench::EvaluateOnTestSet(experiment, model, "A100");
  bench::PrintSCurve(result,
                     "Figure 12: LW model, A100 (paper: 28% avg error)");
  return 0;
}
