// Figure 4: execution time for ResNet and VGG networks (standard plus
// block-added/removed variants) at batch size 512 on A100. The two
// families fall on different lines: the GPU is more efficient on VGG.

#include <cstdio>
#include <vector>

#include "common/ascii_plot.h"
#include "common/string_util.h"
#include "dnn/flops.h"
#include "exp_common.h"
#include "gpuexec/profiler.h"
#include "regression/linreg.h"
#include "zoo/resnet.h"
#include "zoo/vgg.h"

using namespace gpuperf;

int main() {
  const gpuexec::HardwareOracle oracle{gpuexec::OracleConfig()};
  const gpuexec::Profiler profiler(oracle);
  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  constexpr std::int64_t kBatch = 512;

  PlotSeries resnet_series{"ResNet", {}, {}};
  PlotSeries vgg_series{"VGG", {}, {}};
  std::vector<double> rx, ry, vx, vy;
  for (int blocks = 6; blocks <= 36; blocks += 3) {
    dnn::Network network = zoo::BuildResNetWithBlocks(blocks);
    const double gflops =
        static_cast<double>(dnn::NetworkFlops(network, kBatch)) / 1e9;
    const double ms = profiler.MeasureE2eUs(network, a100, kBatch) / 1e3;
    resnet_series.x.push_back(gflops);
    resnet_series.y.push_back(ms);
    rx.push_back(gflops);
    ry.push_back(ms);
  }
  for (int convs = 6; convs <= 26; convs += 2) {
    dnn::Network network = zoo::BuildVggWithConvs(convs);
    const double gflops =
        static_cast<double>(dnn::NetworkFlops(network, kBatch)) / 1e9;
    const double ms = profiler.MeasureE2eUs(network, a100, kBatch) / 1e3;
    vgg_series.x.push_back(gflops);
    vgg_series.y.push_back(ms);
    vx.push_back(gflops);
    vy.push_back(ms);
  }

  PlotOptions options;
  options.title =
      "Figure 4: ResNet vs VGG variants, BS 512 (A100) - different lines";
  options.x_label = "GFLOPs";
  options.y_label = "exec time (ms)";
  std::fputs(AsciiPlot({resnet_series, vgg_series}, options).c_str(),
             stdout);

  const regression::LinearFit resnet_fit = regression::FitLinear(rx, ry);
  const regression::LinearFit vgg_fit = regression::FitLinear(vx, vy);
  std::printf("ResNet line: %.4f ms/GFLOP (R2=%.4f)\n", resnet_fit.slope,
              resnet_fit.r2);
  std::printf("VGG line:    %.4f ms/GFLOP (R2=%.4f)\n", vgg_fit.slope,
              vgg_fit.r2);
  std::printf("GPU is %.2fx more efficient per FLOP on VGG "
              "(paper: VGG more efficient due to structure)\n",
              resnet_fit.slope / vgg_fit.slope);
  return 0;
}
