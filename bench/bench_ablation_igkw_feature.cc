// Ablation: the IGKW scaling feature. The paper selects theoretical
// memory bandwidth (O6: bandwidth efficiency is stable across GPUs,
// compute efficiency is not); this sweep compares bandwidth, TFLOPS, and
// both as the per-kernel parameter-scaling feature when predicting the
// unseen TITAN RTX.

#include <cstdio>

#include "common/string_util.h"
#include "common/table.h"
#include "exp_common.h"
#include "models/igkw_model.h"

using namespace gpuperf;

int main() {
  const bench::Experiment& experiment = bench::Experiment::Full();
  const std::vector<std::string> training_gpus = {"A100", "A40",
                                                  "GTX 1080 Ti"};

  TextTable table;
  table.SetHeader({"scaling feature", "IGKW error on TITAN RTX"});
  const std::pair<models::ScalingFeature, const char*> kFeatures[] = {
      {models::ScalingFeature::kBandwidth, "1/bandwidth (paper)"},
      {models::ScalingFeature::kTflops, "1/TFLOPS"},
      {models::ScalingFeature::kBoth, "both"},
  };
  for (const auto& [feature, label] : kFeatures) {
    models::IgkwModel model;
    model.Train(experiment.data(), experiment.split(), training_gpus,
                feature);
    bench::EvalResult result =
        bench::EvaluateOnTestSet(experiment, model, "TITAN RTX");
    table.AddRow({label, Format("%.2f%%", 100 * result.mape)});
  }
  table.Print();
  std::printf("\n(paper Section 7: bandwidth is the right single feature "
              "because most evaluated workloads are memory intensive; "
              "with only 3 training GPUs, the 2-feature fit overfits)\n");
  return 0;
}
