// Extension (paper Discussion): "our models can be combined with
// architectural simulators. Simulators can measure the performance of
// small workloads to train our models and our models can evaluate
// large-scale applications."
//
// Here the KW model is trained on a dataset whose measurements come from
// the DETAILED SIMULATOR (small networks at small batch — cheap to
// simulate), then predicts big-batch runs of big networks against real
// (oracle) hardware. The model inherits the simulator's systematic bias
// but scales to workloads the simulator could never afford.

#include <cstdio>
#include <vector>

#include "baselines/detailed_sim.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/table.h"
#include "dataset/dataset.h"
#include "dnn/flops.h"
#include "exp_common.h"
#include "gpuexec/lowering.h"
#include "gpuexec/profiler.h"
#include "models/kw_model.h"
#include "zoo/zoo.h"

using namespace gpuperf;

namespace {

/** Builds a dataset whose kernel times come from the detailed simulator. */
dataset::Dataset SimulatorMeasuredDataset(
    const std::vector<dnn::Network>& networks, const std::string& gpu_name,
    std::int64_t batch, const baselines::DetailedSimulator& simulator) {
  const gpuexec::GpuSpec& gpu = gpuexec::GpuByName(gpu_name);
  dataset::Dataset data;
  const int gpu_id = data.gpus().Intern(gpu_name);
  for (const dnn::Network& network : networks) {
    const int network_id = data.networks().Intern(network.name());
    const auto lowered = gpuexec::LowerNetwork(network, batch);
    double e2e = 0;
    for (std::size_t layer = 0; layer < lowered.size(); ++layer) {
      for (const gpuexec::KernelLaunch& launch : lowered[layer]) {
        dataset::KernelRow row;
        row.gpu_id = gpu_id;
        row.network_id = network_id;
        row.kernel_id = data.kernels().Intern(launch.name);
        row.signature_id = data.signatures().Intern(
            dnn::LayerSignature(network.layers()[layer]));
        row.layer_index = static_cast<int>(layer);
        row.layer_kind = launch.layer_kind;
        row.true_driver = launch.driver;
        row.family = launch.family;
        row.batch = batch;
        row.time_us = simulator.SimulateKernelUs(launch, gpu);
        row.layer_flops = launch.layer_flops;
        row.input_elems = launch.input_elems;
        row.output_elems = launch.output_elems;
        e2e += row.time_us;
        data.kernel_rows().push_back(std::move(row));
      }
    }
    dataset::NetworkRow net_row;
    net_row.gpu_id = gpu_id;
    net_row.network_id = network_id;
    net_row.family = network.family();
    net_row.batch = batch;
    net_row.e2e_us = e2e;
    net_row.gpu_busy_us = e2e;
    net_row.total_flops = dnn::NetworkFlops(network, batch);
    data.network_rows().push_back(std::move(net_row));
  }
  return data;
}

}  // namespace

int main() {
  // Simulator-affordable training set: every 8th network at batch 16.
  std::vector<dnn::Network> training_zoo = zoo::SmallZoo(8);
  baselines::DetailedSimConfig sim_config;
  baselines::DetailedSimulator simulator(sim_config);
  std::printf("simulating %zu small-batch workloads on the detailed "
              "simulator...\n",
              training_zoo.size());
  dataset::Dataset data =
      SimulatorMeasuredDataset(training_zoo, "V100", 16, simulator);
  std::printf("simulated %zu kernel executions (%s thread blocks walked)\n",
              data.kernel_rows().size(),
              Engineering(static_cast<double>(simulator.simulated_blocks()))
                  .c_str());

  dataset::NetworkSplit split =
      dataset::SplitByNetwork(data, bench::kTestFraction, bench::kSplitSeed);
  models::KwModel kw;
  kw.Train(data, split);

  // Evaluate against REAL hardware (the oracle) at large batch on big
  // networks the simulator could never afford end-to-end.
  gpuexec::HardwareOracle oracle{gpuexec::OracleConfig()};
  gpuexec::Profiler profiler(oracle);
  const gpuexec::GpuSpec& v100 = gpuexec::GpuByName("V100");
  TextTable table;
  table.SetHeader({"network", "batch", "real (ms)", "sim-trained KW (ms)",
                   "error"});
  std::vector<double> predicted, measured;
  for (const char* name :
       {"resnet50", "resnet101", "densenet169", "vgg16_bn"}) {
    dnn::Network network = zoo::BuildByName(name);
    const double truth = profiler.MeasureE2eUs(network, v100, 256);
    const double pred = kw.PredictUs(network, v100, 256);
    predicted.push_back(pred);
    measured.push_back(truth);
    table.AddRow({name, "256", Format("%.1f", truth / 1e3),
                  Format("%.1f", pred / 1e3),
                  Format("%.1f%%", 100 * RelativeError(pred, truth))});
  }
  table.Print();
  std::printf("\nsimulator-bootstrapped KW vs real hardware: %.1f%% average "
              "error — the model inherits the simulator's bias (sigma "
              "%.0f%%) but extends it to workloads the simulator cannot "
              "afford (paper Discussion)\n",
              100 * Mape(predicted, measured),
              100 * sim_config.bias_sigma);
  return 0;
}
