// Figure 15 (case study 1): predicted ResNet-50 execution time on a
// TITAN RTX with modified memory bandwidth, swept 200..1400 GB/s with the
// IGKW model. Paper: performance improves with bandwidth; the ideal range
// is 600-800 GB/s and the stock TITAN RTX (672 GB/s) falls inside it.

#include <cstdio>
#include <vector>

#include "common/ascii_plot.h"
#include "common/string_util.h"
#include "common/table.h"
#include "exp_common.h"
#include "models/igkw_model.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main() {
  const bench::Experiment& experiment = bench::Experiment::Full();
  models::IgkwModel igkw;
  igkw.Train(experiment.data(), experiment.split(),
             {"A100", "A40", "GTX 1080 Ti"});

  const gpuexec::GpuSpec& titan = gpuexec::GpuByName("TITAN RTX");
  dnn::Network resnet50 = zoo::BuildByName("resnet50");

  PlotSeries series{"predicted time", {}, {}};
  TextTable table;
  table.SetHeader({"bandwidth (GB/s)", "predicted time (ms)",
                   "vs stock TITAN"});
  double stock = 0;
  for (int bw = 200; bw <= 1400; bw += 100) {
    const double ms =
        igkw.PredictUs(resnet50, titan.WithBandwidth(bw), 512) / 1e3;
    series.x.push_back(bw);
    series.y.push_back(ms);
    if (bw == 700) stock = ms;  // nearest sampled point to 672 GB/s
  }
  for (std::size_t i = 0; i < series.x.size(); ++i) {
    table.AddRow({Format("%.0f", series.x[i]), Format("%.1f", series.y[i]),
                  Format("%.2fx", series.y[i] / stock)});
  }

  PlotOptions options;
  options.title =
      "Figure 15: predicted ResNet-50 time vs TITAN RTX bandwidth";
  options.x_label = "bandwidth (GB/s); stock TITAN RTX = 672";
  options.y_label = "predicted time (ms)";
  std::fputs(AsciiPlot({series}, options).c_str(), stdout);
  table.Print();

  // Knee analysis: where do returns diminish below 5% per +100 GB/s?
  for (std::size_t i = 1; i < series.x.size(); ++i) {
    const double gain = (series.y[i - 1] - series.y[i]) / series.y[i - 1];
    if (gain < 0.05) {
      std::printf("\nreturns diminish below 5%% per +100 GB/s beyond "
                  "%.0f GB/s (paper: ideal range 600-800 GB/s)\n",
                  series.x[i - 1]);
      break;
    }
  }
  return 0;
}
