// Extension (multi-GPU training architecture, continued): pipeline
// parallelism. Layers are partitioned into stages balanced by
// KW-predicted times, and a GPipe training step is simulated across
// stage counts and micro-batch counts — the classic bubble/throughput
// trade-off, explored in milliseconds.

#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "common/table.h"
#include "dataset/builder.h"
#include "dnn/flops.h"
#include "exp_common.h"
#include "models/kw_model.h"
#include "simsys/pipeline_parallel.h"
#include "zoo/zoo.h"

using namespace gpuperf;

int main() {
  // Per-layer forward and training-step times at micro-batch size 8.
  constexpr std::int64_t kMicroBatch = 8;
  dataset::BuildOptions options;
  options.gpu_names = {"A100"};
  options.batch = kMicroBatch;
  dataset::Dataset fwd_data = dataset::BuildDataset(zoo::SmallZoo(8), options);
  options.workload = gpuexec::Workload::kTraining;
  dataset::Dataset step_data =
      dataset::BuildDataset(zoo::SmallZoo(8), options);
  models::KwModel fwd_model, step_model;
  fwd_model.Train(fwd_data,
                  dataset::SplitByNetwork(fwd_data, 0.15, bench::kSplitSeed));
  step_model.Train(
      step_data, dataset::SplitByNetwork(step_data, 0.15, bench::kSplitSeed));

  dnn::Network network = zoo::BuildByName("bert_large");
  std::vector<double> forward_us, backward_us;
  std::vector<std::int64_t> activation_bytes;
  for (const dnn::Layer& layer : network.layers()) {
    const double fwd = fwd_model.PredictLayerUs(layer, "A100", kMicroBatch);
    const double step = step_model.PredictLayerUs(layer, "A100", kMicroBatch);
    forward_us.push_back(fwd);
    backward_us.push_back(std::max(0.0, step - fwd));
    activation_bytes.push_back(dnn::LayerOutputBytes(layer, kMicroBatch));
  }

  std::printf("pipeline-parallel GPipe step, %s, micro-batch %ld, "
              "NVLink-class 300 GB/s stage links\n\n",
              network.name().c_str(), (long)kMicroBatch);
  TextTable table;
  table.SetHeader({"stages", "micro-batches", "step (ms)", "bubble",
                   "ideal bubble"});
  for (int stages : {2, 4, 8}) {
    for (int micro : {1, 4, 16, 64}) {
      simsys::PipelineConfig config;
      config.num_stages = stages;
      config.micro_batches = micro;
      config.link_bandwidth_gbps = 300;
      simsys::PipelineResult result = simsys::SimulatePipeline(
          forward_us, backward_us, activation_bytes, config);
      table.AddRow({Format("%d", stages), Format("%d", micro),
                    Format("%.1f", result.step_time_us / 1e3),
                    Format("%.0f%%", 100 * result.bubble_fraction),
                    Format("%.0f%%", 100.0 * (stages - 1) /
                                         (micro + stages - 1))});
    }
  }
  table.Print();
  std::printf("\n(the measured bubble tracks GPipe's (S-1)/(M+S-1) with a "
              "premium for stage imbalance and activation transfers; the "
              "stage partition itself is optimized with predicted layer "
              "times)\n");
  return 0;
}
