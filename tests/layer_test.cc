#include "dnn/layer.h"

#include <gtest/gtest.h>

namespace gpuperf::dnn {
namespace {

constexpr LayerKind kAllKinds[] = {
    LayerKind::kConv2d,   LayerKind::kLinear,       LayerKind::kBatchNorm,
    LayerKind::kLayerNorm, LayerKind::kRelu,        LayerKind::kRelu6,
    LayerKind::kGelu,     LayerKind::kSigmoid,      LayerKind::kAdd,
    LayerKind::kConcat,   LayerKind::kMaxPool,      LayerKind::kAvgPool,
    LayerKind::kGlobalAvgPool, LayerKind::kSoftmax, LayerKind::kFlatten,
    LayerKind::kEmbedding, LayerKind::kMatMul,
    LayerKind::kChannelShuffle, LayerKind::kDropout,
};

class LayerKindRoundTripTest : public ::testing::TestWithParam<LayerKind> {};

TEST_P(LayerKindRoundTripTest, NameRoundTrips) {
  const LayerKind kind = GetParam();
  LayerKind parsed = LayerKind::kDropout;
  ASSERT_TRUE(TryLayerKindFromName(LayerKindName(kind), &parsed));
  EXPECT_EQ(parsed, kind);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, LayerKindRoundTripTest,
                         ::testing::ValuesIn(kAllKinds));

TEST(LayerKindTest, UnknownNameIsRejected) {
  LayerKind parsed = LayerKind::kDropout;
  EXPECT_FALSE(TryLayerKindFromName("Bogus", &parsed));
  EXPECT_EQ(parsed, LayerKind::kDropout);  // untouched on failure
}

TEST(LayerTest, InputElementsSumsAllInputs) {
  Layer layer;
  layer.kind = LayerKind::kAdd;
  layer.inputs = {Chw(4, 8, 8), Chw(4, 8, 8)};
  layer.output = Chw(4, 8, 8);
  EXPECT_EQ(layer.InputElements(), 2 * 4 * 8 * 8);
}

TEST(LayerTest, TypedParamAccessors) {
  Layer layer;
  layer.kind = LayerKind::kConv2d;
  ConvParams params;
  params.in_channels = 3;
  params.out_channels = 64;
  params.kernel_h = params.kernel_w = 7;
  layer.params = params;
  EXPECT_EQ(layer.conv().out_channels, 64);
}

TEST(LayerDeathTest, WrongParamAccessorAborts) {
  Layer layer;
  layer.kind = LayerKind::kRelu;
  layer.params = NoParams{};
  EXPECT_DEATH(layer.conv(), "check failed");
}

TEST(ConvParamsTest, DepthwiseDetection) {
  ConvParams params;
  params.in_channels = params.out_channels = params.groups = 32;
  EXPECT_TRUE(params.IsDepthwise());
  params.groups = 4;
  EXPECT_FALSE(params.IsDepthwise());
}

TEST(LayerSignatureTest, EncodesShapesAndConvParams) {
  Layer layer;
  layer.kind = LayerKind::kConv2d;
  ConvParams params;
  params.in_channels = 3;
  params.out_channels = 64;
  params.kernel_h = params.kernel_w = 7;
  params.stride_h = params.stride_w = 2;
  params.pad_h = params.pad_w = 3;
  layer.params = params;
  layer.inputs = {Chw(3, 224, 224)};
  layer.output = Chw(64, 112, 112);
  const std::string signature = LayerSignature(layer);
  EXPECT_NE(signature.find("CONV"), std::string::npos);
  EXPECT_NE(signature.find("i3x224x224"), std::string::npos);
  EXPECT_NE(signature.find("o64x112x112"), std::string::npos);
  EXPECT_NE(signature.find("k7x7"), std::string::npos);
  EXPECT_NE(signature.find("s2x2"), std::string::npos);
  EXPECT_NE(signature.find("g1"), std::string::npos);
}

TEST(LayerSignatureTest, DistinguishesConfigurations) {
  Layer a;
  a.kind = LayerKind::kRelu;
  a.inputs = {Chw(64, 56, 56)};
  a.output = Chw(64, 56, 56);
  Layer b = a;
  b.inputs = {Chw(64, 28, 28)};
  b.output = Chw(64, 28, 28);
  EXPECT_NE(LayerSignature(a), LayerSignature(b));
  Layer c = a;
  EXPECT_EQ(LayerSignature(a), LayerSignature(c));
}

}  // namespace
}  // namespace gpuperf::dnn
