#include "models/model_io.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "test_support.h"
#include "zoo/zoo.h"

namespace gpuperf::models {
namespace {

using testing::SmallCampaign;

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GP_CHECK(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteAll(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  GP_CHECK(out.good()) << path;
  out << content;
}

std::vector<std::string> Lines(const std::string& content) {
  std::vector<std::string> lines = Split(content, '\n');
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  return lines;
}

std::string Unlines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) out += line + "\n";
  return out;
}

/** Replaces comma-field `index` of line `line_no` (0 = header). */
void SetField(std::vector<std::string>* lines, std::size_t line_no,
              std::size_t index, const std::string& value) {
  std::vector<std::string> fields = Split((*lines)[line_no], ',');
  GP_CHECK_LT(index, fields.size());
  fields[index] = value;
  (*lines)[line_no] = Join(fields, ",");
}

/**
 * Rewrites manifest.csv to match the current on-disk bundle files, so a
 * corruption test can reach the *field validation* layer instead of
 * stopping at the checksum gate.
 */
void Remanifest(const std::string& dir) {
  std::ofstream out(dir + "/manifest.csv", std::ios::trunc);
  out << "bundle_version,file,checksum,rows\n";
  for (const char* file :
       {"kernel_models.csv", "mapping_table.csv", "calibration.csv",
        "layer_fallback.csv"}) {
    const std::string content = ReadAll(dir + "/" + file);
    out << Format("%d,%s,%016llx,%zu\n", kKwBundleVersion, file,
                  static_cast<unsigned long long>(StableHash(content)),
                  Lines(content).size() - 1);
  }
}

/** A pristine saved bundle, trained once per process. */
const std::string& GoldenBundle() {
  static const std::string* const kDir = [] {
    // Pid-suffixed: ctest runs each case as its own process, and two
    // processes sharing one golden dir would race remove_all/reads.
    auto* dir = new std::string(
        (std::filesystem::temp_directory_path() /
         Format("gpuperf_model_io_golden_%d", static_cast<int>(getpid())))
            .string());
    std::filesystem::remove_all(*dir);
    std::filesystem::create_directories(*dir);
    KwModel model;
    model.Train(SmallCampaign::Get().data(), SmallCampaign::Get().split());
    GP_CHECK(ModelIo::SaveKw(model, *dir).ok());
    return dir;
  }();
  return *kDir;
}

/** Copies the golden bundle into a scratch directory. */
std::string ScratchBundle(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       Format("gpuperf_corrupt_%s_%d", tag.c_str(),
              static_cast<int>(getpid())))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  for (const auto& entry :
       std::filesystem::directory_iterator(GoldenBundle())) {
    std::filesystem::copy(entry.path(), dir + "/" +
                                            entry.path().filename().string());
  }
  return dir;
}

/** Edits one bundle file in place and re-manifests. */
void EditFile(const std::string& dir, const std::string& file,
              const std::function<void(std::vector<std::string>*)>& edit) {
  std::vector<std::string> lines = Lines(ReadAll(dir + "/" + file));
  edit(&lines);
  WriteAll(dir + "/" + file, Unlines(lines));
  Remanifest(dir);
}

TEST(ModelIoTest, SaveLoadRoundTripPreservesPredictions) {
  KwModel original;
  original.Train(SmallCampaign::Get().data(), SmallCampaign::Get().split());

  const std::string dir =
      (std::filesystem::temp_directory_path() / "gpuperf_model_io").string();
  ASSERT_TRUE(ModelIo::SaveKw(original, dir).ok());
  KwModel loaded = ModelIo::LoadKw(dir).value();

  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  for (const char* name : {"resnet50", "vgg16_bn", "mobilenet_v2",
                           "densenet121", "googlenet"}) {
    dnn::Network net = zoo::BuildByName(name);
    EXPECT_NEAR(loaded.PredictUs(net, a100, 256),
                original.PredictUs(net, a100, 256),
                1e-6 * original.PredictUs(net, a100, 256))
        << name;
  }
  std::filesystem::remove_all(dir);
}

TEST(ModelIoTest, RoundTripPreservesKernelModels) {
  KwModel original;
  original.Train(SmallCampaign::Get().data(), SmallCampaign::Get().split());
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gpuperf_model_io2")
          .string();
  ASSERT_TRUE(ModelIo::SaveKw(original, dir).ok());
  KwModel loaded = ModelIo::LoadKw(dir).value();

  const auto& original_kernels = original.KernelModels("A40");
  const auto& loaded_kernels = loaded.KernelModels("A40");
  ASSERT_EQ(loaded_kernels.size(), original_kernels.size());
  for (const auto& [name, km] : original_kernels) {
    auto it = loaded_kernels.find(name);
    ASSERT_NE(it, loaded_kernels.end()) << name;
    EXPECT_EQ(it->second.driver, km.driver) << name;
    EXPECT_NEAR(it->second.fit.slope, km.fit.slope,
                1e-9 * std::abs(km.fit.slope) + 1e-18);
    EXPECT_NEAR(it->second.fit.intercept, km.fit.intercept, 1e-6);
    EXPECT_EQ(it->second.cluster_id, km.cluster_id);
  }
  EXPECT_EQ(loaded.MappingTable().size(), original.MappingTable().size());
  std::filesystem::remove_all(dir);
}

TEST(ModelIoTest, LoadFromMissingDirectoryIsRecoverable) {
  StatusOr<KwModel> loaded = ModelIo::LoadKw("/nonexistent/model/dir");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_NE(loaded.status().message().find("not a model bundle"),
            std::string::npos)
      << loaded.status().message();
}

TEST(ModelIoTest, ManifestIsWrittenLast) {
  // An interrupted save (no manifest yet) must never validate.
  const std::string dir = ScratchBundle("no_manifest");
  std::filesystem::remove(dir + "/manifest.csv");
  EXPECT_FALSE(ModelIo::LoadKw(dir).ok());
  std::filesystem::remove_all(dir);
}

/** One corruption mode of the matrix. */
struct Corruption {
  const char* tag;                          // scratch-dir suffix
  std::function<void(const std::string&)> apply;  // mutates the bundle
  const char* expected_substring;           // must appear in the message
};

TEST(ModelIoCorruptionMatrixTest, EveryCorruptionIsANonOkStatus) {
  const std::vector<Corruption> corruptions = {
      {"deleted_file",
       [](const std::string& dir) {
         std::filesystem::remove(dir + "/kernel_models.csv");
       },
       "kernel_models.csv"},
      {"truncated_file",
       [](const std::string& dir) {
         // Drop the last line without fixing the manifest: checksum gate.
         std::vector<std::string> lines =
             Lines(ReadAll(dir + "/kernel_models.csv"));
         lines.pop_back();
         WriteAll(dir + "/kernel_models.csv", Unlines(lines));
       },
       "checksum mismatch"},
      {"row_count_drift",
       [](const std::string& dir) {
         // Manifest row count lies while the checksum entry is patched to
         // match the file: the row-count gate must catch it.
         std::vector<std::string> lines = Lines(ReadAll(dir + "/manifest.csv"));
         SetField(&lines, 1, 3, "99999");
         WriteAll(dir + "/manifest.csv", Unlines(lines));
       },
       "manifest says"},
      {"unsupported_version",
       [](const std::string& dir) {
         std::vector<std::string> lines = Lines(ReadAll(dir + "/manifest.csv"));
         for (std::size_t i = 1; i < lines.size(); ++i) {
           SetField(&lines, i, 0, "99");
         }
         WriteAll(dir + "/manifest.csv", Unlines(lines));
       },
       "version 99 is not supported"},
      {"manifest_missing_entry",
       [](const std::string& dir) {
         std::vector<std::string> lines = Lines(ReadAll(dir + "/manifest.csv"));
         lines.erase(lines.begin() + 1);  // drop kernel_models.csv entry
         WriteAll(dir + "/manifest.csv", Unlines(lines));
       },
       "no entry"},
      {"non_finite_slope",
       [](const std::string& dir) {
         EditFile(dir, "kernel_models.csv", [](std::vector<std::string>* l) {
           SetField(l, 1, 3, "inf");
         });
       },
       "slope"},
      {"non_numeric_field",
       [](const std::string& dir) {
         EditFile(dir, "kernel_models.csv", [](std::vector<std::string>* l) {
           SetField(l, 1, 5, "banana");
         });
       },
       "cluster_id"},
      {"unknown_driver",
       [](const std::string& dir) {
         EditFile(dir, "kernel_models.csv", [](std::vector<std::string>* l) {
           SetField(l, 1, 2, "vibes");
         });
       },
       "not a cost driver"},
      {"duplicate_kernel_row",
       [](const std::string& dir) {
         EditFile(dir, "kernel_models.csv", [](std::vector<std::string>* l) {
           l->push_back((*l)[1]);
         });
       },
       "duplicate kernel model"},
      {"missing_column",
       [](const std::string& dir) {
         EditFile(dir, "kernel_models.csv", [](std::vector<std::string>* l) {
           SetField(l, 0, 3, "slopeX");
         });
       },
       "missing column 'slope'"},
      {"ragged_row",
       [](const std::string& dir) {
         EditFile(dir, "kernel_models.csv", [](std::vector<std::string>* l) {
           (*l)[1] += ",extra";
         });
       },
       "fields"},
      {"duplicate_mapping_key",
       [](const std::string& dir) {
         EditFile(dir, "mapping_table.csv", [](std::vector<std::string>* l) {
           l->push_back((*l)[1]);
         });
       },
       "duplicate mapping-table key"},
      {"empty_kernel_list",
       [](const std::string& dir) {
         EditFile(dir, "mapping_table.csv", [](std::vector<std::string>* l) {
           SetField(l, 1, 1, "");
         });
       },
       "empty kernel list"},
      {"non_positive_calibration",
       [](const std::string& dir) {
         EditFile(dir, "calibration.csv", [](std::vector<std::string>* l) {
           SetField(l, 1, 1, "-0.5");
         });
       },
       "must be positive"},
      {"duplicate_calibration_gpu",
       [](const std::string& dir) {
         EditFile(dir, "calibration.csv", [](std::vector<std::string>* l) {
           l->push_back((*l)[1]);
         });
       },
       "duplicate calibration row"},
      {"unknown_layer_kind",
       [](const std::string& dir) {
         EditFile(dir, "layer_fallback.csv", [](std::vector<std::string>* l) {
           SetField(l, 1, 1, "Blursed");
         });
       },
       "not a layer kind"},
      {"missing_fallback_rows",
       [](const std::string& dir) {
         EditFile(dir, "layer_fallback.csv", [](std::vector<std::string>* l) {
           // Keep only the header: no GPU can degrade to the LW tier.
           l->resize(1);
         });
       },
       "no fallback rows"},
  };

  ASSERT_GE(corruptions.size(), 10u);
  for (const Corruption& corruption : corruptions) {
    SCOPED_TRACE(corruption.tag);
    const std::string dir = ScratchBundle(corruption.tag);
    corruption.apply(dir);
    // The load must fail with a Status — never abort the process.
    StatusOr<KwModel> loaded = ModelIo::LoadKw(dir);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find(corruption.expected_substring),
              std::string::npos)
        << corruption.tag << ": " << loaded.status().message();
    std::filesystem::remove_all(dir);
  }
}

// --- Seeded randomized-corruption sweep ("mini-fuzz"). The handcrafted
// matrix above checks one known failure per validation layer; the sweep
// below checks the *unknown* ones: any byte- or field-level mutation of
// a saved bundle, without patching the manifest, must surface as a
// Status — never a crash, never an accepted load (the checksum gate
// guarantees a mutated file can't validate). Seeded Rng keeps every run
// identical, so a failure is a repro, not a flake.

constexpr const char* kBundleFiles[] = {
    "kernel_models.csv", "mapping_table.csv", "calibration.csv",
    "layer_fallback.csv"};

TEST(ModelIoFuzzTest, RandomByteMutationsAlwaysYieldAStatus) {
  Rng rng(0xB0B5'0001);
  for (int trial = 0; trial < 64; ++trial) {
    SCOPED_TRACE(Format("byte trial %d", trial));
    const std::string dir = ScratchBundle("fuzz_byte");
    const char* file = kBundleFiles[rng.NextBelow(4)];
    std::string content = ReadAll(dir + "/" + file);
    ASSERT_FALSE(content.empty());
    // 1-4 independent byte mutations: flip, overwrite, or truncate.
    const int edits = 1 + static_cast<int>(rng.NextBelow(4));
    for (int e = 0; e < edits && !content.empty(); ++e) {
      const std::size_t pos = rng.NextBelow(content.size());
      switch (rng.NextBelow(3)) {
        case 0:
          content[pos] = static_cast<char>(content[pos] ^
                                           (1 << rng.NextBelow(8)));
          break;
        case 1:
          content[pos] = static_cast<char>(rng.NextBelow(256));
          break;
        default:
          content.resize(pos);
          break;
      }
    }
    WriteAll(dir + "/" + file, content);
    if (content != ReadAll(GoldenBundle() + "/" + file)) {
      StatusOr<KwModel> loaded = ModelIo::LoadKw(dir);
      EXPECT_FALSE(loaded.ok()) << file << " mutated but load succeeded";
    }
    std::filesystem::remove_all(dir);
  }
}

TEST(ModelIoFuzzTest, RandomFieldMutationsAlwaysYieldAStatus) {
  Rng rng(0xB0B5'0002);
  const std::vector<std::string> junk = {"",      "nan",  "-inf", "1e999",
                                         "banana", "-1",   "  ",   "0x12",
                                         "1,2",    "\"q\""};
  for (int trial = 0; trial < 64; ++trial) {
    SCOPED_TRACE(Format("field trial %d", trial));
    const std::string dir = ScratchBundle("fuzz_field");
    const char* file = kBundleFiles[rng.NextBelow(4)];
    std::vector<std::string> lines = Lines(ReadAll(dir + "/" + file));
    ASSERT_GE(lines.size(), 2u);
    const std::size_t line = rng.NextBelow(lines.size());
    const std::vector<std::string> fields = Split(lines[line], ',');
    const std::size_t index = rng.NextBelow(fields.size());
    const std::string& value = junk[rng.NextBelow(junk.size())];
    if (fields[index] == value) {
      std::filesystem::remove_all(dir);
      continue;
    }
    SetField(&lines, line, index, value);
    // No Remanifest(): an on-disk mutation the manifest doesn't bless is
    // exactly what a partial write or bit rot produces.
    WriteAll(dir + "/" + file, Unlines(lines));
    StatusOr<KwModel> loaded = ModelIo::LoadKw(dir);
    EXPECT_FALSE(loaded.ok())
        << file << " line " << line << " field " << index << " <- '"
        << value << "' was accepted";
    std::filesystem::remove_all(dir);
  }
}

TEST(ModelIoTest, RemanifestedUntouchedBundleStillLoads) {
  // Sanity-check the corruption harness itself: re-manifesting without
  // edits must keep the bundle loadable (checksums recompute correctly).
  const std::string dir = ScratchBundle("sanity");
  Remanifest(dir);
  EXPECT_TRUE(ModelIo::LoadKw(dir).ok());
  std::filesystem::remove_all(dir);
}

// --- Crash-point injection harness. SaveKw() stages the bundle into
// `<dir>.saving` (manifest last) and commits with renames through
// `<dir>.stale`; the tests below materialize the exact on-disk state a
// crash would leave at EVERY byte boundary of every staged file and at
// every rename stage, then assert LoadKwRecovering() yields exactly the
// old or the new generation — never a hybrid, never an abort.

/**
 * Loads a tiny, hand-crafted, valid single-kernel bundle. The crash
 * sweep visits every byte boundary of every planned file, so the
 * generations must be small — crash consistency is structural, not
 * model-size dependent.
 */
KwModel TinyModel(double slope) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       Format("gpuperf_tiny_%d_%g", static_cast<int>(getpid()), slope))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  WriteAll(dir + "/kernel_models.csv",
           "gpu,kernel,driver,slope,intercept,cluster_id,solo_r2\n" +
               Format("A100,k1,input,%g,0.5,0,0.9\n", slope));
  WriteAll(dir + "/mapping_table.csv", "signature,kernels\nsig1,k1\n");
  WriteAll(dir + "/calibration.csv", "gpu,factor\nA100,1.25\n");
  WriteAll(dir + "/layer_fallback.csv",
           "gpu,layer_kind,slope,intercept\nA100,CONV,1,0\n");
  Remanifest(dir);
  KwModel model = ModelIo::LoadKw(dir).value();
  std::filesystem::remove_all(dir);
  return model;
}

/** Two distinguishable generations plus their write plans. */
struct Generations {
  KwModel old_model;
  KwModel new_model;
  std::vector<BundleFilePlan> old_plan;
  std::vector<BundleFilePlan> new_plan;
};

const Generations& TwoGenerations() {
  static const Generations* const kGen = [] {
    auto* g = new Generations;
    g->old_model = TinyModel(2.0);
    g->new_model = TinyModel(3.0);
    g->old_plan = ModelIo::PlanKwSave(g->old_model);
    g->new_plan = ModelIo::PlanKwSave(g->new_model);
    return g;
  }();
  return *kGen;
}

bool SamePlan(const std::vector<BundleFilePlan>& a,
              const std::vector<BundleFilePlan>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].name != b[i].name || a[i].content != b[i].content) return false;
  }
  return true;
}

enum class Gen { kOld, kNew, kNeither };

/** Which generation `model` is, by byte-identical re-serialization. */
Gen Identify(const KwModel& model) {
  const std::vector<BundleFilePlan> plan = ModelIo::PlanKwSave(model);
  if (SamePlan(plan, TwoGenerations().old_plan)) return Gen::kOld;
  if (SamePlan(plan, TwoGenerations().new_plan)) return Gen::kNew;
  return Gen::kNeither;
}

/**
 * Materializes a crashed staging write into `dir`: plan files before
 * `full` are complete, file `full` is cut to its first `bytes` bytes,
 * and later files were never started.
 */
void MaterializeTruncated(const std::string& dir,
                          const std::vector<BundleFilePlan>& plan,
                          std::size_t full, std::size_t bytes) {
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  for (std::size_t i = 0; i < full && i < plan.size(); ++i) {
    WriteAll(dir + "/" + plan[i].name, plan[i].content);
  }
  if (full < plan.size()) {
    WriteAll(dir + "/" + plan[full].name, plan[full].content.substr(0, bytes));
  }
}

void MaterializeFull(const std::string& dir,
                     const std::vector<BundleFilePlan>& plan) {
  MaterializeTruncated(dir, plan, plan.size(), 0);
}

TEST(ModelIoCrashTest, GenerationsAreDistinguishable) {
  const Generations& gen = TwoGenerations();
  ASSERT_FALSE(SamePlan(gen.old_plan, gen.new_plan));
  EXPECT_EQ(Identify(gen.old_model), Gen::kOld);
  EXPECT_EQ(Identify(gen.new_model), Gen::kNew);
}

TEST(ModelIoCrashTest, PlanWritesManifestLastAndMatchesSavedBundle) {
  const Generations& gen = TwoGenerations();
  ASSERT_EQ(gen.old_plan.size(), 5u);
  EXPECT_EQ(gen.old_plan.back().name, "manifest.csv");
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gpuperf_plan_match")
          .string();
  ASSERT_TRUE(ModelIo::SaveKw(gen.old_model, dir).ok());
  for (const BundleFilePlan& file : gen.old_plan) {
    EXPECT_EQ(ReadAll(dir + "/" + file.name), file.content) << file.name;
  }
  std::filesystem::remove_all(dir);
}

TEST(ModelIoCrashTest, SaveOverExistingBundleCommitsAndLeavesNoSidecars) {
  const Generations& gen = TwoGenerations();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gpuperf_crash_overwrite")
          .string();
  ASSERT_TRUE(ModelIo::SaveKw(gen.old_model, dir).ok());
  ASSERT_TRUE(ModelIo::SaveKw(gen.new_model, dir).ok());
  EXPECT_EQ(Identify(ModelIo::LoadKw(dir).value()), Gen::kNew);
  EXPECT_FALSE(std::filesystem::exists(dir + kBundleSavingSuffix));
  EXPECT_FALSE(std::filesystem::exists(dir + kBundleStaleSuffix));
  std::filesystem::remove_all(dir);
}

TEST(ModelIoCrashTest, CrashAtEveryByteOfEveryStagedFileKeepsOldGeneration) {
  const Generations& gen = TwoGenerations();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gpuperf_crash_bytes")
          .string();
  // The committed old generation; staging crashes must never damage it.
  std::filesystem::remove_all(dir);
  MaterializeFull(dir, gen.old_plan);
  int states = 0;
  for (std::size_t f = 0; f < gen.new_plan.size(); ++f) {
    for (std::size_t b = 0; b <= gen.new_plan[f].content.size(); ++b) {
      MaterializeTruncated(dir + kBundleSavingSuffix, gen.new_plan, f, b);
      StatusOr<KwModel> recovered = ModelIo::LoadKwRecovering(dir);
      ASSERT_TRUE(recovered.ok())
          << "file " << f << " byte " << b << ": "
          << recovered.status().ToString();
      ASSERT_EQ(Identify(*recovered), Gen::kOld)
          << "file " << f << " byte " << b
          << ": recovery produced a hybrid or the uncommitted generation";
      ASSERT_FALSE(std::filesystem::exists(dir + kBundleSavingSuffix));
      ++states;
    }
  }
  // A fully-staged-but-unswapped save also resolves to the committed old
  // generation (the swap never began, so the save never happened).
  MaterializeFull(dir + kBundleSavingSuffix, gen.new_plan);
  StatusOr<KwModel> recovered = ModelIo::LoadKwRecovering(dir);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(Identify(*recovered), Gen::kOld);
  EXPECT_FALSE(std::filesystem::exists(dir + kBundleSavingSuffix));
  // Non-vacuity: the sweep covered every byte boundary of every file.
  std::size_t total = 0;
  for (const BundleFilePlan& file : gen.new_plan) {
    total += file.content.size() + 1;
  }
  EXPECT_EQ(states, static_cast<int>(total));
  std::filesystem::remove_all(dir);
}

TEST(ModelIoCrashTest,
     CrashDuringRestagingAfterMidSwapCrashRestoresOldGeneration) {
  // A save crashed between rename(dir -> stale) and rename(staging ->
  // dir); a SECOND save then started, cleared the staging dir, and
  // crashed mid-write at every byte boundary. Only `.stale` holds a
  // complete generation — recovery must unwind to it.
  const Generations& gen = TwoGenerations();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gpuperf_crash_restage")
          .string();
  std::filesystem::remove_all(dir);
  for (std::size_t f = 0; f < gen.new_plan.size(); ++f) {
    const std::size_t size = gen.new_plan[f].content.size();
    // Truncation points: empty, one byte, midpoint, all-but-one.
    for (std::size_t b : std::vector<std::size_t>{
             0, 1, size / 2, size > 0 ? size - 1 : 0}) {
      MaterializeFull(dir + kBundleStaleSuffix, gen.old_plan);
      MaterializeTruncated(dir + kBundleSavingSuffix, gen.new_plan, f, b);
      StatusOr<KwModel> recovered = ModelIo::LoadKwRecovering(dir);
      ASSERT_TRUE(recovered.ok())
          << "file " << f << " byte " << b << ": "
          << recovered.status().ToString();
      // Either generation may win (a staging dir truncated by only its
      // trailing newline still validates as the complete new bundle) —
      // but the result must be exactly one of them, never a hybrid.
      const Gen outcome = Identify(*recovered);
      ASSERT_NE(outcome, Gen::kNeither)
          << "file " << f << " byte " << b << ": recovery built a hybrid";
      // The recovery re-commits that same generation in place.
      EXPECT_EQ(Identify(ModelIo::LoadKw(dir).value()), outcome);
      ASSERT_FALSE(std::filesystem::exists(dir + kBundleSavingSuffix));
      ASSERT_FALSE(std::filesystem::exists(dir + kBundleStaleSuffix));
      std::filesystem::remove_all(dir);
    }
  }
}

TEST(ModelIoCrashTest, EveryRenameStageCrashResolvesToExactlyOneGeneration) {
  const Generations& gen = TwoGenerations();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gpuperf_crash_rename")
          .string();
  const std::string staging = dir + kBundleSavingSuffix;
  const std::string stale = dir + kBundleStaleSuffix;

  // Stage A — crash after rename(dir -> stale), before rename(staging ->
  // dir): no committed dir, staging complete. Recovery finishes the swap:
  // the NEW generation commits and the displaced old copy is dropped.
  std::filesystem::remove_all(dir);
  MaterializeFull(stale, gen.old_plan);
  MaterializeFull(staging, gen.new_plan);
  StatusOr<KwModel> recovered = ModelIo::LoadKwRecovering(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(Identify(*recovered), Gen::kNew);
  EXPECT_EQ(Identify(ModelIo::LoadKw(dir).value()), Gen::kNew);
  EXPECT_FALSE(std::filesystem::exists(staging));
  EXPECT_FALSE(std::filesystem::exists(stale));

  // Stage B — crash after rename(staging -> dir), before remove(stale):
  // the new generation is committed; recovery only sweeps the leftover.
  std::filesystem::remove_all(dir);
  MaterializeFull(dir, gen.new_plan);
  MaterializeFull(stale, gen.old_plan);
  recovered = ModelIo::LoadKwRecovering(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(Identify(*recovered), Gen::kNew);
  EXPECT_FALSE(std::filesystem::exists(stale));

  // Stage C — first-ever save (nothing to displace) crashed mid-staging:
  // there is no generation anywhere, and recovery must say so instead of
  // fabricating one.
  std::filesystem::remove_all(dir);
  MaterializeTruncated(staging, gen.new_plan, 2, 4);
  StatusOr<KwModel> nothing = ModelIo::LoadKwRecovering(dir);
  ASSERT_FALSE(nothing.ok());
  EXPECT_NE(nothing.status().message().find("no recoverable generation"),
            std::string::npos)
      << nothing.status().message();

  // Stage D — first-ever save fully staged, crash before the commit
  // rename: the staged generation is the only one; recovery commits it.
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(staging);
  MaterializeFull(staging, gen.new_plan);
  recovered = ModelIo::LoadKwRecovering(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(Identify(*recovered), Gen::kNew);
  EXPECT_EQ(Identify(ModelIo::LoadKw(dir).value()), Gen::kNew);
  EXPECT_FALSE(std::filesystem::exists(staging));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gpuperf::models
