#include "models/model_io.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "test_support.h"
#include "zoo/zoo.h"

namespace gpuperf::models {
namespace {

using testing::SmallCampaign;

TEST(ModelIoTest, SaveLoadRoundTripPreservesPredictions) {
  KwModel original;
  original.Train(SmallCampaign::Get().data(), SmallCampaign::Get().split());

  const std::string dir =
      (std::filesystem::temp_directory_path() / "gpuperf_model_io").string();
  std::filesystem::create_directories(dir);
  ModelIo::SaveKw(original, dir);
  KwModel loaded = ModelIo::LoadKw(dir);

  const gpuexec::GpuSpec& a100 = gpuexec::GpuByName("A100");
  for (const char* name : {"resnet50", "vgg16_bn", "mobilenet_v2",
                           "densenet121", "googlenet"}) {
    dnn::Network net = zoo::BuildByName(name);
    EXPECT_NEAR(loaded.PredictUs(net, a100, 256),
                original.PredictUs(net, a100, 256),
                1e-6 * original.PredictUs(net, a100, 256))
        << name;
  }
  std::filesystem::remove_all(dir);
}

TEST(ModelIoTest, RoundTripPreservesKernelModels) {
  KwModel original;
  original.Train(SmallCampaign::Get().data(), SmallCampaign::Get().split());
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gpuperf_model_io2")
          .string();
  std::filesystem::create_directories(dir);
  ModelIo::SaveKw(original, dir);
  KwModel loaded = ModelIo::LoadKw(dir);

  const auto& original_kernels = original.KernelModels("A40");
  const auto& loaded_kernels = loaded.KernelModels("A40");
  ASSERT_EQ(loaded_kernels.size(), original_kernels.size());
  for (const auto& [name, km] : original_kernels) {
    auto it = loaded_kernels.find(name);
    ASSERT_NE(it, loaded_kernels.end()) << name;
    EXPECT_EQ(it->second.driver, km.driver) << name;
    EXPECT_NEAR(it->second.fit.slope, km.fit.slope,
                1e-9 * std::abs(km.fit.slope) + 1e-18);
    EXPECT_NEAR(it->second.fit.intercept, km.fit.intercept, 1e-6);
    EXPECT_EQ(it->second.cluster_id, km.cluster_id);
  }
  EXPECT_EQ(loaded.MappingTable().size(), original.MappingTable().size());
  std::filesystem::remove_all(dir);
}

TEST(ModelIoDeathTest, LoadFromMissingDirectoryIsFatal) {
  EXPECT_EXIT(ModelIo::LoadKw("/nonexistent/model/dir"),
              ::testing::ExitedWithCode(1), "cannot open");
}

}  // namespace
}  // namespace gpuperf::models
